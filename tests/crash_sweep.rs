//! Randomized black-box crash-consistency sweep.
//!
//! In the spirit of black-box consistency checking (PAPERS.md: "Efficient
//! Black-box Checking of Snapshot Isolation in Databases"), this test
//! treats the whole system — client library, log chaining, daemon,
//! recovery — as opaque: it drives a *seeded* workload of transactions
//! whose log sizes straddle the chain boundary, injects a crash at a
//! randomly chosen executed-store index (or commit-stage / chain-extension
//! boundary) through the existing failpoint machinery, restarts the
//! daemon, and asserts the data region is **bit-identical** to either the
//! pre-transaction or the post-transaction image — committed or rolled
//! back, never torn.
//!
//! The bounded sweep (`PUDDLES_CRASH_SWEEP_TRIALS`, default 100) runs in
//! `cargo test`; CI runs a deeper, non-blocking sweep by raising the trial
//! count. `PUDDLES_CRASH_SWEEP_SEED` pins the base seed; on failure the
//! offending seed is written to `target/crash_sweep_seed.txt` (uploaded by
//! CI) and printed in the panic message, so every failure reproduces with
//! two env vars.
//!
//! Trials run **in parallel** (`PUDDLES_CRASH_SWEEP_THREADS`, default:
//! available parallelism, capped at 8): each trial owns a private PM dir
//! and a unique global-space slot (`DaemonConfig::for_testing`), and its
//! crash points are armed **thread-scoped** (`failpoint::arm_scoped`), so
//! concurrent trials can neither trip nor consume one another's
//! failpoints. Worker threads pull trial indices from a shared counter, so
//! seeds stay `base + trial` regardless of thread count — a failure
//! reproduces identically single-threaded.

use puddled::{Daemon, DaemonConfig};
use puddles::{impl_pm_type, PmPtr, PoolOptions, PuddleClient};
use puddles_pmem::failpoint;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const REGION: usize = 32 * 1024;
/// Log segments small enough that multi-KiB transactions chain several.
const LOG_SEGMENT: u64 = 32 * 1024;
/// Largest single op payload; must fit one fresh log segment.
const MAX_OP: usize = 8 * 1024;

#[repr(C)]
struct Region {
    data: [u8; REGION],
}
impl_pm_type!(Region, "crash_sweep::Region", []);

/// One logged mutation of the workload.
#[derive(Clone)]
struct Op {
    off: usize,
    len: usize,
    fill: u8,
    redo: bool,
}

fn gen_ops(rng: &mut StdRng) -> Vec<Op> {
    let count = rng.gen_range(1usize..6);
    (0..count)
        .map(|_| {
            // Mix small stores with multi-KiB blobs so per-transaction log
            // volume straddles the segment size in both directions.
            let len = if rng.gen_bool(0.5) {
                rng.gen_range(8usize..256)
            } else {
                rng.gen_range(2048usize..MAX_OP)
            };
            Op {
                off: rng.gen_range(0usize..REGION - len),
                len,
                fill: rng.gen_range(0u64..256) as u8,
                redo: rng.gen_bool(0.3),
            }
        })
        .collect()
}

/// Applies `ops` to the in-DRAM shadow model, producing the post-commit
/// image. Undo-logged ops mutate in place during the body; redo-logged ops
/// land at commit, *after* every in-place write — so where they overlap,
/// redo wins regardless of program order, and the shadow must apply the
/// groups in that order too.
fn apply_to_shadow(shadow: &mut [u8], ops: &[Op]) {
    for op in ops.iter().filter(|op| !op.redo) {
        shadow[op.off..op.off + op.len].fill(op.fill);
    }
    for op in ops.iter().filter(|op| op.redo) {
        shadow[op.off..op.off + op.len].fill(op.fill);
    }
}

/// The failpoint armed for the crashing transaction.
enum Crash {
    /// Crash after N executed (unfenced) log appends — the dominant case:
    /// a power failure at a random executed-store index.
    AppendAt(usize),
    /// Crash at a commit-stage or chain-extension boundary.
    Named(&'static str, usize),
}

fn pick_crash(rng: &mut StdRng) -> Crash {
    if rng.gen_bool(0.55) {
        return Crash::AppendAt(rng.gen_range(0usize..24));
    }
    let named = [
        failpoint::names::COMMIT_AFTER_UNDO_FLUSH,
        failpoint::names::COMMIT_BEFORE_REDO_APPLY,
        failpoint::names::COMMIT_MID_REDO_APPLY,
        failpoint::names::COMMIT_BEFORE_INVALIDATE,
        failpoint::names::LOG_CHAIN_ALLOC_CRASH,
        failpoint::names::LOG_CHAIN_REGISTER_CRASH,
    ];
    let name = named[rng.gen_range(0u64..named.len() as u64) as usize];
    let after = if name == failpoint::names::LOG_CHAIN_ALLOC_CRASH
        || name == failpoint::names::LOG_CHAIN_REGISTER_CRASH
    {
        rng.gen_range(0usize..2)
    } else {
        0
    };
    Crash::Named(name, after)
}

fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Runs one seeded trial; returns an error message on a consistency
/// violation instead of panicking, so the caller can attach the seed.
fn run_trial(seed: u64) -> Result<(), String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let tmp = tempfile::tempdir().unwrap();
    let config = DaemonConfig::for_testing(tmp.path());

    let mut shadow = vec![0u8; REGION];
    let mut before_crash_tx = shadow.clone();
    let mut crashed = false;

    {
        let daemon = Daemon::start(config.clone()).unwrap();
        let client = PuddleClient::connect_local(&daemon).unwrap();
        client.set_log_puddle_size(LOG_SEGMENT);
        let pool = client.create_pool("sweep", PoolOptions::default()).unwrap();
        pool.tx(|tx| {
            pool.create_root(
                tx,
                Region {
                    data: [0u8; REGION],
                },
            )
        })
        .unwrap();
        let root: PmPtr<Region> = pool.root().unwrap();

        let tx_count = rng.gen_range(2usize..5);
        let crash_at = rng.gen_range(0usize..tx_count);
        for tx_index in 0..tx_count {
            let ops = gen_ops(&mut rng);
            if tx_index == crash_at {
                before_crash_tx.copy_from_slice(&shadow);
                // Scoped to this trial's thread: parallel trials must not
                // trip (or consume) each other's crash points.
                match pick_crash(&mut rng) {
                    Crash::AppendAt(n) => {
                        failpoint::arm_scoped(failpoint::names::LOG_APPEND_CRASH, n)
                    }
                    Crash::Named(name, after) => failpoint::arm_scoped(name, after),
                }
            }
            let result = pool.tx(|tx| {
                let region = pool.deref_mut(root)?;
                for op in &ops {
                    if op.redo {
                        let bytes = vec![op.fill; op.len];
                        tx.redo_set_bytes(region.data.as_ptr() as usize + op.off, &bytes)?;
                    } else {
                        tx.add_range(region.data.as_ptr() as usize + op.off, op.len)?;
                        region.data[op.off..op.off + op.len].fill(op.fill);
                    }
                }
                Ok(())
            });
            failpoint::clear_current_thread();
            match result {
                Ok(()) => {
                    // Either no crash was scheduled for this transaction, or
                    // the armed point was never reached (e.g. append index
                    // past the transaction's log volume): it committed.
                    apply_to_shadow(&mut shadow, &ops);
                }
                Err(e) if e.is_injected_crash() => {
                    // Leave `shadow` at the pre-transaction image; the
                    // post-commit candidate is derived below.
                    apply_to_shadow(&mut before_crash_tx, &ops);
                    std::mem::swap(&mut shadow, &mut before_crash_tx);
                    // After the swap: `before_crash_tx` = pre-tx image,
                    // `shadow` = post-commit image. Record and stop driving.
                    crashed = true;
                    break;
                }
                Err(e) => return Err(format!("unexpected workload error: {e}")),
            }
        }
        // The "crashed" client and daemon are dropped without cleanup.
    }

    // Restart: the daemon recovers every registered log chain before any
    // application maps the data.
    let daemon = Daemon::start(config).unwrap();
    // The shared structural layer first: registry/allocator consistency
    // (same checks as `wal_crash` and the torture harness).
    let violations = puddled::Invariants::check_all(daemon.registry());
    if !violations.is_empty() {
        return Err(format!(
            "registry invariant violations after recovery: {}",
            violations.join("; ")
        ));
    }
    let client = PuddleClient::connect_local(&daemon).unwrap();
    let pool = client.open_pool("sweep").unwrap();
    let root: PmPtr<Region> = pool.root().unwrap();
    let data = &pool.deref(root).unwrap().data;

    if !crashed {
        if data[..] != shadow[..] {
            return Err("committed workload image diverged".into());
        }
        return Ok(());
    }
    let rolled_back = data[..] == before_crash_tx[..];
    let committed = data[..] == shadow[..];
    if !rolled_back && !committed {
        let divergence = data
            .iter()
            .zip(before_crash_tx.iter())
            .position(|(a, b)| a != b)
            .unwrap_or(0);
        return Err(format!(
            "torn state after recovery: matches neither the pre-transaction \
             nor the post-commit image (first divergence from pre-tx at \
             byte {divergence})"
        ));
    }
    Ok(())
}

#[test]
fn randomized_crash_consistency_sweep() {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::{Arc, Mutex};

    let trials = env_u64("PUDDLES_CRASH_SWEEP_TRIALS", 100);
    let base_seed = env_u64("PUDDLES_CRASH_SWEEP_SEED", 0xC0FFEE);
    let default_threads = std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1)
        .min(8);
    let threads = env_u64("PUDDLES_CRASH_SWEEP_THREADS", default_threads).clamp(1, trials.max(1));

    // Work-stealing trial loop: seeds are a pure function of the trial
    // index, so coverage and reproduction are independent of thread count.
    let next_trial = Arc::new(AtomicU64::new(0));
    let failures: Arc<Mutex<Vec<(u64, u64, String)>>> = Arc::new(Mutex::new(Vec::new()));
    let workers: Vec<_> = (0..threads)
        .map(|_| {
            let next_trial = Arc::clone(&next_trial);
            let failures = Arc::clone(&failures);
            std::thread::spawn(move || loop {
                let trial = next_trial.fetch_add(1, Ordering::Relaxed);
                if trial >= trials {
                    return;
                }
                let seed = base_seed.wrapping_add(trial);
                if let Err(msg) = run_trial(seed) {
                    failures.lock().unwrap().push((trial, seed, msg));
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("sweep worker panicked");
    }

    let failures = failures.lock().unwrap();
    if let Some((trial, seed, msg)) = failures.first() {
        // Record the seed for reproduction (CI uploads this artifact).
        let _ = std::fs::write(
            "target/crash_sweep_seed.txt",
            format!("PUDDLES_CRASH_SWEEP_SEED={seed} PUDDLES_CRASH_SWEEP_TRIALS=1\n"),
        );
        panic!(
            "crash-consistency violation at trial {trial} ({} total): {msg}\n\
             reproduce with PUDDLES_CRASH_SWEEP_SEED={seed} \
             PUDDLES_CRASH_SWEEP_TRIALS=1 PUDDLES_CRASH_SWEEP_THREADS=1",
            failures.len()
        );
    }
}
