//! Cross-crate integration tests: the full system working together over the
//! UNIX-domain-socket transport and across the comparison libraries.

use pm_datastructures::kv::{value_for, PmdkKv, PuddlesKv};
use pm_datastructures::list::PuddlesList;
use puddled::{Daemon, DaemonConfig, UdsServer};
use puddles::PuddleClient;
use ycsb::Workload;

#[test]
fn puddles_and_pmdk_kv_agree_under_every_ycsb_workload() {
    let tmp = tempfile::tempdir().unwrap();
    let daemon = Daemon::start(DaemonConfig::for_testing(tmp.path())).unwrap();
    let client = PuddleClient::connect_local(&daemon).unwrap();
    let p = PuddlesKv::new(&client, "agree").unwrap();
    let m = PmdkKv::create(tmp.path().join("agree.pmdk"), 64 << 20).unwrap();

    let records = 500u64;
    for k in 0..records {
        p.put(k, &value_for(k, 0)).unwrap();
        m.put(k, &value_for(k, 0)).unwrap();
    }
    for wl in Workload::ALL {
        for req in wl.generate(records, 500, 3) {
            p.execute(&req).unwrap();
            m.execute(&req).unwrap();
        }
    }
    for k in 0..records {
        assert_eq!(p.get(k), m.get(k), "workload divergence at key {k}");
    }
}

#[test]
fn uds_client_builds_a_list_that_a_local_client_reads() {
    let tmp = tempfile::tempdir().unwrap();
    let daemon = Daemon::start(DaemonConfig::for_testing(tmp.path())).unwrap();
    let socket = tmp.path().join("full.sock");
    let _server = UdsServer::start(daemon.clone(), &socket).unwrap();

    // Writer over the socket.
    let uds_client = PuddleClient::connect_uds_shared(&socket, daemon.global_space()).unwrap();
    let list = PuddlesList::new(&uds_client, "shared-list").unwrap();
    for i in 0..100 {
        list.insert_tail(i).unwrap();
    }
    drop(list);

    // Reader in-process (a different application sharing the same machine).
    let local_client = PuddleClient::connect_local(&daemon).unwrap();
    let list = PuddlesList::new(&local_client, "shared-list").unwrap();
    assert_eq!(list.len(), 100);
    assert_eq!(list.sum(), (0..100).sum::<u64>());
}

#[test]
fn exported_pool_survives_the_machine_and_imports_elsewhere() {
    // "Machine" A writes and exports.
    let a_dir = tempfile::tempdir().unwrap();
    let export = tempfile::tempdir().unwrap();
    {
        let daemon = Daemon::start(DaemonConfig::for_testing(a_dir.path())).unwrap();
        let client = PuddleClient::connect_local(&daemon).unwrap();
        let list = PuddlesList::new(&client, "travel").unwrap();
        for i in 0..200 {
            list.insert_tail(i * 3).unwrap();
        }
        client
            .export_pool("travel", export.path().join("travel"))
            .unwrap();
    }
    // "Machine" B (different PM dir, different global-space base) imports.
    let b_dir = tempfile::tempdir().unwrap();
    let daemon = Daemon::start(DaemonConfig::for_testing(b_dir.path())).unwrap();
    let client = PuddleClient::connect_local(&daemon).unwrap();
    let pool = client
        .import_pool(export.path().join("travel"), "travel")
        .unwrap();
    // Walk the imported structure through the typed API.
    let root: puddles::PmPtr<pm_datastructures::list::PListRoot> = pool.root().unwrap();
    let mut sum = 0u64;
    let mut cur = pool.deref(root).unwrap().head;
    let mut count = 0;
    while !cur.is_null() {
        let node = pool.deref(cur).unwrap();
        sum += node.value;
        cur = node.next;
        count += 1;
    }
    assert_eq!(count, 200);
    assert_eq!(sum, (0..200).map(|i| i * 3).sum::<u64>());
}

#[test]
fn pooled_client_connection_survives_a_daemon_server_restart() {
    let tmp = tempfile::tempdir().unwrap();
    let daemon = Daemon::start(DaemonConfig::for_testing(tmp.path())).unwrap();
    let socket = tmp.path().join("restart.sock");
    let mut server = UdsServer::start(daemon.clone(), &socket).unwrap();

    let client = PuddleClient::connect_uds_shared(&socket, daemon.global_space()).unwrap();
    client.ping().unwrap();
    let stats = client.stats().unwrap();
    assert_eq!(stats.pools, 0);

    // Restart the socket server: every connection the client pooled is now
    // a dead socket. The next call must detect the stale connection and
    // retry once on a fresh one instead of surfacing EOF/EPIPE.
    server.shutdown();
    let _server = UdsServer::start(daemon.clone(), &socket).unwrap();

    client
        .ping()
        .expect("pooled connection should retry after restart");
    let stats = client.stats().unwrap();
    assert_eq!(stats.pools, 0);
}
