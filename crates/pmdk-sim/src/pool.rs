//! PMDK-style pools: one mmapped file per pool, a UUID registered on open,
//! a root object, and a bump + free-list allocator.

use crate::oid::{pool_table, PmdkOid, Toid};
use crate::tx::{PmdkTx, LOG_REGION_SIZE};
use parking_lot::Mutex;
use puddles_pmem::persist;
use puddles_pmem::space::VaReservation;
use puddles_pmem::util::align_up;
use std::collections::HashSet;
use std::fmt;
use std::fs::OpenOptions;
use std::path::Path;
use std::sync::OnceLock;

/// Result alias for pmdk-sim operations.
pub type Result<T> = std::result::Result<T, PmdkError>;

/// Errors produced by the PMDK baseline.
#[derive(Debug)]
pub enum PmdkError {
    /// Underlying I/O or mmap failure.
    Io(String),
    /// The pool file is not a valid pmdk-sim pool.
    BadPool(String),
    /// The pool (same UUID) is already open in this process — PMDK refuses
    /// to open a pool or its clone twice (§2.3).
    AlreadyOpen,
    /// The pool is out of space.
    OutOfSpace,
    /// A transaction was aborted.
    Aborted(String),
}

impl fmt::Display for PmdkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PmdkError::Io(m) => write!(f, "I/O error: {m}"),
            PmdkError::BadPool(m) => write!(f, "invalid pool: {m}"),
            PmdkError::AlreadyOpen => write!(f, "a pool with this UUID is already open"),
            PmdkError::OutOfSpace => write!(f, "pool out of space"),
            PmdkError::Aborted(m) => write!(f, "transaction aborted: {m}"),
        }
    }
}

impl std::error::Error for PmdkError {}

const POOL_MAGIC: u64 = 0x504d_444b_5349_4d31; // "PMDKSIM1"
const HEADER_SIZE: usize = 4096;
const ALLOC_ALIGN: usize = 64;

/// On-PM pool header.
#[derive(Debug, Clone, Copy)]
#[repr(C)]
struct PoolHeader {
    magic: u64,
    uuid: u64,
    size: u64,
    root_off: u64,
    heap_start: u64,
    heap_bump: u64,
    free_list: u64,
}

/// Header preceding every allocation (and every free-list node).
#[derive(Debug, Clone, Copy)]
#[repr(C)]
struct ChunkHeader {
    size: u64,
    next_free: u64,
}

const CHUNK_HEADER_SIZE: usize = std::mem::size_of::<ChunkHeader>();

fn open_uuids() -> &'static Mutex<HashSet<u64>> {
    static SET: OnceLock<Mutex<HashSet<u64>>> = OnceLock::new();
    SET.get_or_init(|| Mutex::new(HashSet::new()))
}

/// A PMDK-style persistent memory pool.
pub struct PmdkPool {
    base: usize,
    size: usize,
    uuid: u64,
    pub(crate) tx_lock: Mutex<()>,
}

impl fmt::Debug for PmdkPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PmdkPool")
            .field("uuid", &format_args!("{:#x}", self.uuid))
            .field("size", &self.size)
            .finish()
    }
}

impl PmdkPool {
    /// Creates a new pool file of `size` bytes at `path`.
    pub fn create(path: impl AsRef<Path>, size: usize) -> Result<PmdkPool> {
        let size = align_up(size.max(HEADER_SIZE + LOG_REGION_SIZE + 64 * 1024), 4096);
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(path.as_ref())
            .map_err(|e| PmdkError::Io(e.to_string()))?;
        file.set_len(size as u64)
            .map_err(|e| PmdkError::Io(e.to_string()))?;
        let base = VaReservation::map_file_anywhere(&file, size, true)
            .map_err(|e| PmdkError::Io(e.to_string()))?;
        let uuid: u64 = rand::random::<u64>() | 1;
        let header = PoolHeader {
            magic: POOL_MAGIC,
            uuid,
            size: size as u64,
            root_off: 0,
            heap_start: (HEADER_SIZE + LOG_REGION_SIZE) as u64,
            heap_bump: (HEADER_SIZE + LOG_REGION_SIZE) as u64,
            free_list: 0,
        };
        // SAFETY: `base` is a fresh writable mapping of at least HEADER_SIZE.
        unsafe { std::ptr::write_unaligned(base as *mut PoolHeader, header) };
        persist::persist(base as *const u8, HEADER_SIZE);
        crate::tx::init_log(base);
        Self::register(base, size, uuid)
    }

    /// Opens an existing pool, running (application-dependent) recovery if
    /// an interrupted transaction is found.
    ///
    /// Fails with [`PmdkError::AlreadyOpen`] if a pool with the same UUID is
    /// already open in this process — this is the restriction that prevents
    /// PMDK applications from opening a pool and its clone simultaneously.
    pub fn open(path: impl AsRef<Path>) -> Result<PmdkPool> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path.as_ref())
            .map_err(|e| PmdkError::Io(e.to_string()))?;
        let size = file
            .metadata()
            .map_err(|e| PmdkError::Io(e.to_string()))?
            .len() as usize;
        let base = VaReservation::map_file_anywhere(&file, size, true)
            .map_err(|e| PmdkError::Io(e.to_string()))?;
        // SAFETY: mapping of at least HEADER_SIZE bytes (checked below).
        let header = unsafe { std::ptr::read_unaligned(base as *const PoolHeader) };
        if size < HEADER_SIZE + LOG_REGION_SIZE || header.magic != POOL_MAGIC {
            // SAFETY: mapping not published anywhere yet.
            unsafe { VaReservation::unmap_anywhere(base, size).ok() };
            return Err(PmdkError::BadPool("bad magic".into()));
        }
        let pool = Self::register(base, size, header.uuid)?;
        // PMDK-style recovery: happens only now, inside the application that
        // reopened the pool.
        crate::tx::recover(&pool);
        Ok(pool)
    }

    fn register(base: usize, size: usize, uuid: u64) -> Result<PmdkPool> {
        {
            let mut open = open_uuids().lock();
            if !open.insert(uuid) {
                // SAFETY: mapping not published.
                unsafe { VaReservation::unmap_anywhere(base, size).ok() };
                return Err(PmdkError::AlreadyOpen);
            }
        }
        pool_table().write().insert(uuid, base);
        Ok(PmdkPool {
            base,
            size,
            uuid,
            tx_lock: Mutex::new(()),
        })
    }

    /// The pool's UUID.
    pub fn uuid(&self) -> u64 {
        self.uuid
    }

    /// The pool's mapped base address (crate-internal).
    pub(crate) fn base(&self) -> usize {
        self.base
    }

    fn header(&self) -> PoolHeader {
        // SAFETY: the pool mapping is live for `self`'s lifetime.
        unsafe { std::ptr::read_unaligned(self.base as *const PoolHeader) }
    }

    fn write_header(&self, header: PoolHeader) {
        // SAFETY: as in `header`.
        unsafe { std::ptr::write_unaligned(self.base as *mut PoolHeader, header) };
        persist::persist(self.base as *const u8, std::mem::size_of::<PoolHeader>());
    }

    /// Translates a fat pointer belonging to this pool without the global
    /// table lookup (used internally).
    pub(crate) fn direct_local(&self, oid: PmdkOid) -> *mut u8 {
        (self.base + oid.off as usize) as *mut u8
    }

    /// Returns the pool's root object, or null if none was created.
    pub fn root<T>(&self) -> Toid<T> {
        let off = self.header().root_off;
        if off == 0 {
            Toid::null()
        } else {
            Toid::from_oid(PmdkOid {
                pool_id: self.uuid,
                off,
            })
        }
    }

    /// Runs a failure-atomic (undo-logged) transaction against this pool.
    pub fn tx<R>(&self, body: impl FnOnce(&mut PmdkTx<'_>) -> Result<R>) -> Result<R> {
        crate::tx::run_tx(self, body)
    }

    /// Allocates `size` bytes inside a transaction, returning a fat pointer.
    pub(crate) fn alloc_in_tx(&self, tx: &mut PmdkTx<'_>, size: usize) -> Result<PmdkOid> {
        let need = align_up(size.max(1) + CHUNK_HEADER_SIZE, ALLOC_ALIGN);
        let mut header = self.header();

        // First fit from the free list.
        let mut prev: u64 = 0;
        let mut cur = header.free_list;
        while cur != 0 {
            // SAFETY: free-list offsets were produced by this allocator and
            // stay within the pool.
            let chunk = unsafe {
                std::ptr::read_unaligned((self.base + cur as usize) as *const ChunkHeader)
            };
            if chunk.size as usize >= need {
                tx.log_range(self.base, std::mem::size_of::<PoolHeader>())?;
                if prev == 0 {
                    header.free_list = chunk.next_free;
                    self.write_header(header);
                } else {
                    // SAFETY: as above.
                    let prev_ptr = (self.base + prev as usize) as *mut ChunkHeader;
                    tx.log_range(prev_ptr as usize, CHUNK_HEADER_SIZE)?;
                    let mut prev_chunk = unsafe { std::ptr::read_unaligned(prev_ptr) };
                    prev_chunk.next_free = chunk.next_free;
                    unsafe { std::ptr::write_unaligned(prev_ptr, prev_chunk) };
                    persist::persist(prev_ptr as *const u8, CHUNK_HEADER_SIZE);
                }
                return Ok(PmdkOid {
                    pool_id: self.uuid,
                    off: cur + CHUNK_HEADER_SIZE as u64,
                });
            }
            prev = cur;
            cur = chunk.next_free;
        }

        // Bump allocation.
        let off = header.heap_bump;
        if off as usize + need > self.size {
            return Err(PmdkError::OutOfSpace);
        }
        tx.log_range(self.base, std::mem::size_of::<PoolHeader>())?;
        header.heap_bump = off + need as u64;
        self.write_header(header);
        let chunk_ptr = (self.base + off as usize) as *mut ChunkHeader;
        tx.log_range(chunk_ptr as usize, CHUNK_HEADER_SIZE)?;
        // SAFETY: `off + need <= size`, inside the mapping.
        unsafe {
            std::ptr::write_unaligned(
                chunk_ptr,
                ChunkHeader {
                    size: need as u64,
                    next_free: 0,
                },
            )
        };
        persist::persist(chunk_ptr as *const u8, CHUNK_HEADER_SIZE);
        Ok(PmdkOid {
            pool_id: self.uuid,
            off: off + CHUNK_HEADER_SIZE as u64,
        })
    }

    /// Frees an allocation inside a transaction.
    pub(crate) fn free_in_tx(&self, tx: &mut PmdkTx<'_>, oid: PmdkOid) -> Result<()> {
        if oid.is_null() {
            return Ok(());
        }
        let chunk_off = oid.off - CHUNK_HEADER_SIZE as u64;
        let chunk_ptr = (self.base + chunk_off as usize) as *mut ChunkHeader;
        let mut header = self.header();
        tx.log_range(self.base, std::mem::size_of::<PoolHeader>())?;
        tx.log_range(chunk_ptr as usize, CHUNK_HEADER_SIZE)?;
        // SAFETY: the offset was produced by `alloc_in_tx`.
        let mut chunk = unsafe { std::ptr::read_unaligned(chunk_ptr) };
        chunk.next_free = header.free_list;
        unsafe { std::ptr::write_unaligned(chunk_ptr, chunk) };
        persist::persist(chunk_ptr as *const u8, CHUNK_HEADER_SIZE);
        header.free_list = chunk_off;
        self.write_header(header);
        Ok(())
    }

    /// Sets the pool's root object inside a transaction.
    pub(crate) fn set_root_in_tx(&self, tx: &mut PmdkTx<'_>, oid: PmdkOid) -> Result<()> {
        let mut header = self.header();
        tx.log_range(self.base, std::mem::size_of::<PoolHeader>())?;
        header.root_off = oid.off;
        self.write_header(header);
        Ok(())
    }
}

impl Drop for PmdkPool {
    fn drop(&mut self) {
        pool_table().write().remove(&self.uuid);
        open_uuids().lock().remove(&self.uuid);
        // SAFETY: the pool table no longer references the mapping and the
        // owner is being dropped, so no fat-pointer translation can reach it.
        unsafe {
            let _ = VaReservation::unmap_anywhere(self.base, self.size);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[repr(C)]
    struct Record {
        value: u64,
        next: PmdkOid,
    }

    #[test]
    fn create_write_reopen_reads_back() {
        let tmp = tempfile::tempdir().unwrap();
        let path = tmp.path().join("pool.pmdk");
        {
            let pool = PmdkPool::create(&path, 1 << 20).unwrap();
            pool.tx(|tx| {
                let root: Toid<Record> = tx.alloc(Record {
                    value: 7,
                    next: PmdkOid::NULL,
                })?;
                tx.set_root(root)?;
                Ok(())
            })
            .unwrap();
        }
        let pool = PmdkPool::open(&path).unwrap();
        let root: Toid<Record> = pool.root();
        assert!(!root.is_null());
        // SAFETY: pool is open and root refers to a Record.
        assert_eq!(unsafe { root.as_ref() }.value, 7);
    }

    #[test]
    fn a_pool_cannot_be_opened_twice_and_clones_conflict() {
        let tmp = tempfile::tempdir().unwrap();
        let path = tmp.path().join("orig.pmdk");
        let pool = PmdkPool::create(&path, 1 << 20).unwrap();
        // Same file again: rejected.
        assert!(matches!(PmdkPool::open(&path), Err(PmdkError::AlreadyOpen)));
        // A byte-for-byte clone carries the same UUID: also rejected while
        // the original is open (the restriction Puddles removes).
        let clone_path = tmp.path().join("clone.pmdk");
        std::fs::copy(&path, &clone_path).unwrap();
        assert!(matches!(
            PmdkPool::open(&clone_path),
            Err(PmdkError::AlreadyOpen)
        ));
        drop(pool);
        // Once the original is closed the clone can be opened.
        let clone = PmdkPool::open(&clone_path).unwrap();
        drop(clone);
    }

    #[test]
    fn aborted_transactions_roll_back() {
        let tmp = tempfile::tempdir().unwrap();
        let path = tmp.path().join("abort.pmdk");
        let pool = PmdkPool::create(&path, 1 << 20).unwrap();
        pool.tx(|tx| {
            let root: Toid<Record> = tx.alloc(Record {
                value: 1,
                next: PmdkOid::NULL,
            })?;
            tx.set_root(root)?;
            Ok(())
        })
        .unwrap();
        let root: Toid<Record> = pool.root();
        let err = pool
            .tx(|tx| {
                // SAFETY: root is live and the pool is open.
                let record = unsafe { root.as_mut() };
                tx.add(record)?;
                record.value = 999;
                Err::<(), _>(PmdkError::Aborted("no".into()))
            })
            .unwrap_err();
        assert!(matches!(err, PmdkError::Aborted(_)));
        // SAFETY: as above.
        assert_eq!(unsafe { root.as_ref() }.value, 1);
    }

    #[test]
    fn free_list_reuses_space() {
        let tmp = tempfile::tempdir().unwrap();
        let path = tmp.path().join("free.pmdk");
        let pool = PmdkPool::create(&path, 1 << 20).unwrap();
        let first = pool
            .tx(|tx| {
                let a: Toid<[u8; 512]> = tx.alloc([0u8; 512])?;
                tx.free(a)?;
                let b: Toid<[u8; 512]> = tx.alloc([1u8; 512])?;
                Ok(b.oid.off)
            })
            .unwrap();
        let second = pool
            .tx(|tx| {
                let c: Toid<[u8; 512]> = tx.alloc([2u8; 512])?;
                Ok(c.oid.off)
            })
            .unwrap();
        assert_ne!(first, second);
    }
}
