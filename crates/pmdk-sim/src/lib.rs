//! `pmdk-sim`: a clean-room, simplified PMDK-style baseline.
//!
//! The Puddles paper compares against PMDK (libpmemobj), whose defining
//! architectural choices are:
//!
//! * **fat pointers**: a persistent pointer is a 128-bit `(pool uuid,
//!   offset)` pair; every dereference translates it through a process-global
//!   pool table (`pmemobj_direct`);
//! * **per-pool isolation**: pointers cannot cross pools, a pool cannot be
//!   opened twice (the UUID is registered on open), and a cloned pool file
//!   still carries the old UUID so the clone cannot be opened alongside the
//!   original;
//! * **application-dependent recovery**: the undo log is replayed only when
//!   the same pool is reopened (with write access) by some application.
//!
//! This crate reproduces exactly those choices (the properties §2 of the
//! paper criticizes) on top of the same `puddles-pmem` substrate used by the
//! Puddles implementation, so the benchmark comparisons isolate the
//! architectural differences rather than implementation quality.

pub mod oid;
pub mod pool;
pub mod tx;

pub use oid::{PmdkOid, Toid};
pub use pool::{PmdkError, PmdkPool, Result};
pub use tx::PmdkTx;
