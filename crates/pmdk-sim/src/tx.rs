//! PMDK-style undo-logged transactions with application-dependent recovery.
//!
//! The undo log lives inside the pool file and records pool-relative
//! offsets. It is replayed only when the *application* reopens the pool
//! ([`crate::PmdkPool::open`]) — if the writer never comes back, or lost
//! write access, the data stays inconsistent. This is precisely the
//! behaviour the Puddles daemon removes.

use crate::oid::{PmdkOid, Toid};
use crate::pool::{PmdkError, PmdkPool, Result};
use puddles_pmem::persist;

/// Offset of the undo-log region within a pool file.
pub(crate) const LOG_REGION_OFF: usize = 4096;
/// Size of the undo-log region.
pub(crate) const LOG_REGION_SIZE: usize = 1 << 20;

const LOG_DATA_OFF: usize = LOG_REGION_OFF + std::mem::size_of::<UndoLogHeader>();

#[derive(Debug, Clone, Copy)]
#[repr(C)]
struct UndoLogHeader {
    /// 1 while a transaction is in flight, 0 otherwise.
    active: u64,
    /// Number of entries appended.
    entries: u64,
    /// Offset (within the log region data area) of the next free byte.
    head: u64,
}

#[derive(Debug, Clone, Copy)]
#[repr(C)]
struct UndoEntryHeader {
    /// Pool-relative offset of the saved range.
    off: u64,
    /// Length of the saved range.
    len: u64,
}

/// Initializes the undo-log region of a freshly created pool.
pub(crate) fn init_log(base: usize) {
    let header = UndoLogHeader {
        active: 0,
        entries: 0,
        head: 0,
    };
    // SAFETY: called on a freshly mapped pool of at least
    // LOG_REGION_OFF + LOG_REGION_SIZE bytes.
    unsafe { std::ptr::write_unaligned((base + LOG_REGION_OFF) as *mut UndoLogHeader, header) };
    persist::persist(
        (base + LOG_REGION_OFF) as *const u8,
        std::mem::size_of::<UndoLogHeader>(),
    );
}

fn read_log_header(base: usize) -> UndoLogHeader {
    // SAFETY: pool mappings always cover the log region.
    unsafe { std::ptr::read_unaligned((base + LOG_REGION_OFF) as *const UndoLogHeader) }
}

fn write_log_header(base: usize, header: UndoLogHeader) {
    // SAFETY: as above.
    unsafe { std::ptr::write_unaligned((base + LOG_REGION_OFF) as *mut UndoLogHeader, header) };
    persist::persist(
        (base + LOG_REGION_OFF) as *const u8,
        std::mem::size_of::<UndoLogHeader>(),
    );
}

/// Rolls back an interrupted transaction, if any. Called from
/// [`crate::PmdkPool::open`] — recovery is the application's job here.
pub(crate) fn recover(pool: &PmdkPool) {
    let base = pool.base();
    let header = read_log_header(base);
    if header.active == 0 {
        return;
    }
    apply_undo(base, &header);
    write_log_header(
        base,
        UndoLogHeader {
            active: 0,
            entries: 0,
            head: 0,
        },
    );
}

fn apply_undo(base: usize, header: &UndoLogHeader) {
    // Collect entries in append order, then apply them in reverse.
    let mut entries = Vec::with_capacity(header.entries as usize);
    let mut cursor = 0u64;
    for _ in 0..header.entries {
        let entry_addr = base + LOG_DATA_OFF + cursor as usize;
        // SAFETY: entries were appended within the log region by `log_range`.
        let entry = unsafe { std::ptr::read_unaligned(entry_addr as *const UndoEntryHeader) };
        entries.push((entry, entry_addr + std::mem::size_of::<UndoEntryHeader>()));
        cursor += (std::mem::size_of::<UndoEntryHeader>() + entry.len as usize) as u64;
        cursor = (cursor + 7) & !7;
    }
    for (entry, data_addr) in entries.into_iter().rev() {
        // SAFETY: both source (log data) and destination (pool offset) lie
        // inside the pool mapping.
        unsafe {
            std::ptr::copy_nonoverlapping(
                data_addr as *const u8,
                (base + entry.off as usize) as *mut u8,
                entry.len as usize,
            );
        }
        persist::flush((base + entry.off as usize) as *const u8, entry.len as usize);
    }
    persist::sfence();
}

/// An open PMDK-style transaction.
pub struct PmdkTx<'p> {
    pool: &'p PmdkPool,
    undo_ranges: Vec<(u64, u64)>,
}

impl<'p> PmdkTx<'p> {
    /// Undo-logs the pool-internal range `[addr, addr + len)` (addresses are
    /// converted to pool offsets, as PMDK does).
    pub fn log_range(&mut self, addr: usize, len: usize) -> Result<()> {
        let base = self.pool.base();
        let off = (addr - base) as u64;
        let mut header = read_log_header(base);
        let entry_size = std::mem::size_of::<UndoEntryHeader>() + len;
        let entry_off = header.head as usize;
        if LOG_DATA_OFF + entry_off + entry_size > LOG_REGION_OFF + LOG_REGION_SIZE {
            return Err(PmdkError::OutOfSpace);
        }
        let entry_addr = base + LOG_DATA_OFF + entry_off;
        // SAFETY: the entry lies inside the log region (checked above); the
        // source range lies inside the pool mapping per the caller.
        unsafe {
            std::ptr::write_unaligned(
                entry_addr as *mut UndoEntryHeader,
                UndoEntryHeader {
                    off,
                    len: len as u64,
                },
            );
            std::ptr::copy_nonoverlapping(
                addr as *const u8,
                (entry_addr + std::mem::size_of::<UndoEntryHeader>()) as *mut u8,
                len,
            );
        }
        persist::flush(entry_addr as *const u8, entry_size);
        persist::sfence();
        header.entries += 1;
        header.head = (((entry_off + entry_size) as u64) + 7) & !7;
        write_log_header(base, header);
        self.undo_ranges.push((off, len as u64));
        Ok(())
    }

    /// Undo-logs an object before the caller modifies it (`TX_ADD`).
    pub fn add<T>(&mut self, target: &T) -> Result<()> {
        self.log_range(target as *const T as usize, std::mem::size_of::<T>())
    }

    /// Undo-logs a typed target and stores `value` into it.
    pub fn set<T: Copy>(&mut self, target: &mut T, value: T) -> Result<()> {
        self.add(&*target)?;
        *target = value;
        Ok(())
    }

    /// Allocates and initializes an object, returning its typed fat pointer.
    pub fn alloc<T>(&mut self, value: T) -> Result<Toid<T>> {
        let oid = self.alloc_raw(std::mem::size_of::<T>())?;
        let ptr = self.pool.direct_local(oid) as *mut T;
        // SAFETY: fresh allocation of `size_of::<T>()` bytes.
        unsafe { std::ptr::write(ptr, value) };
        persist::persist(ptr as *const u8, std::mem::size_of::<T>());
        Ok(Toid::from_oid(oid))
    }

    /// Allocates `size` raw bytes (`TX_ALLOC`).
    pub fn alloc_raw(&mut self, size: usize) -> Result<PmdkOid> {
        let pool = self.pool;
        pool.alloc_in_tx(self, size)
    }

    /// Frees an allocation (`TX_FREE`).
    pub fn free<T>(&mut self, toid: Toid<T>) -> Result<()> {
        let pool = self.pool;
        pool.free_in_tx(self, toid.oid)
    }

    /// Sets the pool's root object.
    pub fn set_root<T>(&mut self, toid: Toid<T>) -> Result<()> {
        let pool = self.pool;
        pool.set_root_in_tx(self, toid.oid)
    }

    fn commit(&mut self) {
        let base = self.pool.base();
        // Flush every undo-logged location, then retire the log.
        for &(off, len) in &self.undo_ranges {
            persist::flush((base + off as usize) as *const u8, len as usize);
        }
        persist::sfence();
        write_log_header(
            base,
            UndoLogHeader {
                active: 0,
                entries: 0,
                head: 0,
            },
        );
    }

    fn abort(&mut self) {
        let base = self.pool.base();
        let header = read_log_header(base);
        apply_undo(base, &header);
        write_log_header(
            base,
            UndoLogHeader {
                active: 0,
                entries: 0,
                head: 0,
            },
        );
    }
}

/// Runs `body` inside a transaction on `pool`.
pub(crate) fn run_tx<R>(
    pool: &PmdkPool,
    body: impl FnOnce(&mut PmdkTx<'_>) -> Result<R>,
) -> Result<R> {
    let _guard = pool.tx_lock.lock();
    let base = pool.base();
    write_log_header(
        base,
        UndoLogHeader {
            active: 1,
            entries: 0,
            head: 0,
        },
    );
    let mut tx = PmdkTx {
        pool,
        undo_ranges: Vec::new(),
    };
    match body(&mut tx) {
        Ok(value) => {
            tx.commit();
            Ok(value)
        }
        Err(e) => {
            tx.abort();
            Err(e)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interrupted_transaction_is_rolled_back_only_on_reopen() {
        let tmp = tempfile::tempdir().unwrap();
        let path = tmp.path().join("recover.pmdk");
        {
            let pool = PmdkPool::create(&path, 1 << 20).unwrap();
            let root_off = pool
                .tx(|tx| {
                    let root: Toid<u64> = tx.alloc(42u64)?;
                    tx.set_root(root)?;
                    Ok(root.oid.off)
                })
                .unwrap();
            // Simulate a crash mid-transaction: log the value, overwrite it,
            // and "lose power" before commit (bypass run_tx's commit).
            let base = pool.base();
            write_log_header(
                base,
                UndoLogHeader {
                    active: 1,
                    entries: 0,
                    head: 0,
                },
            );
            let mut tx = PmdkTx {
                pool: &pool,
                undo_ranges: Vec::new(),
            };
            let addr = base + root_off as usize;
            tx.log_range(addr, 8).unwrap();
            // SAFETY: the root object lies at `addr` inside the mapping.
            unsafe { std::ptr::write_unaligned(addr as *mut u64, 7777) };
            std::mem::forget(tx);
            // Value is now inconsistent on "PM".
            // SAFETY: as above.
            assert_eq!(
                unsafe { std::ptr::read_unaligned(addr as *const u64) },
                7777
            );
            drop(pool);
        }
        // Recovery happens only because the application reopens the pool.
        let pool = PmdkPool::open(&path).unwrap();
        let root: Toid<u64> = pool.root();
        // SAFETY: pool open, root live.
        assert_eq!(unsafe { *root.as_ref() }, 42);
    }
}
