//! Fat persistent pointers: `(pool id, offset)` pairs translated on every
//! dereference (PMDK's `PMEMoid` / `TOID`).

use parking_lot::RwLock;
use std::collections::HashMap;
use std::marker::PhantomData;
use std::sync::OnceLock;

/// The process-global pool table used to translate fat pointers
/// (the analogue of PMDK's cached pool set).
pub(crate) fn pool_table() -> &'static RwLock<HashMap<u64, usize>> {
    static TABLE: OnceLock<RwLock<HashMap<u64, usize>>> = OnceLock::new();
    TABLE.get_or_init(|| RwLock::new(HashMap::new()))
}

/// A fat persistent pointer: 16 bytes of (pool id, offset).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(C)]
pub struct PmdkOid {
    /// Identifier of the pool the target lives in.
    pub pool_id: u64,
    /// Byte offset of the target within the pool.
    pub off: u64,
}

impl PmdkOid {
    /// The null fat pointer.
    pub const NULL: PmdkOid = PmdkOid { pool_id: 0, off: 0 };

    /// Returns `true` if this is the null pointer.
    pub fn is_null(self) -> bool {
        self.off == 0
    }

    /// Translates the fat pointer to a native address
    /// (the analogue of `pmemobj_direct`): one lock acquisition plus a hash
    /// lookup per dereference — the cost the paper's Fig. 1 measures.
    #[inline]
    pub fn direct(self) -> *mut u8 {
        if self.is_null() {
            return std::ptr::null_mut();
        }
        let table = pool_table().read();
        match table.get(&self.pool_id) {
            Some(&base) => (base + self.off as usize) as *mut u8,
            None => std::ptr::null_mut(),
        }
    }
}

/// A typed fat pointer (the analogue of PMDK's `TOID(T)`).
#[repr(C)]
pub struct Toid<T> {
    /// The underlying fat pointer.
    pub oid: PmdkOid,
    _marker: PhantomData<T>,
}

impl<T> Toid<T> {
    /// The null typed pointer.
    pub const fn null() -> Self {
        Toid {
            oid: PmdkOid { pool_id: 0, off: 0 },
            _marker: PhantomData,
        }
    }

    /// Wraps a raw fat pointer.
    pub const fn from_oid(oid: PmdkOid) -> Self {
        Toid {
            oid,
            _marker: PhantomData,
        }
    }

    /// Returns `true` if this is the null pointer.
    pub fn is_null(&self) -> bool {
        self.oid.is_null()
    }

    /// Translates to a typed native pointer (`D_RW`).
    #[inline]
    pub fn direct(&self) -> *mut T {
        self.oid.direct() as *mut T
    }

    /// Dereferences the pointer.
    ///
    /// # Safety
    ///
    /// The pool must be open, the offset must refer to a live `T`, and the
    /// reference must not outlive the pool mapping or alias a `&mut`.
    pub unsafe fn as_ref<'a>(&self) -> &'a T {
        // SAFETY: forwarded from the caller.
        unsafe { &*self.direct() }
    }

    /// Mutably dereferences the pointer.
    ///
    /// # Safety
    ///
    /// As [`Toid::as_ref`], plus no other reference to the target may exist.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn as_mut<'a>(&self) -> &'a mut T {
        // SAFETY: forwarded from the caller.
        unsafe { &mut *self.direct() }
    }
}

impl<T> Clone for Toid<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Toid<T> {}
impl<T> Default for Toid<T> {
    fn default() -> Self {
        Self::null()
    }
}
impl<T> PartialEq for Toid<T> {
    fn eq(&self, other: &Self) -> bool {
        self.oid == other.oid
    }
}
impl<T> Eq for Toid<T> {}

impl<T> std::fmt::Debug for Toid<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Toid({:#x}:{:#x})", self.oid.pool_id, self.oid.off)
    }
}

// SAFETY: a Toid is just (id, offset); dereference safety is decided at the
// unsafe call sites, as with PmPtr.
unsafe impl<T> Send for Toid<T> {}
// SAFETY: see above.
unsafe impl<T> Sync for Toid<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oid_is_16_bytes_twice_the_size_of_a_native_pointer() {
        assert_eq!(std::mem::size_of::<PmdkOid>(), 16);
        assert_eq!(std::mem::size_of::<Toid<u64>>(), 16);
    }

    #[test]
    fn null_oids_translate_to_null() {
        assert!(PmdkOid::NULL.is_null());
        assert!(PmdkOid::NULL.direct().is_null());
        assert!(Toid::<u32>::null().direct().is_null());
    }

    #[test]
    fn unknown_pool_translates_to_null() {
        let oid = PmdkOid {
            pool_id: 0xdead_beef,
            off: 64,
        };
        assert!(oid.direct().is_null());
    }
}
