//! Property tests for the observability histograms (`puddles_pmem::obs`):
//! sharding must be invisible (merging per-shard snapshots reports the
//! same percentiles as one recorder seeing every sample), and the
//! log-linear bucketing must be a deterministic pure function of the
//! value — these two properties are what make `GetMetrics` snapshots
//! mergeable across threads and comparable across runs.

use proptest::prelude::*;
use puddles_pmem::obs::{bucket_bound, bucket_index, Histogram, ShardedHistogram, NUM_BUCKETS};

proptest! {
    /// Recording a sample set through shards (samples spread round-robin
    /// over independent histograms, merged at read time) reports exactly
    /// the percentiles, count, sum, and max of a single histogram that
    /// saw every sample.
    #[test]
    fn merged_shards_match_single_recorder(
        // Values stay below 2^40 so the 400-sample sum cannot overflow:
        // the recorder's atomic sum wraps while merge saturates, and the
        // property is about bucketing, not overflow semantics.
        input in (proptest::collection::vec(0u64..1 << 40, 1..400), 2usize..6)
    ) {
        let (samples, shards) = input;
        let single = Histogram::new();
        let parts: Vec<Histogram> = (0..shards).map(|_| Histogram::new()).collect();
        for (i, &v) in samples.iter().enumerate() {
            single.record(v);
            parts[i % shards].record(v);
        }
        let expect = single.snapshot();
        let mut merged = parts[0].snapshot();
        for part in &parts[1..] {
            merged.merge(&part.snapshot());
        }
        prop_assert_eq!(merged.count, expect.count);
        prop_assert_eq!(merged.sum, expect.sum);
        prop_assert_eq!(merged.max, expect.max);
        for p in [0.0, 25.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
            prop_assert_eq!(merged.percentile(p), expect.percentile(p));
        }
    }

    /// `ShardedHistogram` (thread-slot sharding) agrees with a plain
    /// recorder when driven from one thread — the same property as
    /// above, through the production wrapper.
    #[test]
    fn sharded_wrapper_matches_plain(
        samples in proptest::collection::vec(0u64..1_000_000_000u64, 1..200)
    ) {
        let sharded = ShardedHistogram::new();
        let plain = Histogram::new();
        for &v in &samples {
            sharded.record(v);
            plain.record(v);
        }
        let a = sharded.snapshot();
        let b = plain.snapshot();
        prop_assert_eq!(a.count, b.count);
        prop_assert_eq!(a.sum, b.sum);
        prop_assert_eq!(a.max, b.max);
        for p in [50.0, 90.0, 99.0] {
            prop_assert_eq!(a.percentile(p), b.percentile(p));
        }
    }

    /// Bucketing is deterministic and self-consistent: every value lands
    /// in a valid bucket whose upper bound is at or above the value, and
    /// the bound of the *previous* bucket is below it (the value could
    /// not fit a finer bucket).
    #[test]
    fn bucket_boundaries_are_deterministic(value in 0u64..u64::MAX) {
        let index = bucket_index(value);
        prop_assert_eq!(index, bucket_index(value), "bucketing must be pure");
        prop_assert!(index < NUM_BUCKETS);
        prop_assert!(bucket_bound(index) >= value);
        if index > 0 {
            prop_assert!(bucket_bound(index - 1) < value);
        }
        // Bounds are strictly monotone, so percentile reconstruction maps
        // each bucket to a unique representative value.
        if index + 1 < NUM_BUCKETS {
            prop_assert!(bucket_bound(index + 1) > bucket_bound(index));
        }
    }

    /// A single-sample histogram reports the sample itself at every
    /// percentile (the bucket bound clamped to the exact observed max),
    /// and the bound's reconstruction error is bounded by the bucket
    /// width (≤ 1/16 relative).
    #[test]
    fn single_sample_reconstruction(value in 1u64..u64::MAX / 2) {
        let h = Histogram::new();
        h.record(value);
        let snap = h.snapshot();
        let bound = bucket_bound(bucket_index(value));
        prop_assert_eq!(snap.percentile(50.0), value);
        prop_assert_eq!(snap.percentile(100.0), value);
        prop_assert!(bound >= value);
        // Log-linear guarantee: the bound overshoots by at most one
        // sub-bucket width (value/16, plus rounding slack on tiny values).
        let overshoot = bound - value;
        prop_assert!(overshoot <= value / 16 + 1, "overshoot {overshoot} for {value}");
    }
}
