//! Seeded fault-injection plane for torture testing.
//!
//! A [`FaultPlan`] is a deterministic oracle the I/O layers consult before
//! risky operations: metadata writes ([`FaultSite::MetaWrite`]), WAL batch
//! writes and syncs ([`FaultSite::WalWrite`], [`FaultSite::WalSync`]),
//! puddle-file creation/deletion, and per-connection socket events. Every
//! decision is a pure function of `(seed, site, per-site call counter)`, so
//! a trial that replays the same sequence of calls at a site sees the same
//! faults — the reproducibility contract behind `TORTURE_SEED`.
//!
//! The plan records every injected fault in an in-memory **fault trace**
//! (`"wal.write#12: short 512/4096"`), which the torture harness prints on
//! failure so a red trial is diagnosable from its seed alone.
//!
//! Plans are *per daemon instance*, not process-global: a plan rides an
//! `Arc` inside [`crate::pmdir::PmDir`] (which is `Clone`), so parallel
//! torture trials with different seeds never see each other's faults. Code
//! paths that never attach a plan pay one `Option` check.

use parking_lot::Mutex;
use std::io;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// `errno` for an injected I/O error.
pub const EIO: i32 = 5;
/// `errno` for an injected out-of-space condition.
pub const ENOSPC: i32 = 28;

/// Bounded retry budget for transient storage errors (per operation):
/// enough to ride out injected fault bursts at torture rates, small enough
/// that a genuinely failing device surfaces an error promptly.
pub const MAX_IO_RETRIES: usize = 4;

/// Counters for the robustness surfaces, shared (via `Arc`) by every clone
/// of a [`crate::pmdir::PmDir`] and the layers deriving file access from
/// it; surfaced through the daemon's `Stats` response.
#[derive(Debug, Default)]
pub struct IoStats {
    /// Storage operations retried after a transient error.
    pub io_retries: AtomicU64,
    /// Transient storage errors observed (each retry attempt counts one).
    pub transient_io_errors: AtomicU64,
    /// Operations refused with a typed out-of-space error.
    pub enospc_rejections: AtomicU64,
}

impl IoStats {
    /// Records one transient error about to be retried.
    pub fn note_retry(&self) {
        self.transient_io_errors.fetch_add(1, Ordering::Relaxed);
        self.io_retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a transient error that exhausted its retry budget.
    pub fn note_transient(&self) {
        self.transient_io_errors.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a typed out-of-space rejection.
    pub fn note_enospc(&self) {
        self.enospc_rejections.fetch_add(1, Ordering::Relaxed);
    }

    /// Storage operations retried after a transient error.
    pub fn io_retries(&self) -> u64 {
        self.io_retries.load(Ordering::Relaxed)
    }

    /// Transient storage errors observed.
    pub fn transient_io_errors(&self) -> u64 {
        self.transient_io_errors.load(Ordering::Relaxed)
    }

    /// Operations refused with a typed out-of-space error.
    pub fn enospc_rejections(&self) -> u64 {
        self.enospc_rejections.load(Ordering::Relaxed)
    }
}

/// Places in the stack where a [`FaultPlan`] may inject a fault. Each site
/// has its own deterministic decision stream (a per-site call counter mixed
/// into the seed), so faults at one site never perturb another's schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultSite {
    /// The metadata WAL's group-commit batch write.
    WalWrite,
    /// The metadata WAL's batch `fsync`.
    WalSync,
    /// Atomic metadata-file replacement (`PmDir::write_meta`).
    MetaWrite,
    /// Puddle-file creation (allocate + zero-fill + sync).
    PuddleCreate,
    /// Puddle-file deletion.
    PuddleDelete,
    /// Per-event socket I/O on a daemon connection (reset injection).
    ConnIo,
}

const SITE_COUNT: usize = 6;

impl FaultSite {
    fn index(self) -> usize {
        match self {
            FaultSite::WalWrite => 0,
            FaultSite::WalSync => 1,
            FaultSite::MetaWrite => 2,
            FaultSite::PuddleCreate => 3,
            FaultSite::PuddleDelete => 4,
            FaultSite::ConnIo => 5,
        }
    }

    /// Stable name used in fault-trace lines.
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::WalWrite => "wal.write",
            FaultSite::WalSync => "wal.sync",
            FaultSite::MetaWrite => "meta.write",
            FaultSite::PuddleCreate => "puddle.create",
            FaultSite::PuddleDelete => "puddle.delete",
            FaultSite::ConnIo => "conn.io",
        }
    }
}

/// Fault probabilities in parts-per-million of consulted operations.
/// All-zero (the default) injects nothing.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultProfile {
    /// A write call fails with `EIO` after writing nothing.
    pub write_eio_ppm: u32,
    /// A write persists only a prefix, then fails with `EIO` (torn write).
    pub write_short_ppm: u32,
    /// A write fails with `ENOSPC` (non-transient; must surface typed).
    pub write_enospc_ppm: u32,
    /// An `fsync` fails with `EIO`.
    pub sync_eio_ppm: u32,
    /// An `fsync` silently does nothing (dropped sync; trace-visible only —
    /// without real power loss the page cache still holds the bytes).
    pub sync_drop_ppm: u32,
    /// A connection is reset mid-stream.
    pub conn_reset_ppm: u32,
}

impl FaultProfile {
    /// A profile every component is expected to *absorb*: transient write
    /// and sync errors plus connection resets, but no `ENOSPC` (which is
    /// allowed to surface as a typed error).
    pub fn transient(per_million: u32) -> FaultProfile {
        FaultProfile {
            write_eio_ppm: per_million,
            write_short_ppm: per_million,
            write_enospc_ppm: 0,
            sync_eio_ppm: per_million,
            sync_drop_ppm: per_million / 2,
            conn_reset_ppm: per_million,
        }
    }
}

/// What an injected write does instead of writing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// Fail with `EIO`, nothing written.
    Eio,
    /// Persist exactly this many prefix bytes, then fail with `EIO`.
    Short(usize),
    /// Fail with `ENOSPC`.
    Enospc,
}

/// What an injected sync does instead of syncing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncFault {
    /// Fail with `EIO`.
    Eio,
    /// Report success without syncing.
    Dropped,
}

/// One seeded fault schedule plus its trace. See the module docs.
#[derive(Debug)]
pub struct FaultPlan {
    seed: u64,
    profile: FaultProfile,
    counters: [AtomicU64; SITE_COUNT],
    injected: AtomicU64,
    enabled: AtomicBool,
    trace: Mutex<Vec<String>>,
    /// Optional observability hub: every injection also lands in its trace
    /// ring (as a `fault` event), so a torture timeline interleaves faults
    /// with the requests and WAL commits they perturbed.
    obs: Mutex<Option<Arc<crate::obs::Metrics>>>,
}

impl FaultPlan {
    /// Creates an enabled plan for `seed` with the given probabilities.
    pub fn new(seed: u64, profile: FaultProfile) -> Arc<FaultPlan> {
        Arc::new(FaultPlan {
            seed,
            profile,
            counters: Default::default(),
            injected: AtomicU64::new(0),
            enabled: AtomicBool::new(true),
            trace: Mutex::new(Vec::new()),
            obs: Mutex::new(None),
        })
    }

    /// Mirrors every future injection into `obs`'s trace ring (idempotent;
    /// the daemon re-attaches the same hub across torture restarts).
    pub fn attach_obs(&self, obs: Arc<crate::obs::Metrics>) {
        *self.obs.lock() = Some(obs);
    }

    /// The seed this plan's schedule derives from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Pauses (`false`) or resumes (`true`) injection. The torture harness
    /// disables the plan during recovery/verification phases so invariant
    /// checks observe the daemon, not the injector.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::SeqCst);
    }

    /// Total faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// The fault trace: one line per injected fault, in injection order.
    pub fn trace(&self) -> Vec<String> {
        self.trace.lock().clone()
    }

    /// Draws this site's next decision value in `0..1_000_000`, returning
    /// `(call_number, draw)`.
    fn draw(&self, site: FaultSite) -> (u64, u64) {
        let n = self.counters[site.index()].fetch_add(1, Ordering::Relaxed);
        let mixed =
            splitmix64(self.seed ^ (site.index() as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ n);
        (n, mixed % 1_000_000)
    }

    fn record(&self, site: FaultSite, n: u64, what: &str) {
        self.injected.fetch_add(1, Ordering::Relaxed);
        self.trace
            .lock()
            .push(format!("{}#{n}: {what}", site.name()));
        if let Some(obs) = self.obs.lock().as_ref() {
            obs.trace(crate::obs::TraceEventKind::Fault, site.name(), n, 0);
        }
    }

    /// Consults the schedule before a write of `len` bytes at `site`.
    pub fn on_write(&self, site: FaultSite, len: usize) -> Option<WriteFault> {
        if !self.enabled.load(Ordering::Relaxed) {
            return None;
        }
        let p = &self.profile;
        let (n, r) = self.draw(site);
        let mut bound = p.write_eio_ppm as u64;
        if r < bound {
            self.record(site, n, "eio");
            return Some(WriteFault::Eio);
        }
        bound += p.write_short_ppm as u64;
        if r < bound {
            // A second mix picks the torn prefix length (strictly short).
            let keep = if len == 0 {
                0
            } else {
                (splitmix64(r ^ n ^ 0xdead_beef) as usize) % len
            };
            self.record(site, n, &format!("short {keep}/{len}"));
            return Some(WriteFault::Short(keep));
        }
        bound += p.write_enospc_ppm as u64;
        if r < bound {
            self.record(site, n, "enospc");
            return Some(WriteFault::Enospc);
        }
        None
    }

    /// Consults the schedule before an `fsync` at `site`.
    pub fn on_sync(&self, site: FaultSite) -> Option<SyncFault> {
        if !self.enabled.load(Ordering::Relaxed) {
            return None;
        }
        let p = &self.profile;
        let (n, r) = self.draw(site);
        if r < p.sync_eio_ppm as u64 {
            self.record(site, n, "sync-eio");
            return Some(SyncFault::Eio);
        }
        if r < (p.sync_eio_ppm + p.sync_drop_ppm) as u64 {
            self.record(site, n, "sync-dropped");
            return Some(SyncFault::Dropped);
        }
        None
    }

    /// Whether to reset a daemon connection at this socket event.
    pub fn on_conn_event(&self) -> bool {
        if !self.enabled.load(Ordering::Relaxed) {
            return false;
        }
        let (n, r) = self.draw(FaultSite::ConnIo);
        if r < self.profile.conn_reset_ppm as u64 {
            self.record(FaultSite::ConnIo, n, "reset");
            return true;
        }
        false
    }
}

/// The injected transient I/O error.
pub fn eio(site: FaultSite) -> io::Error {
    io::Error::new(
        io::Error::from_raw_os_error(EIO).kind(),
        format!("injected EIO at {}", site.name()),
    )
}

/// The injected out-of-space error. Carries the real `ENOSPC` errno so
/// [`is_enospc`] classifies injected and genuine exhaustion identically.
pub fn enospc() -> io::Error {
    io::Error::from_raw_os_error(ENOSPC)
}

/// `true` for out-of-space failures (injected or genuine). These must
/// surface as a typed error — retrying cannot create free space.
pub fn is_enospc(e: &io::Error) -> bool {
    e.raw_os_error() == Some(ENOSPC)
}

/// `true` for storage-level failures worth a bounded retry: `EIO` (the
/// plane's transient write/sync fault, and the kind real devices return for
/// recoverable media hiccups) and `Interrupted`. `ENOSPC` is excluded.
pub fn is_transient_io(e: &io::Error) -> bool {
    if is_enospc(e) {
        return false;
    }
    e.raw_os_error() == Some(EIO)
        || e.kind() == io::ErrorKind::Interrupted
        || e.to_string().contains("injected EIO")
}

/// SplitMix64: the standard 64-bit mixer (public-domain constants); good
/// avalanche from sequential inputs, no state, no dependencies.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy() -> FaultProfile {
        FaultProfile::transient(200_000) // 20% per class: plenty of hits
    }

    #[test]
    fn disabled_plan_injects_nothing() {
        let plan = FaultPlan::new(7, noisy());
        plan.set_enabled(false);
        for _ in 0..1000 {
            assert!(plan.on_write(FaultSite::WalWrite, 4096).is_none());
            assert!(plan.on_sync(FaultSite::WalSync).is_none());
            assert!(!plan.on_conn_event());
        }
        assert_eq!(plan.injected(), 0);
        assert!(plan.trace().is_empty());
    }

    #[test]
    fn same_seed_same_schedule() {
        let a = FaultPlan::new(42, noisy());
        let b = FaultPlan::new(42, noisy());
        for i in 0..500 {
            assert_eq!(
                a.on_write(FaultSite::WalWrite, 64 + i),
                b.on_write(FaultSite::WalWrite, 64 + i)
            );
            assert_eq!(
                a.on_sync(FaultSite::MetaWrite),
                b.on_sync(FaultSite::MetaWrite)
            );
        }
        assert_eq!(a.trace(), b.trace());
        assert!(a.injected() > 0, "20% rates must hit within 500 draws");
    }

    #[test]
    fn different_seeds_diverge() {
        let a = FaultPlan::new(1, noisy());
        let b = FaultPlan::new(2, noisy());
        let draws_a: Vec<_> = (0..200)
            .map(|_| a.on_write(FaultSite::WalWrite, 4096))
            .collect();
        let draws_b: Vec<_> = (0..200)
            .map(|_| b.on_write(FaultSite::WalWrite, 4096))
            .collect();
        assert_ne!(draws_a, draws_b);
    }

    #[test]
    fn sites_have_independent_streams() {
        // Consuming draws at one site must not shift another site's stream.
        let a = FaultPlan::new(9, noisy());
        let b = FaultPlan::new(9, noisy());
        for _ in 0..100 {
            let _ = a.on_sync(FaultSite::WalSync); // extra traffic on a only
        }
        for _ in 0..100 {
            assert_eq!(
                a.on_write(FaultSite::MetaWrite, 512),
                b.on_write(FaultSite::MetaWrite, 512)
            );
        }
    }

    #[test]
    fn short_writes_are_strictly_short() {
        let plan = FaultPlan::new(3, noisy());
        for _ in 0..2000 {
            if let Some(WriteFault::Short(keep)) = plan.on_write(FaultSite::WalWrite, 4096) {
                assert!(keep < 4096);
            }
        }
    }

    #[test]
    fn error_classification() {
        assert!(is_enospc(&enospc()));
        assert!(!is_transient_io(&enospc()));
        assert!(is_transient_io(&eio(FaultSite::WalWrite)));
        assert!(!is_transient_io(&io::Error::new(
            io::ErrorKind::InvalidData,
            "x"
        )));
        let trace_plan = FaultPlan::new(0, FaultProfile::default());
        assert_eq!(trace_plan.injected(), 0);
    }
}
