//! Persistent-memory substrate for the Puddles reproduction.
//!
//! The paper runs on Intel Optane DC-PMM exposed through a DAX filesystem;
//! this crate provides the equivalent substrate on commodity hardware:
//!
//! * [`space::VaReservation`] — a large reserved virtual-address range (the
//!   *global puddle space*) into which puddle files are mapped with
//!   `MAP_FIXED`, so persistent data keeps stable native-pointer addresses.
//! * [`pmdir::PmDir`] — the "DAX filesystem": a directory of fixed-size
//!   puddle files plus atomically-updated metadata files.
//! * [`persist`] — cache-line flush and store-fence primitives (`clwb` /
//!   `clflush` when available, portable fences otherwise).
//! * [`failpoint`] — named crash-injection points used by the transaction
//!   commit path, the allocator and the daemon to simulate power failures.
//! * [`faultio`] — the seeded fault-injection plane: short/torn writes,
//!   `EIO`/`ENOSPC`, dropped fsyncs, and connection resets, reproducible
//!   from one `TORTURE_SEED` and logged as a per-trial fault trace.
//! * [`shadow::ShadowBuffer`] — a working/durable twin buffer that models
//!   loss of unflushed cache lines for torn-write property tests.
//! * [`checksum`] — FNV-1a 64-bit checksums used by log entries and
//!   manifests.
//! * [`clock`] — time as a value: a [`clock::Clock`] that is wall time in
//!   production and a seeded deterministic [`clock::VirtualClock`] under
//!   test, so a torture seed replays the same execution.
//! * [`obs`] — the observability plane: lock-free mergeable log-linear
//!   latency histograms and a structured trace ring, stamped by a
//!   [`clock::Clock`] so simulated runs produce deterministic timelines.

pub mod checksum;
pub mod clock;
pub mod error;
pub mod failpoint;
pub mod faultio;
pub mod obs;
pub mod persist;
pub mod pmdir;
pub mod shadow;
pub mod space;
pub mod util;

pub use error::{PmError, Result};

/// Size of a CPU cache line in bytes; flush granularity.
pub const CACHELINE: usize = 64;

/// Size of an OS page in bytes; puddles are multiples of this.
pub const PAGE_SIZE: usize = 4096;

/// Default size of the global puddle address space (1 TiB, reserved but not
/// committed), mirroring the paper's reservation (§3.4).
pub const DEFAULT_SPACE_SIZE: usize = 1 << 40;

/// Default base address hint for the global puddle space.
///
/// The paper fixes the range and disables ASLR for it; we *request* this
/// base and fall back to a kernel-chosen address (puddles are relocatable,
/// so a moved base only triggers pointer rewriting).
pub const DEFAULT_SPACE_BASE: usize = 0x5000_0000_0000;
