//! Checksums used by log entries, puddle headers and manifests.
//!
//! The paper uses checksums (like PMDK) so that recovery can identify and
//! skip log entries that only partially persisted before a crash. A simple
//! FNV-1a 64-bit hash is sufficient for torn-write detection and keeps the
//! commit path cheap.

/// FNV-1a 64-bit offset basis.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Computes the FNV-1a 64-bit hash of `data`.
///
/// # Examples
///
/// ```
/// let a = puddles_pmem::checksum::fnv1a64(b"hello");
/// let b = puddles_pmem::checksum::fnv1a64(b"hello");
/// assert_eq!(a, b);
/// assert_ne!(a, puddles_pmem::checksum::fnv1a64(b"world"));
/// ```
#[inline]
pub fn fnv1a64(data: &[u8]) -> u64 {
    fnv1a64_with_seed(FNV_OFFSET, data)
}

/// Continues an FNV-1a 64-bit hash from a previous state.
///
/// Useful for hashing a header and its payload without copying them into a
/// contiguous buffer.
#[inline]
pub fn fnv1a64_with_seed(seed: u64, data: &[u8]) -> u64 {
    let mut hash = seed;
    for &byte in data {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Hashes a string into a stable 64-bit identifier.
///
/// Used to derive persistent type ids from type names (the Rust stand-in for
/// the paper's use of C++ `typeid`).
#[inline]
pub fn type_id_for_name(name: &str) -> u64 {
    fnv1a64(name.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_fnv_vectors() {
        // Standard FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn seeded_hash_equals_concatenated_hash() {
        let full = fnv1a64(b"header-payload");
        let part = fnv1a64_with_seed(fnv1a64(b"header-"), b"payload");
        assert_eq!(full, part);
    }

    #[test]
    fn type_ids_are_stable_and_distinct() {
        assert_eq!(type_id_for_name("Node"), type_id_for_name("Node"));
        assert_ne!(type_id_for_name("Node"), type_id_for_name("node"));
        assert_ne!(type_id_for_name("Node"), type_id_for_name("Tree"));
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let mut data = vec![0u8; 256];
        let base = fnv1a64(&data);
        data[200] ^= 0x10;
        assert_ne!(base, fnv1a64(&data));
    }
}
