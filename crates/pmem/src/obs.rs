//! Observability plane: mergeable log-linear latency histograms and a
//! structured trace ring.
//!
//! # Histograms
//!
//! [`Histogram`] is an HDR-style log-linear histogram over `u64`
//! nanosecond values: a power-of-two *major* bucket per bit of magnitude,
//! each split into [`SUB_BUCKETS`] linear sub-buckets, so quantile reads
//! carry a bounded (~1/[`SUB_BUCKETS`]) relative error at every scale.
//! Counts are plain `AtomicU64`s — recording is lock-free and wait-free.
//! [`ShardedHistogram`] stripes one histogram per small pool of shards
//! (recorders pick a shard by a per-thread slot, so reactor and worker
//! threads never contend on one cache line) and merges on read; a merged
//! snapshot reports *exactly* the same quantiles a single recorder would
//! (bucket counts add, and quantiles are a pure function of the summed
//! buckets — property-tested in `tests/obs_model.rs`).
//!
//! # Trace ring
//!
//! [`Metrics::trace`] appends a compact [`TraceEvent`] (kind + static
//! detail + two `u64` operands) to a fixed-capacity per-thread-slot ring.
//! Every event takes a globally ordered sequence number and a [`Clock`]
//! timestamp, so [`Metrics::trace_dump`] can flatten all rings into one
//! time-ordered timeline. Under a virtual clock with a serialized request
//! stream (the deterministic torture harness), the dump is a pure function
//! of the seed — byte-identical across replays — because both the sequence
//! numbers and the logical timestamps are.
//!
//! # The hub
//!
//! [`Metrics`] owns the series registry (named [`ShardedHistogram`]s),
//! named counters, and the trace ring, plus the [`Clock`] used to stamp
//! events. The daemon creates one per instance (or the torture harness
//! passes one in so it survives kill/restart cycles within a trial).

use crate::clock::Clock;
use parking_lot::Mutex;
use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Linear sub-buckets per power-of-two major bucket, as a bit count
/// (2^4 = 16 sub-buckets → ≤ 1/16 ≈ 6% relative quantile error).
pub const SUB_BUCKET_BITS: u32 = 4;
/// Linear sub-buckets per major bucket.
pub const SUB_BUCKETS: usize = 1 << SUB_BUCKET_BITS;
/// Total buckets covering the whole `u64` range of nanosecond values.
pub const NUM_BUCKETS: usize = (64 - SUB_BUCKET_BITS as usize) * SUB_BUCKETS + SUB_BUCKETS;

/// Recorder stripes per [`ShardedHistogram`]: enough that the daemon's
/// reactors + workers spread out, small enough that merge-on-read is cheap.
pub const HISTOGRAM_SHARDS: usize = 8;

/// Per-thread-slot trace ring capacity (events); the oldest events in a
/// slot are dropped (and counted) once it fills.
pub const TRACE_RING_CAPACITY: usize = 4096;
/// Trace ring slots; threads map onto slots by their recorder slot.
const TRACE_SHARDS: usize = 16;

static NEXT_THREAD_SLOT: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static THREAD_SLOT: usize = NEXT_THREAD_SLOT.fetch_add(1, Ordering::Relaxed);
}

/// A small dense per-thread slot (assigned on first use), used to stripe
/// recorders across histogram shards and trace rings.
pub fn thread_slot() -> usize {
    THREAD_SLOT.with(|s| *s)
}

/// Maps a value to its bucket index. Values below [`SUB_BUCKETS`] map
/// exactly (bucket = value); above, the top [`SUB_BUCKET_BITS`]+1 bits of
/// the value select the bucket.
pub fn bucket_index(value: u64) -> usize {
    if value < SUB_BUCKETS as u64 {
        return value as usize;
    }
    let major = 63 - value.leading_zeros();
    let sub = (value >> (major - SUB_BUCKET_BITS)) as usize - SUB_BUCKETS;
    (major - SUB_BUCKET_BITS) as usize * SUB_BUCKETS + SUB_BUCKETS + sub
}

/// The largest value a bucket holds (inclusive); quantiles report this
/// bound, so a quantile read is deterministic given the bucket counts.
pub fn bucket_bound(index: usize) -> u64 {
    if index < SUB_BUCKETS {
        return index as u64;
    }
    let major = (index / SUB_BUCKETS - 1) as u32 + SUB_BUCKET_BITS;
    let sub = (index % SUB_BUCKETS) as u64;
    let width = 1u64 << (major - SUB_BUCKET_BITS);
    // `(base - 1) + (sub + 1) * width`: the top bucket's bound is exactly
    // `u64::MAX`, so the straightforward `base + ... - 1` would overflow.
    ((1u64 << major) - 1) + (sub + 1) * width
}

/// One lock-free log-linear histogram (see the module docs).
pub struct Histogram {
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    pub fn new() -> Histogram {
        Histogram {
            counts: (0..NUM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Records one value (nanoseconds). Lock-free: three relaxed atomic
    /// adds and a relaxed max.
    pub fn record(&self, value: u64) {
        self.counts[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Records a duration as nanoseconds (saturating at `u64::MAX`).
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// A point-in-time copy of the bucket counts.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An owned, mergeable copy of a histogram's state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    counts: Vec<u64>,
    /// Total recorded values.
    pub count: u64,
    /// Sum of recorded values (nanoseconds).
    pub sum: u64,
    /// Largest recorded value (exact, not bucket-rounded).
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            counts: vec![0; NUM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// Adds another snapshot's buckets into this one. Quantiles of the
    /// merge equal quantiles of a single recorder fed both value streams.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// The value at percentile `p` (0–100): the inclusive upper bound of
    /// the bucket holding the rank-`⌈p·n/100⌉` value, clamped to the exact
    /// observed max. Returns 0 on an empty snapshot.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Mean of recorded values, in nanoseconds (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

/// A histogram striped across [`HISTOGRAM_SHARDS`] recorders; see the
/// module docs.
pub struct ShardedHistogram {
    shards: Vec<Histogram>,
}

impl std::fmt::Debug for ShardedHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let snap = self.snapshot();
        f.debug_struct("ShardedHistogram")
            .field("count", &snap.count)
            .field("max", &snap.max)
            .finish()
    }
}

impl Default for ShardedHistogram {
    fn default() -> Self {
        ShardedHistogram::new()
    }
}

impl ShardedHistogram {
    pub fn new() -> ShardedHistogram {
        ShardedHistogram {
            shards: (0..HISTOGRAM_SHARDS).map(|_| Histogram::new()).collect(),
        }
    }

    /// Records one nanosecond value into the calling thread's shard.
    pub fn record(&self, value: u64) {
        self.shards[thread_slot() % self.shards.len()].record(value);
    }

    /// Records a duration into the calling thread's shard.
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Merges every shard into one snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut merged = HistogramSnapshot::default();
        for shard in &self.shards {
            merged.merge(&shard.snapshot());
        }
        merged
    }
}

/// What a [`TraceEvent`] marks. Operand meaning per kind:
///
/// | kind | `detail` | `a` | `b` |
/// |------|----------|-----|-----|
/// | `ReqStart` / `ReqEnd` | request kind | req_id (0 = local/v1) | — |
/// | `WalCommit` | — | records in batch | batch bytes |
/// | `CheckpointBegin` / `CheckpointEnd` | — | WAL records at cut | — |
/// | `Coalesce` | `lazy` / `forced` | 1 if the pass merged | — |
/// | `Fault` | fault site | per-site occurrence | — |
/// | `Reconnect` | — | — | — |
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    ReqStart,
    ReqEnd,
    WalCommit,
    CheckpointBegin,
    CheckpointEnd,
    Coalesce,
    Fault,
    Reconnect,
}

impl TraceEventKind {
    /// Stable name used in dump lines.
    pub fn name(self) -> &'static str {
        match self {
            TraceEventKind::ReqStart => "req.start",
            TraceEventKind::ReqEnd => "req.end",
            TraceEventKind::WalCommit => "wal.commit",
            TraceEventKind::CheckpointBegin => "ckpt.begin",
            TraceEventKind::CheckpointEnd => "ckpt.end",
            TraceEventKind::Coalesce => "coalesce",
            TraceEventKind::Fault => "fault",
            TraceEventKind::Reconnect => "reconnect",
        }
    }
}

/// One compact trace event; see [`TraceEventKind`] for operand meanings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global order of the event across all threads (assigned at record).
    pub seq: u64,
    /// [`Clock`] timestamp, nanoseconds since the clock's epoch.
    pub at_nanos: u64,
    pub kind: TraceEventKind,
    /// Static qualifier (request kind, fault site, coalesce mode); may be
    /// empty.
    pub detail: &'static str,
    pub a: u64,
    pub b: u64,
}

impl TraceEvent {
    /// One dump line: `#<seq> t=<nanos> <kind> [<detail>] a=<a> b=<b>`.
    pub fn render(&self) -> String {
        if self.detail.is_empty() {
            format!(
                "#{:06} t={} {} a={} b={}",
                self.seq,
                self.at_nanos,
                self.kind.name(),
                self.a,
                self.b
            )
        } else {
            format!(
                "#{:06} t={} {} {} a={} b={}",
                self.seq,
                self.at_nanos,
                self.kind.name(),
                self.detail,
                self.a,
                self.b
            )
        }
    }
}

struct TraceShard {
    ring: Mutex<VecDeque<TraceEvent>>,
}

/// The observability hub: named histogram series, named counters, and the
/// trace ring, stamped by one [`Clock`]. See the module docs.
pub struct Metrics {
    clock: Clock,
    series: Mutex<BTreeMap<&'static str, Arc<ShardedHistogram>>>,
    counters: Mutex<BTreeMap<&'static str, Arc<AtomicU64>>>,
    trace_shards: Vec<TraceShard>,
    trace_seq: AtomicU64,
    trace_dropped: AtomicU64,
}

impl std::fmt::Debug for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Metrics")
            .field("series", &self.series.lock().len())
            .field("trace_seq", &self.trace_seq.load(Ordering::Relaxed))
            .finish()
    }
}

/// A point-in-time copy of every series and counter in a [`Metrics`] hub,
/// in deterministic (name-sorted) order.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    pub series: Vec<(String, HistogramSnapshot)>,
    pub counters: Vec<(String, u64)>,
}

impl Metrics {
    /// A hub stamping events with `clock`.
    pub fn new(clock: Clock) -> Arc<Metrics> {
        Arc::new(Metrics {
            clock,
            series: Mutex::new(BTreeMap::new()),
            counters: Mutex::new(BTreeMap::new()),
            trace_shards: (0..TRACE_SHARDS)
                .map(|_| TraceShard {
                    ring: Mutex::new(VecDeque::new()),
                })
                .collect(),
            trace_seq: AtomicU64::new(0),
            trace_dropped: AtomicU64::new(0),
        })
    }

    /// The hub's time source.
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// The named histogram series, created on first use. Callers on a hot
    /// path should fetch the handle once and record through it.
    pub fn series(&self, name: &'static str) -> Arc<ShardedHistogram> {
        Arc::clone(
            self.series
                .lock()
                .entry(name)
                .or_insert_with(|| Arc::new(ShardedHistogram::new())),
        )
    }

    /// Records one duration into the named series (registry lock per call;
    /// hot paths should hold the [`Metrics::series`] handle instead).
    pub fn record(&self, name: &'static str, d: Duration) {
        self.series(name).record_duration(d);
    }

    /// The named counter, created on first use.
    pub fn counter(&self, name: &'static str) -> Arc<AtomicU64> {
        Arc::clone(
            self.counters
                .lock()
                .entry(name)
                .or_insert_with(|| Arc::new(AtomicU64::new(0))),
        )
    }

    /// Appends one trace event to the calling thread's ring, stamped with
    /// the hub clock and the next global sequence number.
    pub fn trace(&self, kind: TraceEventKind, detail: &'static str, a: u64, b: u64) {
        let event = TraceEvent {
            seq: self.trace_seq.fetch_add(1, Ordering::Relaxed),
            at_nanos: u64::try_from(self.clock.now().as_nanos()).unwrap_or(u64::MAX),
            kind,
            detail,
            a,
            b,
        };
        let shard = &self.trace_shards[thread_slot() % self.trace_shards.len()];
        let mut ring = shard.ring.lock();
        if ring.len() >= TRACE_RING_CAPACITY {
            ring.pop_front();
            self.trace_dropped.fetch_add(1, Ordering::Relaxed);
        }
        ring.push_back(event);
    }

    /// Trace events dropped to ring-capacity overflow.
    pub fn trace_dropped(&self) -> u64 {
        self.trace_dropped.load(Ordering::Relaxed)
    }

    /// All buffered trace events, flattened across rings into global
    /// (sequence) order. Non-destructive.
    pub fn trace_events(&self) -> Vec<TraceEvent> {
        let mut events: Vec<TraceEvent> = Vec::new();
        for shard in &self.trace_shards {
            events.extend(shard.ring.lock().iter().cloned());
        }
        events.sort_by_key(|e| e.seq);
        events
    }

    /// [`Metrics::trace_events`], then empties every ring.
    pub fn drain_trace(&self) -> Vec<TraceEvent> {
        let mut events: Vec<TraceEvent> = Vec::new();
        for shard in &self.trace_shards {
            events.append(&mut shard.ring.lock().drain(..).collect());
        }
        events.sort_by_key(|e| e.seq);
        events
    }

    /// The buffered timeline as rendered lines (one per event, in global
    /// order). Byte-identical across same-seed deterministic runs.
    pub fn trace_dump(&self) -> Vec<String> {
        self.trace_events().iter().map(TraceEvent::render).collect()
    }

    /// Every series and counter, name-sorted. The `trace.dropped` counter
    /// is always included.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let series = self
            .series
            .lock()
            .iter()
            .map(|(name, h)| (name.to_string(), h.snapshot()))
            .collect();
        let mut counters: Vec<(String, u64)> = self
            .counters
            .lock()
            .iter()
            .map(|(name, c)| (name.to_string(), c.load(Ordering::Relaxed)))
            .collect();
        counters.push(("trace.dropped".to_string(), self.trace_dropped()));
        counters.sort();
        MetricsSnapshot { series, counters }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_map_exactly() {
        for v in 0..SUB_BUCKETS as u64 {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bound(v as usize), v);
        }
    }

    #[test]
    fn bucket_boundaries_are_deterministic() {
        // Every bucket's bound maps back into the same bucket, bounds are
        // strictly increasing, and a bound+1 lands in the next bucket.
        for i in 0..NUM_BUCKETS {
            let bound = bucket_bound(i);
            assert_eq!(bucket_index(bound), i, "bound of bucket {i}");
            if i + 1 < NUM_BUCKETS {
                assert!(bucket_bound(i + 1) > bound);
                assert_eq!(bucket_index(bound + 1), i + 1);
            } else {
                assert_eq!(bound, u64::MAX);
            }
        }
        // Spot checks at the log-linear seams.
        assert_eq!(bucket_index(15), 15);
        assert_eq!(bucket_index(16), 16);
        assert_eq!(bucket_index(31), 31);
        assert_eq!(bucket_index(32), 32); // first two-wide bucket
        assert_eq!(bucket_index(33), 32);
        assert_eq!(bucket_index(34), 33);
    }

    #[test]
    fn percentiles_of_a_known_distribution() {
        let h = Histogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count, 100);
        assert_eq!(snap.max, 100);
        // Values ≤ 15 are exact; larger ones report their bucket bound.
        assert_eq!(snap.percentile(1.0), 1);
        assert_eq!(snap.percentile(10.0), 10);
        let p50 = snap.percentile(50.0);
        assert!((50..=55).contains(&p50), "p50 = {p50}");
        let p99 = snap.percentile(99.0);
        assert!((99..=100).contains(&p99), "p99 = {p99}");
        assert_eq!(snap.percentile(100.0), 100);
        assert_eq!(snap.mean(), 5050 / 100);
    }

    #[test]
    fn empty_snapshot_percentiles_are_zero() {
        let snap = Histogram::new().snapshot();
        assert_eq!(snap.percentile(50.0), 0);
        assert_eq!(snap.percentile(99.0), 0);
        assert_eq!(snap.mean(), 0);
    }

    #[test]
    fn merged_shards_equal_a_single_recorder() {
        // The same value stream split across shards merges to the same
        // snapshot a single recorder produces (the proptest in
        // tests/obs_model.rs generalizes this).
        let single = Histogram::new();
        let sharded = ShardedHistogram::new();
        let mut x = 0x1234_5678u64;
        for _ in 0..10_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            let v = x >> 33;
            single.record(v);
            // Bypass thread_slot: spread by value so all shards get data.
            sharded.shards[(v % HISTOGRAM_SHARDS as u64) as usize].record(v);
        }
        let a = single.snapshot();
        let b = sharded.snapshot();
        assert_eq!(a, b);
        for p in [0.0, 50.0, 90.0, 99.0, 99.9, 100.0] {
            assert_eq!(a.percentile(p), b.percentile(p));
        }
    }

    #[test]
    fn trace_ring_orders_and_drops() {
        let m = Metrics::new(Clock::simulated(7));
        m.trace(TraceEventKind::ReqStart, "Ping", 1, 0);
        m.trace(TraceEventKind::WalCommit, "", 3, 128);
        m.trace(TraceEventKind::ReqEnd, "Ping", 1, 0);
        let dump = m.trace_dump();
        assert_eq!(dump.len(), 3);
        assert!(dump[0].contains("req.start Ping"), "{}", dump[0]);
        assert!(dump[1].contains("wal.commit"), "{}", dump[1]);
        assert!(dump[2].contains("req.end Ping"), "{}", dump[2]);
        // Sequence numbers are global and ascending.
        let events = m.trace_events();
        assert!(events.windows(2).all(|w| w[0].seq < w[1].seq));
        // Overflow drops the oldest events of a slot and counts them.
        for i in 0..(TRACE_RING_CAPACITY as u64 + 10) {
            m.trace(TraceEventKind::Coalesce, "lazy", i, 0);
        }
        assert!(m.trace_dropped() > 0);
        let drained = m.drain_trace();
        assert!(!drained.is_empty());
        assert!(m.trace_events().is_empty(), "drain must empty the rings");
    }

    #[test]
    fn snapshot_is_name_sorted_and_counts_match() {
        let m = Metrics::new(Clock::simulated(1));
        m.record("zeta", Duration::from_nanos(10));
        m.record("alpha", Duration::from_nanos(20));
        m.record("alpha", Duration::from_nanos(30));
        m.counter("hits").fetch_add(5, Ordering::Relaxed);
        let snap = m.snapshot();
        let names: Vec<&str> = snap.series.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, ["alpha", "zeta"]);
        assert_eq!(snap.series[0].1.count, 2);
        assert_eq!(snap.series[1].1.count, 1);
        assert!(snap.counters.iter().any(|(n, v)| n == "hits" && *v == 5));
        assert!(snap.counters.iter().any(|(n, _)| n == "trace.dropped"));
    }

    #[test]
    fn virtual_clock_stamps_are_logical_time() {
        let clock = Clock::simulated(3);
        let m = Metrics::new(clock.clone());
        m.trace(TraceEventKind::CheckpointBegin, "", 0, 0);
        clock.sleep(Duration::from_millis(5));
        m.trace(TraceEventKind::CheckpointEnd, "", 0, 0);
        let events = m.trace_events();
        assert_eq!(events[0].at_nanos, 0);
        assert_eq!(events[1].at_nanos, 5_000_000);
    }
}
