//! Time as a value: a swappable clock so tests can own the timeline.
//!
//! Every time consumer in the stack (background timer wheel, WAL
//! checkpoint staleness, reactor drain/shutdown deadlines, client retry
//! backoff, the torture kill schedule) reads time through a [`Clock`]
//! instead of calling `Instant::now()` or `thread::sleep` directly:
//!
//! - [`Clock::real`] is wall time: `now()` is the elapsed `Duration` since
//!   a lazily-anchored process epoch, `sleep` is `thread::sleep`, and
//!   timed condvar waits are real timed waits. Production behaviour is
//!   unchanged.
//! - [`Clock::simulated`] wraps a [`VirtualClock`]: a logical timeline
//!   that only moves when something advances it. Timers registered on it
//!   fire in deterministic order — earliest deadline first, ties broken
//!   by registration order — so the same seed replays the same execution.
//!
//! `Clock` is a concrete cloneable value (not a trait object) so it can
//! expose generic methods like [`Clock::wait_timeout`] and be stored in
//! configs without boxing. Cloning is cheap; clones of a simulated clock
//! share one timeline.
//!
//! # Auto-advance
//!
//! A [`VirtualClock`] in auto-advance mode (the default for
//! [`Clock::simulated`]) lets sleepers pull time forward: when a sleeping
//! thread holds the *earliest* pending timer, it advances `now` to its
//! own deadline and wakes. Sleeps cost no wall time, yet wakeups stay
//! ordered — with one runnable thread at a time (the torture harness's
//! cooperative scheduler) the timeline is a pure function of the
//! workload. Passive waiters ([`Clock::wait_timeout`]) never pull time
//! forward; they poll the virtual timeline with a short real-time tick
//! and report whether their virtual deadline has passed.

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::hash::{BuildHasher, Hasher};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock};
use std::time::{Duration, Instant};

/// Real poll tick used by passive virtual waits (see module docs): short
/// enough that virtual-time tests feel instant, long enough not to burn a
/// core while a background thread idles.
const VIRTUAL_POLL: Duration = Duration::from_millis(1);

/// A source of time: real (wall clock) or simulated (virtual timeline).
/// See the module docs.
#[derive(Clone, Debug)]
pub struct Clock(Source);

#[derive(Clone, Debug)]
enum Source {
    Real,
    Virtual(Arc<VirtualClock>),
}

/// The process-wide anchor all real `now()` readings are relative to.
/// Lazily initialized on first use; only differences ever matter.
fn real_epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

impl Clock {
    /// The production clock: wall time.
    pub fn real() -> Clock {
        Clock(Source::Real)
    }

    /// A fresh virtual timeline seeded for reproducibility, with
    /// auto-advance enabled (see module docs). Clones share the timeline.
    pub fn simulated(seed: u64) -> Clock {
        Clock(Source::Virtual(VirtualClock::new(seed)))
    }

    /// `true` for simulated clocks.
    pub fn is_virtual(&self) -> bool {
        matches!(self.0, Source::Virtual(_))
    }

    /// The underlying virtual clock, if simulated — for tests and
    /// harnesses that drive the timeline explicitly.
    pub fn virtual_clock(&self) -> Option<&Arc<VirtualClock>> {
        match &self.0 {
            Source::Real => None,
            Source::Virtual(vc) => Some(vc),
        }
    }

    /// Time elapsed since this clock's epoch. Monotonic; starts near zero.
    pub fn now(&self) -> Duration {
        match &self.0 {
            Source::Real => real_epoch().elapsed(),
            Source::Virtual(vc) => vc.now(),
        }
    }

    /// Blocks the calling thread for `dur` of *this clock's* time. On a
    /// virtual clock in auto-advance mode this returns promptly in real
    /// time while consuming `dur` of virtual time, with deterministic
    /// ordering between concurrent sleepers.
    pub fn sleep(&self, dur: Duration) {
        match &self.0 {
            Source::Real => std::thread::sleep(dur),
            Source::Virtual(vc) => vc.sleep(dur),
        }
    }

    /// A timed condvar wait against this clock. Returns the reacquired
    /// guard and `true` if `dur` of clock time has elapsed ("timed out").
    ///
    /// Spurious and early wakeups are allowed on *both* clock kinds (a
    /// virtual wait polls in short real-time ticks) — callers must loop on
    /// their predicate and recompute the remaining timeout, exactly as
    /// standard condvar discipline already requires.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        cv: &Condvar,
        dur: Duration,
    ) -> (MutexGuard<'a, T>, bool) {
        match &self.0 {
            Source::Real => {
                let (guard, res) = cv.wait_timeout(guard, dur).unwrap();
                (guard, res.timed_out())
            }
            Source::Virtual(vc) => {
                let deadline = vc.now() + dur;
                let (guard, _) = cv.wait_timeout(guard, VIRTUAL_POLL.min(dur)).unwrap();
                (guard, vc.now() >= deadline)
            }
        }
    }
}

impl Default for Clock {
    fn default() -> Clock {
        Clock::real()
    }
}

/// A seed of OS entropy with no dependencies: `RandomState` hashes with
/// per-process random keys, so one finished hash of nothing is a random
/// u64. Used for production jitter seeds where determinism is unwanted.
pub fn entropy_seed() -> u64 {
    std::collections::hash_map::RandomState::new()
        .build_hasher()
        .finish()
}

/// A logical timeline with deterministically ordered timers. Usually
/// handled through [`Clock::simulated`]; see the module docs.
#[derive(Debug)]
pub struct VirtualClock {
    seed: u64,
    state: Mutex<VState>,
    wake: Condvar,
    auto_advance: AtomicBool,
}

#[derive(Debug)]
struct VState {
    now: Duration,
    /// Next timer id; ids double as the registration-order tie-break.
    next_id: u64,
    /// Pending timers, ordered `(deadline, id)` — the firing order.
    pending: BTreeMap<(Duration, u64), ()>,
    /// Timers that have fired and not yet been claimed by their sleeper.
    fired: BTreeSet<u64>,
    /// Every fired timer id, in firing order — the deterministic wake log.
    fired_log: Vec<u64>,
}

impl VirtualClock {
    /// A fresh timeline at `now == 0` with auto-advance enabled.
    pub fn new(seed: u64) -> Arc<VirtualClock> {
        Arc::new(VirtualClock {
            seed,
            state: Mutex::new(VState {
                now: Duration::ZERO,
                next_id: 0,
                pending: BTreeMap::new(),
                fired: BTreeSet::new(),
                fired_log: Vec::new(),
            }),
            wake: Condvar::new(),
            auto_advance: AtomicBool::new(true),
        })
    }

    /// The seed this timeline was created with (recorded for traces).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Enables or disables auto-advance (see module docs). Tests that
    /// drive time explicitly via [`VirtualClock::advance`] turn it off.
    pub fn set_auto_advance(&self, on: bool) {
        self.auto_advance.store(on, Ordering::SeqCst);
    }

    /// Current virtual time.
    pub fn now(&self) -> Duration {
        self.state.lock().unwrap().now
    }

    /// Registers a timer `delay` from now, returning its id. The timer
    /// fires when the timeline reaches its deadline — earliest deadline
    /// first, ties in registration (id) order.
    pub fn register_timer(&self, delay: Duration) -> u64 {
        let mut st = self.state.lock().unwrap();
        let id = st.next_id;
        st.next_id += 1;
        let deadline = st.now + delay;
        if delay.is_zero() {
            // Already due: fires immediately, keeping the log ordered.
            st.fired.insert(id);
            st.fired_log.push(id);
        } else {
            st.pending.insert((deadline, id), ());
        }
        id
    }

    /// Moves the timeline forward by `by`, firing every timer whose
    /// deadline is reached, in deterministic order, and waking sleepers.
    pub fn advance(&self, by: Duration) {
        let mut st = self.state.lock().unwrap();
        Self::advance_locked(&mut st, by);
        self.wake.notify_all();
    }

    fn advance_locked(st: &mut VState, by: Duration) {
        st.now += by;
        while let Some((&(deadline, id), ())) = st.pending.iter().next() {
            if deadline > st.now {
                break;
            }
            st.pending.remove(&(deadline, id));
            st.fired.insert(id);
            st.fired_log.push(id);
        }
    }

    /// The ids of every fired timer so far, in firing order.
    pub fn fired_order(&self) -> Vec<u64> {
        self.state.lock().unwrap().fired_log.clone()
    }

    /// `true` once timer `id` has fired.
    pub fn has_fired(&self, id: u64) -> bool {
        let st = self.state.lock().unwrap();
        st.fired.contains(&id) || st.fired_log.contains(&id)
    }

    /// How many timers have ever been registered (sleeps included) — lets
    /// tests gate on registration order without exposing internals.
    pub fn timers_registered(&self) -> u64 {
        self.state.lock().unwrap().next_id
    }

    /// Sleeps `dur` of virtual time: registers a timer and blocks until it
    /// fires. Under auto-advance, the sleeper holding the earliest pending
    /// timer pulls `now` to its own deadline, so sleeps cost no wall time
    /// but still wake in deterministic `(deadline, registration)` order.
    pub fn sleep(&self, dur: Duration) {
        if dur.is_zero() {
            return;
        }
        let mut st = self.state.lock().unwrap();
        let id = st.next_id;
        st.next_id += 1;
        let deadline = st.now + dur;
        st.pending.insert((deadline, id), ());
        loop {
            if st.fired.remove(&id) {
                return;
            }
            let earliest = st.pending.keys().next() == Some(&(deadline, id));
            if earliest && self.auto_advance.load(Ordering::SeqCst) {
                let by = deadline - st.now;
                Self::advance_locked(&mut st, by);
                self.wake.notify_all();
                continue;
            }
            st = self.wake.wait(st).unwrap();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn real_clock_is_monotonic_and_sleeps() {
        let clock = Clock::real();
        let a = clock.now();
        clock.sleep(Duration::from_millis(2));
        let b = clock.now();
        assert!(b >= a + Duration::from_millis(2), "{a:?} -> {b:?}");
    }

    #[test]
    fn virtual_now_only_moves_on_advance() {
        let clock = Clock::simulated(1);
        let vc = clock.virtual_clock().unwrap();
        vc.set_auto_advance(false);
        assert_eq!(clock.now(), Duration::ZERO);
        vc.advance(Duration::from_millis(250));
        assert_eq!(clock.now(), Duration::from_millis(250));
        vc.advance(Duration::from_secs(3600));
        assert_eq!(
            clock.now(),
            Duration::from_millis(250) + Duration::from_secs(3600)
        );
    }

    #[test]
    fn timers_fire_in_deadline_order() {
        let vc = VirtualClock::new(7);
        vc.set_auto_advance(false);
        let late = vc.register_timer(Duration::from_millis(20));
        let early = vc.register_timer(Duration::from_millis(5));
        let mid = vc.register_timer(Duration::from_millis(10));
        vc.advance(Duration::from_millis(50));
        assert_eq!(vc.fired_order(), vec![early, mid, late]);
    }

    #[test]
    fn equal_deadlines_tie_break_by_registration_order() {
        let vc = VirtualClock::new(7);
        vc.set_auto_advance(false);
        let ids: Vec<u64> = (0..8)
            .map(|_| vc.register_timer(Duration::from_millis(10)))
            .collect();
        vc.advance(Duration::from_millis(10));
        assert_eq!(vc.fired_order(), ids);
    }

    #[test]
    fn partial_advance_fires_only_due_timers() {
        let vc = VirtualClock::new(7);
        vc.set_auto_advance(false);
        let early = vc.register_timer(Duration::from_millis(5));
        let late = vc.register_timer(Duration::from_millis(500));
        vc.advance(Duration::from_millis(5));
        assert_eq!(vc.fired_order(), vec![early]);
        assert!(!vc.has_fired(late));
        vc.advance(Duration::from_millis(495));
        assert_eq!(vc.fired_order(), vec![early, late]);
    }

    #[test]
    fn auto_advance_sleep_consumes_virtual_time_instantly() {
        let clock = Clock::simulated(3);
        clock.sleep(Duration::from_secs(3600));
        assert_eq!(clock.now(), Duration::from_secs(3600));
    }

    #[test]
    fn concurrent_sleepers_fire_in_deadline_order() {
        // Three threads park with distinct delays, registration order
        // gated so ids are assigned 0 (300ms), 1 (200ms), 2 (100ms). One
        // advance must fire them earliest-deadline-first: [2, 1, 0].
        let clock = Clock::simulated(9);
        let vc = clock.virtual_clock().unwrap().clone();
        vc.set_auto_advance(false);
        let delays = [300u64, 200, 100];
        let mut handles = Vec::new();
        for (i, ms) in delays.into_iter().enumerate() {
            let clock = clock.clone();
            handles.push(std::thread::spawn(move || {
                let vc = clock.virtual_clock().unwrap();
                while vc.timers_registered() != i as u64 {
                    std::thread::yield_now();
                }
                vc.sleep(Duration::from_millis(ms));
            }));
        }
        while vc.timers_registered() != 3 {
            std::thread::yield_now();
        }
        vc.advance(Duration::from_secs(1));
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(vc.fired_order(), vec![2, 1, 0]);
        assert_eq!(clock.now(), Duration::from_secs(1));
    }

    #[test]
    fn staggered_auto_advance_sleeps_accumulate_time() {
        // Sequential sleeps under auto-advance: each jumps the timeline by
        // its own delay, so virtual time is the running sum.
        let clock = Clock::simulated(11);
        let delays = [300u64, 200, 100];
        let mut handles = Vec::new();
        for (i, ms) in delays.into_iter().enumerate() {
            let clock = clock.clone();
            handles.push(std::thread::spawn(move || {
                let vc = clock.virtual_clock().unwrap();
                while vc.timers_registered() != i as u64 {
                    std::thread::yield_now();
                }
                vc.sleep(Duration::from_millis(ms));
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(clock.now(), Duration::from_millis(600));
        assert_eq!(clock.virtual_clock().unwrap().fired_order(), vec![0, 1, 2]);
    }

    #[test]
    fn wait_timeout_reports_virtual_deadline() {
        let clock = Clock::simulated(5);
        let vc = clock.virtual_clock().unwrap().clone();
        vc.set_auto_advance(false);
        let lock = Mutex::new(());
        let cv = Condvar::new();
        // Deadline not reached: the poll returns without timing out.
        let (g, timed_out) = clock.wait_timeout(lock.lock().unwrap(), &cv, Duration::from_secs(60));
        assert!(!timed_out);
        drop(g);
        // The standard caller loop: recompute the remaining timeout each
        // round; an advance from another thread ends the wait.
        let deadline = vc.now() + Duration::from_millis(50);
        let advancer = {
            let vc = vc.clone();
            std::thread::spawn(move || vc.advance(Duration::from_millis(60)))
        };
        let mut guard = lock.lock().unwrap();
        loop {
            let remaining = deadline.saturating_sub(vc.now());
            if remaining.is_zero() {
                break;
            }
            let (g, _) = clock.wait_timeout(guard, &cv, remaining);
            guard = g;
        }
        drop(guard);
        advancer.join().unwrap();
        assert!(vc.now() >= deadline);
    }

    #[test]
    fn zero_delay_timer_fires_immediately() {
        let vc = VirtualClock::new(2);
        vc.set_auto_advance(false);
        let id = vc.register_timer(Duration::ZERO);
        assert!(vc.has_fired(id));
        assert_eq!(vc.fired_order(), vec![id]);
    }

    #[test]
    fn entropy_seed_varies() {
        // Two draws colliding is astronomically unlikely; a deterministic
        // stub would return equal values every time.
        assert_ne!(entropy_seed(), entropy_seed());
    }
}
