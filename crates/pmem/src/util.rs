//! Small alignment and arithmetic helpers shared across the workspace.

/// Rounds `value` up to the next multiple of `align`.
///
/// `align` must be a power of two.
///
/// # Examples
///
/// ```
/// assert_eq!(puddles_pmem::util::align_up(10, 8), 16);
/// assert_eq!(puddles_pmem::util::align_up(16, 8), 16);
/// ```
#[inline]
pub const fn align_up(value: usize, align: usize) -> usize {
    debug_assert!(align.is_power_of_two());
    (value + align - 1) & !(align - 1)
}

/// Rounds `value` down to the previous multiple of `align`.
///
/// `align` must be a power of two.
#[inline]
pub const fn align_down(value: usize, align: usize) -> usize {
    debug_assert!(align.is_power_of_two());
    value & !(align - 1)
}

/// Returns `true` if `value` is a multiple of `align`.
#[inline]
pub const fn is_aligned(value: usize, align: usize) -> bool {
    value.is_multiple_of(align)
}

/// Returns the smallest power of two greater than or equal to `value`
/// (and at least `min`).
#[inline]
pub fn next_pow2_at_least(value: usize, min: usize) -> usize {
    value.max(min).next_power_of_two()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn align_up_rounds_to_multiple() {
        assert_eq!(align_up(0, 64), 0);
        assert_eq!(align_up(1, 64), 64);
        assert_eq!(align_up(64, 64), 64);
        assert_eq!(align_up(65, 64), 128);
    }

    #[test]
    fn align_down_rounds_to_multiple() {
        assert_eq!(align_down(0, 64), 0);
        assert_eq!(align_down(63, 64), 0);
        assert_eq!(align_down(64, 64), 64);
        assert_eq!(align_down(127, 64), 64);
    }

    #[test]
    fn is_aligned_checks_multiples() {
        assert!(is_aligned(0, 4096));
        assert!(is_aligned(8192, 4096));
        assert!(!is_aligned(8193, 4096));
    }

    #[test]
    fn next_pow2_honours_minimum() {
        assert_eq!(next_pow2_at_least(3, 16), 16);
        assert_eq!(next_pow2_at_least(17, 16), 32);
        assert_eq!(next_pow2_at_least(1024, 16), 1024);
    }
}
