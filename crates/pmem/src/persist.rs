//! Cache-line flush and store-fence primitives.
//!
//! On the paper's testbed (`clwb`-capable Xeon + Optane in App Direct
//! mode) persistence is achieved with `clwb` followed by `sfence`. We issue
//! the same instruction sequence when the CPU supports it so the relative
//! cost of flushes on the commit path is modelled; on CPUs without `clwb`
//! we fall back to `clflush`, and on non-x86 targets to a compiler +
//! memory fence. Durability of the backing file itself is not required for
//! the reproduction: crash experiments are driven by failpoints, not by
//! killing the machine.

use crate::CACHELINE;
use std::sync::atomic::{fence, Ordering};

/// Which flush instruction the running CPU supports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FlushKind {
    /// `clwb`: write back without evicting (preferred, matches the paper).
    Clwb,
    /// `clflushopt`: flush-and-evict, weakly ordered.
    ClflushOpt,
    /// `clflush`: flush-and-evict, strongly ordered.
    Clflush,
    /// No cache-line flush available; rely on fences only.
    FenceOnly,
}

#[cfg(target_arch = "x86_64")]
fn detect_flush_kind() -> FlushKind {
    // Leaf 7, sub-leaf 0: EBX bit 23 = clflushopt, bit 24 = clwb. Queried
    // via raw CPUID because this toolchain's feature-detection macro does
    // not know the `clwb` feature name.
    let leaf7 = core::arch::x86_64::__cpuid_count(7, 0);
    if leaf7.ebx & (1 << 24) != 0 {
        FlushKind::Clwb
    } else if leaf7.ebx & (1 << 23) != 0 {
        FlushKind::ClflushOpt
    } else {
        FlushKind::Clflush
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn detect_flush_kind() -> FlushKind {
    FlushKind::FenceOnly
}

fn flush_kind() -> FlushKind {
    use std::sync::OnceLock;
    static KIND: OnceLock<FlushKind> = OnceLock::new();
    *KIND.get_or_init(detect_flush_kind)
}

#[cfg(target_arch = "x86_64")]
unsafe fn clwb_line(ptr: *const u8) {
    // SAFETY: the caller guarantees `ptr` points into mapped memory; `clwb`
    // never faults on valid addresses and has no other side effects. The
    // instruction is emitted directly because the `_mm_clwb` intrinsic is
    // not stable on this toolchain.
    unsafe {
        core::arch::asm!("clwb [{0}]", in(reg) ptr, options(nostack, preserves_flags));
    }
}

#[cfg(target_arch = "x86_64")]
unsafe fn clflushopt_line(ptr: *const u8) {
    // SAFETY: same contract as `clwb_line`.
    unsafe {
        core::arch::asm!("clflushopt [{0}]", in(reg) ptr, options(nostack, preserves_flags));
    }
}

#[cfg(target_arch = "x86_64")]
unsafe fn clflush_line(ptr: *const u8) {
    // SAFETY: same contract as `clwb_line`; `clflush` is part of SSE2 which
    // is baseline on x86_64.
    unsafe { core::arch::x86_64::_mm_clflush(ptr) }
}

/// Flushes every cache line overlapping `[ptr, ptr + len)`.
///
/// Does not order subsequent stores; call [`fence`](sfence) (or use
/// [`persist`]) for the full persist sequence.
///
/// # Safety-relevant contract
///
/// `ptr .. ptr + len` must lie within a single mapped allocation. Passing an
/// unmapped address is undefined behaviour on targets where a hardware flush
/// instruction is issued.
pub fn flush(ptr: *const u8, len: usize) {
    if len == 0 {
        return;
    }
    let kind = flush_kind();
    if kind == FlushKind::FenceOnly {
        fence(Ordering::SeqCst);
        return;
    }
    let start = ptr as usize & !(CACHELINE - 1);
    let end = ptr as usize + len;
    let mut line = start;
    while line < end {
        #[cfg(target_arch = "x86_64")]
        {
            // SAFETY: `line` lies within the caller-provided mapped range
            // rounded down to a cache-line boundary, which is still inside
            // the same mapping because mappings are page aligned.
            unsafe {
                match kind {
                    FlushKind::Clwb => clwb_line(line as *const u8),
                    FlushKind::ClflushOpt => clflushopt_line(line as *const u8),
                    FlushKind::Clflush => clflush_line(line as *const u8),
                    FlushKind::FenceOnly => {}
                }
            }
        }
        line += CACHELINE;
    }
}

/// Issues a store fence ordering all previous flushes/stores.
pub fn sfence() {
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: `_mm_sfence` has no preconditions.
        unsafe { core::arch::x86_64::_mm_sfence() }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        fence(Ordering::SeqCst);
    }
}

/// Flushes `[ptr, ptr + len)` and fences: the canonical persist operation.
pub fn persist(ptr: *const u8, len: usize) {
    flush(ptr, len);
    sfence();
}

/// Flushes and fences a typed value in place.
pub fn persist_obj<T>(obj: &T) {
    persist(obj as *const T as *const u8, std::mem::size_of::<T>());
}

/// Flushes (without fencing) a typed value in place.
pub fn flush_obj<T>(obj: &T) {
    flush(obj as *const T as *const u8, std::mem::size_of::<T>());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flush_and_persist_do_not_crash_on_heap_memory() {
        let data = vec![0u8; 4096];
        flush(data.as_ptr(), data.len());
        sfence();
        persist(data.as_ptr(), data.len());
        persist(data.as_ptr().wrapping_add(1), 1);
        flush(data.as_ptr(), 0);
    }

    #[test]
    fn persist_obj_handles_unaligned_struct() {
        #[repr(C)]
        struct Odd {
            a: u8,
            b: u64,
            c: [u8; 3],
        }
        let odd = Odd {
            a: 1,
            b: 2,
            c: [3; 3],
        };
        persist_obj(&odd);
        flush_obj(&odd);
    }
}
