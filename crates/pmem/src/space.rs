//! Global puddle address-space reservation and puddle-file mapping.
//!
//! The paper reserves ~1 TiB of virtual address space at a fixed address as
//! the machine-wide *global puddle space* (§3.4); puddles are mapped into it
//! at their assigned addresses so that native pointers stay valid. We
//! reserve the range with an anonymous `PROT_NONE`, `MAP_NORESERVE` mapping
//! (costless) and map puddle files over parts of it with `MAP_FIXED`.
//!
//! Multiple "machines" (daemon instances) can coexist inside one test
//! process by reserving disjoint sub-ranges; puddles are relocatable, so a
//! reservation that lands at a different base than the one recorded in the
//! puddle files only triggers the normal pointer-rewrite path.

use crate::{PmError, Result, PAGE_SIZE};
use std::fs::File;
use std::os::unix::io::AsRawFd;
use std::ptr;

/// A reserved range of virtual address space.
///
/// The reservation is released (`munmap`) on drop. Mappings created inside
/// the reservation through [`VaReservation::map_file_fixed`] must be
/// unmapped (via [`VaReservation::unmap`]) before the reservation is
/// dropped; `MappedPuddle` handles this in higher layers.
#[derive(Debug)]
pub struct VaReservation {
    base: usize,
    len: usize,
}

// SAFETY: the reservation is just an address range; all mutation of memory
// inside it goes through raw pointers whose safety is the responsibility of
// the mapping owners. Sending the reservation between threads is sound.
unsafe impl Send for VaReservation {}
// SAFETY: see above; the struct itself is immutable after creation.
unsafe impl Sync for VaReservation {}

impl VaReservation {
    /// Reserves `len` bytes of address space, preferably at `base_hint`.
    ///
    /// If the hint is unavailable the kernel chooses the base; callers must
    /// therefore always use [`VaReservation::base`] rather than assuming the
    /// hint was honoured.
    pub fn reserve(base_hint: Option<usize>, len: usize) -> Result<Self> {
        if len == 0 || !len.is_multiple_of(PAGE_SIZE) {
            return Err(PmError::Misaligned {
                value: len,
                align: PAGE_SIZE,
            });
        }
        // First try the hint without MAP_FIXED (never clobbers existing
        // mappings); fall back to a kernel-chosen address.
        if let Some(hint) = base_hint {
            // SAFETY: anonymous PROT_NONE mapping; no existing memory is
            // touched because MAP_FIXED is not used.
            let addr = unsafe {
                libc::mmap(
                    hint as *mut libc::c_void,
                    len,
                    libc::PROT_NONE,
                    libc::MAP_PRIVATE | libc::MAP_ANONYMOUS | libc::MAP_NORESERVE,
                    -1,
                    0,
                )
            };
            if addr != libc::MAP_FAILED {
                if addr as usize == hint {
                    return Ok(VaReservation { base: hint, len });
                }
                // Kernel placed it elsewhere; keep that placement, it is
                // still a valid (relocated) global space.
                return Ok(VaReservation {
                    base: addr as usize,
                    len,
                });
            }
        }
        // SAFETY: as above, anonymous PROT_NONE reservation.
        let addr = unsafe {
            libc::mmap(
                ptr::null_mut(),
                len,
                libc::PROT_NONE,
                libc::MAP_PRIVATE | libc::MAP_ANONYMOUS | libc::MAP_NORESERVE,
                -1,
                0,
            )
        };
        if addr == libc::MAP_FAILED {
            return Err(PmError::Mmap(std::io::Error::last_os_error()));
        }
        Ok(VaReservation {
            base: addr as usize,
            len,
        })
    }

    /// Returns the base virtual address of the reservation.
    pub fn base(&self) -> usize {
        self.base
    }

    /// Returns the reservation length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if the reservation has zero length (never happens for
    /// reservations produced by [`VaReservation::reserve`]).
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns `true` if `[addr, addr + len)` falls entirely inside the
    /// reservation.
    pub fn contains(&self, addr: usize, len: usize) -> bool {
        addr >= self.base
            && addr
                .checked_add(len)
                .is_some_and(|end| end <= self.base + self.len)
    }

    fn check_range(&self, offset: usize, len: usize) -> Result<()> {
        if !offset.is_multiple_of(PAGE_SIZE) {
            return Err(PmError::Misaligned {
                value: offset,
                align: PAGE_SIZE,
            });
        }
        if len == 0 || !len.is_multiple_of(PAGE_SIZE) {
            return Err(PmError::Misaligned {
                value: len,
                align: PAGE_SIZE,
            });
        }
        if offset.checked_add(len).is_none() || offset + len > self.len {
            return Err(PmError::OutOfRange { offset, len });
        }
        Ok(())
    }

    /// Maps `len` bytes of `file` (from file offset 0) at `offset` inside the
    /// reservation, replacing the placeholder pages.
    ///
    /// Returns the virtual address of the mapping. The mapping is shared
    /// (`MAP_SHARED`), so stores reach the backing puddle file.
    pub fn map_file_fixed(
        &self,
        offset: usize,
        file: &File,
        len: usize,
        writable: bool,
    ) -> Result<usize> {
        self.check_range(offset, len)?;
        let prot = if writable {
            libc::PROT_READ | libc::PROT_WRITE
        } else {
            libc::PROT_READ
        };
        let target = (self.base + offset) as *mut libc::c_void;
        // SAFETY: the target range lies inside our own PROT_NONE reservation
        // (checked above), so MAP_FIXED only replaces placeholder pages that
        // this object owns; `file` stays open for the duration of the call
        // and the kernel keeps its own reference afterwards.
        let addr = unsafe {
            libc::mmap(
                target,
                len,
                prot,
                libc::MAP_SHARED | libc::MAP_FIXED,
                file.as_raw_fd(),
                0,
            )
        };
        if addr == libc::MAP_FAILED {
            return Err(PmError::Mmap(std::io::Error::last_os_error()));
        }
        Ok(addr as usize)
    }

    /// Maps `len` bytes of `file` at a kernel-chosen address outside the
    /// reservation (used by the PMDK baseline, which does not keep a global
    /// space).
    pub fn map_file_anywhere(file: &File, len: usize, writable: bool) -> Result<usize> {
        if len == 0 {
            return Err(PmError::Misaligned {
                value: len,
                align: PAGE_SIZE,
            });
        }
        let prot = if writable {
            libc::PROT_READ | libc::PROT_WRITE
        } else {
            libc::PROT_READ
        };
        // SAFETY: kernel-chosen placement, shared file mapping; no existing
        // memory is replaced.
        let addr = unsafe {
            libc::mmap(
                ptr::null_mut(),
                len,
                prot,
                libc::MAP_SHARED,
                file.as_raw_fd(),
                0,
            )
        };
        if addr == libc::MAP_FAILED {
            return Err(PmError::Mmap(std::io::Error::last_os_error()));
        }
        Ok(addr as usize)
    }

    /// Unmaps a file mapping created outside a reservation with
    /// [`VaReservation::map_file_anywhere`].
    ///
    /// # Safety
    ///
    /// `addr`/`len` must describe exactly one mapping previously returned by
    /// `map_file_anywhere` that has not been unmapped yet, and no live
    /// references into the mapping may exist.
    pub unsafe fn unmap_anywhere(addr: usize, len: usize) -> Result<()> {
        // SAFETY: forwarded contract from the caller.
        let rc = unsafe { libc::munmap(addr as *mut libc::c_void, len) };
        if rc != 0 {
            return Err(PmError::Mmap(std::io::Error::last_os_error()));
        }
        Ok(())
    }

    /// Replaces `[offset, offset + len)` with fresh `PROT_NONE` placeholder
    /// pages, effectively unmapping a puddle while keeping the reservation.
    ///
    /// # Safety
    ///
    /// No live references or raw-pointer accesses into the range may remain;
    /// after this call the pages fault on access.
    pub unsafe fn unmap(&self, offset: usize, len: usize) -> Result<()> {
        self.check_range(offset, len)?;
        let target = (self.base + offset) as *mut libc::c_void;
        // SAFETY: range checked to be inside our reservation; MAP_FIXED over
        // it restores the placeholder. Caller guarantees no live references.
        let addr = unsafe {
            libc::mmap(
                target,
                len,
                libc::PROT_NONE,
                libc::MAP_PRIVATE | libc::MAP_ANONYMOUS | libc::MAP_NORESERVE | libc::MAP_FIXED,
                -1,
                0,
            )
        };
        if addr == libc::MAP_FAILED {
            return Err(PmError::Mmap(std::io::Error::last_os_error()));
        }
        Ok(())
    }

    /// Synchronizes a mapped range back to its file (best effort; the
    /// reproduction's crash model does not rely on it).
    pub fn msync(&self, offset: usize, len: usize) -> Result<()> {
        self.check_range(offset, len)?;
        let target = (self.base + offset) as *mut libc::c_void;
        // SAFETY: range checked above and currently mapped (msync on a
        // PROT_NONE placeholder returns an error which we surface).
        let rc = unsafe { libc::msync(target, len, libc::MS_SYNC) };
        if rc != 0 {
            return Err(PmError::Mmap(std::io::Error::last_os_error()));
        }
        Ok(())
    }
}

impl Drop for VaReservation {
    fn drop(&mut self) {
        // SAFETY: we own [base, base+len); any file mappings inside were
        // created over our reservation and are released together with it.
        unsafe {
            libc::munmap(self.base as *mut libc::c_void, self.len);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pmdir::PmDir;

    #[test]
    fn reserve_and_release() {
        let res = VaReservation::reserve(None, 1 << 30).unwrap();
        assert!(res.base() != 0);
        assert_eq!(res.len(), 1 << 30);
        assert!(res.contains(res.base(), PAGE_SIZE));
        assert!(!res.contains(res.base() + (1 << 30), 1));
    }

    #[test]
    fn reserve_with_hint_prefers_hint() {
        // A high, normally-unused address.
        let hint = 0x5a00_0000_0000usize;
        let res = VaReservation::reserve(Some(hint), 1 << 24).unwrap();
        // Either the hint was honoured or the kernel relocated us; both are
        // valid, but on an idle test process the hint should normally win.
        assert!(res.base() != 0);
    }

    #[test]
    fn rejects_bad_lengths_and_offsets() {
        assert!(VaReservation::reserve(None, 0).is_err());
        assert!(VaReservation::reserve(None, 100).is_err());
        let res = VaReservation::reserve(None, 1 << 20).unwrap();
        let tmp = tempfile::tempdir().unwrap();
        let pm = PmDir::open(tmp.path()).unwrap();
        pm.create_puddle_file("p", PAGE_SIZE).unwrap();
        let (file, _) = pm.open_puddle_file("p", PAGE_SIZE).unwrap();
        assert!(res.map_file_fixed(1, &file, PAGE_SIZE, true).is_err());
        assert!(res.map_file_fixed(0, &file, 17, true).is_err());
        assert!(res.map_file_fixed(1 << 20, &file, PAGE_SIZE, true).is_err());
    }

    #[test]
    fn map_write_unmap_remap_reads_back() {
        let res = VaReservation::reserve(None, 1 << 22).unwrap();
        let tmp = tempfile::tempdir().unwrap();
        let pm = PmDir::open(tmp.path()).unwrap();
        pm.create_puddle_file("p", 4 * PAGE_SIZE).unwrap();
        let (file, _) = pm.open_puddle_file("p", 4 * PAGE_SIZE).unwrap();

        let addr = res
            .map_file_fixed(8 * PAGE_SIZE, &file, 4 * PAGE_SIZE, true)
            .unwrap();
        assert_eq!(addr, res.base() + 8 * PAGE_SIZE);
        // SAFETY: addr points at our fresh 4-page writable mapping.
        unsafe {
            std::ptr::write_bytes(addr as *mut u8, 0xAB, 4 * PAGE_SIZE);
        }
        res.msync(8 * PAGE_SIZE, 4 * PAGE_SIZE).unwrap();
        // SAFETY: no references into the mapping remain.
        unsafe { res.unmap(8 * PAGE_SIZE, 4 * PAGE_SIZE).unwrap() };

        // Remap elsewhere in the space and confirm the data survived.
        let (file2, _) = pm.open_puddle_file("p", 4 * PAGE_SIZE).unwrap();
        let addr2 = res
            .map_file_fixed(64 * PAGE_SIZE, &file2, 4 * PAGE_SIZE, false)
            .unwrap();
        // SAFETY: addr2 is a live read-only mapping of the same file.
        let byte = unsafe { *(addr2 as *const u8).add(PAGE_SIZE + 5) };
        assert_eq!(byte, 0xAB);
        // SAFETY: no references into the mapping remain.
        unsafe { res.unmap(64 * PAGE_SIZE, 4 * PAGE_SIZE).unwrap() };
    }

    #[test]
    fn map_anywhere_roundtrip() {
        let tmp = tempfile::tempdir().unwrap();
        let pm = PmDir::open(tmp.path()).unwrap();
        pm.create_puddle_file("q", PAGE_SIZE).unwrap();
        let (file, _) = pm.open_puddle_file("q", PAGE_SIZE).unwrap();
        let addr = VaReservation::map_file_anywhere(&file, PAGE_SIZE, true).unwrap();
        // SAFETY: fresh writable PAGE_SIZE mapping.
        unsafe {
            *(addr as *mut u64) = 0xdead_beef;
            assert_eq!(*(addr as *const u64), 0xdead_beef);
            VaReservation::unmap_anywhere(addr, PAGE_SIZE).unwrap();
        }
    }

    #[test]
    fn read_only_mapping_disallows_write_prot() {
        // We cannot portably catch SIGSEGV here; instead just validate that a
        // read-only mapping can be created and read.
        let res = VaReservation::reserve(None, 1 << 20).unwrap();
        let tmp = tempfile::tempdir().unwrap();
        let pm = PmDir::open(tmp.path()).unwrap();
        pm.create_puddle_file("r", PAGE_SIZE).unwrap();
        let (file, _) = pm.open_puddle_file("r", PAGE_SIZE).unwrap();
        let addr = res.map_file_fixed(0, &file, PAGE_SIZE, false).unwrap();
        // SAFETY: live read-only mapping.
        let v = unsafe { *(addr as *const u8) };
        assert_eq!(v, 0);
        // SAFETY: no references remain.
        unsafe { res.unmap(0, PAGE_SIZE).unwrap() };
    }
}
