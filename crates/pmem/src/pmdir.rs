//! The "DAX filesystem": a directory of puddle files plus daemon metadata.
//!
//! The paper stores each puddle as a file owned by `puddled` on a DAX
//! filesystem mounted at `/mnt/pmem0`. We reproduce the same structure in an
//! ordinary directory: fixed-size puddle files that are mapped with
//! `MAP_SHARED`, and small metadata files that are updated atomically
//! (write-to-temp + `rename`) so the daemon's own records survive crashes.

use crate::{PmError, Result, PAGE_SIZE};
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};

/// A directory acting as the persistent-memory device.
#[derive(Debug, Clone)]
pub struct PmDir {
    root: PathBuf,
}

impl PmDir {
    /// Opens (creating if necessary) a PM directory rooted at `root`.
    pub fn open(root: impl AsRef<Path>) -> Result<Self> {
        let root = root.as_ref().to_path_buf();
        fs::create_dir_all(&root)?;
        fs::create_dir_all(root.join("puddles"))?;
        fs::create_dir_all(root.join("meta"))?;
        fs::create_dir_all(root.join("exports"))?;
        Ok(PmDir { root })
    }

    /// Returns the root path of the PM directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Returns the path that stores the puddle file named `name`.
    pub fn puddle_path(&self, name: &str) -> PathBuf {
        self.root.join("puddles").join(name)
    }

    /// Returns the directory used for exported pools.
    pub fn exports_dir(&self) -> PathBuf {
        self.root.join("exports")
    }

    /// Returns the path of the metadata file `name` (for callers that manage
    /// their own file handles, e.g. an append-only log; atomic
    /// replace-style updates should use [`PmDir::write_meta`] instead).
    pub fn meta_path(&self, name: &str) -> PathBuf {
        self.root.join("meta").join(name)
    }

    /// Creates a zero-filled puddle file of `size` bytes and returns its path.
    ///
    /// `size` must be a multiple of the page size; puddles are "regions of
    /// memory ... of any size in multiples of an OS page" (§4.3).
    pub fn create_puddle_file(&self, name: &str, size: usize) -> Result<PathBuf> {
        if size == 0 || !size.is_multiple_of(PAGE_SIZE) {
            return Err(PmError::Misaligned {
                value: size,
                align: PAGE_SIZE,
            });
        }
        let path = self.puddle_path(name);
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(&path)?;
        file.set_len(size as u64)?;
        file.sync_all()?;
        Ok(path)
    }

    /// Opens an existing puddle file, verifying its recorded size.
    pub fn open_puddle_file(&self, name: &str, expect_size: usize) -> Result<(File, PathBuf)> {
        let path = self.puddle_path(name);
        let file = OpenOptions::new().read(true).write(true).open(&path)?;
        let len = file.metadata()?.len() as usize;
        if len != expect_size {
            return Err(PmError::Corruption(format!(
                "puddle file {name} has size {len}, expected {expect_size}"
            )));
        }
        Ok((file, path))
    }

    /// Deletes a puddle file.
    pub fn delete_puddle_file(&self, name: &str) -> Result<()> {
        fs::remove_file(self.puddle_path(name))?;
        Ok(())
    }

    /// Returns `true` if a puddle file with this name exists.
    pub fn puddle_exists(&self, name: &str) -> bool {
        self.puddle_path(name).exists()
    }

    /// Copies a puddle file into an arbitrary destination path (used by pool
    /// export).
    pub fn copy_puddle_file(&self, name: &str, dest: &Path) -> Result<u64> {
        Ok(fs::copy(self.puddle_path(name), dest)?)
    }

    /// Lists the names of all puddle files.
    pub fn list_puddles(&self) -> Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in fs::read_dir(self.root.join("puddles"))? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                names.push(entry.file_name().to_string_lossy().into_owned());
            }
        }
        names.sort();
        Ok(names)
    }

    /// Atomically replaces the metadata file `name` with `bytes`.
    ///
    /// Uses the classic write-temp + fsync + rename sequence so a crash never
    /// leaves a half-written metadata file.
    pub fn write_meta(&self, name: &str, bytes: &[u8]) -> Result<()> {
        let dir = self.root.join("meta");
        let tmp = dir.join(format!("{name}.tmp"));
        let dst = dir.join(name);
        {
            let mut file = File::create(&tmp)?;
            file.write_all(bytes)?;
            file.sync_all()?;
        }
        fs::rename(&tmp, &dst)?;
        Ok(())
    }

    /// Reads the metadata file `name`, or `Ok(None)` if it does not exist.
    pub fn read_meta(&self, name: &str) -> Result<Option<Vec<u8>>> {
        let path = self.root.join("meta").join(name);
        match File::open(&path) {
            Ok(mut file) => {
                let mut buf = Vec::new();
                file.read_to_end(&mut buf)?;
                Ok(Some(buf))
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(PmError::Io(e)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir() -> (tempfile::TempDir, PmDir) {
        let tmp = tempfile::tempdir().unwrap();
        let pm = PmDir::open(tmp.path()).unwrap();
        (tmp, pm)
    }

    #[test]
    fn create_and_open_puddle_file() {
        let (_tmp, pm) = dir();
        let path = pm.create_puddle_file("p0", 2 * PAGE_SIZE).unwrap();
        assert!(path.exists());
        let (file, _) = pm.open_puddle_file("p0", 2 * PAGE_SIZE).unwrap();
        assert_eq!(file.metadata().unwrap().len(), (2 * PAGE_SIZE) as u64);
    }

    #[test]
    fn create_rejects_unaligned_and_zero_sizes() {
        let (_tmp, pm) = dir();
        assert!(pm.create_puddle_file("bad", 100).is_err());
        assert!(pm.create_puddle_file("bad", 0).is_err());
    }

    #[test]
    fn create_rejects_duplicate_names() {
        let (_tmp, pm) = dir();
        pm.create_puddle_file("dup", PAGE_SIZE).unwrap();
        assert!(pm.create_puddle_file("dup", PAGE_SIZE).is_err());
    }

    #[test]
    fn open_detects_size_mismatch() {
        let (_tmp, pm) = dir();
        pm.create_puddle_file("p", PAGE_SIZE).unwrap();
        assert!(pm.open_puddle_file("p", 2 * PAGE_SIZE).is_err());
    }

    #[test]
    fn list_and_delete_puddles() {
        let (_tmp, pm) = dir();
        pm.create_puddle_file("a", PAGE_SIZE).unwrap();
        pm.create_puddle_file("b", PAGE_SIZE).unwrap();
        assert_eq!(pm.list_puddles().unwrap(), vec!["a", "b"]);
        pm.delete_puddle_file("a").unwrap();
        assert_eq!(pm.list_puddles().unwrap(), vec!["b"]);
        assert!(!pm.puddle_exists("a"));
        assert!(pm.puddle_exists("b"));
    }

    #[test]
    fn meta_roundtrip_and_missing() {
        let (_tmp, pm) = dir();
        assert!(pm.read_meta("registry.json").unwrap().is_none());
        pm.write_meta("registry.json", b"{\"v\":1}").unwrap();
        assert_eq!(
            pm.read_meta("registry.json").unwrap().unwrap(),
            b"{\"v\":1}"
        );
        pm.write_meta("registry.json", b"{\"v\":2}").unwrap();
        assert_eq!(
            pm.read_meta("registry.json").unwrap().unwrap(),
            b"{\"v\":2}"
        );
    }
}
