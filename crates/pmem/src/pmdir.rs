//! The "DAX filesystem": a directory of puddle files plus daemon metadata.
//!
//! The paper stores each puddle as a file owned by `puddled` on a DAX
//! filesystem mounted at `/mnt/pmem0`. We reproduce the same structure in an
//! ordinary directory: fixed-size puddle files that are mapped with
//! `MAP_SHARED`, and small metadata files that are updated atomically
//! (write-to-temp + `rename`) so the daemon's own records survive crashes.

use crate::faultio::{self, FaultPlan, FaultSite, IoStats, SyncFault, WriteFault, MAX_IO_RETRIES};
use crate::{PmError, Result, PAGE_SIZE};
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// A directory acting as the persistent-memory device.
///
/// A `PmDir` may carry a [`FaultPlan`]; cloning the handle clones the plan
/// reference, so every layer that derives its file access from this
/// directory (registry metadata, the WAL, puddle files) consults the same
/// seeded schedule.
#[derive(Debug, Clone)]
pub struct PmDir {
    root: PathBuf,
    fault: Option<Arc<FaultPlan>>,
    stats: Arc<IoStats>,
}

impl PmDir {
    /// Opens (creating if necessary) a PM directory rooted at `root`.
    pub fn open(root: impl AsRef<Path>) -> Result<Self> {
        let root = root.as_ref().to_path_buf();
        fs::create_dir_all(&root)?;
        fs::create_dir_all(root.join("puddles"))?;
        fs::create_dir_all(root.join("meta"))?;
        fs::create_dir_all(root.join("exports"))?;
        Ok(PmDir {
            root,
            fault: None,
            stats: Arc::new(IoStats::default()),
        })
    }

    /// Attaches a fault-injection plan to this handle (and every clone made
    /// from it afterwards). Torture harness only; production paths never
    /// attach one.
    pub fn with_fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.fault = Some(plan);
        self
    }

    /// The attached fault plan, if any (layers owning their own file
    /// handles — e.g. the WAL — consult it directly).
    pub fn fault_plan(&self) -> Option<&Arc<FaultPlan>> {
        self.fault.as_ref()
    }

    /// The I/O robustness counters shared by every clone of this handle.
    pub fn io_stats(&self) -> &Arc<IoStats> {
        &self.stats
    }

    fn write_fault(&self, site: FaultSite, len: usize) -> Option<WriteFault> {
        self.fault.as_ref().and_then(|p| p.on_write(site, len))
    }

    fn sync_fault(&self, site: FaultSite) -> Option<SyncFault> {
        self.fault.as_ref().and_then(|p| p.on_sync(site))
    }

    /// Runs `op` with the bounded transient-error retry budget: a transient
    /// storage error (injected `EIO`, `Interrupted`) is retried up to
    /// [`MAX_IO_RETRIES`] times after `undo` cleans up the failed attempt's
    /// partial state; anything else — including `ENOSPC`, which retrying
    /// cannot fix — surfaces immediately.
    fn with_io_retries<T>(
        &self,
        mut op: impl FnMut() -> Result<T>,
        mut undo: impl FnMut(),
    ) -> Result<T> {
        let mut attempt = 0;
        loop {
            match op() {
                Ok(v) => return Ok(v),
                Err(e) if is_transient_pm(&e) => {
                    // Failed attempts clean up their partial state whether
                    // another retry follows or not; a non-transient error
                    // (below) must NOT undo — e.g. a duplicate-name
                    // rejection would otherwise delete the pre-existing
                    // file it collided with.
                    undo();
                    if attempt < MAX_IO_RETRIES {
                        attempt += 1;
                        self.stats.note_retry();
                    } else {
                        self.stats.note_transient();
                        return Err(e);
                    }
                }
                Err(e) => {
                    if matches!(e, PmError::NoSpace(_)) {
                        self.stats.note_enospc();
                    }
                    return Err(e);
                }
            }
        }
    }

    /// Returns the root path of the PM directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Returns the path that stores the puddle file named `name`.
    pub fn puddle_path(&self, name: &str) -> PathBuf {
        self.root.join("puddles").join(name)
    }

    /// Returns the directory used for exported pools.
    pub fn exports_dir(&self) -> PathBuf {
        self.root.join("exports")
    }

    /// Returns the path of the metadata file `name` (for callers that manage
    /// their own file handles, e.g. an append-only log; atomic
    /// replace-style updates should use [`PmDir::write_meta`] instead).
    pub fn meta_path(&self, name: &str) -> PathBuf {
        self.root.join("meta").join(name)
    }

    /// Creates a zero-filled puddle file of `size` bytes and returns its path.
    ///
    /// `size` must be a multiple of the page size; puddles are "regions of
    /// memory ... of any size in multiples of an OS page" (§4.3).
    pub fn create_puddle_file(&self, name: &str, size: usize) -> Result<PathBuf> {
        if size == 0 || !size.is_multiple_of(PAGE_SIZE) {
            return Err(PmError::Misaligned {
                value: size,
                align: PAGE_SIZE,
            });
        }
        let path = self.puddle_path(name);
        // `create_new` makes a duplicate name an error, which must survive
        // the retry wrapper: only *failed* attempts remove their partial
        // file, so a pre-existing puddle still rejects cleanly.
        self.with_io_retries(
            || {
                match self.write_fault(FaultSite::PuddleCreate, size) {
                    Some(WriteFault::Eio) => {
                        return Err(faultio::eio(FaultSite::PuddleCreate).into())
                    }
                    Some(WriteFault::Enospc) => return Err(faultio::enospc().into()),
                    Some(WriteFault::Short(keep)) => {
                        // Torn create: the file exists but is shorter than
                        // the puddle it was meant to back; the retry (or
                        // the caller's rollback) removes it.
                        let file = OpenOptions::new()
                            .read(true)
                            .write(true)
                            .create_new(true)
                            .open(&path)?;
                        let _ = file.set_len(keep as u64);
                        return Err(faultio::eio(FaultSite::PuddleCreate).into());
                    }
                    None => {}
                }
                let file = OpenOptions::new()
                    .read(true)
                    .write(true)
                    .create_new(true)
                    .open(&path)?;
                file.set_len(size as u64)?;
                match self.sync_fault(FaultSite::PuddleCreate) {
                    Some(SyncFault::Eio) => {
                        return Err(faultio::eio(FaultSite::PuddleCreate).into())
                    }
                    Some(SyncFault::Dropped) => {}
                    None => file.sync_all()?,
                }
                Ok(path.clone())
            },
            || {
                let _ = fs::remove_file(&path);
            },
        )
    }

    /// Opens an existing puddle file, verifying its recorded size.
    pub fn open_puddle_file(&self, name: &str, expect_size: usize) -> Result<(File, PathBuf)> {
        let path = self.puddle_path(name);
        let file = OpenOptions::new().read(true).write(true).open(&path)?;
        let len = file.metadata()?.len() as usize;
        if len != expect_size {
            return Err(PmError::Corruption(format!(
                "puddle file {name} has size {len}, expected {expect_size}"
            )));
        }
        Ok((file, path))
    }

    /// Deletes a puddle file.
    pub fn delete_puddle_file(&self, name: &str) -> Result<()> {
        self.with_io_retries(
            || {
                if let Some(WriteFault::Eio | WriteFault::Short(_)) =
                    self.write_fault(FaultSite::PuddleDelete, 0)
                {
                    return Err(faultio::eio(FaultSite::PuddleDelete).into());
                }
                fs::remove_file(self.puddle_path(name))?;
                Ok(())
            },
            || {},
        )
    }

    /// Returns `true` if a puddle file with this name exists.
    pub fn puddle_exists(&self, name: &str) -> bool {
        self.puddle_path(name).exists()
    }

    /// Copies a puddle file into an arbitrary destination path (used by pool
    /// export).
    pub fn copy_puddle_file(&self, name: &str, dest: &Path) -> Result<u64> {
        Ok(fs::copy(self.puddle_path(name), dest)?)
    }

    /// Lists the names of all puddle files.
    pub fn list_puddles(&self) -> Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in fs::read_dir(self.root.join("puddles"))? {
            let entry = entry?;
            if entry.file_type()?.is_file() {
                names.push(entry.file_name().to_string_lossy().into_owned());
            }
        }
        names.sort();
        Ok(names)
    }

    /// Atomically replaces the metadata file `name` with `bytes`.
    ///
    /// Uses the classic write-temp + fsync + rename sequence so a crash never
    /// leaves a half-written metadata file.
    pub fn write_meta(&self, name: &str, bytes: &[u8]) -> Result<()> {
        let dir = self.root.join("meta");
        let tmp = dir.join(format!("{name}.tmp"));
        let dst = dir.join(name);
        // A failed attempt aborts *before* the rename, so the previous
        // metadata generation stays intact whatever the plane injects — the
        // atomic-replace contract the daemon's checkpoints rely on.
        self.with_io_retries(
            || {
                {
                    let mut file = File::create(&tmp)?;
                    match self.write_fault(FaultSite::MetaWrite, bytes.len()) {
                        Some(WriteFault::Eio) => {
                            return Err(faultio::eio(FaultSite::MetaWrite).into())
                        }
                        Some(WriteFault::Enospc) => return Err(faultio::enospc().into()),
                        Some(WriteFault::Short(keep)) => {
                            let _ = file.write_all(&bytes[..keep]);
                            return Err(faultio::eio(FaultSite::MetaWrite).into());
                        }
                        None => {}
                    }
                    file.write_all(bytes)?;
                    match self.sync_fault(FaultSite::MetaWrite) {
                        Some(SyncFault::Eio) => {
                            return Err(faultio::eio(FaultSite::MetaWrite).into())
                        }
                        Some(SyncFault::Dropped) => {}
                        None => file.sync_all()?,
                    }
                }
                fs::rename(&tmp, &dst)?;
                Ok(())
            },
            || {
                let _ = fs::remove_file(&tmp);
            },
        )
    }

    /// Reads the metadata file `name`, or `Ok(None)` if it does not exist.
    pub fn read_meta(&self, name: &str) -> Result<Option<Vec<u8>>> {
        let path = self.root.join("meta").join(name);
        match File::open(&path) {
            Ok(mut file) => {
                let mut buf = Vec::new();
                file.read_to_end(&mut buf)?;
                Ok(Some(buf))
            }
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(PmError::Io(e)),
        }
    }
}

/// `true` for substrate errors the bounded retry budget applies to.
fn is_transient_pm(e: &PmError) -> bool {
    matches!(e, PmError::Io(io) if faultio::is_transient_io(io))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dir() -> (tempfile::TempDir, PmDir) {
        let tmp = tempfile::tempdir().unwrap();
        let pm = PmDir::open(tmp.path()).unwrap();
        (tmp, pm)
    }

    #[test]
    fn create_and_open_puddle_file() {
        let (_tmp, pm) = dir();
        let path = pm.create_puddle_file("p0", 2 * PAGE_SIZE).unwrap();
        assert!(path.exists());
        let (file, _) = pm.open_puddle_file("p0", 2 * PAGE_SIZE).unwrap();
        assert_eq!(file.metadata().unwrap().len(), (2 * PAGE_SIZE) as u64);
    }

    #[test]
    fn create_rejects_unaligned_and_zero_sizes() {
        let (_tmp, pm) = dir();
        assert!(pm.create_puddle_file("bad", 100).is_err());
        assert!(pm.create_puddle_file("bad", 0).is_err());
    }

    #[test]
    fn create_rejects_duplicate_names() {
        let (_tmp, pm) = dir();
        pm.create_puddle_file("dup", PAGE_SIZE).unwrap();
        assert!(pm.create_puddle_file("dup", PAGE_SIZE).is_err());
    }

    #[test]
    fn open_detects_size_mismatch() {
        let (_tmp, pm) = dir();
        pm.create_puddle_file("p", PAGE_SIZE).unwrap();
        assert!(pm.open_puddle_file("p", 2 * PAGE_SIZE).is_err());
    }

    #[test]
    fn list_and_delete_puddles() {
        let (_tmp, pm) = dir();
        pm.create_puddle_file("a", PAGE_SIZE).unwrap();
        pm.create_puddle_file("b", PAGE_SIZE).unwrap();
        assert_eq!(pm.list_puddles().unwrap(), vec!["a", "b"]);
        pm.delete_puddle_file("a").unwrap();
        assert_eq!(pm.list_puddles().unwrap(), vec!["b"]);
        assert!(!pm.puddle_exists("a"));
        assert!(pm.puddle_exists("b"));
    }

    #[test]
    fn transient_faults_are_absorbed_by_retries() {
        use crate::faultio::{FaultPlan, FaultProfile};
        let tmp = tempfile::tempdir().unwrap();
        // 6% transient faults per class: plenty of injections across 150
        // operations, and (for this seed) never MAX_IO_RETRIES+1 in a row.
        let plan = FaultPlan::new(0xF00D, FaultProfile::transient(60_000));
        let pm = PmDir::open(tmp.path())
            .unwrap()
            .with_fault_plan(Arc::clone(&plan));
        for i in 0..50 {
            let name = format!("p{i}");
            pm.create_puddle_file(&name, PAGE_SIZE).unwrap();
            pm.write_meta("reg", format!("gen-{i}").as_bytes()).unwrap();
            assert_eq!(
                pm.read_meta("reg").unwrap().unwrap(),
                format!("gen-{i}").as_bytes()
            );
            pm.delete_puddle_file(&name).unwrap();
            assert!(!pm.puddle_exists(&name));
        }
        assert!(plan.injected() > 0, "30% rates must inject across 150 ops");
        assert!(
            pm.io_stats()
                .io_retries
                .load(std::sync::atomic::Ordering::Relaxed)
                > 0
        );
    }

    #[test]
    fn enospc_surfaces_typed_and_counted() {
        use crate::faultio::{FaultPlan, FaultProfile};
        let tmp = tempfile::tempdir().unwrap();
        let plan = FaultPlan::new(
            1,
            FaultProfile {
                write_enospc_ppm: 1_000_000,
                ..FaultProfile::default()
            },
        );
        let pm = PmDir::open(tmp.path()).unwrap().with_fault_plan(plan);
        match pm.create_puddle_file("p", PAGE_SIZE) {
            Err(PmError::NoSpace(_)) => {}
            other => panic!("expected NoSpace, got {other:?}"),
        }
        assert!(!pm.puddle_exists("p"));
        assert_eq!(
            pm.io_stats()
                .enospc_rejections
                .load(std::sync::atomic::Ordering::Relaxed),
            1
        );
    }

    #[test]
    fn meta_roundtrip_and_missing() {
        let (_tmp, pm) = dir();
        assert!(pm.read_meta("registry.json").unwrap().is_none());
        pm.write_meta("registry.json", b"{\"v\":1}").unwrap();
        assert_eq!(
            pm.read_meta("registry.json").unwrap().unwrap(),
            b"{\"v\":1}"
        );
        pm.write_meta("registry.json", b"{\"v\":2}").unwrap();
        assert_eq!(
            pm.read_meta("registry.json").unwrap().unwrap(),
            b"{\"v\":2}"
        );
    }
}
