//! Torn-write simulation for crash-consistency property tests.
//!
//! Real power failures lose the contents of CPU caches: only cache lines
//! that were explicitly flushed (and fenced) before the failure are
//! guaranteed durable, and un-flushed lines may persist *partially* or in
//! any order. [`ShadowBuffer`] models exactly that: writes land in a
//! *working* image and are marked dirty per cache line; `flush` copies the
//! named lines into the *durable* image; `crash` produces an image where
//! every still-dirty line independently either made it to PM or did not.
//!
//! The log format's checksums are the mechanism that makes recovery safe in
//! the presence of such torn writes, so the logfmt property tests run
//! against this buffer.

use crate::CACHELINE;
use rand::Rng;
use std::collections::BTreeSet;

/// A twin working/durable byte buffer with cache-line flush tracking.
#[derive(Debug, Clone)]
pub struct ShadowBuffer {
    working: Vec<u8>,
    durable: Vec<u8>,
    dirty_lines: BTreeSet<usize>,
}

impl ShadowBuffer {
    /// Creates a zero-filled shadow buffer of `len` bytes.
    pub fn new(len: usize) -> Self {
        ShadowBuffer {
            working: vec![0; len],
            durable: vec![0; len],
            dirty_lines: BTreeSet::new(),
        }
    }

    /// Returns the buffer length in bytes.
    pub fn len(&self) -> usize {
        self.working.len()
    }

    /// Returns `true` if the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.working.is_empty()
    }

    /// Writes `data` at `offset` into the working image.
    ///
    /// # Panics
    ///
    /// Panics if the write would run past the end of the buffer.
    pub fn write(&mut self, offset: usize, data: &[u8]) {
        assert!(
            offset + data.len() <= self.working.len(),
            "write out of bounds"
        );
        self.working[offset..offset + data.len()].copy_from_slice(data);
        if data.is_empty() {
            return;
        }
        let first = offset / CACHELINE;
        let last = (offset + data.len() - 1) / CACHELINE;
        for line in first..=last {
            self.dirty_lines.insert(line);
        }
    }

    /// Reads `len` bytes at `offset` from the working image.
    pub fn read(&self, offset: usize, len: usize) -> &[u8] {
        &self.working[offset..offset + len]
    }

    /// Flushes every cache line overlapping `[offset, offset + len)` to the
    /// durable image (models `clwb` + `sfence` over the range).
    pub fn flush(&mut self, offset: usize, len: usize) {
        if len == 0 {
            return;
        }
        let first = offset / CACHELINE;
        let last = (offset + len - 1) / CACHELINE;
        for line in first..=last {
            self.flush_line(line);
        }
    }

    /// Flushes the whole buffer.
    pub fn flush_all(&mut self) {
        let lines: Vec<usize> = self.dirty_lines.iter().copied().collect();
        for line in lines {
            self.flush_line(line);
        }
    }

    fn flush_line(&mut self, line: usize) {
        let start = line * CACHELINE;
        let end = (start + CACHELINE).min(self.working.len());
        if start >= end {
            return;
        }
        self.durable[start..end].copy_from_slice(&self.working[start..end]);
        self.dirty_lines.remove(&line);
    }

    /// Returns the number of cache lines written but not yet flushed.
    pub fn dirty_line_count(&self) -> usize {
        self.dirty_lines.len()
    }

    /// Produces a crash image: the durable image plus a random subset of the
    /// still-dirty cache lines (each survives with probability
    /// `survival_prob`), modelling lines that happened to be evicted before
    /// the power failure.
    pub fn crash_image<R: Rng>(&self, rng: &mut R, survival_prob: f64) -> Vec<u8> {
        let mut image = self.durable.clone();
        for &line in &self.dirty_lines {
            if rng.gen_bool(survival_prob.clamp(0.0, 1.0)) {
                let start = line * CACHELINE;
                let end = (start + CACHELINE).min(self.working.len());
                image[start..end].copy_from_slice(&self.working[start..end]);
            }
        }
        image
    }

    /// Returns the durable image only (crash with no surviving dirty lines).
    pub fn durable_image(&self) -> Vec<u8> {
        self.durable.clone()
    }

    /// Returns the working image (a crash-free shutdown).
    pub fn working_image(&self) -> Vec<u8> {
        self.working.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn unflushed_writes_do_not_reach_durable_image() {
        let mut buf = ShadowBuffer::new(256);
        buf.write(0, &[1, 2, 3, 4]);
        assert_eq!(buf.read(0, 4), &[1, 2, 3, 4]);
        assert_eq!(buf.durable_image()[0..4], [0, 0, 0, 0]);
        assert_eq!(buf.dirty_line_count(), 1);
    }

    #[test]
    fn flush_makes_lines_durable() {
        let mut buf = ShadowBuffer::new(256);
        buf.write(60, &[9; 10]); // spans two cache lines
        assert_eq!(buf.dirty_line_count(), 2);
        buf.flush(60, 10);
        assert_eq!(buf.dirty_line_count(), 0);
        assert_eq!(&buf.durable_image()[60..70], &[9; 10]);
    }

    #[test]
    fn crash_image_with_zero_survival_equals_durable() {
        let mut buf = ShadowBuffer::new(1024);
        buf.write(0, &[7; 512]);
        buf.flush(0, 128);
        let mut rng = rand::rngs::StdRng::seed_from_u64(42);
        let img = buf.crash_image(&mut rng, 0.0);
        assert_eq!(img, buf.durable_image());
        assert_eq!(&img[0..128], &[7; 128]);
        assert_eq!(&img[128..512], &[0; 384]);
    }

    #[test]
    fn crash_image_with_full_survival_equals_working() {
        let mut buf = ShadowBuffer::new(512);
        buf.write(3, &[5; 100]);
        let mut rng = rand::rngs::StdRng::seed_from_u64(7);
        let img = buf.crash_image(&mut rng, 1.0);
        assert_eq!(img, buf.working_image());
    }

    #[test]
    fn flush_all_clears_dirty_lines() {
        let mut buf = ShadowBuffer::new(4096);
        for i in 0..16 {
            buf.write(i * 200, &[i as u8; 50]);
        }
        assert!(buf.dirty_line_count() > 0);
        buf.flush_all();
        assert_eq!(buf.dirty_line_count(), 0);
        assert_eq!(buf.durable_image(), buf.working_image());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_write_panics() {
        let mut buf = ShadowBuffer::new(64);
        buf.write(60, &[0; 10]);
    }
}
