//! Named crash-injection points.
//!
//! The paper validates recovery by "injecting crashes into Puddles' runtime"
//! (§5.1 Correctness Check). We reproduce that with a tiny process-global
//! failpoint registry: tests arm a named point (optionally after N hits),
//! the commit/allocation/recovery code calls [`should_fail`] at each stage
//! boundary, and when the point fires the caller aborts the operation
//! exactly as a power failure would, leaving persistent state as-is for the
//! daemon's recovery to repair.
//!
//! Failpoints are compiled in unconditionally (they are a handful of hash
//! lookups guarded by a fast atomic emptiness check), so integration tests
//! and the crash-consistency harness can use them against release builds.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Number of currently armed failpoints; fast path check.
static ARMED: AtomicUsize = AtomicUsize::new(0);

struct Registry {
    points: HashMap<String, usize>,
    log: Vec<String>,
}

fn registry() -> &'static Mutex<Registry> {
    use std::sync::OnceLock;
    static REG: OnceLock<Mutex<Registry>> = OnceLock::new();
    REG.get_or_init(|| {
        Mutex::new(Registry {
            points: HashMap::new(),
            log: Vec::new(),
        })
    })
}

/// Arms `name` so that the `after`-th call to [`should_fail`] fires
/// (`after == 0` fires on the first call).
pub fn arm(name: &str, after: usize) {
    let mut reg = registry().lock();
    if reg.points.insert(name.to_string(), after).is_none() {
        ARMED.fetch_add(1, Ordering::SeqCst);
    }
}

/// Disarms `name`; does nothing if it was not armed.
pub fn disarm(name: &str) {
    let mut reg = registry().lock();
    if reg.points.remove(name).is_some() {
        ARMED.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Disarms every failpoint and clears the hit log.
pub fn clear_all() {
    let mut reg = registry().lock();
    if !reg.points.is_empty() {
        ARMED.store(0, Ordering::SeqCst);
    }
    reg.points.clear();
    reg.log.clear();
}

/// Returns `true` when the named failpoint fires on this call.
///
/// The armed counter is decremented on every call; the point fires (and is
/// disarmed) when the counter reaches zero.
pub fn should_fail(name: &str) -> bool {
    if ARMED.load(Ordering::Relaxed) == 0 {
        return false;
    }
    let mut reg = registry().lock();
    let fire = match reg.points.get_mut(name) {
        Some(remaining) => {
            if *remaining == 0 {
                true
            } else {
                *remaining -= 1;
                false
            }
        }
        None => false,
    };
    if fire {
        reg.points.remove(name);
        ARMED.fetch_sub(1, Ordering::SeqCst);
        reg.log.push(name.to_string());
    }
    fire
}

/// Returns the names of failpoints that have fired since the last
/// [`clear_all`], in firing order.
pub fn fired() -> Vec<String> {
    registry().lock().log.clone()
}

/// Standard failpoint names used throughout the workspace, collected here so
/// tests and implementation cannot drift apart.
pub mod names {
    /// After undo-logged locations are flushed, before the sequence range
    /// advances to the redo stage (end of Fig. 7 stage 1).
    pub const COMMIT_AFTER_UNDO_FLUSH: &str = "tx.commit.after_undo_flush";
    /// After the sequence range advances to (2,4), before any redo entry is
    /// applied (start of Fig. 7 stage 2).
    pub const COMMIT_BEFORE_REDO_APPLY: &str = "tx.commit.before_redo_apply";
    /// In the middle of applying redo entries.
    pub const COMMIT_MID_REDO_APPLY: &str = "tx.commit.mid_redo_apply";
    /// After redo entries are applied, before the log is invalidated
    /// (end of Fig. 7 stage 2).
    pub const COMMIT_BEFORE_INVALIDATE: &str = "tx.commit.before_invalidate";
    /// In the middle of writing a log entry (models a torn log append).
    pub const LOG_APPEND_TORN: &str = "log.append.torn";
    /// Before a log append begins (models a power failure after N fully
    /// flushed, unfenced appends: arm with `after == N` and exactly the
    /// first N entries are durable).
    pub const LOG_APPEND_CRASH: &str = "log.append.crash";
    /// While a transaction extends its log chain: after the daemon
    /// allocated the next log puddle but before it was registered in the
    /// log space (the puddle is unreachable by recovery and must be swept
    /// at the next daemon startup).
    pub const LOG_CHAIN_ALLOC_CRASH: &str = "log.chain.after_alloc";
    /// While a transaction extends its log chain: after the next segment
    /// was registered in the log space but before its first append (the
    /// empty tail is benign for replay and is reclaimed by recovery).
    pub const LOG_CHAIN_REGISTER_CRASH: &str = "log.chain.after_register";
    /// During transaction body execution, before commit begins.
    pub const TX_BODY: &str = "tx.body";
    /// While the allocator mutates persistent metadata inside a transaction.
    pub const ALLOC_METADATA: &str = "alloc.metadata";
    /// While the daemon rewrites pointers during relocation.
    pub const RELOC_MID_REWRITE: &str = "reloc.mid_rewrite";
    /// While the metadata-WAL group-commit leader writes a batch: only a
    /// prefix of the batch reaches the file (some records durable, the last
    /// one torn).
    pub const WAL_MID_GROUP_COMMIT: &str = "wal.group_commit.mid";
    /// While a metadata-WAL record is appended: the record's tail bytes are
    /// lost (models a torn append, like `LOG_APPEND_TORN` for client logs).
    pub const WAL_APPEND_TORN: &str = "wal.append.torn";
    /// After the registry checkpoint document is written and renamed, before
    /// the WAL is truncated (replay must skip records the checkpoint
    /// already covers).
    pub const WAL_CHECKPOINT_BEFORE_TRUNCATE: &str = "wal.checkpoint.before_truncate";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_points_never_fire() {
        clear_all();
        assert!(!should_fail("nope"));
        assert!(fired().is_empty());
    }

    #[test]
    fn armed_point_fires_once_after_count() {
        clear_all();
        arm("p", 2);
        assert!(!should_fail("p"));
        assert!(!should_fail("p"));
        assert!(should_fail("p"));
        // Disarmed after firing.
        assert!(!should_fail("p"));
        assert_eq!(fired(), vec!["p".to_string()]);
        clear_all();
    }

    #[test]
    fn disarm_prevents_firing() {
        clear_all();
        arm("q", 0);
        disarm("q");
        assert!(!should_fail("q"));
        clear_all();
    }
}
