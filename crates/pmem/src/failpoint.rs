//! Named crash-injection points.
//!
//! The paper validates recovery by "injecting crashes into Puddles' runtime"
//! (§5.1 Correctness Check). We reproduce that with a tiny process-global
//! failpoint registry: tests arm a named point (optionally after N hits),
//! the commit/allocation/recovery code calls [`should_fail`] at each stage
//! boundary, and when the point fires the caller aborts the operation
//! exactly as a power failure would, leaving persistent state as-is for the
//! daemon's recovery to repair.
//!
//! Failpoints are compiled in unconditionally (they are a handful of hash
//! lookups guarded by a fast atomic emptiness check), so integration tests
//! and the crash-consistency harness can use them against release builds.
//!
//! # Scoping
//!
//! [`arm`] arms a point **globally**: any thread's next matching
//! [`should_fail`] fires it. [`arm_scoped`] restricts the point to the
//! *calling thread*, which is what lets the randomized crash-consistency
//! sweep run trials in parallel — each trial thread arms its own crash
//! points and cannot trip (or consume) another trial's. A scoped point
//! shadows nothing: scoped and global arms of the same name coexist, and
//! `should_fail` consults the caller's scoped entry first, then the global
//! one.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::thread::ThreadId;

/// Number of currently armed failpoints; fast path check.
static ARMED: AtomicUsize = AtomicUsize::new(0);

/// Key of one armed point: the name plus an optional owning thread
/// (`None` = global, fires on any thread).
type Key = (String, Option<ThreadId>);

struct Registry {
    points: HashMap<Key, usize>,
    log: Vec<String>,
}

fn registry() -> &'static Mutex<Registry> {
    use std::sync::OnceLock;
    static REG: OnceLock<Mutex<Registry>> = OnceLock::new();
    REG.get_or_init(|| {
        Mutex::new(Registry {
            points: HashMap::new(),
            log: Vec::new(),
        })
    })
}

fn arm_key(key: Key, after: usize) {
    let mut reg = registry().lock();
    if reg.points.insert(key, after).is_none() {
        ARMED.fetch_add(1, Ordering::SeqCst);
    }
}

/// Arms `name` so that the `after`-th call to [`should_fail`] — from any
/// thread — fires (`after == 0` fires on the first call).
pub fn arm(name: &str, after: usize) {
    arm_key((name.to_string(), None), after);
}

/// Arms `name` for the **calling thread only**: `should_fail(name)` from
/// other threads neither fires nor consumes the countdown. Parallel test
/// harnesses use this so concurrent trials' crash points stay independent.
pub fn arm_scoped(name: &str, after: usize) {
    arm_key((name.to_string(), Some(std::thread::current().id())), after);
}

/// Disarms `name` (both the global entry and the calling thread's scoped
/// entry); does nothing if it was not armed.
pub fn disarm(name: &str) {
    let mut reg = registry().lock();
    for key in [
        (name.to_string(), None),
        (name.to_string(), Some(std::thread::current().id())),
    ] {
        if reg.points.remove(&key).is_some() {
            ARMED.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// Disarms every failpoint and clears the hit log.
pub fn clear_all() {
    let mut reg = registry().lock();
    if !reg.points.is_empty() {
        ARMED.store(0, Ordering::SeqCst);
    }
    reg.points.clear();
    reg.log.clear();
}

/// Disarms every failpoint scoped to the calling thread (global entries and
/// other threads' scoped entries are untouched); per-trial cleanup for
/// parallel harnesses.
pub fn clear_current_thread() {
    let tid = std::thread::current().id();
    let mut reg = registry().lock();
    let mine: Vec<Key> = reg
        .points
        .keys()
        .filter(|(_, scope)| *scope == Some(tid))
        .cloned()
        .collect();
    for key in mine {
        reg.points.remove(&key);
        ARMED.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Returns `true` when the named failpoint fires on this call.
///
/// The armed counter is decremented on every call; the point fires (and is
/// disarmed) when the counter reaches zero. The calling thread's scoped
/// entry is consulted first, then the global one.
pub fn should_fail(name: &str) -> bool {
    if ARMED.load(Ordering::Relaxed) == 0 {
        return false;
    }
    let mut reg = registry().lock();
    let scoped = (name.to_string(), Some(std::thread::current().id()));
    let global = (name.to_string(), None);
    let key = if reg.points.contains_key(&scoped) {
        scoped
    } else {
        global
    };
    let fire = match reg.points.get_mut(&key) {
        Some(remaining) => {
            if *remaining == 0 {
                true
            } else {
                *remaining -= 1;
                false
            }
        }
        None => false,
    };
    if fire {
        reg.points.remove(&key);
        ARMED.fetch_sub(1, Ordering::SeqCst);
        reg.log.push(name.to_string());
    }
    fire
}

/// Returns the names of failpoints that have fired since the last
/// [`clear_all`], in firing order.
pub fn fired() -> Vec<String> {
    registry().lock().log.clone()
}

/// RAII guard that disarms the calling thread's scoped failpoints when
/// dropped — **including on panic**, which a bare `clear_current_thread()`
/// at the end of a trial misses. A trial thread that panics mid-trial would
/// otherwise leak its scoped entries into the registry, where they pin the
/// `ARMED` fast-path counter above zero and slow (or, after thread-id
/// reuse, poison) every later trial. `!Send`, so the drop runs on the
/// thread whose entries it clears.
#[must_use = "the guard clears scoped failpoints when dropped"]
pub struct ScopedClearGuard {
    _not_send: std::marker::PhantomData<*const ()>,
}

/// Returns a guard that calls [`clear_current_thread`] when dropped. Take
/// one at the top of every parallel-trial body that arms scoped points.
pub fn scoped_clear_guard() -> ScopedClearGuard {
    ScopedClearGuard {
        _not_send: std::marker::PhantomData,
    }
}

impl Drop for ScopedClearGuard {
    fn drop(&mut self) {
        clear_current_thread();
    }
}

/// Standard failpoint names used throughout the workspace, collected here so
/// tests and implementation cannot drift apart.
pub mod names {
    /// After undo-logged locations are flushed, before the sequence range
    /// advances to the redo stage (end of Fig. 7 stage 1).
    pub const COMMIT_AFTER_UNDO_FLUSH: &str = "tx.commit.after_undo_flush";
    /// After the sequence range advances to (2,4), before any redo entry is
    /// applied (start of Fig. 7 stage 2).
    pub const COMMIT_BEFORE_REDO_APPLY: &str = "tx.commit.before_redo_apply";
    /// In the middle of applying redo entries.
    pub const COMMIT_MID_REDO_APPLY: &str = "tx.commit.mid_redo_apply";
    /// After redo entries are applied, before the log is invalidated
    /// (end of Fig. 7 stage 2).
    pub const COMMIT_BEFORE_INVALIDATE: &str = "tx.commit.before_invalidate";
    /// In the middle of writing a log entry (models a torn log append).
    pub const LOG_APPEND_TORN: &str = "log.append.torn";
    /// Before a log append begins (models a power failure after N fully
    /// flushed, unfenced appends: arm with `after == N` and exactly the
    /// first N entries are durable).
    pub const LOG_APPEND_CRASH: &str = "log.append.crash";
    /// While a transaction extends its log chain: after the daemon
    /// allocated the next log puddle but before it was registered in the
    /// log space (the puddle is unreachable by recovery and must be swept
    /// at the next daemon startup).
    pub const LOG_CHAIN_ALLOC_CRASH: &str = "log.chain.after_alloc";
    /// While a transaction extends its log chain: after the next segment
    /// was registered in the log space but before its first append (the
    /// empty tail is benign for replay and is reclaimed by recovery).
    pub const LOG_CHAIN_REGISTER_CRASH: &str = "log.chain.after_register";
    /// While a client creates its log space: after the daemon allocated the
    /// LogSpace puddle but before `RegLogSpace` registered it (the puddle
    /// is unreachable by recovery and must be swept at the next daemon
    /// startup).
    pub const LOGSPACE_ALLOC_CRASH: &str = "logspace.after_alloc";
    /// During transaction body execution, before commit begins.
    pub const TX_BODY: &str = "tx.body";
    /// While the allocator mutates persistent metadata inside a transaction.
    pub const ALLOC_METADATA: &str = "alloc.metadata";
    /// While the daemon rewrites pointers during relocation.
    pub const RELOC_MID_REWRITE: &str = "reloc.mid_rewrite";
    /// While the metadata-WAL group-commit leader writes a batch: only a
    /// prefix of the batch reaches the file (some records durable, the last
    /// one torn).
    pub const WAL_MID_GROUP_COMMIT: &str = "wal.group_commit.mid";
    /// While a metadata-WAL record is appended: the record's tail bytes are
    /// lost (models a torn append, like `LOG_APPEND_TORN` for client logs).
    pub const WAL_APPEND_TORN: &str = "wal.append.torn";
    /// After the registry checkpoint document is written and renamed, before
    /// the WAL is truncated (replay must skip records the checkpoint
    /// already covers).
    pub const WAL_CHECKPOINT_BEFORE_TRUNCATE: &str = "wal.checkpoint.before_truncate";
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_points_never_fire() {
        clear_all();
        assert!(!should_fail("nope"));
        assert!(fired().is_empty());
    }

    #[test]
    fn armed_point_fires_once_after_count() {
        clear_all();
        arm("p", 2);
        assert!(!should_fail("p"));
        assert!(!should_fail("p"));
        assert!(should_fail("p"));
        // Disarmed after firing.
        assert!(!should_fail("p"));
        assert_eq!(fired(), vec!["p".to_string()]);
        clear_all();
    }

    #[test]
    fn disarm_prevents_firing() {
        clear_all();
        arm("q", 0);
        disarm("q");
        assert!(!should_fail("q"));
        clear_all();
    }

    #[test]
    fn scoped_points_are_invisible_to_other_threads() {
        clear_all();
        arm_scoped("s", 0);
        // Another thread neither fires nor consumes the scoped point...
        let other = std::thread::spawn(|| should_fail("s"));
        assert!(!other.join().unwrap());
        // ...but the arming thread does.
        assert!(should_fail("s"));
        assert!(!should_fail("s"), "fired scoped point is disarmed");
        clear_all();
    }

    #[test]
    fn scoped_points_on_distinct_threads_are_independent() {
        clear_all();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| {
                    // Each thread arms its own countdown of 2 and must see
                    // exactly its own third call fire, regardless of how
                    // the other threads interleave.
                    arm_scoped("par", 2);
                    let hits = [should_fail("par"), should_fail("par"), should_fail("par")];
                    clear_current_thread();
                    hits
                })
            })
            .collect();
        for t in threads {
            assert_eq!(t.join().unwrap(), [false, false, true]);
        }
        clear_all();
    }

    #[test]
    fn scoped_guard_clears_on_panic() {
        // A trial that panics mid-body must not leak its scoped entry: the
        // guard's drop runs during unwinding, so a later probe on the same
        // thread (the only thread the entry could ever fire on) sees it
        // gone.
        let hit = std::thread::spawn(|| {
            let result = std::panic::catch_unwind(|| {
                let _guard = scoped_clear_guard();
                arm_scoped("guard-panicking-trial", 0);
                panic!("trial failed");
            });
            assert!(result.is_err());
            should_fail("guard-panicking-trial")
        })
        .join()
        .unwrap();
        assert!(!hit, "panicked trial's scoped failpoint leaked");
    }

    #[test]
    fn scoped_guard_clears_on_normal_drop() {
        let hit = std::thread::spawn(|| {
            {
                let _guard = scoped_clear_guard();
                arm_scoped("guard-normal-trial", 0);
            }
            should_fail("guard-normal-trial")
        })
        .join()
        .unwrap();
        assert!(!hit);
    }

    #[test]
    fn clear_current_thread_spares_global_and_foreign_points() {
        clear_all();
        arm("g", 0);
        arm_scoped("mine", 0);
        clear_current_thread();
        assert!(!should_fail("mine"));
        assert!(should_fail("g"), "global point must survive a scoped clear");
        clear_all();
    }
}
