//! Error type shared by the persistent-memory substrate.

use std::fmt;
use std::io;

/// Result alias for substrate operations.
pub type Result<T> = std::result::Result<T, PmError>;

/// Errors produced by the persistent-memory substrate.
#[derive(Debug)]
pub enum PmError {
    /// An underlying I/O operation failed.
    Io(io::Error),
    /// A `mmap`/`munmap`/`mprotect` call failed.
    Mmap(io::Error),
    /// The requested range is not inside the reserved global space.
    OutOfRange {
        /// Requested offset inside the space.
        offset: usize,
        /// Requested length.
        len: usize,
    },
    /// A size or offset did not satisfy an alignment requirement.
    Misaligned {
        /// The offending value.
        value: usize,
        /// The required alignment.
        align: usize,
    },
    /// Persistent data failed a validity check (bad magic, bad checksum...).
    Corruption(String),
    /// A log area cannot fit another entry: the aligned stored size of the
    /// entry exceeds the remaining capacity. Distinct from [`PmError::OutOfRange`]
    /// so `libtx` can surface "transaction too large" instead of a generic
    /// addressing error.
    LogFull {
        /// Bytes the entry would occupy (header + aligned payload).
        need: usize,
        /// Bytes still free in the log area.
        free: usize,
    },
    /// A crash was injected by an armed failpoint.
    CrashInjected(&'static str),
    /// The backing device is out of space (`ENOSPC`, genuine or injected).
    /// Distinct from [`PmError::Io`] so callers can degrade gracefully — a
    /// retry cannot create free space, and the daemon maps this to its
    /// typed `OutOfSpace` error instead of poisoning the WAL.
    NoSpace(String),
}

impl fmt::Display for PmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PmError::Io(e) => write!(f, "I/O error: {e}"),
            PmError::Mmap(e) => write!(f, "mmap error: {e}"),
            PmError::OutOfRange { offset, len } => {
                write!(f, "range [{offset:#x}, +{len:#x}) outside reservation")
            }
            PmError::Misaligned { value, align } => {
                write!(f, "value {value:#x} not aligned to {align:#x}")
            }
            PmError::Corruption(msg) => write!(f, "corruption detected: {msg}"),
            PmError::LogFull { need, free } => {
                write!(f, "log full: entry needs {need} B but only {free} B remain")
            }
            PmError::CrashInjected(name) => write!(f, "crash injected at failpoint `{name}`"),
            PmError::NoSpace(msg) => write!(f, "device out of space: {msg}"),
        }
    }
}

impl std::error::Error for PmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PmError::Io(e) | PmError::Mmap(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for PmError {
    fn from(e: io::Error) -> Self {
        // ENOSPC (genuine or injected) gets its typed variant at the
        // conversion boundary, so every `?` in the stack classifies it
        // without per-site checks.
        if crate::faultio::is_enospc(&e) {
            PmError::NoSpace(e.to_string())
        } else {
            PmError::Io(e)
        }
    }
}
