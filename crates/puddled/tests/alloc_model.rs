//! Property tests pitting the segregated-fit allocator against a reference
//! model: arbitrary alloc/free sequences must never produce overlapping
//! grants, every freed byte must be reusable, and the registry state a live
//! allocator serializes must survive a WAL-replay + checkpoint round trip
//! bit-identically (the same contract `wal_crash.rs` checks on hand-built
//! histories, here on randomized ones).

use proptest::prelude::*;
use puddled::registry::{PuddleRecord, Registry, RegistryData};
use puddles_pmem::pmdir::PmDir;
use puddles_pmem::PAGE_SIZE;
use puddles_proto::{PuddleId, PuddlePurpose};

const SPACE: u64 = 1 << 30;

fn open_registry(pm: &PmDir) -> Registry {
    Registry::load_or_create(pm, 0x5000_0000_0000, SPACE).unwrap()
}

fn record(reg: &Registry, pages: u64) -> PuddleRecord {
    let id = reg.fresh_id();
    let size = pages * PAGE_SIZE as u64;
    let offset = reg.alloc_space(size).unwrap();
    PuddleRecord {
        id,
        size,
        offset,
        file: id.to_hex(),
        purpose: PuddlePurpose::Data,
        owner_uid: 1,
        owner_gid: 1,
        mode: 0o600,
        pool: None,
        needs_rewrite: false,
        translations: vec![],
    }
}

/// Applies one randomized op stream to a registry: even selectors allocate
/// (1–31 pages) and register the puddle, odd selectors drop one live puddle
/// (unregister + free). Returns the surviving `(id, offset, len)` grants.
fn run_ops(reg: &Registry, ops: &[(u8, u16)]) -> Vec<(PuddleId, u64, u64)> {
    let mut live: Vec<(PuddleId, u64, u64)> = Vec::new();
    for &(kind, arg) in ops {
        // Bias 3:1 toward allocation so sequences grow a real population.
        if kind % 4 != 3 || live.is_empty() {
            let pages = (arg % 31 + 1) as u64;
            let rec = record(reg, pages);
            let (off, len) = (rec.offset, rec.size);
            // Grants are page-granular, in-bounds, and disjoint from every
            // live extent.
            assert_eq!(off % PAGE_SIZE as u64, 0);
            assert!(off + len <= SPACE);
            for &(_, o, l) in &live {
                assert!(
                    off + len <= o || o + l <= off,
                    "grant [{off:#x},+{len:#x}) overlaps live [{o:#x},+{l:#x})"
                );
            }
            live.push((rec.id, off, len));
            reg.register_puddle(rec).unwrap();
        } else {
            let victim = arg as usize % live.len();
            let (id, off, len) = live.swap_remove(victim);
            reg.unregister_puddle(id).unwrap();
            reg.free_space(off, len);
        }
    }
    live
}

/// Blanks the volatile WAL cut so two snapshots compare on durable state.
fn normalized(mut data: RegistryData) -> RegistryData {
    data.wal_seq = None;
    data
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Overlap freedom plus the recovery contract: the canonical state a
    /// live (lazy, sharded) allocator serializes equals what checkpoint +
    /// WAL replay + reconcile rebuild after an abrupt drop.
    #[test]
    fn random_histories_recover_bit_identically(ops in proptest::collection::vec((0u8..8, 0u16..4096), 1..120)) {
        let tmp = tempfile::tempdir().unwrap();
        let pm = PmDir::open(tmp.path()).unwrap();
        let before;
        {
            let reg = open_registry(&pm);
            // Low threshold so lazy coalesce passes actually interleave
            // with the op stream instead of never firing.
            reg.set_coalesce_threshold(8);
            run_ops(&reg, &ops);
            reg.commit().unwrap();
            before = reg.snapshot();
            // Dropped without a checkpoint: recovery rebuilds from the
            // load-time checkpoint + WAL replay alone.
        }
        let reg = open_registry(&pm);
        let after = reg.snapshot();
        prop_assert_eq!(normalized(after), normalized(before));
    }

    /// Every freed byte is reusable: after dropping all survivors and one
    /// forced merge, the allocator is back to a pristine bump state and
    /// hands out the very first page again.
    #[test]
    fn frees_are_fully_reusable(ops in proptest::collection::vec((0u8..8, 0u16..4096), 1..120)) {
        let tmp = tempfile::tempdir().unwrap();
        let pm = PmDir::open(tmp.path()).unwrap();
        let reg = open_registry(&pm);
        reg.set_coalesce_threshold(8);
        let live = run_ops(&reg, &ops);
        for (id, off, len) in live {
            reg.unregister_puddle(id).unwrap();
            reg.free_space(off, len);
        }
        reg.force_coalesce();
        let snap = reg.snapshot();
        prop_assert!(snap.free_list.is_empty());
        prop_assert_eq!(snap.next_offset, PAGE_SIZE as u64);
        let off = reg.alloc_space(64 * PAGE_SIZE as u64).unwrap();
        prop_assert_eq!(off, PAGE_SIZE as u64);
    }
}
