//! The in-tree torture sweep: seeded fault injection + kill/restart +
//! invariant checks, bounded for `cargo test`.
//!
//! The harness itself lives in `puddles::torture` (shared with the
//! `torture_sweep` bench binary, which CI uses for deep sweeps). Knobs:
//!
//! * `TORTURE_SEED` — base seed (trial `i` runs seed `base + i`);
//! * `TORTURE_TRIALS` — trial count (default 25);
//! * `TORTURE_THREADS` — worker threads (default: available parallelism,
//!   capped at 4 — each trial itself runs several client threads).
//!
//! A failure panics with the seed and the fault trace; reproduce with
//! `TORTURE_SEED=<seed> TORTURE_TRIALS=1`. The failing seed is also
//! written to `target/torture_seed.txt` for CI artifact upload.

use puddles::torture::{env_u64, run_sweep, run_trial, TortureConfig};

/// The replay guarantee, in-tree: one seed, two runs, byte-identical
/// fault traces, operation histories, and observability trace-ring
/// dumps. (The deep CI gate is `torture_sweep --replay-check`.)
#[test]
fn same_seed_replays_identical_execution() {
    let seed = env_u64("TORTURE_SEED", 0x7011_70BE);
    let config = TortureConfig::from_seed(seed);
    assert!(config.deterministic, "from_seed must default deterministic");
    let first = run_trial(&config).unwrap_or_else(|f| panic!("{f}"));
    let second = run_trial(&config).unwrap_or_else(|f| panic!("{f}"));
    assert!(
        !first.history.is_empty(),
        "the trial must actually record operations"
    );
    assert_eq!(
        first.fault_trace, second.fault_trace,
        "same seed must inject the same faults in the same order"
    );
    assert_eq!(
        first.history, second.history,
        "same seed must replay the same operation interleaving"
    );
    assert!(
        !first.trace_dump.is_empty(),
        "the trial must populate the observability trace ring"
    );
    assert_eq!(
        first.trace_dump, second.trace_dump,
        "same seed must produce a byte-identical trace-ring dump"
    );
}

#[test]
fn seeded_torture_sweep() {
    let trials = env_u64("TORTURE_TRIALS", 25);
    let base_seed = env_u64("TORTURE_SEED", 0x7011_70BE);
    let default_threads = std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1)
        .min(4);
    let threads = env_u64("TORTURE_THREADS", default_threads);

    match run_sweep(base_seed, trials, threads) {
        Ok(reports) => {
            let injected: u64 = reports.iter().map(|r| r.injected).sum();
            let acked: u64 = reports.iter().map(|r| r.acked_ops).sum();
            let kills: usize = reports.iter().map(|r| r.kills).sum();
            // The sweep must actually torture: across 25 seeds the fault
            // plan fires and mid-phase kills happen, yet clients still get
            // work acknowledged through the retry plane.
            assert!(injected > 0, "no faults injected across {trials} trials");
            assert!(kills > 0, "no mid-phase kills across {trials} trials");
            assert!(acked > 0, "no operations survived across {trials} trials");
        }
        Err(failure) => {
            let _ = std::fs::write(
                "target/torture_seed.txt",
                format!("TORTURE_SEED={} TORTURE_TRIALS=1\n", failure.seed),
            );
            panic!("{failure}");
        }
    }
}
