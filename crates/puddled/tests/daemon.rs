//! Daemon-level integration tests: puddle/pool lifecycle, access control,
//! export/import, system-supported recovery, and the UDS server.

use puddled::{Daemon, DaemonConfig, LOG_REGION_OFFSET};
use puddles_logfmt::{
    EntryKind, LogRef, LogSpaceRef, ReplayOrder, RANGE_DONE, RANGE_EXEC, SEQ_UNDO,
};
use puddles_proto::{Credentials, Endpoint, ErrorCode, PuddleId, PuddlePurpose, Request, Response};

const USER_A: Credentials = Credentials {
    uid: 1000,
    gid: 100,
};
const USER_B: Credentials = Credentials {
    uid: 2000,
    gid: 200,
};

fn start_daemon() -> (tempfile::TempDir, Daemon) {
    let tmp = tempfile::tempdir().unwrap();
    let daemon = Daemon::start(DaemonConfig::for_testing(tmp.path())).unwrap();
    (tmp, daemon)
}

fn expect_puddle(resp: Response) -> puddles_proto::PuddleInfo {
    match resp {
        Response::Puddle(info) => info,
        other => panic!("expected Puddle, got {other:?}"),
    }
}

fn expect_pool(resp: Response) -> puddles_proto::PoolInfo {
    match resp {
        Response::Pool(info) => info,
        other => panic!("expected Pool, got {other:?}"),
    }
}

#[test]
fn hello_reports_global_space() {
    let (_tmp, daemon) = start_daemon();
    let ep = daemon.endpoint(USER_A);
    let resp = ep.call(&Request::hello(USER_A)).unwrap();
    match resp {
        Response::Welcome {
            space_base,
            space_size,
            ..
        } => {
            assert_eq!(space_base, daemon.global_space().base() as u64);
            assert_eq!(space_size, daemon.global_space().size() as u64);
        }
        other => panic!("unexpected response {other:?}"),
    }
}

/// The server clamps the Hello-negotiated in-flight window and pool depth
/// to its configured maxima, and echoes the grant in Welcome.
#[test]
fn hello_negotiates_window_and_pool_depth_within_server_limits() {
    let (_tmp, daemon) = start_daemon();
    let ep = daemon.endpoint(USER_A);
    let grant = |req_window: u32, req_depth: u32| -> (u32, u32) {
        let resp = ep
            .call(&Request::Hello {
                creds: USER_A,
                max_in_flight: req_window,
                pool_depth: req_depth,
                reconnect: false,
            })
            .unwrap();
        match resp {
            Response::Welcome {
                max_in_flight,
                pool_depth,
                ..
            } => (max_in_flight, pool_depth),
            other => panic!("unexpected response {other:?}"),
        }
    };
    // Zero means "server default" (64 in-flight, 2 connections).
    assert_eq!(grant(0, 0), (64, 2));
    // Modest requests are granted verbatim.
    assert_eq!(grant(8, 3), (8, 3));
    // Oversized requests are clamped to the configured maxima
    // (`for_testing`: 64 in flight, pool depth 8).
    assert_eq!(grant(10_000, 100), (64, 8));
    // Degenerate requests still grant at least one slot.
    assert_eq!(grant(1, 1), (1, 1));
}

/// Reconnect-flagged Hellos (sent by clients re-dialing after a lost
/// connection) are counted in the daemon stats.
#[test]
fn reconnect_hellos_are_counted_in_stats() {
    let (_tmp, daemon) = start_daemon();
    let ep = daemon.endpoint(USER_A);
    ep.call(&Request::hello(USER_A)).unwrap();
    for _ in 0..3 {
        ep.call(&Request::Hello {
            creds: USER_A,
            max_in_flight: 0,
            pool_depth: 0,
            reconnect: true,
        })
        .unwrap();
    }
    match ep.call(&Request::Stats).unwrap() {
        Response::Stats(stats) => assert_eq!(stats.client_reconnects, 3),
        other => panic!("unexpected response {other:?}"),
    }
}

#[test]
fn pool_and_puddle_lifecycle() {
    let (_tmp, daemon) = start_daemon();
    let pool = expect_pool(daemon.handle(
        USER_A,
        Request::CreatePool {
            name: "db".into(),
            root_size: 1 << 20,
            mode: 0o640,
        },
    ));
    assert_eq!(pool.puddles.len(), 1);
    assert_eq!(pool.root_puddle, pool.puddles[0]);

    // Add a second puddle to the pool.
    let p2 = expect_puddle(daemon.handle(
        USER_A,
        Request::CreatePuddle {
            size: 1 << 20,
            pool: Some("db".into()),
            purpose: PuddlePurpose::Data,
            mode: 0o640,
        },
    ));
    let pool = expect_pool(daemon.handle(USER_A, Request::OpenPool { name: "db".into() }));
    assert_eq!(pool.puddles.len(), 2);
    assert!(pool.puddles.contains(&p2.id));

    // Assigned addresses are disjoint and inside the global space.
    let root = expect_puddle(daemon.handle(
        USER_A,
        Request::GetPuddle {
            id: pool.root_puddle,
            writable: true,
        },
    ));
    assert_ne!(root.assigned_addr, p2.assigned_addr);
    let base = daemon.global_space().base() as u64;
    let size = daemon.global_space().size() as u64;
    for info in [&root, &p2] {
        assert!(info.assigned_addr >= base && info.assigned_addr + info.size <= base + size);
    }

    // Free the second puddle; the pool shrinks.
    assert_eq!(
        daemon.handle(USER_A, Request::FreePuddle { id: p2.id }),
        Response::Ok
    );
    let pool = expect_pool(daemon.handle(USER_A, Request::OpenPool { name: "db".into() }));
    assert_eq!(pool.puddles.len(), 1);

    // Dropping the pool removes everything.
    assert_eq!(
        daemon.handle(USER_A, Request::DropPool { name: "db".into() }),
        Response::Ok
    );
    match daemon.handle(USER_A, Request::OpenPool { name: "db".into() }) {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::NotFound),
        other => panic!("expected error, got {other:?}"),
    }
}

#[test]
fn duplicate_pool_names_are_rejected() {
    let (_tmp, daemon) = start_daemon();
    daemon.handle(
        USER_A,
        Request::CreatePool {
            name: "p".into(),
            root_size: 1 << 20,
            mode: 0o600,
        },
    );
    match daemon.handle(
        USER_A,
        Request::CreatePool {
            name: "p".into(),
            root_size: 1 << 20,
            mode: 0o600,
        },
    ) {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::AlreadyExists),
        other => panic!("expected error, got {other:?}"),
    }
}

#[test]
fn access_control_is_enforced() {
    let (_tmp, daemon) = start_daemon();
    let pool = expect_pool(daemon.handle(
        USER_A,
        Request::CreatePool {
            name: "private".into(),
            root_size: 1 << 20,
            mode: 0o600,
        },
    ));
    // User B cannot read or write user A's private puddle.
    match daemon.handle(
        USER_B,
        Request::GetPuddle {
            id: pool.root_puddle,
            writable: false,
        },
    ) {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::PermissionDenied),
        other => panic!("expected denial, got {other:?}"),
    }
    match daemon.handle(
        USER_B,
        Request::OpenPool {
            name: "private".into(),
        },
    ) {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::PermissionDenied),
        other => panic!("expected denial, got {other:?}"),
    }
    // A world-readable pool can be read but not written by others.
    let shared = expect_pool(daemon.handle(
        USER_A,
        Request::CreatePool {
            name: "shared".into(),
            root_size: 1 << 20,
            mode: 0o644,
        },
    ));
    let info = expect_puddle(daemon.handle(
        USER_B,
        Request::GetPuddle {
            id: shared.root_puddle,
            writable: false,
        },
    ));
    assert!(!info.writable);
    match daemon.handle(
        USER_B,
        Request::GetPuddle {
            id: shared.root_puddle,
            writable: true,
        },
    ) {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::PermissionDenied),
        other => panic!("expected denial, got {other:?}"),
    }
}

#[test]
fn registry_survives_daemon_restart() {
    let tmp = tempfile::tempdir().unwrap();
    let config = DaemonConfig::for_testing(tmp.path());
    let root_id;
    {
        let daemon = Daemon::start(config.clone()).unwrap();
        let pool = expect_pool(daemon.handle(
            USER_A,
            Request::CreatePool {
                name: "persist".into(),
                root_size: 1 << 20,
                mode: 0o600,
            },
        ));
        root_id = pool.root_puddle;
    }
    let daemon = Daemon::start(config).unwrap();
    let pool = expect_pool(daemon.handle(
        USER_A,
        Request::OpenPool {
            name: "persist".into(),
        },
    ));
    assert_eq!(pool.root_puddle, root_id);
    // Same base ⇒ no rewrite needed.
    match daemon.handle(USER_A, Request::GetRelocation { id: root_id }) {
        Response::Relocation { needs_rewrite, .. } => assert!(!needs_rewrite),
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn moving_the_space_base_marks_puddles_for_rewrite() {
    let tmp = tempfile::tempdir().unwrap();
    let config1 = DaemonConfig::for_testing(tmp.path());
    let root_id;
    {
        let daemon = Daemon::start(config1.clone()).unwrap();
        let pool = expect_pool(daemon.handle(
            USER_A,
            Request::CreatePool {
                name: "mv".into(),
                root_size: 1 << 20,
                mode: 0o600,
            },
        ));
        root_id = pool.root_puddle;
    }
    // Restart with a different base (a different "machine" layout).
    let config2 = DaemonConfig::for_testing(tmp.path());
    assert_ne!(config1.space_base, config2.space_base);
    let daemon = Daemon::start(config2).unwrap();
    match daemon.handle(USER_A, Request::GetRelocation { id: root_id }) {
        Response::Relocation {
            needs_rewrite,
            translations,
        } => {
            assert!(needs_rewrite);
            assert!(!translations.is_empty());
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn export_and_import_assign_new_ids_and_translations() {
    let (tmp, daemon) = start_daemon();
    let pool = expect_pool(daemon.handle(
        USER_A,
        Request::CreatePool {
            name: "orig".into(),
            root_size: 1 << 20,
            mode: 0o600,
        },
    ));
    daemon.handle(
        USER_A,
        Request::CreatePuddle {
            size: 1 << 20,
            pool: Some("orig".into()),
            purpose: PuddlePurpose::Data,
            mode: 0o600,
        },
    );
    let dest = tmp.path().join("export");
    assert_eq!(
        daemon.handle(
            USER_A,
            Request::ExportPool {
                name: "orig".into(),
                dest: dest.to_string_lossy().into_owned(),
            },
        ),
        Response::Ok
    );
    assert!(dest.join("manifest.json").exists());

    match daemon.handle(
        USER_A,
        Request::ImportPool {
            src: dest.to_string_lossy().into_owned(),
            new_name: "copy".into(),
        },
    ) {
        Response::Imported {
            pool: copy,
            translations,
        } => {
            assert_eq!(copy.puddles.len(), 2);
            assert_eq!(translations.len(), 2);
            // Fresh UUIDs, fresh addresses.
            for id in &copy.puddles {
                assert!(!pool.puddles.contains(id));
            }
            for t in &translations {
                assert_ne!(t.old_addr, t.new_addr);
            }
            // The imported puddles are flagged for rewrite.
            match daemon.handle(
                USER_A,
                Request::GetRelocation {
                    id: copy.root_puddle,
                },
            ) {
                Response::Relocation {
                    needs_rewrite,
                    translations,
                } => {
                    assert!(needs_rewrite);
                    assert_eq!(translations.len(), 2);
                }
                other => panic!("unexpected {other:?}"),
            }
            // MarkRewritten clears the flag.
            daemon.handle(
                USER_A,
                Request::MarkRewritten {
                    id: copy.root_puddle,
                },
            );
            match daemon.handle(
                USER_A,
                Request::GetRelocation {
                    id: copy.root_puddle,
                },
            ) {
                Response::Relocation { needs_rewrite, .. } => assert!(!needs_rewrite),
                other => panic!("unexpected {other:?}"),
            }
        }
        other => panic!("unexpected {other:?}"),
    }

    // Importing under an existing name fails.
    match daemon.handle(
        USER_A,
        Request::ImportPool {
            src: dest.to_string_lossy().into_owned(),
            new_name: "orig".into(),
        },
    ) {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::AlreadyExists),
        other => panic!("unexpected {other:?}"),
    }
}

/// Builds a data puddle, a log-space puddle and a log puddle by hand (the
/// client library normally does this), writes an incomplete transaction,
/// and checks that daemon recovery rolls it back even though the "writer
/// application" is gone.
#[test]
fn recovery_replays_registered_logs_without_the_application() {
    let tmp = tempfile::tempdir().unwrap();
    let config = DaemonConfig::for_testing(tmp.path());
    let daemon = Daemon::start(config.clone()).unwrap();
    let gspace = daemon.global_space();

    // One data puddle, one log-space puddle, one log puddle.
    let data = expect_puddle(daemon.handle(
        USER_A,
        Request::CreatePuddle {
            size: 1 << 20,
            pool: None,
            purpose: PuddlePurpose::Data,
            mode: 0o600,
        },
    ));
    let ls = expect_puddle(daemon.handle(
        USER_A,
        Request::CreatePuddle {
            size: 1 << 20,
            pool: None,
            purpose: PuddlePurpose::LogSpace,
            mode: 0o600,
        },
    ));
    let lp = expect_puddle(daemon.handle(
        USER_A,
        Request::CreatePuddle {
            size: 1 << 20,
            pool: None,
            purpose: PuddlePurpose::Log,
            mode: 0o600,
        },
    ));
    assert_eq!(
        daemon.handle(USER_A, Request::RegLogSpace { puddle: ls.id }),
        Response::Ok
    );

    let base = gspace.base() as u64;
    let map = |info: &puddles_proto::PuddleInfo| -> usize {
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&info.path)
            .unwrap();
        gspace
            .map_puddle(
                &file,
                (info.assigned_addr - base) as usize,
                info.size as usize,
                true,
            )
            .unwrap()
    };
    let data_addr = map(&data);
    let ls_addr = map(&ls);
    let lp_addr = map(&lp);

    // Simulate the writer: value 0xAA is durable, an in-flight transaction
    // undo-logged it and then overwrote it with 0xBB before "crashing".
    let target = data_addr + 0x8000;
    // SAFETY: `target` lies inside the freshly mapped writable data puddle.
    unsafe {
        std::ptr::write_bytes(target as *mut u8, 0xAA, 8);
    }
    // SAFETY: the log-space/log puddles are mapped writable for their size.
    let ls_ref = unsafe {
        LogSpaceRef::from_raw(
            (ls_addr + LOG_REGION_OFFSET) as *mut u8,
            ls.size as usize - LOG_REGION_OFFSET,
        )
    };
    ls_ref.init();
    ls_ref.register(lp.id.0, 1, 0).unwrap();
    let log = unsafe {
        LogRef::from_raw(
            (lp_addr + LOG_REGION_OFFSET) as *mut u8,
            lp.size as usize - LOG_REGION_OFFSET,
        )
    };
    log.init();
    log.set_seq_range(RANGE_EXEC);
    log.append(
        target as u64,
        SEQ_UNDO,
        ReplayOrder::Reverse,
        EntryKind::Undo,
        &[0xAA; 8],
    )
    .unwrap();
    // The crash happens after the in-place update.
    // SAFETY: same mapped range as above.
    unsafe {
        std::ptr::write_bytes(target as *mut u8, 0xBB, 8);
    }

    // "Crash": drop every mapping and the daemon handle.
    // SAFETY: no references into the mappings remain.
    unsafe {
        gspace
            .unmap_puddle((data.assigned_addr - base) as usize)
            .unwrap();
        gspace
            .unmap_puddle((ls.assigned_addr - base) as usize)
            .unwrap();
        gspace
            .unmap_puddle((lp.assigned_addr - base) as usize)
            .unwrap();
    }
    drop(gspace);
    drop(daemon);

    // Restart the daemon: recovery runs before any application maps data.
    let daemon = Daemon::start(config).unwrap();
    let gspace = daemon.global_space();
    let data2 = expect_puddle(daemon.handle(
        USER_A,
        Request::GetPuddle {
            id: data.id,
            writable: false,
        },
    ));
    let file = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(&data2.path)
        .unwrap();
    let addr = gspace
        .map_puddle(
            &file,
            (data2.assigned_addr - gspace.base() as u64) as usize,
            data2.size as usize,
            false,
        )
        .unwrap();
    // SAFETY: mapped read-only just above.
    let recovered = unsafe { std::slice::from_raw_parts((addr + 0x8000) as *const u8, 8) };
    assert_eq!(
        recovered, &[0xAA; 8],
        "undo log must have rolled back the write"
    );
    // SAFETY: `recovered` is not used past this point.
    unsafe {
        gspace
            .unmap_puddle((data2.assigned_addr - gspace.base() as u64) as usize)
            .unwrap();
    }

    // The log was reset by recovery.
    let lp2 = expect_puddle(daemon.handle(
        USER_A,
        Request::GetPuddle {
            id: lp.id,
            writable: true,
        },
    ));
    let file = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(&lp2.path)
        .unwrap();
    let lp_addr = gspace
        .map_puddle(
            &file,
            (lp2.assigned_addr - gspace.base() as u64) as usize,
            lp2.size as usize,
            true,
        )
        .unwrap();
    // SAFETY: mapped writable above.
    let log = unsafe {
        LogRef::from_raw(
            (lp_addr + LOG_REGION_OFFSET) as *mut u8,
            lp2.size as usize - LOG_REGION_OFFSET,
        )
    };
    assert_eq!(log.seq_range(), RANGE_DONE);
    assert_eq!(log.num_entries(), 0);
    // SAFETY: `log` is not used past this point.
    unsafe {
        gspace
            .unmap_puddle((lp2.assigned_addr - gspace.base() as u64) as usize)
            .unwrap();
    }
}

#[test]
fn stats_reflect_daemon_state() {
    let (_tmp, daemon) = start_daemon();
    daemon.handle(
        USER_A,
        Request::CreatePool {
            name: "s".into(),
            root_size: 1 << 20,
            mode: 0o600,
        },
    );
    match daemon.handle(USER_A, Request::Stats) {
        Response::Stats(stats) => {
            assert_eq!(stats.pools, 1);
            assert_eq!(stats.puddles, 1);
            assert!(stats.space_used >= 1 << 20);
            assert!(stats.space_total > stats.space_used);
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn uds_server_answers_requests_from_another_connection() {
    let (tmp, daemon) = start_daemon();
    let socket = tmp.path().join("puddled.sock");
    let mut server = puddled::UdsServer::start(daemon.clone(), &socket).unwrap();

    let stream = std::os::unix::net::UnixStream::connect(&socket).unwrap();
    let mut reader = stream.try_clone().unwrap();
    let mut writer = stream;
    puddles_proto::write_frame(&mut writer, &Request::hello(Credentials::current_process()))
        .unwrap();
    let resp: Response = puddles_proto::read_frame(&mut reader).unwrap();
    assert!(matches!(resp, Response::Welcome { .. }));

    puddles_proto::write_frame(
        &mut writer,
        &Request::CreatePool {
            name: "over-uds".into(),
            root_size: 1 << 20,
            mode: 0o600,
        },
    )
    .unwrap();
    let resp: Response = puddles_proto::read_frame(&mut reader).unwrap();
    assert!(matches!(resp, Response::Pool(_)));

    // The pool is visible through the in-process endpoint too.
    let pool = daemon.handle(
        Credentials::current_process(),
        Request::OpenPool {
            name: "over-uds".into(),
        },
    );
    assert!(matches!(pool, Response::Pool(_)));
    server.shutdown();
}

#[test]
fn get_relocation_for_unknown_puddle_is_not_found() {
    let (_tmp, daemon) = start_daemon();
    match daemon.handle(
        USER_A,
        Request::GetRelocation {
            id: PuddleId(12345),
        },
    ) {
        Response::Error { code, .. } => assert_eq!(code, ErrorCode::NotFound),
        other => panic!("unexpected {other:?}"),
    }
}

/// Tentpole acceptance test: ≥8 simultaneous clients, each served by its own
/// connection handler thread, creating pools, running transactions, and
/// issuing relocation (translation) lookups — all against one daemon. The
/// watchdog turns a deadlock into a test failure instead of a hang, and the
/// final section checks the registry ended up consistent.
#[test]
fn concurrent_clients_create_pools_transact_and_translate() {
    use puddles::{impl_pm_type, PmPtr, PoolOptions, PuddleClient};
    use std::sync::{mpsc, Arc, Barrier};
    use std::time::Duration;

    #[repr(C)]
    struct Counter {
        value: u64,
    }
    impl_pm_type!(Counter, "stress::Counter", []);

    const THREADS: usize = 8;
    const TXS_PER_THREAD: u64 = 25;
    const LOOKUPS_PER_TX: usize = 4;

    let (tmp, daemon) = start_daemon();
    let socket = tmp.path().join("stress.sock");
    let _server = puddled::UdsServer::start(daemon.clone(), &socket).unwrap();
    let gspace = daemon.global_space();

    let barrier = Arc::new(Barrier::new(THREADS));
    let (done_tx, done_rx) = mpsc::channel::<usize>();
    let mut workers = Vec::new();
    for t in 0..THREADS {
        let socket = socket.clone();
        let gspace = Arc::clone(&gspace);
        let barrier = Arc::clone(&barrier);
        let done_tx = done_tx.clone();
        workers.push(std::thread::spawn(move || {
            // Every worker is a full client over the UNIX socket (sharing
            // the in-process global-space reservation).
            let client = PuddleClient::connect_uds_shared(&socket, gspace).unwrap();
            // A second raw connection for protocol-level lookups.
            let ep = {
                let stream = std::os::unix::net::UnixStream::connect(&socket).unwrap();
                let mut reader = stream.try_clone().unwrap();
                let mut writer = stream;
                puddles_proto::write_frame(
                    &mut writer,
                    &Request::hello(Credentials::current_process()),
                )
                .unwrap();
                let _: Response = puddles_proto::read_frame(&mut reader).unwrap();
                (reader, writer)
            };
            let (mut reader, mut writer) = ep;

            barrier.wait();
            let pool = client
                .create_pool(&format!("stress-{t}"), PoolOptions::default())
                .unwrap();
            pool.tx(|tx| pool.create_root(tx, Counter { value: 0 }))
                .unwrap();
            let root: PmPtr<Counter> = pool.root().unwrap();
            let root_puddle = pool.root_puddle().id();
            for i in 1..=TXS_PER_THREAD {
                pool.tx(|tx| {
                    let c = pool.deref_mut(root)?;
                    tx.set(&mut c.value, i)?;
                    Ok(())
                })
                .unwrap();
                // Interleave read-mostly translation lookups: these run
                // under the puddle table's shared read lock.
                for _ in 0..LOOKUPS_PER_TX {
                    puddles_proto::write_frame(
                        &mut writer,
                        &Request::GetRelocation { id: root_puddle },
                    )
                    .unwrap();
                    match puddles_proto::read_frame(&mut reader).unwrap() {
                        Response::Relocation { needs_rewrite, .. } => {
                            assert!(!needs_rewrite, "fresh pool must not need rewriting")
                        }
                        other => panic!("unexpected {other:?}"),
                    }
                }
            }
            assert_eq!(pool.deref(root).unwrap().value, TXS_PER_THREAD);
            done_tx.send(t).unwrap();
        }));
    }
    drop(done_tx);

    // Watchdog: a deadlocked daemon fails the test instead of hanging it.
    let mut finished = std::collections::HashSet::new();
    for _ in 0..THREADS {
        let t = done_rx
            .recv_timeout(Duration::from_secs(120))
            .expect("a worker did not finish: daemon deadlocked or wedged");
        finished.insert(t);
    }
    assert_eq!(finished.len(), THREADS);
    for worker in workers {
        worker.join().unwrap();
    }

    // Registry consistency: every pool is present with its counter intact,
    // and no two puddles overlap in the global space.
    let creds = Credentials::current_process();
    match daemon.handle(creds, Request::Stats) {
        Response::Stats(stats) => {
            assert_eq!(stats.pools, THREADS as u64);
            // Each worker created at least a pool root, a log space, and a
            // per-thread log puddle.
            assert!(stats.puddles >= 3 * THREADS as u64);
        }
        other => panic!("unexpected {other:?}"),
    }
    let mut extents: Vec<(u64, u64)> = Vec::new();
    for t in 0..THREADS {
        let pool = expect_pool(daemon.handle(
            creds,
            Request::OpenPool {
                name: format!("stress-{t}"),
            },
        ));
        assert!(!pool.puddles.is_empty());
        for id in pool.puddles {
            let info = expect_puddle(daemon.handle(
                creds,
                Request::GetPuddle {
                    id,
                    writable: false,
                },
            ));
            extents.push((info.assigned_addr, info.size));
        }
    }
    extents.sort_unstable();
    for pair in extents.windows(2) {
        assert!(
            pair[0].0 + pair[0].1 <= pair[1].0,
            "puddle extents overlap: {pair:?}"
        );
    }
}

/// Shutdown must stay bounded even while a client is streaming well-formed
/// requests back-to-back (the handler checks the flag between frames) and
/// another stalled mid-frame.
#[test]
fn shutdown_is_bounded_under_busy_and_stalled_clients() {
    use std::io::Write;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;
    use std::time::{Duration, Instant};

    let (tmp, daemon) = start_daemon();
    let socket = tmp.path().join("busy.sock");
    let mut server = puddled::UdsServer::start(daemon, &socket).unwrap();

    // Busy client: streams Ping frames and reads responses as fast as the
    // daemon answers, so its handler never blocks long on a read.
    let stop = Arc::new(AtomicBool::new(false));
    let busy_stop = Arc::clone(&stop);
    let busy_socket = socket.clone();
    let busy = std::thread::spawn(move || {
        let stream = std::os::unix::net::UnixStream::connect(&busy_socket).unwrap();
        let mut reader = stream.try_clone().unwrap();
        let mut writer = stream;
        puddles_proto::write_frame(&mut writer, &Request::hello(Credentials::current_process()))
            .unwrap();
        let _: Response = puddles_proto::read_frame(&mut reader).unwrap();
        while !busy_stop.load(Ordering::SeqCst) {
            if puddles_proto::write_frame(&mut writer, &Request::Ping).is_err() {
                break;
            }
            if puddles_proto::read_frame::<_, Response>(&mut reader).is_err() {
                break;
            }
        }
    });

    // Stalled client: sends half a length prefix and goes silent.
    let mut stalled = std::os::unix::net::UnixStream::connect(&socket).unwrap();
    stalled.write_all(&[0x10, 0x00]).unwrap();

    std::thread::sleep(Duration::from_millis(100));
    let start = Instant::now();
    server.shutdown();
    let elapsed = start.elapsed();
    // Grace (5s) + margin (2s) is the documented bound; allow slack for CI.
    assert!(
        elapsed < Duration::from_secs(10),
        "shutdown took {elapsed:?}, expected bounded"
    );

    stop.store(true, Ordering::SeqCst);
    drop(stalled);
    busy.join().unwrap();
}

#[test]
fn recovery_replays_chained_logs_in_order_and_reclaims_tails() {
    let tmp = tempfile::tempdir().unwrap();
    let config = DaemonConfig::for_testing(tmp.path());
    let daemon = Daemon::start(config.clone()).unwrap();
    let gspace = daemon.global_space();

    let create = |purpose| {
        expect_puddle(daemon.handle(
            USER_A,
            Request::CreatePuddle {
                size: 1 << 20,
                pool: None,
                purpose,
                mode: 0o600,
            },
        ))
    };
    // One data puddle, a log space, and a three-segment log chain whose
    // last tail never saw an append (the chain-extension crash window).
    let data = create(PuddlePurpose::Data);
    let ls = create(PuddlePurpose::LogSpace);
    let head = create(PuddlePurpose::Log);
    let tail = create(PuddlePurpose::Log);
    let empty_tail = create(PuddlePurpose::Log);
    assert_eq!(
        daemon.handle(USER_A, Request::RegLogSpace { puddle: ls.id }),
        Response::Ok
    );

    let base = gspace.base() as u64;
    let map = |info: &puddles_proto::PuddleInfo| -> usize {
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(&info.path)
            .unwrap();
        gspace
            .map_puddle(
                &file,
                (info.assigned_addr - base) as usize,
                info.size as usize,
                true,
            )
            .unwrap()
    };
    let data_addr = map(&data);
    let ls_addr = map(&ls);
    let head_addr = map(&head);
    let tail_addr = map(&tail);
    let empty_addr = map(&empty_tail);

    let target = data_addr + 0x4000;
    // SAFETY: `target` lies inside the freshly mapped writable data puddle.
    unsafe { std::ptr::write_bytes(target as *mut u8, 0xCC, 8) };

    // SAFETY: the puddles are mapped writable for their full size.
    let ls_ref = unsafe {
        LogSpaceRef::from_raw(
            (ls_addr + LOG_REGION_OFFSET) as *mut u8,
            ls.size as usize - LOG_REGION_OFFSET,
        )
    };
    ls_ref.init();
    ls_ref.register(head.id.0, 1, 0).unwrap();
    ls_ref.register(tail.id.0, 1, 1).unwrap();
    ls_ref.register(empty_tail.id.0, 1, 2).unwrap();

    let make_log = |addr: usize, info: &puddles_proto::PuddleInfo| -> LogRef {
        // SAFETY: mapped writable for the puddle's full size above.
        let log = unsafe {
            LogRef::from_raw(
                (addr + LOG_REGION_OFFSET) as *mut u8,
                info.size as usize - LOG_REGION_OFFSET,
            )
        };
        log.init();
        log
    };
    // Two undo entries for the SAME address, split across segments: the
    // head's (older, 0xAA) was logged before the tail's (0xBB). Reverse
    // replay must apply the tail entry first and the head entry last, so
    // the oldest value wins — exactly as if both sat in one log.
    let head_log = make_log(head_addr, &head);
    head_log.set_seq_range(RANGE_EXEC);
    head_log
        .append(
            target as u64,
            SEQ_UNDO,
            ReplayOrder::Reverse,
            EntryKind::Undo,
            &[0xAA; 8],
        )
        .unwrap();
    let tail_log = make_log(tail_addr, &tail);
    // Tail headers carry EXEC too, but recovery must key off the *head*.
    tail_log.set_seq_range(RANGE_EXEC);
    tail_log
        .append(
            target as u64,
            SEQ_UNDO,
            ReplayOrder::Reverse,
            EntryKind::Undo,
            &[0xBB; 8],
        )
        .unwrap();
    make_log(empty_addr, &empty_tail); // registered, never appended to

    // "Crash": drop every mapping and the daemon handle.
    for info in [&data, &ls, &head, &tail, &empty_tail] {
        // SAFETY: no references into the mappings remain.
        unsafe {
            gspace
                .unmap_puddle((info.assigned_addr - base) as usize)
                .unwrap();
        }
    }
    drop(gspace);
    drop(daemon);

    // Restart: recovery stitches the chain, replays across the boundary,
    // and reclaims both tails (the empty one is benign).
    let daemon = Daemon::start(config).unwrap();
    let gspace = daemon.global_space();
    let data2 = expect_puddle(daemon.handle(
        USER_A,
        Request::GetPuddle {
            id: data.id,
            writable: false,
        },
    ));
    let file = std::fs::OpenOptions::new()
        .read(true)
        .open(&data2.path)
        .unwrap();
    let addr = gspace
        .map_puddle(
            &file,
            (data2.assigned_addr - base) as usize,
            data2.size as usize,
            false,
        )
        .unwrap();
    // SAFETY: mapped read-only just above.
    let recovered = unsafe { std::slice::from_raw_parts((addr + 0x4000) as *const u8, 8) };
    assert_eq!(
        recovered, &[0xAA; 8],
        "reverse replay across the chain must leave the oldest value"
    );
    // SAFETY: `recovered` is not used past this point.
    unsafe {
        gspace
            .unmap_puddle((data2.assigned_addr - base) as usize)
            .unwrap();
    }

    // The head survives (reset), the tails are gone.
    assert!(matches!(
        daemon.handle(
            USER_A,
            Request::GetPuddle {
                id: head.id,
                writable: true
            }
        ),
        Response::Puddle(_)
    ));
    for freed in [tail.id, empty_tail.id] {
        assert!(
            matches!(
                daemon.handle(
                    USER_A,
                    Request::GetPuddle {
                        id: freed,
                        writable: true
                    }
                ),
                Response::Error {
                    code: ErrorCode::NotFound,
                    ..
                }
            ),
            "chain tail must have been reclaimed"
        );
    }
}

/// The `ensure_logspace` crash window: the client crashed after the daemon
/// allocated its LogSpace puddle but before `RegLogSpace` registered it.
/// No recovery pass walks the puddle (recovery iterates *registered* log
/// spaces) — only the startup sweep can reclaim it.
#[test]
fn unregistered_logspace_puddles_are_swept_at_startup() {
    use puddles::{PoolOptions, PuddleClient};
    use puddles_pmem::failpoint;

    let tmp = tempfile::tempdir().unwrap();
    let config = DaemonConfig::for_testing(tmp.path());
    let logspace_count;
    {
        let daemon = Daemon::start(config.clone()).unwrap();
        let client = PuddleClient::connect_local(&daemon).unwrap();
        let pool = client.create_pool("ls", PoolOptions::default()).unwrap();
        // First transaction ever on this client: it must create the log
        // space — crash between the allocation and the registration.
        failpoint::arm(failpoint::names::LOGSPACE_ALLOC_CRASH, 0);
        let err = pool.tx(|_tx| Ok(())).unwrap_err();
        failpoint::clear_all();
        assert!(
            err.is_injected_crash(),
            "expected injected crash, got {err}"
        );
        // The leak is visible daemon-side: a LogSpace puddle exists but the
        // log-space table is empty.
        match daemon.handle(Credentials::current_process(), Request::Stats) {
            Response::Stats(stats) => {
                logspace_count = stats.puddles;
                assert_eq!(stats.log_spaces, 0, "{stats:?}");
            }
            other => panic!("unexpected {other:?}"),
        }
        // The "crashed" client and daemon are dropped without cleanup.
    }

    let daemon = Daemon::start(config).unwrap();
    match daemon.handle(Credentials::current_process(), Request::Stats) {
        Response::Stats(stats) => {
            assert_eq!(stats.logspace_puddles_swept, 1, "{stats:?}");
            assert_eq!(stats.puddles, logspace_count - 1);
            // The sweep must not have touched the pool.
            assert_eq!(stats.pools, 1);
        }
        other => panic!("unexpected {other:?}"),
    }
}

#[test]
fn unreferenced_log_puddles_are_swept_at_startup() {
    let tmp = tempfile::tempdir().unwrap();
    let config = DaemonConfig::for_testing(tmp.path());
    let daemon = Daemon::start(config.clone()).unwrap();

    // A log puddle that no log space ever references: the crash window
    // between allocating a chain segment and registering it.
    let orphan = expect_puddle(daemon.handle(
        USER_A,
        Request::CreatePuddle {
            size: 1 << 20,
            pool: None,
            purpose: PuddlePurpose::Log,
            mode: 0o600,
        },
    ));
    // A data puddle must NOT be touched by the sweep.
    let data = expect_puddle(daemon.handle(
        USER_A,
        Request::CreatePuddle {
            size: 1 << 20,
            pool: None,
            purpose: PuddlePurpose::Data,
            mode: 0o600,
        },
    ));
    drop(daemon);

    let daemon = Daemon::start(config).unwrap();
    match daemon.handle(USER_A, Request::Stats) {
        Response::Stats(stats) => assert_eq!(stats.log_puddles_swept, 1, "{stats:?}"),
        other => panic!("unexpected response {other:?}"),
    }
    assert!(matches!(
        daemon.handle(
            USER_A,
            Request::GetPuddle {
                id: orphan.id,
                writable: true
            }
        ),
        Response::Error {
            code: ErrorCode::NotFound,
            ..
        }
    ));
    assert!(matches!(
        daemon.handle(
            USER_A,
            Request::GetPuddle {
                id: data.id,
                writable: true
            }
        ),
        Response::Puddle(_)
    ));
}
