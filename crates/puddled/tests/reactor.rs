//! Reactor-runtime edge cases: frame reassembly over the wire, slow-reader
//! isolation, connection counts beyond the old thread cap, half-close
//! semantics, the background checkpoint path (async landing, drain on
//! shutdown, forced-inline fallback, crash during a background checkpoint),
//! and the protocol-v2 runtime (v1/v2 coexistence, out-of-order completion
//! across dispatch lanes, pipelined backpressure, cross-reactor shutdown,
//! `Busy` rejection at the connection cap).

use puddled::{Daemon, DaemonConfig, ServerConfig, UdsServer};
use puddles_pmem::failpoint;
use puddles_proto::frame::V2_MAGIC;
use puddles_proto::{
    read_frame, write_frame, Credentials, PtrField, PtrMapDecl, Request, RequestEnvelope, Response,
    ServerFrame,
};
use std::io::Write;
use std::os::unix::net::UnixStream;
use std::time::{Duration, Instant};

fn start_server() -> (tempfile::TempDir, Daemon, UdsServer, std::path::PathBuf) {
    let tmp = tempfile::tempdir().unwrap();
    let daemon = Daemon::start(DaemonConfig::for_testing(tmp.path())).unwrap();
    let socket = tmp.path().join("reactor.sock");
    let server = UdsServer::start(daemon.clone(), &socket).unwrap();
    (tmp, daemon, server, socket)
}

fn hello(socket: &std::path::Path) -> UnixStream {
    let mut stream = UnixStream::connect(socket).unwrap();
    write_frame(&mut stream, &Request::hello(Credentials::current_process())).unwrap();
    let resp: Response = read_frame(&mut stream).unwrap();
    assert!(matches!(resp, Response::Welcome { .. }));
    stream
}

/// Opens a protocol-v2 connection: sends the version preamble, then an
/// enveloped `Hello` (id 0) and checks the echoed envelope.
fn hello_v2(socket: &std::path::Path) -> UnixStream {
    let mut stream = UnixStream::connect(socket).unwrap();
    stream.write_all(&V2_MAGIC).unwrap();
    write_env(
        &mut stream,
        0,
        Request::hello(Credentials::current_process()),
    );
    let (req_id, resp) = read_env(&mut stream);
    assert_eq!(req_id, 0);
    assert!(matches!(resp, Response::Welcome { .. }), "{resp:?}");
    stream
}

fn write_env(stream: &mut UnixStream, req_id: u64, req: Request) {
    write_frame(stream, &RequestEnvelope { req_id, req }).unwrap();
}

fn read_env(stream: &mut UnixStream) -> (u64, Response) {
    match read_frame::<_, ServerFrame>(stream).unwrap() {
        ServerFrame::Enveloped(env) => (env.req_id, env.resp),
        ServerFrame::Bare(resp) => panic!("bare frame on a v2 connection: {resp:?}"),
    }
}

/// Serializes the tests that exercise checkpoint thresholds or global
/// failpoints: checkpoints fire on daemon background threads, so a
/// concurrently running checkpoint-heavy test could consume another test's
/// armed point or skew its counters.
fn checkpoint_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

fn wait_until(what: &str, mut pred: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !pred() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn stats(daemon: &Daemon) -> puddles_proto::DaemonStats {
    match daemon.handle(Credentials::current_process(), Request::Stats) {
        Response::Stats(stats) => stats,
        other => panic!("unexpected {other:?}"),
    }
}

/// Frames arriving split at arbitrary byte boundaries — including a
/// one-byte trickle with delays — must reassemble and be served exactly as
/// a whole frame (partial-read state machine).
#[test]
fn frames_split_across_write_boundaries_are_served() {
    let (_tmp, _daemon, mut server, socket) = start_server();
    let mut stream = hello(&socket);

    let frame = puddles_proto::frame::encode_frame(&Request::CreatePool {
        name: "trickle".into(),
        root_size: 1 << 20,
        mode: 0o600,
    })
    .unwrap();
    // Trickle the frame: the length prefix split mid-way, then odd chunks.
    for chunk in frame.chunks(3) {
        stream.write_all(chunk).unwrap();
        stream.flush().unwrap();
        std::thread::sleep(Duration::from_millis(2));
    }
    let resp: Response = read_frame(&mut stream).unwrap();
    assert!(matches!(resp, Response::Pool(_)), "{resp:?}");

    // Several frames coalesced into one write also all get served, in
    // order (pipelining through the per-connection queue).
    let mut batch = Vec::new();
    for _ in 0..5 {
        batch.extend_from_slice(&puddles_proto::frame::encode_frame(&Request::Ping).unwrap());
    }
    batch.extend_from_slice(
        &puddles_proto::frame::encode_frame(&Request::OpenPool {
            name: "trickle".into(),
        })
        .unwrap(),
    );
    stream.write_all(&batch).unwrap();
    for _ in 0..5 {
        let resp: Response = read_frame(&mut stream).unwrap();
        assert!(matches!(resp, Response::Welcome { .. }), "{resp:?}");
    }
    let resp: Response = read_frame(&mut stream).unwrap();
    assert!(matches!(resp, Response::Pool(_)), "{resp:?}");
    server.shutdown();
}

/// A peer that requests large responses and never reads them must stall
/// only itself: its responses park in a bounded output buffer (then
/// backpressure pauses its reads), while other connections keep getting
/// sub-second service. When the stalled peer finally reads, it receives
/// every response intact.
#[test]
fn stalled_reader_does_not_block_other_connections() {
    let (_tmp, daemon, mut server, socket) = start_server();

    // Make GetPtrMaps responses fat: ~100 maps with 2 KiB names.
    let creds = Credentials::current_process();
    for i in 0..100u64 {
        let decl = PtrMapDecl {
            type_id: 1000 + i,
            type_name: format!("stall::{}::{}", i, "x".repeat(2048)),
            size: 64,
            fields: vec![PtrField {
                offset: 8,
                target_type: 1000 + i,
            }],
        };
        match daemon.handle(creds, Request::RegisterPtrMap { decl }) {
            Response::Ok => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    // The stalled peer pipelines 20 fat requests and reads nothing.
    let mut stalled = hello(&socket);
    const PIPELINED: usize = 20;
    let mut batch = Vec::new();
    for _ in 0..PIPELINED {
        batch.extend_from_slice(&puddles_proto::frame::encode_frame(&Request::GetPtrMaps).unwrap());
    }
    stalled.write_all(&batch).unwrap();

    // Meanwhile a well-behaved peer gets prompt service.
    let mut live = hello(&socket);
    for _ in 0..20 {
        let t0 = Instant::now();
        write_frame(&mut live, &Request::Ping).unwrap();
        let resp: Response = read_frame(&mut live).unwrap();
        assert!(matches!(resp, Response::Welcome { .. }));
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "ping stalled behind another connection's unread responses"
        );
    }

    // The stalled peer's responses were parked, not dropped: reading now
    // yields all 20, each carrying the full 100 maps.
    for _ in 0..PIPELINED {
        match read_frame::<_, Response>(&mut stalled).unwrap() {
            Response::PtrMaps(maps) => assert_eq!(maps.len(), 100),
            other => panic!("unexpected {other:?}"),
        }
    }
    server.shutdown();
}

/// Far more simultaneous connections than the old 256-thread cap, all
/// served by one reactor + a fixed worker pool.
#[test]
fn connections_beyond_the_old_thread_cap_are_served() {
    let (_tmp, _daemon, mut server, socket) = start_server();
    const CONNS: usize = 300;
    let mut streams: Vec<UnixStream> = (0..CONNS).map(|_| hello(&socket)).collect();
    assert!(server.active_connections() >= CONNS);
    // Every connection stays live and answers across several rounds.
    for _ in 0..3 {
        for stream in &mut streams {
            write_frame(stream, &Request::Ping).unwrap();
        }
        for stream in &mut streams {
            let resp: Response = read_frame(stream).unwrap();
            assert!(matches!(resp, Response::Welcome { .. }));
        }
    }
    drop(streams);
    server.shutdown();
}

/// A peer that pipelines requests and half-closes (shutdown of its write
/// side) still receives every response before the connection is dropped.
#[test]
fn half_close_drains_pending_responses() {
    let (_tmp, _daemon, mut server, socket) = start_server();
    let mut stream = hello(&socket);
    let mut batch = Vec::new();
    for _ in 0..8 {
        batch.extend_from_slice(&puddles_proto::frame::encode_frame(&Request::Ping).unwrap());
    }
    stream.write_all(&batch).unwrap();
    stream.shutdown(std::net::Shutdown::Write).unwrap();
    for _ in 0..8 {
        let resp: Response = read_frame(&mut stream).unwrap();
        assert!(matches!(resp, Response::Welcome { .. }));
    }
    // Clean EOF after the last response.
    assert!(read_frame::<_, Response>(&mut stream).is_err());
    server.shutdown();
}

/// The acceptance check for inline-checkpoint removal: a commit that trips
/// the byte threshold returns immediately and the checkpoint lands
/// *asynchronously* (observed via the background counter; `Stats` requests
/// never checkpoint, so the increment can only come from the scheduler).
#[test]
fn threshold_checkpoints_land_asynchronously() {
    let _guard = checkpoint_lock();
    let tmp = tempfile::tempdir().unwrap();
    let daemon = Daemon::start(DaemonConfig::for_testing(tmp.path())).unwrap();
    daemon.wal().set_checkpoint_threshold(64);
    let creds = Credentials::current_process();
    match daemon.handle(
        creds,
        Request::CreatePool {
            name: "async-ckpt".into(),
            root_size: 1 << 20,
            mode: 0o600,
        },
    ) {
        Response::Pool(_) => {}
        other => panic!("unexpected {other:?}"),
    }
    wait_until("background checkpoint", || {
        stats(&daemon).checkpoints_background >= 1
    });
    let s = stats(&daemon);
    assert_eq!(
        s.checkpoints_forced_inline, 0,
        "steady state must never fall back to inline: {s:?}"
    );
    assert!(s.background_tasks_executed >= 1);
}

/// Drain-on-shutdown: a checkpoint still *queued* (scheduler paused) when
/// the last daemon handle drops must run before the worker exits — the WAL
/// is truncated on disk and the state reloads from the checkpoint.
#[test]
fn shutdown_drains_pending_background_checkpoints() {
    let _guard = checkpoint_lock();
    let tmp = tempfile::tempdir().unwrap();
    let config = DaemonConfig::for_testing(tmp.path());
    let wal_path = tmp.path().join("meta").join("registry.wal");
    {
        let daemon = Daemon::start(config.clone()).unwrap();
        daemon.background().pause();
        daemon.wal().set_checkpoint_threshold(1);
        // Keep the forced-inline fallback out of the way: this test needs
        // the checkpoint to still be *queued* when the daemon drops.
        daemon.wal().set_checkpoint_hard_ceiling(u64::MAX);
        let creds = Credentials::current_process();
        match daemon.handle(
            creds,
            Request::CreatePool {
                name: "drain".into(),
                root_size: 1 << 20,
                mode: 0o600,
            },
        ) {
            Response::Pool(_) => {}
            other => panic!("unexpected {other:?}"),
        }
        assert!(
            daemon.background().pending() >= 1,
            "paused scheduler must hold the queued checkpoint"
        );
        assert!(
            std::fs::metadata(&wal_path).unwrap().len() > 0,
            "records must still sit in the WAL while the checkpoint is queued"
        );
        // Last handle drops here: Drop drains the scheduler.
    }
    assert_eq!(
        std::fs::metadata(&wal_path).unwrap().len(),
        0,
        "the drained checkpoint must have truncated the WAL"
    );
    let daemon = Daemon::start(config).unwrap();
    match daemon.handle(
        Credentials::current_process(),
        Request::OpenPool {
            name: "drain".into(),
        },
    ) {
        Response::Pool(_) => {}
        other => panic!("unexpected {other:?}"),
    }
}

/// Kill during a *background* checkpoint, at the nastiest boundary: the
/// snapshot was renamed into place but the WAL was not yet truncated.
/// Restart must replay to exactly the pre-kill state (records at or above
/// the checkpoint's sequence floor applied once, none lost, none doubled).
#[test]
fn kill_during_background_checkpoint_still_replays_registry() {
    let _guard = checkpoint_lock();
    failpoint::clear_all();
    let tmp = tempfile::tempdir().unwrap();
    let config = DaemonConfig::for_testing(tmp.path());
    let expected_puddles;
    {
        let daemon = Daemon::start(config.clone()).unwrap();
        daemon.wal().set_checkpoint_threshold(64);
        failpoint::arm(failpoint::names::WAL_CHECKPOINT_BEFORE_TRUNCATE, 0);
        let creds = Credentials::current_process();
        match daemon.handle(
            creds,
            Request::CreatePool {
                name: "bg-crash".into(),
                root_size: 1 << 20,
                mode: 0o600,
            },
        ) {
            Response::Pool(_) => {}
            other => panic!("unexpected {other:?}"),
        }
        // The commit above queued a background checkpoint; wait for it to
        // hit the crash point (snapshot written, truncation skipped).
        wait_until("background checkpoint crash", || {
            failpoint::fired()
                .iter()
                .any(|name| name == failpoint::names::WAL_CHECKPOINT_BEFORE_TRUNCATE)
        });
        expected_puddles = stats(&daemon).puddles;
        // "Kill": drop with no further mutations (nothing is pending, so
        // the drop-drain cannot paper over the torn checkpoint state).
    }
    failpoint::clear_all();

    let daemon = Daemon::start(config).unwrap();
    let s = stats(&daemon);
    assert_eq!(s.puddles, expected_puddles, "{s:?}");
    match daemon.handle(
        Credentials::current_process(),
        Request::OpenPool {
            name: "bg-crash".into(),
        },
    ) {
        Response::Pool(_) => {}
        other => panic!("unexpected {other:?}"),
    }
}

/// The hard ceiling: with the scheduler wedged (paused) and the WAL grown
/// far past the threshold, commits stop deferring and pay the checkpoint
/// inline — the WAL must never grow without bound.
#[test]
fn wal_past_hard_ceiling_forces_inline_checkpoint() {
    let _guard = checkpoint_lock();
    let tmp = tempfile::tempdir().unwrap();
    let daemon = Daemon::start(DaemonConfig::for_testing(tmp.path())).unwrap();
    daemon.background().pause();
    daemon.wal().set_checkpoint_threshold(64); // ceiling: 8 * 64 = 512 B
    let creds = Credentials::current_process();
    let mut forced = 0;
    for i in 0..64 {
        match daemon.handle(
            creds,
            Request::CreatePool {
                name: format!("ceiling-{i}"),
                root_size: 1 << 20,
                mode: 0o600,
            },
        ) {
            Response::Pool(_) => {}
            other => panic!("unexpected {other:?}"),
        }
        forced = stats(&daemon).checkpoints_forced_inline;
        if forced >= 1 {
            break;
        }
    }
    assert!(
        forced >= 1,
        "a paused scheduler must trigger the forced-inline fallback"
    );
    daemon.background().resume();
    // Everything created along the way survived the mixed checkpoint modes.
    for i in 0..=0 {
        match daemon.handle(
            creds,
            Request::OpenPool {
                name: format!("ceiling-{i}"),
            },
        ) {
            Response::Pool(_) => {}
            other => panic!("unexpected {other:?}"),
        }
    }
}

/// A v1 client (bare frames, in-order responses) and a v2 client (enveloped,
/// pipelined) work side by side against the same daemon: the version is
/// negotiated per connection off the first bytes, and neither protocol's
/// traffic corrupts the other's.
#[test]
fn v1_client_works_against_a_v2_daemon() {
    let (_tmp, _daemon, mut server, socket) = start_server();
    let mut v1 = hello(&socket);
    let mut v2 = hello_v2(&socket);

    // The v2 connection pipelines a burst with distinctive ids.
    for req_id in 100u64..120 {
        write_env(&mut v2, req_id, Request::Ping);
    }
    // Interleaved v1 round trips stay strictly in order, one at a time.
    for _ in 0..10 {
        write_frame(&mut v1, &Request::Ping).unwrap();
        let resp: Response = read_frame(&mut v1).unwrap();
        assert!(matches!(resp, Response::Welcome { .. }), "{resp:?}");
    }
    // Every pipelined response comes back enveloped; ids may arrive in any
    // order but each appears exactly once.
    let mut seen: Vec<u64> = (0..20).map(|_| read_env(&mut v2).0).collect();
    seen.sort_unstable();
    assert_eq!(seen, (100u64..120).collect::<Vec<_>>());
    server.shutdown();
}

/// Out-of-order completion across dispatch lanes: a heavyweight bulk-lane
/// request (`ExportPool` of a multi-megabyte pool) pipelined *before* a
/// burst of pings must not delay them — the pings ride the fast lane's
/// reserved workers and their responses overtake the export's on the same
/// connection, paired by id.
#[test]
fn bulk_lane_requests_do_not_starve_pipelined_pings() {
    let (tmp, daemon, mut server, socket) = start_server();
    let creds = Credentials::current_process();
    match daemon.handle(
        creds,
        Request::CreatePool {
            name: "bulky".into(),
            root_size: 16 << 20,
            mode: 0o600,
        },
    ) {
        Response::Pool(_) => {}
        other => panic!("unexpected {other:?}"),
    }

    let mut v2 = hello_v2(&socket);
    write_env(
        &mut v2,
        1,
        Request::ExportPool {
            name: "bulky".into(),
            dest: tmp
                .path()
                .join("bulk-export")
                .to_string_lossy()
                .into_owned(),
        },
    );
    const PINGS: u64 = 8;
    for req_id in 2..2 + PINGS {
        write_env(&mut v2, req_id, Request::Ping);
    }

    let mut order = Vec::new();
    for _ in 0..1 + PINGS {
        let (req_id, resp) = read_env(&mut v2);
        if req_id == 1 {
            assert!(matches!(resp, Response::Ok), "{resp:?}");
        } else {
            assert!(matches!(resp, Response::Welcome { .. }), "{resp:?}");
        }
        order.push(req_id);
    }
    let mut ids = order.clone();
    ids.sort_unstable();
    assert_eq!(ids, (1..2 + PINGS).collect::<Vec<_>>());
    assert_ne!(
        order.first(),
        Some(&1),
        "a 16 MiB export completed before every fast-lane ping — \
         bulk work is not riding the background lane: {order:?}"
    );
    server.shutdown();
}

/// A pipelined v2 peer that fills the whole request window with fat
/// responses and reads nothing must stall only itself (output high-water
/// drops its read interest); other connections keep sub-second service, and
/// once the stalled peer reads, all responses arrive intact with each id
/// exactly once.
#[test]
fn stalled_pipelined_reader_hits_high_water_without_losing_responses() {
    let (_tmp, daemon, mut server, socket) = start_server();
    let creds = Credentials::current_process();
    for i in 0..100u64 {
        let decl = PtrMapDecl {
            type_id: 2000 + i,
            type_name: format!("v2stall::{}::{}", i, "y".repeat(2048)),
            size: 64,
            fields: vec![PtrField {
                offset: 8,
                target_type: 2000 + i,
            }],
        };
        match daemon.handle(creds, Request::RegisterPtrMap { decl }) {
            Response::Ok => {}
            other => panic!("unexpected {other:?}"),
        }
    }

    // Fill the entire pipeline window (the daemon-side in-flight cap) with
    // ~200 KiB responses: ~12 MiB total, far past the 1 MiB high-water.
    let mut stalled = hello_v2(&socket);
    const DEPTH: u64 = 64;
    let mut batch = Vec::new();
    for req_id in 1..=DEPTH {
        batch.extend_from_slice(
            &puddles_proto::frame::encode_frame(&RequestEnvelope {
                req_id,
                req: Request::GetPtrMaps,
            })
            .unwrap(),
        );
    }
    stalled.write_all(&batch).unwrap();

    let mut live = hello(&socket);
    for _ in 0..20 {
        let t0 = Instant::now();
        write_frame(&mut live, &Request::Ping).unwrap();
        let resp: Response = read_frame(&mut live).unwrap();
        assert!(matches!(resp, Response::Welcome { .. }));
        assert!(
            t0.elapsed() < Duration::from_secs(2),
            "ping stalled behind a pipelined peer's unread responses"
        );
    }

    let mut seen: Vec<u64> = (0..DEPTH)
        .map(|_| {
            let (req_id, resp) = read_env(&mut stalled);
            match resp {
                Response::PtrMaps(maps) => assert_eq!(maps.len(), 100),
                other => panic!("unexpected {other:?}"),
            }
            req_id
        })
        .collect();
    seen.sort_unstable();
    assert_eq!(seen, (1..=DEPTH).collect::<Vec<_>>());
    server.shutdown();
}

/// Shutdown with in-flight requests spread across every reactor: each
/// connection still receives its response during the drain, then a clean
/// EOF — no reactor drops another's completions on the floor.
#[test]
fn cross_reactor_shutdown_drains_in_flight_responses() {
    let tmp = tempfile::tempdir().unwrap();
    let daemon = Daemon::start(DaemonConfig::for_testing(tmp.path())).unwrap();
    let socket = tmp.path().join("multi.sock");
    let mut server = UdsServer::start_with_config(
        daemon,
        &socket,
        ServerConfig {
            reactors: 4,
            ..ServerConfig::default()
        },
    )
    .unwrap();

    // 32 v2 connections land on all four reactors (least-loaded placement:
    // with a 4096 budget every reactor's slice has room, so the spread is
    // 8 per reactor).
    let mut streams: Vec<UnixStream> = (0..32).map(|_| hello_v2(&socket)).collect();
    assert_eq!(server.active_connections(), 32);
    for (i, stream) in streams.iter_mut().enumerate() {
        write_env(stream, 1000 + i as u64, Request::Ping);
    }
    // Let every reactor parse and complete its pings (a request whose bytes
    // are still unread in the kernel buffer counts as idle and is dropped
    // at drain start — that part of the contract is deliberate).
    std::thread::sleep(Duration::from_millis(200));
    let shutdown = std::thread::spawn(move || {
        server.shutdown();
        server
    });
    for (i, stream) in streams.iter_mut().enumerate() {
        let (req_id, resp) = read_env(stream);
        assert_eq!(req_id, 1000 + i as u64);
        assert!(matches!(resp, Response::Welcome { .. }), "{resp:?}");
        // After the drained response the daemon closes cleanly.
        assert!(read_frame::<_, ServerFrame>(stream).is_err());
    }
    let server = shutdown.join().unwrap();
    assert_eq!(server.active_connections(), 0);
}

/// At the connection cap the daemon does not silently drop the socket: the
/// extra client receives a `Busy` error frame before the close, and the
/// rejection is counted in `Stats`.
#[test]
fn connection_cap_rejects_with_a_busy_frame() {
    let tmp = tempfile::tempdir().unwrap();
    let daemon = Daemon::start(DaemonConfig::for_testing(tmp.path())).unwrap();
    let socket = tmp.path().join("busy.sock");
    let mut server = UdsServer::start_with_config(
        daemon.clone(),
        &socket,
        ServerConfig {
            max_connections: 4,
            reactors: 2,
        },
    )
    .unwrap();

    // Fill the cap with live connections (the round trip guarantees each is
    // counted before the next connect).
    let _held: Vec<UnixStream> = (0..4).map(|_| hello(&socket)).collect();

    // The fifth connects at the listener but is turned away with a proper
    // error frame — not a bare EOF.
    let mut extra = UnixStream::connect(&socket).unwrap();
    match read_frame::<_, Response>(&mut extra).unwrap() {
        Response::Error { code, message } => {
            assert_eq!(code, puddles_proto::ErrorCode::Busy);
            assert!(message.contains("connection limit"), "{message}");
        }
        other => panic!("unexpected {other:?}"),
    }
    assert!(
        read_frame::<_, Response>(&mut extra).is_err(),
        "EOF after Busy"
    );
    assert!(stats(&daemon).connections_rejected >= 1);
    server.shutdown();
}

/// The PR 6 reactor-skew caveat is observable: `Stats` carries live
/// per-reactor connection counts that track accept placement and drain
/// back to zero when connections close.
#[test]
fn stats_expose_per_reactor_connection_counts() {
    let tmp = tempfile::tempdir().unwrap();
    let daemon = Daemon::start(DaemonConfig::for_testing(tmp.path())).unwrap();
    let socket = tmp.path().join("loads.sock");
    let mut server = UdsServer::start_with_config(
        daemon.clone(),
        &socket,
        ServerConfig {
            max_connections: 64,
            reactors: 2,
        },
    )
    .unwrap();

    let s = stats(&daemon);
    assert_eq!(s.reactors, 2, "reactor count must surface in stats");
    assert_eq!(s.reactor_connections.iter().sum::<u64>(), 0);

    // Each hello round-trips, so the connection is registered with its
    // reactor before the next connect (placement is least-loaded).
    let held: Vec<UnixStream> = (0..4).map(|_| hello(&socket)).collect();
    wait_until("connections counted per reactor", || {
        stats(&daemon).reactor_connections.iter().sum::<u64>() == 4
    });
    let s = stats(&daemon);
    // Least-loaded placement over two reactors must split 4 connections
    // evenly — this is exactly the skew the counters exist to expose.
    assert_eq!(s.reactor_connections[0], 2, "{:?}", s.reactor_connections);
    assert_eq!(s.reactor_connections[1], 2, "{:?}", s.reactor_connections);

    drop(held);
    wait_until("counts drain after close", || {
        stats(&daemon).reactor_connections.iter().sum::<u64>() == 0
    });
    server.shutdown();
    // Detached at shutdown: a stopped server reports no reactors.
    assert_eq!(stats(&daemon).reactors, 0);
}
