//! Failpoint-driven crash-injection tests for the metadata WAL.
//!
//! Follows the black-box consistency-checking discipline of the paper's
//! correctness evaluation (§5.1) — and of Biswas et al.'s snapshot-isolation
//! checking: inject a crash at a chosen persistence boundary, restart the
//! daemon from the on-disk state alone, and assert the recovered registry
//! satisfies its invariants (and, where the scenario pins it down, equals
//! the exact pre-crash state).

use puddled::registry::{PoolRecord, PuddleRecord, Registry, RegistryData};
use puddled::{Daemon, DaemonConfig};
use puddles_pmem::failpoint::{self, names};
use puddles_pmem::pmdir::PmDir;
use puddles_pmem::{PmError, PAGE_SIZE};
use puddles_proto::{PuddleId, PuddlePurpose};
use std::sync::{Arc, Mutex};

/// Failpoints are process-global; tests that arm them must not interleave.
static FP_LOCK: Mutex<()> = Mutex::new(());

fn lock_failpoints() -> std::sync::MutexGuard<'static, ()> {
    let guard = FP_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    failpoint::clear_all();
    guard
}

fn open_registry(pm: &PmDir) -> Registry {
    Registry::load_or_create(pm, 0x5000_0000_0000, 1 << 30).unwrap()
}

fn record(reg: &Registry, pool: Option<&str>) -> PuddleRecord {
    let id = reg.fresh_id();
    let offset = reg.alloc_space(PAGE_SIZE as u64).unwrap();
    PuddleRecord {
        id,
        size: PAGE_SIZE as u64,
        offset,
        file: id.to_hex(),
        purpose: PuddlePurpose::Data,
        owner_uid: 1,
        owner_gid: 2,
        mode: 0o600,
        pool: pool.map(String::from),
        needs_rewrite: false,
        translations: vec![],
    }
}

/// Creates a pool named `name` with a root and `members - 1` extra member
/// puddles, mirroring how the daemon builds pools.
fn build_pool(reg: &Registry, name: &str, members: usize) -> Vec<PuddleId> {
    let root = record(reg, Some(name));
    let root_id = root.id;
    assert!(reg.try_insert_pool(PoolRecord {
        name: name.into(),
        root: root_id,
        puddles: Vec::new(),
    }));
    reg.register_puddle(root).unwrap();
    let mut ids = vec![root_id];
    for _ in 1..members {
        let rec = record(reg, Some(name));
        ids.push(rec.id);
        reg.register_puddle(rec).unwrap();
    }
    ids
}

/// Structural invariants every recovered registry must satisfy — the shared
/// [`puddled::Invariants`] layer also used by `crash_sweep` and the torture
/// harness.
fn assert_consistent(data: &RegistryData) {
    puddled::Invariants::assert_data(data);
}

#[test]
fn recovery_roundtrips_a_registry_bit_identically_through_the_wal() {
    let _guard = lock_failpoints();
    let tmp = tempfile::tempdir().unwrap();
    let pm = PmDir::open(tmp.path()).unwrap();
    let before;
    {
        let reg = open_registry(&pm);
        // ≥ 3 pools, ≥ 8 puddles (plus churn: an update and a drop, so
        // replay exercises put, update, and drop records). The dropped
        // puddle sits in the *middle* of the space so its extent becomes a
        // free-list gap (a freed tail extent is instead absorbed into the
        // bump pointer by the load-time reconcile — correct, but then the
        // comparison would not be bit-exact).
        build_pool(&reg, "alpha", 3);
        let loose = record(&reg, None);
        let loose_id = loose.id;
        reg.register_puddle(loose).unwrap();
        let beta = build_pool(&reg, "beta", 3);
        build_pool(&reg, "gamma", 3);
        reg.update_puddle(beta[1], |p| p.mode = 0o640).unwrap();
        let dropped = reg.unregister_puddle(loose_id).unwrap();
        reg.free_space(dropped.offset, dropped.size);
        reg.register_ptr_map(puddles_proto::PtrMapDecl {
            type_id: 42,
            type_name: "Node".into(),
            size: 16,
            fields: vec![],
        });
        reg.register_log_space(puddled::registry::LogSpaceRecord {
            puddle: beta[0],
            owner_uid: 1,
            owner_gid: 2,
            invalid: false,
        });
        reg.commit().unwrap();
        before = reg.snapshot();

        // The durable checkpoint is still the empty one from load time:
        // every mutation above lives only in the WAL.
        let ckpt: RegistryData =
            serde_json::from_slice(&pm.read_meta("registry.json").unwrap().unwrap()).unwrap();
        assert!(
            ckpt.puddles.is_empty(),
            "mutations must not rewrite the checkpoint"
        );
        assert!(reg.wal().stats().records >= 10);
        // The registry is dropped without a checkpoint — recovery must
        // rebuild everything from checkpoint + WAL replay alone.
    }
    let reg = open_registry(&pm);
    let after = reg.snapshot();
    assert_eq!(before.puddles.len(), 9);
    assert_eq!(before.pools.len(), 3);
    assert_eq!(
        after, before,
        "recovered registry differs from pre-crash state"
    );
    assert_consistent(&after);
}

#[test]
fn torn_tail_record_is_discarded_and_prior_state_survives() {
    let _guard = lock_failpoints();
    let tmp = tempfile::tempdir().unwrap();
    let pm = PmDir::open(tmp.path()).unwrap();
    let before;
    {
        let reg = open_registry(&pm);
        build_pool(&reg, "stable", 4);
        reg.commit().unwrap();
        before = reg.snapshot();

        // The next mutation's WAL record is torn mid-append.
        failpoint::arm(names::WAL_APPEND_TORN, 0);
        let rec = record(&reg, None);
        reg.register_puddle(rec).unwrap();
        let err = reg.commit().unwrap_err();
        assert!(
            matches!(err, PmError::CrashInjected(_)),
            "expected injected crash, got {err}"
        );
        failpoint::clear_all();
        // Once torn, the WAL refuses further traffic until restart.
        assert!(reg.commit().is_err());
    }
    let reg = open_registry(&pm);
    let after = reg.snapshot();
    assert_consistent(&after);
    // The committed state survives in full; the torn mutation may only
    // vanish atomically (the record never passed its checksum).
    assert_eq!(after.pools, before.pools);
    assert_eq!(after.puddles, before.puddles);
}

#[test]
fn crash_between_checkpoint_write_and_wal_truncate_recovers_exactly() {
    let _guard = lock_failpoints();
    let tmp = tempfile::tempdir().unwrap();
    let pm = PmDir::open(tmp.path()).unwrap();
    let before;
    {
        let reg = open_registry(&pm);
        build_pool(&reg, "p0", 3);
        let p1 = build_pool(&reg, "p1", 3);
        build_pool(&reg, "p2", 2);
        // Include a drop so naive double-replay of the un-truncated WAL
        // would resurrect state the checkpoint no longer has.
        let victim = reg.unregister_puddle(p1[2]).unwrap();
        reg.free_space(victim.offset, victim.size);
        reg.commit().unwrap();
        before = reg.snapshot();

        failpoint::arm(names::WAL_CHECKPOINT_BEFORE_TRUNCATE, 0);
        let err = reg.checkpoint().unwrap_err();
        assert!(matches!(err, PmError::CrashInjected(_)));
        failpoint::clear_all();
        // The checkpoint document was written; the WAL was not truncated.
        assert!(reg.wal().stats().records > 0);
    }
    // Replay must skip every WAL record the checkpoint already covers
    // (sequence floor), then land on exactly the pre-crash state.
    let reg = open_registry(&pm);
    let after = reg.snapshot();
    assert_eq!(after, before);
    assert_consistent(&after);
}

#[test]
fn crash_mid_group_commit_keeps_every_acknowledged_mutation() {
    let _guard = lock_failpoints();
    let tmp = tempfile::tempdir().unwrap();
    let pm = PmDir::open(tmp.path()).unwrap();
    let acked = Arc::new(Mutex::new(Vec::new()));
    {
        let reg = Arc::new(open_registry(&pm));
        // Let a couple of batches commit cleanly, then tear one mid-write.
        failpoint::arm(names::WAL_MID_GROUP_COMMIT, 3);
        let threads: Vec<_> = (0..4)
            .map(|_| {
                let reg = Arc::clone(&reg);
                let acked = Arc::clone(&acked);
                std::thread::spawn(move || {
                    for _ in 0..20 {
                        let rec = record(&reg, None);
                        let id = rec.id;
                        reg.register_puddle(rec).unwrap();
                        match reg.commit() {
                            Ok(()) => acked.lock().unwrap().push(id),
                            // The injected crash (or the poisoned WAL after
                            // it): the daemon would be dead, stop "issuing
                            // requests" from this client.
                            Err(_) => break,
                        }
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let fired = failpoint::fired();
        failpoint::clear_all();
        assert_eq!(
            fired,
            vec![names::WAL_MID_GROUP_COMMIT.to_string()],
            "the crash must actually have been injected"
        );
    }
    let reg = open_registry(&pm);
    let after = reg.snapshot();
    assert_consistent(&after);
    // Durability: every mutation whose commit was acknowledged is present.
    let acked = acked.lock().unwrap();
    assert!(!acked.is_empty(), "some commits should have succeeded");
    for id in acked.iter() {
        assert!(
            after.puddles.contains_key(&id.to_hex()),
            "acknowledged puddle {id} lost by the crash"
        );
    }
}

#[test]
fn checkpoint_triggers_by_wal_byte_threshold_and_truncates() {
    let _guard = lock_failpoints();
    let tmp = tempfile::tempdir().unwrap();
    let pm = PmDir::open(tmp.path()).unwrap();
    let reg = open_registry(&pm);
    reg.wal().set_checkpoint_threshold(4 * 1024);
    let baseline = reg.wal().stats().checkpoints;
    for _ in 0..64 {
        let rec = record(&reg, None);
        reg.register_puddle(rec).unwrap();
        reg.commit().unwrap();
    }
    let stats = reg.wal().stats();
    assert!(
        stats.checkpoints > baseline,
        "threshold checkpoint never ran"
    );
    assert!(
        stats.bytes < 64 * 1024,
        "WAL kept growing past the threshold: {} bytes",
        stats.bytes
    );
    // And the checkpointed state still replays correctly.
    drop(reg);
    let reg = open_registry(&pm);
    assert_eq!(reg.snapshot().puddles.len(), 64);
}

#[test]
fn startup_sweep_deletes_orphan_puddle_files() {
    let _guard = lock_failpoints();
    let tmp = tempfile::tempdir().unwrap();
    let config = DaemonConfig::for_testing(tmp.path());
    let legit_files: Vec<String>;
    {
        let daemon = Daemon::start(config.clone()).unwrap();
        let ep = daemon.endpoint_for_current_process();
        use puddles_proto::{Endpoint, Request, Response};
        let resp = ep
            .call(&Request::CreatePool {
                name: "keep".into(),
                root_size: 2 * PAGE_SIZE as u64,
                mode: 0o600,
            })
            .unwrap();
        assert!(matches!(resp, Response::Pool(_)));
        legit_files = daemon.pm_dir().list_puddles().unwrap();
        assert!(!legit_files.is_empty());
        // A crash mid-DropPool leaves a freed member's file behind: model
        // it with puddle files the registry knows nothing about.
        daemon
            .pm_dir()
            .create_puddle_file("00000000deadbeef", PAGE_SIZE)
            .unwrap();
        daemon
            .pm_dir()
            .create_puddle_file("00000000feedface", PAGE_SIZE)
            .unwrap();
    }
    let daemon = Daemon::start(config).unwrap();
    let files = daemon.pm_dir().list_puddles().unwrap();
    assert_eq!(
        files, legit_files,
        "orphans must be swept, legit files kept"
    );
    let ep = daemon.endpoint_for_current_process();
    use puddles_proto::{Endpoint, Request, Response};
    match ep.call(&Request::Stats).unwrap() {
        Response::Stats(stats) => assert_eq!(stats.orphan_files_swept, 2),
        other => panic!("unexpected response {other:?}"),
    }
}
