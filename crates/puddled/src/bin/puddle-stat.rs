//! `puddle-stat`: inspect a running `puddled`'s observability plane.
//!
//! Usage:
//!
//! ```text
//! puddle-stat --socket /run/puddled.sock
//!             [--json [PATH]] [--watch SECS] [--require SERIES]...
//! ```
//!
//! Connects over the daemon's UNIX socket (protocol v1 — one bare frame
//! per round trip, so it works against any daemon version that answers
//! `GetMetrics`), sends `Hello` then `GetMetrics`, and renders the
//! latency histograms and counters.
//!
//! * default: a human-readable table on stdout;
//! * `--json` (optionally followed by a path): the raw
//!   [`MetricsReport`] as pretty-printed JSON, to stdout or `PATH`;
//! * `--watch SECS`: poll and re-render every `SECS` seconds until
//!   interrupted;
//! * `--require SERIES` (repeatable): exit non-zero unless the named
//!   series has a non-zero sample count and a finite, non-zero p99 —
//!   the CI smoke gate ("the daemon actually timed requests under load").

use puddles_proto::{frame, Credentials, MetricsReport, Request, Response, SeriesSnapshot};
use std::io::Write;
use std::os::unix::net::UnixStream;
use std::process::exit;

struct Args {
    socket: String,
    json: bool,
    json_path: Option<String>,
    watch: Option<u64>,
    require: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        socket: String::new(),
        json: false,
        json_path: None,
        watch: None,
        require: Vec::new(),
    };
    let mut iter = std::env::args().skip(1).peekable();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--socket" => args.socket = iter.next().ok_or("--socket needs a value")?,
            "--json" => {
                args.json = true;
                // The path operand is optional: `--json out.json` writes a
                // file, bare `--json` prints to stdout.
                if iter.peek().is_some_and(|next| !next.starts_with('-')) {
                    args.json_path = iter.next();
                }
            }
            "--watch" => {
                args.watch = Some(
                    iter.next()
                        .ok_or("--watch needs a value")?
                        .parse()
                        .map_err(|e| format!("bad --watch: {e}"))?,
                )
            }
            "--require" => args
                .require
                .push(iter.next().ok_or("--require needs a value")?),
            "--help" | "-h" => {
                println!(
                    "usage: puddle-stat --socket PATH [--json [PATH]] [--watch SECS] \
                     [--require SERIES]..."
                );
                exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if args.socket.is_empty() {
        return Err("--socket is required".into());
    }
    Ok(args)
}

/// One protocol-v1 round trip: a bare request frame out, a bare response
/// frame back.
fn call(stream: &mut UnixStream, req: &Request) -> Result<Response, String> {
    frame::write_frame(stream, req).map_err(|e| format!("send: {e}"))?;
    frame::read_frame(stream).map_err(|e| format!("receive: {e}"))
}

fn fetch(socket: &str) -> Result<MetricsReport, String> {
    let mut stream = UnixStream::connect(socket).map_err(|e| format!("connect {socket}: {e}"))?;
    match call(&mut stream, &Request::hello(Credentials::current_process()))? {
        Response::Welcome { .. } => {}
        other => return Err(format!("unexpected handshake reply: {other:?}")),
    }
    match call(&mut stream, &Request::GetMetrics)? {
        Response::Metrics(report) => Ok(report),
        Response::Error { code, message } => Err(format!("daemon error {code:?}: {message}")),
        other => Err(format!("unexpected GetMetrics reply: {other:?}")),
    }
}

/// Renders nanoseconds at a human scale (ns / µs / ms / s).
fn human_nanos(nanos: u64) -> String {
    match nanos {
        0..=999 => format!("{nanos}ns"),
        1_000..=999_999 => format!("{:.1}us", nanos as f64 / 1e3),
        1_000_000..=999_999_999 => format!("{:.2}ms", nanos as f64 / 1e6),
        _ => format!("{:.3}s", nanos as f64 / 1e9),
    }
}

fn render_table(report: &MetricsReport) {
    println!(
        "{:<24} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "series", "count", "mean", "p50", "p90", "p99", "max"
    );
    for s in &report.series {
        let mean = s.sum_nanos.checked_div(s.count).unwrap_or(0);
        println!(
            "{:<24} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
            s.name,
            s.count,
            human_nanos(mean),
            human_nanos(s.p50_nanos),
            human_nanos(s.p90_nanos),
            human_nanos(s.p99_nanos),
            human_nanos(s.max_nanos),
        );
    }
    if !report.counters.is_empty() {
        println!();
        println!("{:<40} {:>12}", "counter", "value");
        for c in &report.counters {
            println!("{:<40} {:>12}", c.name, c.value);
        }
    }
    println!();
    println!(
        "trace ring: {} events buffered, {} dropped",
        report.trace_buffered, report.trace_dropped
    );
}

/// The `--require` gate: the series must exist, have recorded at least one
/// sample, and report a sane (non-zero, ordered) tail.
fn check_required(report: &MetricsReport, names: &[String]) -> Result<(), String> {
    for name in names {
        let Some(s) = report.series.iter().find(|s| &s.name == name) else {
            return Err(format!("required series `{name}` is missing"));
        };
        if s.count == 0 {
            return Err(format!("required series `{name}` has no samples"));
        }
        if s.p99_nanos == 0 || s.max_nanos == 0 {
            return Err(format!(
                "required series `{name}` reports a zero p99/max ({:?})",
                summary(s)
            ));
        }
        if s.p50_nanos > s.p99_nanos || s.p99_nanos > s.max_nanos {
            return Err(format!(
                "required series `{name}` percentiles are not monotone ({:?})",
                summary(s)
            ));
        }
    }
    Ok(())
}

fn summary(s: &SeriesSnapshot) -> (u64, u64, u64, u64) {
    (s.count, s.p50_nanos, s.p99_nanos, s.max_nanos)
}

fn emit(args: &Args, report: &MetricsReport) -> Result<(), String> {
    if args.json {
        let json = serde_json::to_string_pretty(report).map_err(|e| format!("serialize: {e}"))?;
        match &args.json_path {
            Some(path) => {
                let mut file =
                    std::fs::File::create(path).map_err(|e| format!("create {path}: {e}"))?;
                file.write_all(json.as_bytes())
                    .and_then(|()| file.write_all(b"\n"))
                    .map_err(|e| format!("write {path}: {e}"))?;
            }
            None => println!("{json}"),
        }
    } else {
        render_table(report);
    }
    Ok(())
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("puddle-stat: {e}");
            exit(2);
        }
    };
    loop {
        let report = match fetch(&args.socket) {
            Ok(report) => report,
            Err(e) => {
                eprintln!("puddle-stat: {e}");
                exit(1);
            }
        };
        if let Err(e) = emit(&args, &report) {
            eprintln!("puddle-stat: {e}");
            exit(1);
        }
        if let Err(e) = check_required(&report, &args.require) {
            eprintln!("puddle-stat: {e}");
            exit(1);
        }
        match args.watch {
            Some(secs) => std::thread::sleep(std::time::Duration::from_secs(secs)),
            None => break,
        }
    }
}
