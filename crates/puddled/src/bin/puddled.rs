//! The `puddled` daemon binary.
//!
//! Usage:
//!
//! ```text
//! puddled --pm-dir /mnt/pmem0/puddles --socket /run/puddled.sock \
//!         [--space-size BYTES] [--space-base HEX] [--no-recover]
//!         [--max-connections N] [--reactors N]
//! ```
//!
//! Starts the daemon (running crash recovery unless `--no-recover` is
//! given) and serves client requests on the UNIX-domain socket until the
//! process is terminated.

use puddled::{Daemon, DaemonConfig, ServerConfig, UdsServer};
use std::process::exit;

struct Args {
    pm_dir: String,
    socket: String,
    space_size: usize,
    space_base: Option<usize>,
    auto_recover: bool,
    server: ServerConfig,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        pm_dir: String::new(),
        socket: String::new(),
        space_size: puddles_pmem::DEFAULT_SPACE_SIZE,
        space_base: Some(puddles_pmem::DEFAULT_SPACE_BASE),
        auto_recover: true,
        server: ServerConfig::default(),
    };
    let mut iter = std::env::args().skip(1);
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--pm-dir" => args.pm_dir = iter.next().ok_or("--pm-dir needs a value")?,
            "--socket" => args.socket = iter.next().ok_or("--socket needs a value")?,
            "--space-size" => {
                args.space_size = iter
                    .next()
                    .ok_or("--space-size needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --space-size: {e}"))?
            }
            "--space-base" => {
                let v = iter.next().ok_or("--space-base needs a value")?;
                let v = v.trim_start_matches("0x");
                args.space_base = Some(
                    usize::from_str_radix(v, 16).map_err(|e| format!("bad --space-base: {e}"))?,
                );
            }
            "--no-recover" => args.auto_recover = false,
            "--max-connections" => {
                args.server.max_connections = iter
                    .next()
                    .ok_or("--max-connections needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --max-connections: {e}"))?
            }
            "--reactors" => {
                args.server.reactors = iter
                    .next()
                    .ok_or("--reactors needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --reactors: {e}"))?
            }
            "--help" | "-h" => {
                println!(
                    "usage: puddled --pm-dir DIR --socket PATH [--space-size BYTES] \
                     [--space-base HEX] [--no-recover] [--max-connections N] \
                     [--reactors N]"
                );
                exit(0);
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    if args.pm_dir.is_empty() || args.socket.is_empty() {
        return Err("--pm-dir and --socket are required".into());
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(args) => args,
        Err(e) => {
            eprintln!("puddled: {e}");
            exit(2);
        }
    };
    let config = DaemonConfig {
        space_base: args.space_base,
        space_size: args.space_size,
        auto_recover: args.auto_recover,
        ..DaemonConfig::new(args.pm_dir.clone())
    };
    let daemon = match Daemon::start(config) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("puddled: failed to start: {e}");
            exit(1);
        }
    };
    let _server = match UdsServer::start_with_config(daemon, &args.socket, args.server.clone()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("puddled: failed to bind {}: {e}", args.socket);
            exit(1);
        }
    };
    eprintln!("puddled: serving {} (pm dir {})", args.socket, args.pm_dir);
    // Serve until killed.
    loop {
        std::thread::park();
    }
}
