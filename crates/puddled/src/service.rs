//! The daemon proper: configuration, startup, and the request handler.
//!
//! The request path is fully concurrent: [`Daemon::handle`] takes `&self`
//! and the registry is internally sharded (see [`crate::registry`]), so
//! requests from different connections execute in parallel and contend only
//! on the tables they touch — a `Translation`/`GetPuddle` lookup runs under
//! a read lock and never waits for traffic on other pools.

use crate::background::Background;
use crate::gspace::GlobalSpace;
use crate::importexport;
use crate::recovery;
use crate::registry::{LogSpaceRecord, PoolRecord, PuddleRecord, Registry, RegistryOpError};
use crate::wal::{Wal, WalHandle};
use crate::{acl, layout};
use puddles_pmem::clock::Clock;
use puddles_pmem::faultio::FaultPlan;
use puddles_pmem::obs::{Metrics, ShardedHistogram, TraceEventKind};
use puddles_pmem::pmdir::PmDir;
use puddles_pmem::util::align_up;
use puddles_pmem::{PmError, Result, DEFAULT_SPACE_BASE, PAGE_SIZE};
use puddles_proto::{
    CounterSnapshot, Credentials, Endpoint, ErrorCode, MetricsReport, PuddleId, PuddleInfo,
    PuddlePurpose, Request, Response, SeriesSnapshot,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

/// How often the background timer wheel re-checks WAL checkpoint age.
const CHECKPOINT_AGE_CHECK_INTERVAL: std::time::Duration = std::time::Duration::from_secs(2);

/// Records older than this get checkpointed even below the byte threshold
/// (bounds the WAL replay a restart of a *quiet* daemon must do).
const MAX_CHECKPOINT_AGE_MS: u64 = 30_000;

/// Arms the recurring age-based checkpoint check on the timer wheel. The
/// task holds only a `Weak` registry handle and re-arms itself until the
/// scheduler shuts down (the re-arm guard keeps the shutdown drain from
/// looping) or the registry is dropped.
fn arm_age_checkpoint(bg: Background, registry: std::sync::Weak<Registry>) {
    let bg_next = bg.clone();
    bg.submit_after(
        CHECKPOINT_AGE_CHECK_INTERVAL,
        Box::new(move || {
            if bg_next.is_shutdown() {
                return;
            }
            let Some(reg) = registry.upgrade() else {
                return;
            };
            let _ = reg.checkpoint_if_stale(MAX_CHECKPOINT_AGE_MS);
            drop(reg);
            arm_age_checkpoint(bg_next, registry);
        }),
    );
}

/// Default per-connection in-flight window granted to protocol-v2 clients
/// that do not request one (matches `uds::MAX_PIPELINED_REQUESTS`).
pub const DEFAULT_MAX_IN_FLIGHT: u32 = 64;

/// Default client connection-pool depth granted when the client does not
/// request one.
pub const DEFAULT_POOL_DEPTH: u32 = 2;

/// The deterministic clamp behind Hello/Welcome negotiation: `0` means
/// "server default", anything else is clamped into `[1, configured_max]`.
/// Both the UDS connection (enforcing the window) and the service (reporting
/// the grant in `Welcome`) apply this same function, so they cannot drift.
pub fn grant_limit(requested: u32, default: u32, configured_max: u32) -> u32 {
    if requested == 0 {
        default.min(configured_max).max(1)
    } else {
        requested.clamp(1, configured_max.max(1))
    }
}

/// Configuration for a daemon instance (one per "machine").
#[derive(Debug, Clone)]
pub struct DaemonConfig {
    /// Directory acting as the persistent-memory device.
    pub pm_dir: PathBuf,
    /// Preferred base address of the global puddle space.
    pub space_base: Option<usize>,
    /// Size of the global puddle space in bytes.
    pub space_size: usize,
    /// Run crash recovery automatically at startup (the paper's behaviour).
    pub auto_recover: bool,
    /// Hard ceiling for the per-connection in-flight window a client may
    /// negotiate in `Hello` (the server clamps requests above it).
    pub max_in_flight: u32,
    /// Hard ceiling for the client connection-pool depth a client may
    /// negotiate in `Hello`.
    pub max_pool_depth: u32,
    /// Seeded fault-injection plan for torture testing; `None` (production)
    /// injects nothing.
    pub fault_plan: Option<Arc<FaultPlan>>,
    /// Time source for the background wheel, WAL checkpoint age, and the
    /// UDS server's deadlines. A *virtual* clock additionally switches the
    /// daemon into deterministic mode: checkpoints run inline on the
    /// request thread (instead of riding the background scheduler) and the
    /// age-based checkpoint timer is not armed, so WAL traffic is a pure
    /// function of the request sequence — the property the torture
    /// harness's replay guarantee rests on.
    pub clock: Clock,
    /// Observability hub to record into; `None` creates a fresh one. The
    /// torture harness passes one in so histograms and the trace ring
    /// survive the kill/restart cycles within a trial.
    pub metrics: Option<Arc<Metrics>>,
}

impl DaemonConfig {
    /// Configuration with the paper's defaults: 1 TiB space at the fixed
    /// base, automatic recovery at startup.
    pub fn new(pm_dir: impl Into<PathBuf>) -> Self {
        DaemonConfig {
            pm_dir: pm_dir.into(),
            space_base: Some(DEFAULT_SPACE_BASE),
            space_size: puddles_pmem::DEFAULT_SPACE_SIZE,
            auto_recover: true,
            max_in_flight: DEFAULT_MAX_IN_FLIGHT,
            max_pool_depth: 8,
            fault_plan: None,
            clock: Clock::real(),
            metrics: None,
        }
    }

    /// Configuration for tests and benchmarks: a smaller space at a unique
    /// base, so many daemon instances ("machines") can coexist in one test
    /// process without their reservations colliding.
    pub fn for_testing(pm_dir: impl Into<PathBuf>) -> Self {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let slot = NEXT.fetch_add(1, Ordering::Relaxed);
        let space_size = 8usize << 30;
        let base = 0x5100_0000_0000 + slot * (space_size + (1 << 30));
        DaemonConfig {
            pm_dir: pm_dir.into(),
            space_base: Some(base),
            space_size,
            auto_recover: true,
            max_in_flight: DEFAULT_MAX_IN_FLIGHT,
            max_pool_depth: 8,
            fault_plan: None,
            clock: Clock::real(),
            metrics: None,
        }
    }

    /// Disables automatic recovery at startup (used by crash tests that want
    /// to inspect the pre-recovery state).
    pub fn no_auto_recover(mut self) -> Self {
        self.auto_recover = false;
        self
    }

    /// Attaches a seeded fault-injection plan (torture testing only).
    pub fn with_fault_plan(mut self, plan: Arc<FaultPlan>) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Reads time from `clock`. A virtual clock also enables deterministic
    /// mode (see the `clock` field docs).
    pub fn with_clock(mut self, clock: Clock) -> Self {
        self.clock = clock;
        self
    }

    /// Records into an existing observability hub instead of a fresh one
    /// (see the `metrics` field docs).
    pub fn with_metrics(mut self, metrics: Arc<Metrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }
}

/// Every request kind as `(kind, series)` — the short name used in trace
/// events and the histogram series its service latency lands in. Indexed
/// by [`request_kind_index`]; the daemon pre-resolves one series handle per
/// entry at startup so the hot path never takes the series-registry lock.
pub(crate) const REQUEST_KINDS: [(&str, &str); 18] = [
    ("Hello", "service.Hello"),
    ("Ping", "service.Ping"),
    ("CreatePuddle", "service.CreatePuddle"),
    ("GetPuddle", "service.GetPuddle"),
    ("FreePuddle", "service.FreePuddle"),
    ("CreatePool", "service.CreatePool"),
    ("OpenPool", "service.OpenPool"),
    ("DropPool", "service.DropPool"),
    ("RegLogSpace", "service.RegLogSpace"),
    ("RegisterPtrMap", "service.RegisterPtrMap"),
    ("GetPtrMaps", "service.GetPtrMaps"),
    ("ExportPool", "service.ExportPool"),
    ("ImportPool", "service.ImportPool"),
    ("GetRelocation", "service.GetRelocation"),
    ("MarkRewritten", "service.MarkRewritten"),
    ("Recover", "service.Recover"),
    ("Stats", "service.Stats"),
    ("GetMetrics", "service.GetMetrics"),
];

/// Maps a request to its [`REQUEST_KINDS`] row.
pub(crate) fn request_kind_index(req: &Request) -> usize {
    match req {
        Request::Hello { .. } => 0,
        Request::Ping => 1,
        Request::CreatePuddle { .. } => 2,
        Request::GetPuddle { .. } => 3,
        Request::FreePuddle { .. } => 4,
        Request::CreatePool { .. } => 5,
        Request::OpenPool { .. } => 6,
        Request::DropPool { .. } => 7,
        Request::RegLogSpace { .. } => 8,
        Request::RegisterPtrMap { .. } => 9,
        Request::GetPtrMaps => 10,
        Request::ExportPool { .. } => 11,
        Request::ImportPool { .. } => 12,
        Request::GetRelocation { .. } => 13,
        Request::MarkRewritten { .. } => 14,
        Request::Recover => 15,
        Request::Stats => 16,
        Request::GetMetrics => 17,
    }
}

/// Shared daemon state.
#[derive(Debug)]
pub struct DaemonInner {
    pub(crate) config: DaemonConfig,
    pub(crate) pmdir: PmDir,
    pub(crate) gspace: Arc<GlobalSpace>,
    /// The sharded metadata registry; locked per table internally, so there
    /// is no daemon-wide lock on the request path. The metadata WAL it
    /// persists through is reachable via [`Registry::wal`] (`Stats` reads
    /// WAL length and checkpoint age from it). Shared (`Arc`) because the
    /// background scheduler's checkpoint tasks hold a weak handle to it.
    pub(crate) registry: Arc<Registry>,
    /// Background task scheduler: WAL checkpoints (and any future deferred
    /// maintenance) run here instead of on the request path. Drained on
    /// daemon drop.
    pub(crate) background: Background,
    /// Orphan puddle files deleted by the startup directory sweep.
    pub(crate) orphans_swept: AtomicU64,
    /// Log puddles referenced by no log space, reclaimed at startup (the
    /// crash window between allocating a chain segment and registering it).
    pub(crate) log_puddles_swept: AtomicU64,
    /// LogSpace puddles with no log-space registration, reclaimed at
    /// startup (the crash window inside `ensure_logspace`, between the
    /// puddle allocation and `RegLogSpace`).
    pub(crate) logspace_puddles_swept: AtomicU64,
    /// Connections the UDS acceptor rejected at the connection cap with a
    /// `Busy` frame.
    pub(crate) connections_rejected: AtomicU64,
    /// `Hello` messages flagged `reconnect: true` (clients re-dialing after
    /// a dropped or reset connection).
    pub(crate) client_reconnects: AtomicU64,
    /// Per-reactor live-connection counters, registered by the UDS server
    /// at start and cleared at its shutdown; surfaced in `Stats` so
    /// accept-time placement skew is observable. Empty when no socket
    /// server is attached (in-process endpoints only).
    pub(crate) reactor_loads: std::sync::Mutex<Vec<Arc<AtomicUsize>>>,
    /// Per-reactor handled-request counters, registered alongside
    /// [`DaemonInner::reactor_loads`]; surfaced in `Stats` and `GetMetrics`
    /// so *served traffic* skew is observable, not just placement.
    pub(crate) reactor_requests: std::sync::Mutex<Vec<Arc<AtomicU64>>>,
    /// The observability hub: latency series, counters, and the trace ring.
    pub(crate) metrics: Arc<Metrics>,
    /// Per-request-kind service-latency series, indexed by
    /// [`request_kind_index`] — resolved once so [`Daemon::handle`] records
    /// without touching the series-registry lock.
    pub(crate) service_series: Vec<Arc<ShardedHistogram>>,
}

impl Drop for DaemonInner {
    fn drop(&mut self) {
        // Drain-on-shutdown: a checkpoint enqueued moments before the last
        // daemon handle dropped still lands on disk.
        self.background.shutdown();
    }
}

/// The Puddles daemon: a privileged service managing every puddle on the
/// machine (§3.2).
///
/// Cloning a `Daemon` clones a handle to the same instance.
#[derive(Debug, Clone)]
pub struct Daemon {
    pub(crate) inner: Arc<DaemonInner>,
}

/// Internal error carrying a protocol error code.
pub(crate) struct DaemonError {
    pub code: ErrorCode,
    pub message: String,
}

impl DaemonError {
    pub(crate) fn new(code: ErrorCode, message: impl Into<String>) -> Self {
        DaemonError {
            code,
            message: message.into(),
        }
    }
}

impl From<PmError> for DaemonError {
    fn from(e: PmError) -> Self {
        // Device exhaustion is a typed, client-actionable condition (free
        // something and retry), not an internal fault.
        let code = match &e {
            PmError::NoSpace(_) => ErrorCode::OutOfSpace,
            _ => ErrorCode::Internal,
        };
        DaemonError::new(code, e.to_string())
    }
}

impl From<RegistryOpError> for DaemonError {
    fn from(e: RegistryOpError) -> Self {
        match e {
            RegistryOpError::NoSuchPool(name) => {
                DaemonError::new(ErrorCode::NotFound, format!("pool `{name}` does not exist"))
            }
        }
    }
}

pub(crate) type DaemonResult<T> = std::result::Result<T, DaemonError>;

/// Dispatch lane for a request: which half of the two-lane worker queue it
/// rides (see `crate::uds`). Heavyweight requests go to the bulk lane so a
/// burst of imports can occupy at most the bulk lane's worker reservation
/// and never starves cheap metadata operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Lane {
    /// Cheap metadata operations: lookups, registrations, pings.
    Fast,
    /// Heavyweight operations that copy puddle contents or replay logs:
    /// pool import/export/creation/deletion and recovery.
    Bulk,
}

/// Classifies a request into its dispatch lane.
pub(crate) fn lane_of(req: &Request) -> Lane {
    match req {
        Request::ImportPool { .. }
        | Request::ExportPool { .. }
        | Request::CreatePool { .. }
        | Request::DropPool { .. }
        | Request::Recover => Lane::Bulk,
        _ => Lane::Fast,
    }
}

impl Daemon {
    /// Starts the daemon: opens the PM directory, reserves the global
    /// space, opens the metadata WAL and loads the registry through it
    /// (checkpoint, WAL replay, reconcile), relocates puddles if the space
    /// base moved, sweeps orphan puddle files, and (by default) runs crash
    /// recovery before any client can connect.
    pub fn start(config: DaemonConfig) -> Result<Self> {
        let mut pmdir = PmDir::open(&config.pm_dir)?;
        if let Some(plan) = &config.fault_plan {
            pmdir = pmdir.with_fault_plan(Arc::clone(plan));
        }
        let gspace = Arc::new(GlobalSpace::reserve(config.space_base, config.space_size)?);
        let metrics = config
            .metrics
            .clone()
            .unwrap_or_else(|| Metrics::new(config.clock.clone()));
        let service_series = REQUEST_KINDS
            .iter()
            .map(|(_, series)| metrics.series(series))
            .collect();
        if let Some(plan) = &config.fault_plan {
            // Injections land in the trace ring interleaved with the
            // requests and WAL commits they perturbed.
            plan.attach_obs(Arc::clone(&metrics));
        }
        let wal: WalHandle = Arc::new(Wal::open_with_obs(
            &pmdir,
            config.clock.clone(),
            Arc::clone(&metrics),
        )?);
        let registry = Arc::new(Registry::load_or_create_with_wal(
            &pmdir,
            wal,
            gspace.base() as u64,
            gspace.size() as u64,
        )?);
        let background = Background::start_with_clock("puddled-bg", config.clock.clone());
        if !config.clock.is_virtual() {
            registry.enable_background_checkpoints(background.clone());
            arm_age_checkpoint(background.clone(), Arc::downgrade(&registry));
        }
        // Deterministic mode (virtual clock): no background handle on the
        // registry, so threshold checkpoints and lazy coalesce passes run
        // inline on the request thread in request order, and no age timer —
        // the WAL's write sequence replays exactly per seed.
        let daemon = Daemon {
            inner: Arc::new(DaemonInner {
                config,
                pmdir,
                gspace,
                registry,
                background,
                orphans_swept: AtomicU64::new(0),
                log_puddles_swept: AtomicU64::new(0),
                logspace_puddles_swept: AtomicU64::new(0),
                connections_rejected: AtomicU64::new(0),
                client_reconnects: AtomicU64::new(0),
                reactor_loads: std::sync::Mutex::new(Vec::new()),
                reactor_requests: std::sync::Mutex::new(Vec::new()),
                metrics,
                service_series,
            }),
        };
        daemon
            .inner
            .registry
            .apply_base_relocation(daemon.inner.gspace.base() as u64)?;
        // The registry (healed by replay + reconcile) is now the source of
        // truth; delete puddle files it does not know about — a crash
        // mid-`DropPool` can leave freed members' files behind.
        let swept = recovery::sweep_orphan_files(&daemon.inner)?;
        daemon.inner.orphans_swept.store(swept, Ordering::Relaxed);
        if daemon.inner.config.auto_recover {
            let _ = recovery::run_recovery(&daemon.inner)?;
        }
        // Reclaim log puddles no log space references (the crash window
        // between allocating a chain segment and registering it). Startup
        // only: once clients connect, a live chain extension is briefly in
        // exactly this state.
        let logs_swept = recovery::sweep_unreferenced_log_puddles(&daemon.inner)?;
        daemon
            .inner
            .log_puddles_swept
            .store(logs_swept, Ordering::Relaxed);
        // Likewise for LogSpace puddles that never made it into the
        // registry's log-space table (a crash inside `ensure_logspace`
        // between the allocation and `RegLogSpace`): unreachable forever,
        // safe to reclaim before any client connects.
        let ls_swept = recovery::sweep_unregistered_logspace_puddles(&daemon.inner)?;
        daemon
            .inner
            .logspace_puddles_swept
            .store(ls_swept, Ordering::Relaxed);
        Ok(daemon)
    }

    /// The daemon's background task scheduler (tests use its pause/resume
    /// knobs to pin down checkpoint scheduling deterministically).
    pub fn background(&self) -> &Background {
        &self.inner.background
    }

    /// The metadata WAL handle (tests and tools tune thresholds through it).
    pub fn wal(&self) -> &WalHandle {
        self.inner.registry.wal()
    }

    /// The daemon's time source (shared with the UDS server's deadlines).
    pub fn clock(&self) -> &Clock {
        &self.inner.config.clock
    }

    /// Registers the UDS server's per-reactor live-connection counters for
    /// `Stats` reporting; an empty vector detaches (server shutdown).
    pub(crate) fn attach_reactor_loads(&self, loads: Vec<Arc<AtomicUsize>>) {
        *self.inner.reactor_loads.lock().unwrap() = loads;
    }

    /// Registers the UDS server's per-reactor handled-request counters
    /// (same lifecycle as [`Daemon::attach_reactor_loads`]).
    pub(crate) fn attach_reactor_requests(&self, counts: Vec<Arc<AtomicU64>>) {
        *self.inner.reactor_requests.lock().unwrap() = counts;
    }

    /// The daemon's observability hub (histogram series, counters, and the
    /// trace ring). The torture harness reads trace dumps through this.
    pub fn metrics(&self) -> &Arc<Metrics> {
        &self.inner.metrics
    }

    /// Forces a registry checkpoint now (normally triggered by WAL growth).
    pub fn checkpoint(&self) -> Result<()> {
        self.inner.registry.checkpoint()
    }

    /// Returns the global puddle space shared with in-process clients.
    pub fn global_space(&self) -> Arc<GlobalSpace> {
        Arc::clone(&self.inner.gspace)
    }

    /// Returns the PM directory backing this daemon.
    pub fn pm_dir(&self) -> &PmDir {
        &self.inner.pmdir
    }

    /// Returns the metadata registry (consistency checks, tests).
    pub fn registry(&self) -> &Arc<Registry> {
        &self.inner.registry
    }

    /// Creates an in-process endpoint acting with the given credentials.
    pub fn endpoint(&self, creds: Credentials) -> LocalEndpoint {
        LocalEndpoint {
            daemon: self.clone(),
            creds,
        }
    }

    /// Creates an in-process endpoint using this process's credentials.
    pub fn endpoint_for_current_process(&self) -> LocalEndpoint {
        self.endpoint(Credentials::current_process())
    }

    /// Handles one request on behalf of a client with credentials `creds`.
    /// Safe to call from any number of threads concurrently.
    pub fn handle(&self, creds: Credentials, req: Request) -> Response {
        self.handle_traced(creds, req, 0)
    }

    /// [`Daemon::handle`] with the wire-protocol request id (0 for v1 bare
    /// frames and in-process calls), so trace `req.start`/`req.end` pairs
    /// can be matched to pipelined responses. Times the request into its
    /// per-kind `service.*` latency series.
    pub(crate) fn handle_traced(&self, creds: Credentials, req: Request, req_id: u64) -> Response {
        let kind_index = request_kind_index(&req);
        let kind = REQUEST_KINDS[kind_index].0;
        let clock = &self.inner.config.clock;
        self.inner
            .metrics
            .trace(TraceEventKind::ReqStart, kind, req_id, 0);
        let start = clock.now();
        let resp = match self.dispatch(creds, req) {
            Ok(resp) => resp,
            Err(e) => Response::Error {
                code: e.code,
                message: e.message,
            },
        };
        self.inner.service_series[kind_index].record_duration(clock.now() - start);
        self.inner
            .metrics
            .trace(TraceEventKind::ReqEnd, kind, req_id, 0);
        resp
    }

    fn dispatch(&self, creds: Credentials, req: Request) -> DaemonResult<Response> {
        match req {
            Request::Hello {
                max_in_flight,
                pool_depth,
                reconnect,
                ..
            } => {
                if reconnect {
                    self.inner.client_reconnects.fetch_add(1, Ordering::Relaxed);
                    self.inner
                        .metrics
                        .trace(TraceEventKind::Reconnect, "", 0, 0);
                }
                Ok(self.welcome(max_in_flight, pool_depth))
            }
            Request::Ping => Ok(self.welcome(0, 0)),
            Request::CreatePuddle {
                size,
                pool,
                purpose,
                mode,
            } => {
                let info = self.create_puddle(creds, size, pool, purpose, mode)?;
                Ok(Response::Puddle(info))
            }
            Request::GetPuddle { id, writable } => {
                let info = self.get_puddle(creds, id, writable)?;
                Ok(Response::Puddle(info))
            }
            Request::FreePuddle { id } => {
                self.free_puddle(creds, id)?;
                Ok(Response::Ok)
            }
            Request::CreatePool {
                name,
                root_size,
                mode,
            } => {
                let info = self.create_pool(creds, &name, root_size, mode)?;
                Ok(Response::Pool(info))
            }
            Request::OpenPool { name } => {
                let info = self.open_pool(creds, &name)?;
                Ok(Response::Pool(info))
            }
            Request::DropPool { name } => {
                self.drop_pool(creds, &name)?;
                Ok(Response::Ok)
            }
            Request::RegLogSpace { puddle } => {
                self.register_log_space(creds, puddle)?;
                Ok(Response::Ok)
            }
            Request::RegisterPtrMap { decl } => {
                self.inner.registry.register_ptr_map(decl);
                self.inner.registry.commit()?;
                Ok(Response::Ok)
            }
            Request::GetPtrMaps => Ok(Response::PtrMaps(self.inner.registry.ptr_maps())),
            Request::ExportPool { name, dest } => {
                importexport::export_pool(&self.inner, creds, &name, &dest)?;
                Ok(Response::Ok)
            }
            Request::ImportPool { src, new_name } => {
                let (pool, translations) =
                    importexport::import_pool(&self.inner, creds, &src, &new_name)?;
                Ok(Response::Imported { pool, translations })
            }
            Request::GetRelocation { id } => {
                // Read-mostly path: a shared lock on the puddle table only.
                let p = self
                    .inner
                    .registry
                    .puddle(id)
                    .ok_or_else(|| DaemonError::new(ErrorCode::NotFound, "no such puddle"))?;
                Ok(Response::Relocation {
                    needs_rewrite: p.needs_rewrite,
                    translations: p.translations,
                })
            }
            Request::MarkRewritten { id } => {
                self.inner
                    .registry
                    .update_puddle(id, |p| {
                        p.needs_rewrite = false;
                        p.translations.clear();
                    })
                    .ok_or_else(|| DaemonError::new(ErrorCode::NotFound, "no such puddle"))?;
                self.inner.registry.commit()?;
                Ok(Response::Ok)
            }
            Request::Recover => {
                let report = recovery::run_recovery(&self.inner)?;
                Ok(Response::Recovered(report))
            }
            Request::Stats => Ok(Response::Stats(self.stats())),
            Request::GetMetrics => Ok(Response::Metrics(self.metrics_report())),
        }
    }

    /// Builds the `GetMetrics` response: per-series quantiles plus every
    /// counter, name-sorted so successive snapshots diff cleanly.
    fn metrics_report(&self) -> MetricsReport {
        let snap = self.inner.metrics.snapshot();
        let series = snap
            .series
            .into_iter()
            .map(|(name, h)| SeriesSnapshot {
                name,
                count: h.count,
                sum_nanos: h.sum,
                p50_nanos: h.percentile(50.0),
                p90_nanos: h.percentile(90.0),
                p99_nanos: h.percentile(99.0),
                max_nanos: h.max,
            })
            .collect();
        let mut counters: Vec<CounterSnapshot> = snap
            .counters
            .into_iter()
            .map(|(name, value)| CounterSnapshot { name, value })
            .collect();
        counters.push(CounterSnapshot {
            name: "client_reconnects".into(),
            value: self.inner.client_reconnects.load(Ordering::Relaxed),
        });
        counters.push(CounterSnapshot {
            name: "connections_rejected".into(),
            value: self.inner.connections_rejected.load(Ordering::Relaxed),
        });
        for (i, count) in self
            .inner
            .reactor_requests
            .lock()
            .unwrap()
            .iter()
            .enumerate()
        {
            counters.push(CounterSnapshot {
                name: format!("reactor.{i}.requests"),
                value: count.load(Ordering::Relaxed),
            });
        }
        counters.sort_by(|a, b| a.name.cmp(&b.name));
        MetricsReport {
            series,
            counters,
            trace_buffered: self.inner.metrics.trace_events().len() as u64,
            trace_dropped: self.inner.metrics.trace_dropped(),
        }
    }

    /// The per-connection in-flight window granted for a requested value.
    /// The single source of truth: `Welcome` reports this number and the
    /// UDS reactor enforces it, so the two can never disagree.
    pub(crate) fn granted_in_flight(&self, requested: u32) -> u32 {
        grant_limit(requested, DEFAULT_MAX_IN_FLIGHT, self.in_flight_cap())
    }

    /// The ceiling a connection's window can be negotiated up to.
    pub(crate) fn in_flight_cap(&self) -> u32 {
        self.inner
            .config
            .max_in_flight
            .min(crate::uds::MAX_PIPELINED_REQUESTS as u32)
    }

    /// The client connection-pool depth granted for a requested value.
    pub(crate) fn granted_pool_depth(&self, requested: u32) -> u32 {
        grant_limit(
            requested,
            DEFAULT_POOL_DEPTH,
            self.inner.config.max_pool_depth,
        )
    }

    fn welcome(&self, requested_in_flight: u32, requested_pool_depth: u32) -> Response {
        Response::Welcome {
            space_base: self.inner.gspace.base() as u64,
            space_size: self.inner.gspace.size() as u64,
            max_in_flight: self.granted_in_flight(requested_in_flight),
            pool_depth: self.granted_pool_depth(requested_pool_depth),
        }
    }

    fn stats(&self) -> puddles_proto::DaemonStats {
        let reg = &self.inner.registry;
        let (puddles, space_used) = reg.puddle_usage();
        let wal = reg.wal().stats();
        let (checkpoints_background, checkpoints_forced_inline) = reg.checkpoint_counters();
        let alloc = reg.alloc_stats();
        let io = self.inner.pmdir.io_stats();
        puddles_proto::DaemonStats {
            puddles,
            pools: reg.pool_count(),
            ptr_maps: reg.ptr_map_count(),
            log_spaces: reg.log_space_count(),
            space_used,
            space_total: self.inner.gspace.size() as u64,
            wal_bytes: wal.bytes,
            wal_records: wal.records,
            checkpoints: wal.checkpoints,
            checkpoints_background,
            checkpoints_forced_inline,
            background_tasks_executed: self.inner.background.executed(),
            checkpoint_age_ms: wal.checkpoint_age_ms,
            orphan_files_swept: self.inner.orphans_swept.load(Ordering::Relaxed),
            log_puddles_swept: self.inner.log_puddles_swept.load(Ordering::Relaxed),
            logspace_puddles_swept: self.inner.logspace_puddles_swept.load(Ordering::Relaxed),
            connections_rejected: self.inner.connections_rejected.load(Ordering::Relaxed),
            space_free_bytes: alloc.free_bytes,
            free_extents: alloc.free_extents,
            fragmentation_bp: alloc.fragmentation_bp,
            lazy_coalesce_runs: alloc.lazy_coalesce_runs,
            forced_inline_coalesces: alloc.forced_inline_coalesces,
            io_retries: io.io_retries(),
            transient_io_errors: io.transient_io_errors(),
            client_reconnects: self.inner.client_reconnects.load(Ordering::Relaxed),
            enospc_rejections: io.enospc_rejections(),
            reactor_connections: {
                let loads = self.inner.reactor_loads.lock().unwrap();
                loads
                    .iter()
                    .map(|l| l.load(Ordering::Relaxed) as u64)
                    .collect()
            },
            reactor_requests: {
                let counts = self.inner.reactor_requests.lock().unwrap();
                counts.iter().map(|c| c.load(Ordering::Relaxed)).collect()
            },
            reactors: self.inner.reactor_loads.lock().unwrap().len() as u64,
        }
    }

    /// Records one connection turned away at the connection cap (the UDS
    /// acceptor calls this after writing the `Busy` frame).
    pub(crate) fn note_rejected_connection(&self) {
        self.inner
            .connections_rejected
            .fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn puddle_info(&self, record: &PuddleRecord, writable: bool) -> PuddleInfo {
        PuddleInfo {
            id: record.id,
            size: record.size,
            assigned_addr: self.inner.gspace.base() as u64 + record.offset,
            path: self
                .inner
                .pmdir
                .puddle_path(&record.file)
                .to_string_lossy()
                .into_owned(),
            purpose: record.purpose,
            owner_uid: record.owner_uid,
            owner_gid: record.owner_gid,
            mode: record.mode,
            needs_rewrite: record.needs_rewrite,
            writable,
        }
    }

    pub(crate) fn create_puddle(
        &self,
        creds: Credentials,
        size: u64,
        pool: Option<String>,
        purpose: PuddlePurpose,
        mode: u32,
    ) -> DaemonResult<PuddleInfo> {
        let reg = &self.inner.registry;
        let size = align_up(size.max((2 * PAGE_SIZE) as u64) as usize, PAGE_SIZE) as u64;
        let id = reg.fresh_id();
        let offset = reg.alloc_space(size).map_err(|_| {
            DaemonError::new(ErrorCode::OutOfSpace, "global puddle space exhausted")
        })?;
        let file = id.to_hex();
        if let Err(e) = self.inner.pmdir.create_puddle_file(&file, size as usize) {
            reg.free_space(offset, size);
            return Err(DaemonError::from(e));
        }
        let record = PuddleRecord {
            id,
            size,
            offset,
            file: file.clone(),
            purpose,
            owner_uid: creds.uid,
            owner_gid: creds.gid,
            mode,
            pool,
            needs_rewrite: false,
            translations: Vec::new(),
        };
        let info = self.puddle_info(&record, true);
        // Membership check + insert + pool append are one atomic registry op,
        // so a concurrent DropPool cannot orphan the new puddle.
        if let Err(e) = reg.register_puddle(record) {
            reg.free_space(offset, size);
            let _ = self.inner.pmdir.delete_puddle_file(&file);
            return Err(DaemonError::from(e));
        }
        reg.commit()?;
        Ok(info)
    }

    fn get_puddle(
        &self,
        creds: Credentials,
        id: PuddleId,
        writable: bool,
    ) -> DaemonResult<PuddleInfo> {
        let record = self
            .inner
            .registry
            .puddle(id)
            .ok_or_else(|| DaemonError::new(ErrorCode::NotFound, "no such puddle"))?;
        let access = if writable {
            acl::Access::Write
        } else {
            acl::Access::Read
        };
        if !acl::check(
            creds,
            record.owner_uid,
            record.owner_gid,
            record.mode,
            access,
        ) {
            return Err(DaemonError::new(
                ErrorCode::PermissionDenied,
                format!("access to puddle {id} denied"),
            ));
        }
        Ok(self.puddle_info(&record, writable))
    }

    fn free_puddle(&self, creds: Credentials, id: PuddleId) -> DaemonResult<()> {
        let reg = &self.inner.registry;
        let record = reg
            .puddle(id)
            .ok_or_else(|| DaemonError::new(ErrorCode::NotFound, "no such puddle"))?;
        if !acl::check(
            creds,
            record.owner_uid,
            record.owner_gid,
            record.mode,
            acl::Access::Write,
        ) {
            return Err(DaemonError::new(ErrorCode::PermissionDenied, "not owner"));
        }
        // Re-fetch under the write locks: the ACL check above used a
        // snapshot, but removal is atomic (puddle + pool membership).
        let record = reg
            .unregister_puddle(id)
            .ok_or_else(|| DaemonError::new(ErrorCode::NotFound, "no such puddle"))?;
        reg.free_space(record.offset, record.size);
        reg.commit()?;
        self.inner
            .pmdir
            .delete_puddle_file(&record.file)
            .map_err(DaemonError::from)?;
        Ok(())
    }

    fn create_pool(
        &self,
        creds: Credentials,
        name: &str,
        root_size: u64,
        mode: u32,
    ) -> DaemonResult<puddles_proto::PoolInfo> {
        // Claim the name first so the root puddle can reference the pool;
        // the atomic try-insert makes concurrent same-name creates race
        // safely (exactly one wins).
        let claimed = self.inner.registry.try_insert_pool(PoolRecord {
            name: name.to_string(),
            root: PuddleId(0),
            puddles: Vec::new(),
        });
        if !claimed {
            return Err(DaemonError::new(
                ErrorCode::AlreadyExists,
                format!("pool `{name}` already exists"),
            ));
        }
        let root = match self.create_puddle(
            creds,
            root_size,
            Some(name.to_string()),
            PuddlePurpose::Data,
            mode,
        ) {
            Ok(root) => root,
            Err(e) => {
                // Roll the claim back so the name is not leaked. A
                // concurrent CreatePuddle may have already joined the
                // half-created pool; detach such members so no record is
                // left pointing at a name that no longer exists (a dangling
                // name would be grafted onto an unrelated future pool by the
                // load-time reconcile).
                if let Some(pool) = self.inner.registry.remove_pool(name) {
                    for id in pool.puddles {
                        self.inner.registry.update_puddle(id, |p| p.pool = None);
                    }
                }
                let _ = self.inner.registry.commit();
                return Err(e);
            }
        };
        let info = self
            .inner
            .registry
            .update_pool(name, |pool| {
                pool.root = root.id;
                pool.to_info()
            })
            .ok_or_else(|| DaemonError::new(ErrorCode::Internal, "pool vanished"))?;
        self.inner.registry.commit()?;
        Ok(info)
    }

    fn open_pool(&self, creds: Credentials, name: &str) -> DaemonResult<puddles_proto::PoolInfo> {
        let pool = self.inner.registry.pool(name).ok_or_else(|| {
            DaemonError::new(ErrorCode::NotFound, format!("pool `{name}` not found"))
        })?;
        let root = self
            .inner
            .registry
            .puddle(pool.root)
            .ok_or_else(|| DaemonError::new(ErrorCode::Internal, "pool root missing"))?;
        if !acl::check(
            creds,
            root.owner_uid,
            root.owner_gid,
            root.mode,
            acl::Access::Read,
        ) {
            return Err(DaemonError::new(
                ErrorCode::PermissionDenied,
                "pool access denied",
            ));
        }
        Ok(pool.to_info())
    }

    fn drop_pool(&self, creds: Credentials, name: &str) -> DaemonResult<()> {
        let reg = &self.inner.registry;
        // Check the caller may delete every member before tearing anything
        // down (the drop below is not atomic across puddles).
        let pool = reg
            .pool(name)
            .ok_or_else(|| DaemonError::new(ErrorCode::NotFound, "pool not found"))?;
        for id in &pool.puddles {
            if let Some(record) = reg.puddle(*id) {
                if !acl::check(
                    creds,
                    record.owner_uid,
                    record.owner_gid,
                    record.mode,
                    acl::Access::Write,
                ) {
                    return Err(DaemonError::new(
                        ErrorCode::PermissionDenied,
                        format!("cannot drop pool `{name}`: puddle {id} is not writable"),
                    ));
                }
            }
        }
        // Remove the pool record first: from this point on, concurrent
        // CreatePuddle requests naming this pool fail with NotFound instead
        // of racing the teardown. The returned record carries the member
        // list as of the removal.
        let pool = reg
            .remove_pool(name)
            .ok_or_else(|| DaemonError::new(ErrorCode::NotFound, "pool not found"))?;
        // Free every member even if one fails, so a mid-loop error cannot
        // orphan the rest; a member already freed concurrently (NotFound) is
        // not an error. A member that cannot be freed (e.g. another user's
        // puddle raced into the pool after the ACL pre-check) is detached so
        // it never dangles on the removed pool name. Any stragglers a crash
        // leaves behind are healed by the registry's load-time reconcile.
        let mut first_error = None;
        for id in pool.puddles {
            match self.free_puddle(creds, id) {
                Ok(()) => {}
                Err(e) if e.code == ErrorCode::NotFound => {}
                Err(e) => {
                    reg.update_puddle(id, |p| p.pool = None);
                    first_error = first_error.or(Some(e));
                }
            }
        }
        reg.commit()?;
        match first_error {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    fn register_log_space(&self, creds: Credentials, puddle: PuddleId) -> DaemonResult<()> {
        let reg = &self.inner.registry;
        let record = reg
            .puddle(puddle)
            .ok_or_else(|| DaemonError::new(ErrorCode::NotFound, "no such puddle"))?;
        if !acl::check(
            creds,
            record.owner_uid,
            record.owner_gid,
            record.mode,
            acl::Access::Write,
        ) {
            return Err(DaemonError::new(
                ErrorCode::PermissionDenied,
                "cannot register a log space you cannot write",
            ));
        }
        if record.purpose != PuddlePurpose::LogSpace {
            return Err(DaemonError::new(
                ErrorCode::InvalidRequest,
                "puddle was not created as a log space",
            ));
        }
        reg.register_log_space(LogSpaceRecord {
            puddle,
            owner_uid: creds.uid,
            owner_gid: creds.gid,
            invalid: false,
        });
        reg.commit()?;
        Ok(())
    }

    /// Test/benchmark helper: returns the fixed puddle header size so other
    /// crates do not need to import the layout module directly.
    pub fn puddle_header_size() -> usize {
        layout::PUDDLE_HEADER_SIZE
    }
}

/// In-process endpoint: calls the daemon directly with fixed credentials.
#[derive(Debug, Clone)]
pub struct LocalEndpoint {
    daemon: Daemon,
    creds: Credentials,
}

impl LocalEndpoint {
    /// Returns the daemon behind this endpoint (in-process clients use it to
    /// share the global space).
    pub fn daemon(&self) -> &Daemon {
        &self.daemon
    }

    /// Returns the credentials this endpoint presents.
    pub fn credentials(&self) -> Credentials {
        self.creds
    }
}

impl Endpoint for LocalEndpoint {
    fn call(&self, req: &Request) -> std::io::Result<Response> {
        Ok(self.daemon.handle(self.creds, req.clone()))
    }
}
