//! Pool export and import: shipping PM data between machines (§4.2
//! "Relocation on import").
//!
//! Export copies a pool's puddle files plus a manifest (pool structure,
//! assigned addresses, pointer maps) into a directory; the data keeps its
//! raw in-memory representation — no serialization. Import registers fresh
//! copies of those puddles in this machine's global space, assigns them new
//! addresses, and records the old→new translations so the client library
//! can rewrite pointers incrementally when the puddles are first mapped.

use crate::acl;
use crate::registry::{PoolRecord, PuddleRecord};
use crate::service::{DaemonError, DaemonInner, DaemonResult};
use puddles_proto::{
    Credentials, ErrorCode, PoolInfo, PtrMapDecl, PuddleId, PuddlePurpose, Translation,
};
use serde::{Deserialize, Serialize};
use std::fs;
use std::path::{Path, PathBuf};

/// One puddle inside an export manifest.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExportedPuddle {
    /// UUID the puddle had on the exporting machine.
    pub id: PuddleId,
    /// Size in bytes.
    pub size: u64,
    /// Address the puddle's pointers are written for.
    pub assigned_addr: u64,
    /// File name of the copied puddle inside the export directory.
    pub file: String,
    /// Permission bits to apply on import.
    pub mode: u32,
}

/// The manifest written alongside exported puddle files.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExportManifest {
    /// Name of the exported pool.
    pub pool: String,
    /// UUID (on the exporting machine) of the root puddle.
    pub root: PuddleId,
    /// Every puddle in the pool.
    pub puddles: Vec<ExportedPuddle>,
    /// Pointer maps needed to rewrite pointers in the pool.
    pub ptr_maps: Vec<PtrMapDecl>,
}

/// File name of the manifest inside an export directory.
pub const MANIFEST_FILE: &str = "manifest.json";

/// Exports `pool_name` into directory `dest`.
pub(crate) fn export_pool(
    inner: &DaemonInner,
    creds: Credentials,
    pool_name: &str,
    dest: &str,
) -> DaemonResult<PathBuf> {
    let dest = Path::new(dest).to_path_buf();
    fs::create_dir_all(&dest).map_err(|e| DaemonError::new(ErrorCode::Internal, e.to_string()))?;

    let pool = inner
        .registry
        .pool(pool_name)
        .ok_or_else(|| DaemonError::new(ErrorCode::NotFound, "pool not found"))?;
    let mut records = Vec::new();
    for id in &pool.puddles {
        // A member freed concurrently between the pool read and here is a
        // legal interleaving, not corruption: export the surviving members.
        let Some(record) = inner.registry.puddle(*id) else {
            continue;
        };
        if !acl::check(
            creds,
            record.owner_uid,
            record.owner_gid,
            record.mode,
            acl::Access::Read,
        ) {
            return Err(DaemonError::new(
                ErrorCode::PermissionDenied,
                "cannot export a pool you cannot read",
            ));
        }
        records.push(record);
    }

    let base = inner.gspace.base() as u64;
    let mut manifest = ExportManifest {
        pool: pool.name.clone(),
        root: pool.root,
        puddles: Vec::new(),
        ptr_maps: inner.registry.ptr_maps(),
    };
    for record in &records {
        let file_name = format!("{}.pud", record.id.to_hex());
        inner
            .pmdir
            .copy_puddle_file(&record.file, &dest.join(&file_name))
            .map_err(DaemonError::from)?;
        manifest.puddles.push(ExportedPuddle {
            id: record.id,
            size: record.size,
            assigned_addr: base + record.offset,
            file: file_name,
            mode: record.mode,
        });
    }
    let manifest_bytes = serde_json::to_vec_pretty(&manifest)
        .map_err(|e| DaemonError::new(ErrorCode::Internal, e.to_string()))?;
    fs::write(dest.join(MANIFEST_FILE), manifest_bytes)
        .map_err(|e| DaemonError::new(ErrorCode::Internal, e.to_string()))?;
    Ok(dest)
}

/// Imports the pool exported at `src` under the name `new_name`.
///
/// Returns the new pool plus the address translations the client library
/// needs while rewriting pointers.
pub(crate) fn import_pool(
    inner: &DaemonInner,
    creds: Credentials,
    src: &str,
    new_name: &str,
) -> DaemonResult<(PoolInfo, Vec<Translation>)> {
    let src = Path::new(src);
    let manifest_bytes = fs::read(src.join(MANIFEST_FILE))
        .map_err(|e| DaemonError::new(ErrorCode::NotFound, format!("manifest: {e}")))?;
    let manifest: ExportManifest = serde_json::from_slice(&manifest_bytes)
        .map_err(|e| DaemonError::new(ErrorCode::InvalidRequest, format!("manifest: {e}")))?;

    // Claim the pool name up front: the atomic try-insert makes concurrent
    // imports (or creates) of the same name race safely, and the placeholder
    // lets the imported puddles reference the pool. It is replaced with the
    // fully populated record at the end.
    let claimed = inner.registry.try_insert_pool(PoolRecord {
        name: new_name.to_string(),
        root: PuddleId(0),
        puddles: Vec::new(),
    });
    if !claimed {
        return Err(DaemonError::new(
            ErrorCode::AlreadyExists,
            format!("pool `{new_name}` already exists"),
        ));
    }

    let base = inner.gspace.base() as u64;
    let reg = &inner.registry;

    // Everything below may fail halfway; collect what must be undone so an
    // aborted import leaves no trace in the live registry.
    let mut allocated: Vec<(u64, u64)> = Vec::new();
    let mut inserted: Vec<PuddleId> = Vec::new();
    let mut copied: Vec<String> = Vec::new();
    let result = (|| -> DaemonResult<(PoolInfo, Vec<Translation>)> {
        // Pass 1: assign every imported puddle a fresh UUID and a fresh
        // address, building the old→new translation table.
        let mut assignments: Vec<(PuddleId, &ExportedPuddle, u64)> = Vec::new();
        let mut translations: Vec<Translation> = Vec::new();
        for exported in &manifest.puddles {
            let new_id = reg.fresh_id();
            let offset = reg.alloc_space(exported.size).map_err(|_| {
                DaemonError::new(ErrorCode::OutOfSpace, "global puddle space exhausted")
            })?;
            allocated.push((offset, exported.size));
            translations.push(Translation {
                old_addr: exported.assigned_addr,
                new_addr: base + offset,
                len: exported.size,
            });
            assignments.push((new_id, exported, offset));
        }

        // Pass 2: copy files and create records; every imported puddle needs
        // a pointer rewrite against the full translation table.
        let mut root_id = None;
        for (new_id, exported, offset) in &assignments {
            let file = new_id.to_hex();
            let dest_path = inner.pmdir.puddle_path(&file);
            fs::copy(src.join(&exported.file), &dest_path)
                .map_err(|e| DaemonError::new(ErrorCode::Internal, e.to_string()))?;
            copied.push(file.clone());
            let needs_rewrite = translations.iter().any(|t| t.old_addr != t.new_addr);
            reg.insert_puddle(PuddleRecord {
                id: *new_id,
                size: exported.size,
                offset: *offset,
                file,
                purpose: PuddlePurpose::Data,
                owner_uid: creds.uid,
                owner_gid: creds.gid,
                mode: exported.mode,
                pool: Some(new_name.to_string()),
                needs_rewrite,
                translations: translations.clone(),
            });
            inserted.push(*new_id);
            if exported.id == manifest.root {
                root_id = Some(*new_id);
            }
        }
        let root_id = root_id.ok_or_else(|| {
            DaemonError::new(
                ErrorCode::InvalidRequest,
                "manifest root not in puddle list",
            )
        })?;

        for decl in manifest.ptr_maps {
            reg.register_ptr_map(decl);
        }

        let pool = PoolRecord {
            name: new_name.to_string(),
            root: root_id,
            puddles: inserted.clone(),
        };
        let info = pool.to_info();
        reg.insert_pool(pool);
        // One group commit covers every record the import enqueued.
        reg.commit()?;
        Ok((info, translations))
    })();

    if result.is_err() {
        for id in inserted {
            reg.unregister_puddle(id);
        }
        for file in copied {
            let _ = inner.pmdir.delete_puddle_file(&file);
        }
        for (offset, size) in allocated {
            reg.free_space(offset, size);
        }
        reg.remove_pool(new_name);
        let _ = reg.commit();
    }
    result
}
