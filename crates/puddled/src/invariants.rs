//! Structural invariants a recovered registry must satisfy.
//!
//! The crash tests (`wal_crash`, the `crash_sweep` soak, the torture
//! harness) all ask the same question after a simulated crash + restart:
//! *is the recovered metadata internally consistent?* This module is the
//! single answer, so every harness checks the same property set and a new
//! invariant added here strengthens all of them at once.
//!
//! The checks mirror what [`crate::registry`]'s load-time `reconcile` is
//! allowed to assume after it runs: cross-table state (pool membership,
//! allocator extents) has been healed, so any violation found here is a
//! recovery bug, not an expected torn state.
//!
//! [`Invariants::check_data`] returns violations as strings rather than
//! panicking so sweep-style harnesses can collect them into a per-seed
//! report; [`Invariants::assert_all`] is the convenience wrapper for plain
//! `#[test]`s.

use crate::registry::{Registry, RegistryData};
use puddles_pmem::util::align_up;
use puddles_pmem::PAGE_SIZE;
use puddles_proto::PuddleId;
use std::collections::BTreeSet;

/// Namespace for registry consistency checks (see the module docs).
pub struct Invariants;

impl Invariants {
    /// Snapshots `registry` and runs every check; returns the violations
    /// (empty = consistent).
    pub fn check_all(registry: &Registry) -> Vec<String> {
        Self::check_data(&registry.snapshot())
    }

    /// Like [`Invariants::check_all`] but panics with the full violation
    /// list, for use in tests.
    pub fn assert_all(registry: &Registry) {
        Self::assert_data(&registry.snapshot());
    }

    /// Panics with the full violation list if `data` is inconsistent.
    pub fn assert_data(data: &RegistryData) {
        let violations = Self::check_data(data);
        assert!(
            violations.is_empty(),
            "registry invariant violations:\n  {}",
            violations.join("\n  ")
        );
    }

    /// Runs every structural check against one registry snapshot.
    ///
    /// * **Pool shape** — each pool's root exists, is listed as a member,
    ///   and every member record exists and names the pool back
    ///   (membership is symmetric in both directions).
    /// * **No orphaned puddles** — a puddle naming a pool appears in that
    ///   pool's member list.
    /// * **Extent geometry** — puddle extents are page-aligned, disjoint,
    ///   inside `[PAGE_SIZE, space_size)`, and below the bump pointer.
    /// * **Allocator accounting** — free-list extents are disjoint from
    ///   each other and from every live extent, and below the bump
    ///   pointer: freed space is never leaked past `next_offset` nor
    ///   double-booked.
    /// * **No orphaned log chains** — every still-valid log space names a
    ///   live puddle (recovery invalidates the rest).
    pub fn check_data(data: &RegistryData) -> Vec<String> {
        let mut violations = Vec::new();
        let live_ids: BTreeSet<PuddleId> = data.puddles.values().map(|p| p.id).collect();

        // Pool shape + symmetric membership.
        for pool in data.pools.values() {
            if !live_ids.contains(&pool.root) {
                violations.push(format!("pool {}: root {} missing", pool.name, pool.root));
            }
            if !pool.puddles.contains(&pool.root) {
                violations.push(format!("pool {}: root not a member", pool.name));
            }
            let mut seen = BTreeSet::new();
            for id in &pool.puddles {
                if !seen.insert(*id) {
                    violations.push(format!("pool {}: duplicate member {id}", pool.name));
                }
                match data.puddles.get(&id.to_hex()) {
                    None => {
                        violations.push(format!("pool {}: lists missing puddle {id}", pool.name))
                    }
                    Some(member) if member.pool.as_deref() != Some(pool.name.as_str()) => {
                        violations.push(format!(
                            "pool {}: member {id} names pool {:?}",
                            pool.name, member.pool
                        ));
                    }
                    Some(_) => {}
                }
            }
        }
        for rec in data.puddles.values() {
            if let Some(pool_name) = &rec.pool {
                match data.pools.get(pool_name) {
                    None => violations
                        .push(format!("puddle {}: names missing pool {pool_name}", rec.id)),
                    Some(pool) if !pool.puddles.contains(&rec.id) => violations.push(format!(
                        "puddle {}: orphaned — not in pool {pool_name}'s member list",
                        rec.id
                    )),
                    Some(_) => {}
                }
            }
        }

        // Extent geometry. Sizes are rounded to pages exactly as the
        // allocator rounds them, so adjacency is judged on what was
        // actually reserved.
        let mut extents: Vec<(u64, u64, PuddleId)> = data
            .puddles
            .values()
            .map(|p| (p.offset, align_up(p.size as usize, PAGE_SIZE) as u64, p.id))
            .collect();
        extents.sort_unstable();
        for &(offset, len, id) in &extents {
            if offset % PAGE_SIZE as u64 != 0 {
                violations.push(format!("puddle {id}: offset {offset:#x} not page-aligned"));
            }
            if offset < PAGE_SIZE as u64 {
                violations.push(format!(
                    "puddle {id}: extent inside the reserved first page"
                ));
            }
            if offset + len > data.space_size {
                violations.push(format!("puddle {id}: extent past the end of the space"));
            }
            if offset + len > data.next_offset {
                violations.push(format!("puddle {id}: extent past the bump pointer"));
            }
        }
        for pair in extents.windows(2) {
            let (a_off, a_len, a_id) = pair[0];
            let (b_off, _, b_id) = pair[1];
            if a_off + a_len > b_off {
                violations.push(format!("puddles {a_id} and {b_id}: overlapping extents"));
            }
        }

        // Allocator accounting: free extents disjoint from live extents and
        // from each other, all below the bump pointer.
        let mut all: Vec<(u64, u64, &'static str)> = extents
            .iter()
            .map(|&(off, len, _)| (off, len, "live"))
            .collect();
        for &(off, len) in &data.free_list {
            if off + len > data.next_offset {
                violations.push(format!(
                    "free extent [{off:#x}, +{len:#x}) past the bump pointer"
                ));
            }
            all.push((off, len, "free"));
        }
        all.sort_unstable();
        for pair in all.windows(2) {
            let (a_off, a_len, a_kind) = pair[0];
            let (b_off, _, b_kind) = pair[1];
            if a_off + a_len > b_off {
                violations.push(format!(
                    "{a_kind} extent [{a_off:#x}, +{a_len:#x}) overlaps {b_kind} extent at {b_off:#x}"
                ));
            }
        }

        // No orphaned log chains: a valid log space must name a live puddle.
        for ls in &data.log_spaces {
            if !ls.invalid && !live_ids.contains(&ls.puddle) {
                violations.push(format!(
                    "log space {}: valid but its puddle is gone",
                    ls.puddle
                ));
            }
        }

        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::{LogSpaceRecord, PoolRecord, PuddleRecord};
    use puddles_proto::PuddlePurpose;

    fn rec(seq: u64, offset: u64, pool: Option<&str>) -> PuddleRecord {
        let id = PuddleId(seq as u128);
        PuddleRecord {
            id,
            size: PAGE_SIZE as u64,
            offset,
            file: id.to_hex(),
            purpose: PuddlePurpose::Data,
            owner_uid: 1,
            owner_gid: 1,
            mode: 0o600,
            pool: pool.map(String::from),
            needs_rewrite: false,
            translations: vec![],
        }
    }

    fn base_data() -> RegistryData {
        let page = PAGE_SIZE as u64;
        let root = rec(1, page, Some("p"));
        let member = rec(2, 2 * page, Some("p"));
        let mut data = RegistryData {
            space_size: 1 << 30,
            next_offset: 3 * page,
            ..RegistryData::default()
        };
        data.pools.insert(
            "p".into(),
            PoolRecord {
                name: "p".into(),
                root: root.id,
                puddles: vec![root.id, member.id],
            },
        );
        data.puddles.insert(root.id.to_hex(), root);
        data.puddles.insert(member.id.to_hex(), member);
        data
    }

    #[test]
    fn consistent_data_passes() {
        assert_eq!(Invariants::check_data(&base_data()), Vec::<String>::new());
    }

    #[test]
    fn overlapping_extents_are_reported() {
        let mut data = base_data();
        let clash = rec(3, PAGE_SIZE as u64, None);
        data.puddles.insert(clash.id.to_hex(), clash);
        let violations = Invariants::check_data(&data);
        assert!(
            violations.iter().any(|v| v.contains("overlapping")),
            "{violations:?}"
        );
    }

    #[test]
    fn asymmetric_membership_is_reported() {
        let mut data = base_data();
        // A puddle claiming membership the pool does not echo.
        let stray = rec(4, 4 * (PAGE_SIZE as u64), Some("p"));
        data.next_offset = 5 * PAGE_SIZE as u64;
        data.puddles.insert(stray.id.to_hex(), stray);
        let violations = Invariants::check_data(&data);
        assert!(
            violations.iter().any(|v| v.contains("orphaned")),
            "{violations:?}"
        );
    }

    #[test]
    fn free_list_overlap_and_leak_are_reported() {
        let mut data = base_data();
        // Overlaps the root extent AND reaches past the bump pointer.
        data.free_list.push((PAGE_SIZE as u64, 1 << 20));
        let violations = Invariants::check_data(&data);
        assert!(
            violations.iter().any(|v| v.contains("free extent")),
            "{violations:?}"
        );
        assert!(
            violations.iter().any(|v| v.contains("overlaps")),
            "{violations:?}"
        );
    }

    #[test]
    fn orphaned_log_space_is_reported_only_while_valid() {
        let mut data = base_data();
        data.log_spaces.push(LogSpaceRecord {
            puddle: PuddleId(9_u128),
            owner_uid: 1,
            owner_gid: 1,
            invalid: false,
        });
        let violations = Invariants::check_data(&data);
        assert!(
            violations.iter().any(|v| v.contains("log space")),
            "{violations:?}"
        );
        data.log_spaces[0].invalid = true;
        assert_eq!(Invariants::check_data(&data), Vec::<String>::new());
    }
}
