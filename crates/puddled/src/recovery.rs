//! System-supported crash recovery (§4.1 "Recovery", §4.6 "Recovery").
//!
//! On startup (or on an explicit `Recover` request) the daemon walks every
//! registered log space, maps the log puddles it lists, and replays the live
//! entries of each log *before any application maps the data*. Replay is
//! restricted to puddles the registering client could write at the time of
//! the crash: the daemon recreates that client's writable mapping and
//! refuses entries that fall outside it. A log containing such entries is
//! marked invalid and never replayed (the data it covers may be corrupt, but
//! other clients' data is protected).

use crate::gspace::GlobalSpace;
use crate::layout::LOG_REGION_OFFSET;
use crate::registry::PuddleRecord;
use crate::service::DaemonInner;
use puddles_logfmt::{
    chain_iter, replay_chain, DirectMemoryTarget, LogRef, LogSpaceEntry, LogSpaceRef, RANGE_DONE,
};
use puddles_pmem::Result;
use puddles_proto::{Credentials, PuddleId, PuddlePurpose, RecoveryReport};

/// Runs one recovery pass over every registered log space.
pub fn run_recovery(inner: &DaemonInner) -> Result<RecoveryReport> {
    let mut report = RecoveryReport::default();

    // Snapshot the records we need so no registry lock is held across
    // mapping operations.
    let log_spaces = inner.registry.log_spaces_snapshot();
    let all_puddles: Vec<PuddleRecord> = inner.registry.puddles_snapshot();

    let mut invalidated = Vec::new();

    for ls in &log_spaces {
        if ls.invalid {
            continue;
        }
        let Some(ls_record) = inner.registry.puddle(ls.puddle) else {
            continue;
        };
        let owner = Credentials {
            uid: ls.owner_uid,
            gid: ls.owner_gid,
        };
        report.log_spaces += 1;

        let outcome = recover_log_space(inner, &ls_record, owner, &all_puddles, &mut report)?;
        if let LogSpaceOutcome::Invalidate = outcome {
            invalidated.push(ls.puddle);
        }
    }

    if !invalidated.is_empty() || report.chain_tails_reclaimed > 0 {
        for id in invalidated {
            inner.registry.invalidate_log_space(id);
            report.logs_invalidated += 1;
        }
        // One group commit makes every invalidation and every reclaimed
        // chain tail's registry removal durable.
        inner.registry.commit()?;
    }
    Ok(report)
}

/// Removes a log puddle from the registry and deletes its backing file
/// (best-effort). Used when recovery reclaims orphaned chain tails and by
/// the startup sweep of unreferenced log puddles; the caller commits the
/// registry afterwards.
fn free_log_puddle(inner: &DaemonInner, record: &PuddleRecord) {
    if let Some(record) = inner.registry.unregister_puddle(record.id) {
        inner.registry.free_space(record.offset, record.size);
        let _ = inner.pmdir.delete_puddle_file(&record.file);
    }
}

/// Reclaims log puddles that no log space references.
///
/// The chain-extension crash window leaves exactly this state: the daemon
/// allocated the next segment but the client crashed before registering it
/// in its log space, so no recovery pass (and no client) can ever reach the
/// puddle again. Run at daemon startup only — after registry load and
/// recovery, before any client connects — because a *live* client is
/// briefly in this window on every chain extension. Returns the number of
/// puddles reclaimed.
pub(crate) fn sweep_unreferenced_log_puddles(inner: &DaemonInner) -> Result<u64> {
    let log_spaces = inner.registry.log_spaces_snapshot();
    let all_puddles: Vec<PuddleRecord> = inner.registry.puddles_snapshot();
    let gspace = &inner.gspace;
    let mut referenced: std::collections::BTreeSet<u128> = std::collections::BTreeSet::new();
    // Walk every log space (including invalidated ones: their logs are kept
    // as evidence) and collect the puddles they reference.
    for ls in &log_spaces {
        // Keyed lookup (the puddle table is keyed by `PuddleId`), not a
        // linear scan of the snapshot.
        let Some(record) = inner.registry.puddle(ls.puddle) else {
            continue;
        };
        let record = &record;
        let mut mapped: Vec<usize> = Vec::new();
        let map_result = map_record(inner, gspace, record, true, &mut mapped);
        if let Ok(addr) = map_result {
            // SAFETY: mapped writable for the puddle's full size; the log
            // space occupies its heap.
            let ls_ref = unsafe {
                LogSpaceRef::from_raw(
                    (addr + LOG_REGION_OFFSET) as *mut u8,
                    record.size as usize - LOG_REGION_OFFSET,
                )
            };
            if ls_ref.is_initialized() {
                referenced.extend(ls_ref.log_puddles());
            }
        }
        for offset in mapped {
            // SAFETY: no references into the mapping survive this loop.
            unsafe {
                let _ = gspace.unmap_puddle(offset);
            }
        }
        if map_result.is_err() {
            // A log space we cannot read may reference any log puddle: with
            // its references unknown, deleting "unreferenced" puddles could
            // destroy a live undo log. Skip the sweep entirely — leaking a
            // puddle until the space heals is recoverable, deletion is not.
            return Ok(0);
        }
    }
    let mut swept = 0;
    for record in &all_puddles {
        if record.purpose == PuddlePurpose::Log && !referenced.contains(&record.id.0) {
            free_log_puddle(inner, record);
            swept += 1;
        }
    }
    if swept > 0 {
        inner.registry.commit()?;
    }
    Ok(swept)
}

/// Reclaims `LogSpace`-purpose puddles that have no [`LogSpaceRecord`].
///
/// `ensure_logspace` on the client first allocates the puddle, then
/// registers it with `RegLogSpace`; a crash in between leaves a LogSpace
/// puddle the registry's log-space table never heard of. No recovery pass
/// walks it (recovery iterates *registered* log spaces) and no client can
/// reach it (the crashed client's handle died with it), so — like the
/// unregistered-`Log` case above — only this startup sweep can reclaim it.
/// Run after registry load + recovery, before any client connects (a live
/// client is briefly in exactly this window while creating its log space).
/// Returns the number of puddles reclaimed.
pub(crate) fn sweep_unregistered_logspace_puddles(inner: &DaemonInner) -> Result<u64> {
    let registered: std::collections::BTreeSet<u128> = inner
        .registry
        .log_spaces_snapshot()
        .iter()
        .map(|ls| ls.puddle.0)
        .collect();
    let mut swept = 0;
    for record in inner.registry.puddles_snapshot() {
        if record.purpose == PuddlePurpose::LogSpace && !registered.contains(&record.id.0) {
            free_log_puddle(inner, &record);
            swept += 1;
        }
    }
    if swept > 0 {
        inner.registry.commit()?;
    }
    Ok(swept)
}

/// Deletes puddle files that have no registry record.
///
/// A crash mid-`DropPool` removes members from the registry before their
/// files are unlinked; the registry itself is healed by WAL replay and the
/// load-time reconcile, but the files would leak on disk forever. The
/// daemon runs this sweep at startup — after the registry is loaded and
/// reconciled, before any client can create new puddles — so every file in
/// the puddle directory either has a record or is garbage. Returns the
/// number of files deleted.
///
/// The sweep is best-effort: a file that cannot be unlinked (odd ownership,
/// immutable bit) is skipped rather than failing daemon startup over a
/// cleanup — the registry, WAL, and real puddle data are unaffected by a
/// lingering stray file.
pub(crate) fn sweep_orphan_files(inner: &DaemonInner) -> Result<u64> {
    let live: std::collections::BTreeSet<String> = inner
        .registry
        .puddles_snapshot()
        .into_iter()
        .map(|p| p.file)
        .collect();
    let mut swept = 0;
    for name in inner.pmdir.list_puddles()? {
        if !live.contains(&name) && inner.pmdir.delete_puddle_file(&name).is_ok() {
            swept += 1;
        }
    }
    Ok(swept)
}

enum LogSpaceOutcome {
    Ok,
    Invalidate,
}

fn recover_log_space(
    inner: &DaemonInner,
    ls_record: &PuddleRecord,
    owner: Credentials,
    all_puddles: &[PuddleRecord],
    report: &mut RecoveryReport,
) -> Result<LogSpaceOutcome> {
    let gspace = &inner.gspace;
    let mut mapped: Vec<usize> = Vec::new();
    let result = (|| -> Result<LogSpaceOutcome> {
        // Map the log-space puddle.
        let ls_addr = map_record(inner, gspace, ls_record, true, &mut mapped)?;
        // SAFETY: the puddle is mapped writable for `ls_record.size` bytes;
        // the log space occupies its heap.
        let ls_ref = unsafe {
            LogSpaceRef::from_raw(
                (ls_addr + LOG_REGION_OFFSET) as *mut u8,
                ls_record.size as usize - LOG_REGION_OFFSET,
            )
        };
        if !ls_ref.is_initialized() {
            return Ok(LogSpaceOutcome::Ok);
        }

        // Recreate the crashed client's writable mapping: every data puddle
        // it had write permission to.
        let mut ranges: Vec<(u64, u64)> = Vec::new();
        for record in all_puddles {
            if record.purpose != PuddlePurpose::Data {
                continue;
            }
            if !crate::acl::check(
                owner,
                record.owner_uid,
                record.owner_gid,
                record.mode,
                crate::acl::Access::Write,
            ) {
                continue;
            }
            let addr = map_record(inner, gspace, record, true, &mut mapped)?;
            ranges.push((addr as u64, record.size));
        }

        // Group the log space's live slots into chains: slots sharing a
        // `log_id`, ordered by `chain_index` (a single-puddle log is a
        // chain of one). `live_slots` already sorts by (log_id, chain_index).
        let mut chains: Vec<Vec<LogSpaceEntry>> = Vec::new();
        for slot in ls_ref.live_slots() {
            match chains.last_mut() {
                Some(chain) if chain[0].log_id == slot.log_id => chain.push(slot),
                _ => chains.push(vec![slot]),
            }
        }

        // Replay each registered log chain.
        let mut outcome = LogSpaceOutcome::Ok;
        for chain in &chains {
            report.logs += 1;
            // Map the chain's segments in order, stitching until the first
            // gap or missing record: registration is ordered (index k is
            // durable before any entry lands in k+1), so everything past a
            // hole belongs to an older, already-resolved incarnation.
            let mut segments: Vec<LogRef> = Vec::new();
            for (i, slot) in chain.iter().enumerate() {
                if slot.chain_index != i as u32 {
                    break;
                }
                let uuid = (slot.puddle_uuid_hi as u128) << 64 | slot.puddle_uuid_lo as u128;
                let Some(log_record) = inner.registry.puddle(PuddleId(uuid)) else {
                    break;
                };
                let log_addr = map_record(inner, gspace, &log_record, true, &mut mapped)?;
                // SAFETY: mapped writable for the puddle's full size; the
                // log occupies the heap region.
                let log = unsafe {
                    LogRef::from_raw(
                        (log_addr + LOG_REGION_OFFSET) as *mut u8,
                        log_record.size as usize - LOG_REGION_OFFSET,
                    )
                };
                segments.push(log);
            }

            let head_live = segments
                .first()
                .map(|h| h.is_initialized() && h.seq_range() != RANGE_DONE)
                .unwrap_or(false);
            if head_live {
                let head = segments[0];
                // Validate first: if any live entry of the chain targets
                // memory the client could not write, do not replay anything
                // from this log space. The head's sequence range governs
                // liveness throughout the chain; the stitched iterator
                // borrows payloads straight from the mapped logs.
                let range = head.seq_range();
                let mut live_count = 0u64;
                let mut denied = false;
                for (hdr, data) in chain_iter(&segments) {
                    if !range.contains(hdr.seq) {
                        continue;
                    }
                    live_count += 1;
                    if hdr.entry_kind() != Some(puddles_logfmt::EntryKind::Volatile)
                        && !ranges.iter().any(|&(start, len)| {
                            hdr.addr >= start && hdr.addr + data.len() as u64 <= start + len
                        })
                    {
                        denied = true;
                    }
                }
                if denied {
                    report.entries_denied += live_count;
                    outcome = LogSpaceOutcome::Invalidate;
                    // Leave the chain (and its tails) untouched as evidence.
                    continue;
                }
                let mut target = DirectMemoryTarget::restricted(ranges.clone());
                let stats = replay_chain(&segments, &mut target, false);
                report.entries_applied += stats.applied as u64;
                report.entries_denied += stats.denied as u64;
                if segments.len() > 1 {
                    report.chained_logs += 1;
                }
                // The transaction is resolved; drop the log. Resetting the
                // head is the single fenced write that invalidates the
                // whole chain.
                head.reset();
            } else if !segments.is_empty() {
                report.logs_clean += 1;
            }

            // Reclaim orphaned chain tails: the crashed client can no
            // longer release them, and the next transaction on this log
            // starts a fresh chain. A tail that never saw an append (crash
            // between registration and first append) is just as benign —
            // it contributed no entries above. Unregister first (durably),
            // then free the puddle, so a crash mid-reclaim leaves either a
            // registered empty-ish tail (reclaimed next pass) or an
            // unreferenced puddle (swept at startup).
            for slot in chain.iter().filter(|s| s.chain_index > 0) {
                let uuid = (slot.puddle_uuid_hi as u128) << 64 | slot.puddle_uuid_lo as u128;
                ls_ref.unregister(uuid);
                if let Some(record) = inner.registry.puddle(PuddleId(uuid)) {
                    free_log_puddle(inner, &record);
                }
                report.chain_tails_reclaimed += 1;
            }
        }
        Ok(outcome)
    })();

    // Unmap everything this pass mapped, regardless of outcome.
    for offset in mapped {
        // SAFETY: recovery holds no references into the mappings at this
        // point; the replay targets borrowed raw addresses only transiently.
        unsafe {
            let _ = gspace.unmap_puddle(offset);
        }
    }
    result
}

fn map_record(
    inner: &DaemonInner,
    gspace: &GlobalSpace,
    record: &PuddleRecord,
    writable: bool,
    mapped: &mut Vec<usize>,
) -> Result<usize> {
    let (file, _) = inner
        .pmdir
        .open_puddle_file(&record.file, record.size as usize)?;
    let addr = gspace.map_puddle(
        &file,
        record.offset as usize,
        record.size as usize,
        writable,
    )?;
    mapped.push(record.offset as usize);
    Ok(addr)
}
