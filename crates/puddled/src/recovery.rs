//! System-supported crash recovery (§4.1 "Recovery", §4.6 "Recovery").
//!
//! On startup (or on an explicit `Recover` request) the daemon walks every
//! registered log space, maps the log puddles it lists, and replays the live
//! entries of each log *before any application maps the data*. Replay is
//! restricted to puddles the registering client could write at the time of
//! the crash: the daemon recreates that client's writable mapping and
//! refuses entries that fall outside it. A log containing such entries is
//! marked invalid and never replayed (the data it covers may be corrupt, but
//! other clients' data is protected).

use crate::gspace::GlobalSpace;
use crate::layout::LOG_REGION_OFFSET;
use crate::registry::PuddleRecord;
use crate::service::DaemonInner;
use puddles_logfmt::{replay_log, DirectMemoryTarget, LogRef, LogSpaceRef, RANGE_DONE};
use puddles_pmem::Result;
use puddles_proto::{Credentials, PuddlePurpose, RecoveryReport};

/// Runs one recovery pass over every registered log space.
pub fn run_recovery(inner: &DaemonInner) -> Result<RecoveryReport> {
    let mut report = RecoveryReport::default();

    // Snapshot the records we need so no registry lock is held across
    // mapping operations.
    let log_spaces = inner.registry.log_spaces_snapshot();
    let all_puddles: Vec<PuddleRecord> = inner.registry.puddles_snapshot();

    let mut invalidated = Vec::new();

    for ls in &log_spaces {
        if ls.invalid {
            continue;
        }
        let Some(ls_record) = all_puddles.iter().find(|p| p.id == ls.puddle) else {
            continue;
        };
        let owner = Credentials {
            uid: ls.owner_uid,
            gid: ls.owner_gid,
        };
        report.log_spaces += 1;

        let outcome = recover_log_space(inner, ls_record, owner, &all_puddles, &mut report)?;
        if let LogSpaceOutcome::Invalidate = outcome {
            invalidated.push(ls.puddle);
        }
    }

    if !invalidated.is_empty() {
        for id in invalidated {
            inner.registry.invalidate_log_space(id);
            report.logs_invalidated += 1;
        }
        // One group commit makes every invalidation record durable.
        inner.registry.commit()?;
    }
    Ok(report)
}

/// Deletes puddle files that have no registry record.
///
/// A crash mid-`DropPool` removes members from the registry before their
/// files are unlinked; the registry itself is healed by WAL replay and the
/// load-time reconcile, but the files would leak on disk forever. The
/// daemon runs this sweep at startup — after the registry is loaded and
/// reconciled, before any client can create new puddles — so every file in
/// the puddle directory either has a record or is garbage. Returns the
/// number of files deleted.
///
/// The sweep is best-effort: a file that cannot be unlinked (odd ownership,
/// immutable bit) is skipped rather than failing daemon startup over a
/// cleanup — the registry, WAL, and real puddle data are unaffected by a
/// lingering stray file.
pub(crate) fn sweep_orphan_files(inner: &DaemonInner) -> Result<u64> {
    let live: std::collections::BTreeSet<String> = inner
        .registry
        .puddles_snapshot()
        .into_iter()
        .map(|p| p.file)
        .collect();
    let mut swept = 0;
    for name in inner.pmdir.list_puddles()? {
        if !live.contains(&name) && inner.pmdir.delete_puddle_file(&name).is_ok() {
            swept += 1;
        }
    }
    Ok(swept)
}

enum LogSpaceOutcome {
    Ok,
    Invalidate,
}

fn recover_log_space(
    inner: &DaemonInner,
    ls_record: &PuddleRecord,
    owner: Credentials,
    all_puddles: &[PuddleRecord],
    report: &mut RecoveryReport,
) -> Result<LogSpaceOutcome> {
    let gspace = &inner.gspace;
    let mut mapped: Vec<usize> = Vec::new();
    let result = (|| -> Result<LogSpaceOutcome> {
        // Map the log-space puddle.
        let ls_addr = map_record(inner, gspace, ls_record, true, &mut mapped)?;
        // SAFETY: the puddle is mapped writable for `ls_record.size` bytes;
        // the log space occupies its heap.
        let ls_ref = unsafe {
            LogSpaceRef::from_raw(
                (ls_addr + LOG_REGION_OFFSET) as *mut u8,
                ls_record.size as usize - LOG_REGION_OFFSET,
            )
        };
        if !ls_ref.is_initialized() {
            return Ok(LogSpaceOutcome::Ok);
        }

        // Recreate the crashed client's writable mapping: every data puddle
        // it had write permission to.
        let mut ranges: Vec<(u64, u64)> = Vec::new();
        for record in all_puddles {
            if record.purpose != PuddlePurpose::Data {
                continue;
            }
            if !crate::acl::check(
                owner,
                record.owner_uid,
                record.owner_gid,
                record.mode,
                crate::acl::Access::Write,
            ) {
                continue;
            }
            let addr = map_record(inner, gspace, record, true, &mut mapped)?;
            ranges.push((addr as u64, record.size));
        }

        // Replay each registered log.
        let mut outcome = LogSpaceOutcome::Ok;
        for log_puddle_id in ls_ref.log_puddles() {
            let Some(log_record) = all_puddles
                .iter()
                .find(|p| p.id == puddles_proto::PuddleId(log_puddle_id))
            else {
                continue;
            };
            report.logs += 1;
            let log_addr = map_record(inner, gspace, log_record, true, &mut mapped)?;
            // SAFETY: mapped writable for the puddle's full size; the log
            // occupies the heap region.
            let log = unsafe {
                LogRef::from_raw(
                    (log_addr + LOG_REGION_OFFSET) as *mut u8,
                    log_record.size as usize - LOG_REGION_OFFSET,
                )
            };
            if !log.is_initialized() || log.seq_range() == RANGE_DONE {
                report.logs_clean += 1;
                continue;
            }
            // Validate first: if any live entry targets memory the client
            // could not write, do not replay anything from this log space.
            // The iterator borrows payloads straight from the mapped log —
            // nothing is materialized for validation.
            let mut live_count = 0u64;
            let mut denied = false;
            for (hdr, data) in log.live() {
                live_count += 1;
                if hdr.entry_kind() != Some(puddles_logfmt::EntryKind::Volatile)
                    && !ranges.iter().any(|&(start, len)| {
                        hdr.addr >= start && hdr.addr + data.len() as u64 <= start + len
                    })
                {
                    denied = true;
                }
            }
            if denied {
                report.entries_denied += live_count;
                outcome = LogSpaceOutcome::Invalidate;
                continue;
            }
            let mut target = DirectMemoryTarget::restricted(ranges.clone());
            let stats = replay_log(&log, &mut target, false);
            report.entries_applied += stats.applied as u64;
            report.entries_denied += stats.denied as u64;
            // The transaction is resolved; drop the log.
            log.reset();
        }
        Ok(outcome)
    })();

    // Unmap everything this pass mapped, regardless of outcome.
    for offset in mapped {
        // SAFETY: recovery holds no references into the mappings at this
        // point; the replay targets borrowed raw addresses only transiently.
        unsafe {
            let _ = gspace.unmap_puddle(offset);
        }
    }
    result
}

fn map_record(
    inner: &DaemonInner,
    gspace: &GlobalSpace,
    record: &PuddleRecord,
    writable: bool,
    mapped: &mut Vec<usize>,
) -> Result<usize> {
    let (file, _) = inner
        .pmdir
        .open_puddle_file(&record.file, record.size as usize)?;
    let addr = gspace.map_puddle(
        &file,
        record.offset as usize,
        record.size as usize,
        writable,
    )?;
    mapped.push(record.offset as usize);
    Ok(addr)
}
