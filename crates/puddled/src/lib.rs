//! `puddled`: the Puddles privileged daemon.
//!
//! The daemon is the system component that makes Puddles' guarantees
//! *system-level* properties rather than application responsibilities
//! (§3.2):
//!
//! * it owns every puddle file on the machine and enforces UNIX-like access
//!   control ([`acl`]);
//! * it allocates puddles and assigns them addresses in the machine-wide
//!   global puddle space ([`gspace`], [`registry`]);
//! * it records client log spaces and pointer maps, and replays
//!   crash-consistency logs *before any application maps the data*
//!   ([`recovery`]);
//! * it exports and imports pools, tracking the pointer-rewrite frontier for
//!   relocated data ([`importexport`]).
//!
//! The daemon can run in-process (library mode, used by tests and
//! benchmarks: [`Daemon::endpoint`]) or as a stand-alone process serving a
//! UNIX-domain socket ([`uds::UdsServer`], the `puddled` binary).

pub mod acl;
pub mod alloc;
pub mod background;
pub mod gspace;
pub mod importexport;
pub mod invariants;
pub mod layout;
pub mod recovery;
pub mod registry;
pub mod service;
pub mod uds;
pub mod wal;

pub use alloc::{AllocStats, SpaceAlloc};
pub use background::Background;
pub use gspace::GlobalSpace;
pub use invariants::Invariants;
pub use layout::{PuddleHeader, LOG_REGION_OFFSET, PUDDLE_HEADER_SIZE, PUDDLE_MAGIC};
pub use service::{Daemon, DaemonConfig, LocalEndpoint};
pub use uds::{ServerConfig, UdsServer, DEFAULT_MAX_CONNECTIONS, MAX_PIPELINED_REQUESTS};
pub use wal::{RegistryOp, Wal, WalHandle, WalStats};
