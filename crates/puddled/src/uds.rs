//! UNIX-domain-socket server exposing the daemon to other processes.
//!
//! The paper's clients talk to `puddled` over a UNIX domain socket and
//! receive puddle file descriptors via `sendmsg(SCM_RIGHTS)`; here the
//! responses carry file paths instead (see DESIGN.md). Credentials are taken
//! from the client's `Hello` message; on Linux the kernel-verified
//! `SO_PEERCRED` uid/gid are preferred when available.
//!
//! # Runtime
//!
//! The server is a **sharded epoll runtime plus a two-lane worker pool**:
//!
//! * One **acceptor thread** owns the nonblocking listener. Each accepted
//!   socket is handed to the least-loaded reactor whose slice of the
//!   connection budget has room; at the global connection cap the acceptor
//!   writes a [`puddles_proto::ErrorCode::Busy`] error frame and closes the
//!   socket, so clients can back off instead of parsing a bare EOF.
//! * **N reactor threads** (default `min(cores, 4)`, see [`ServerConfig`])
//!   each own a private poller, waker, and connection table: a reactor
//!   reads whatever bytes its sockets have, feeds them to an incremental
//!   frame decoder ([`puddles_proto::frame::FrameDecoder`] — frames split
//!   at arbitrary byte boundaries reassemble transparently), and flushes
//!   response bytes, parking partial writes in a per-connection output
//!   buffer until the socket drains. Reactors never execute a request and
//!   never touch each other's connections, so accept/decode/write work
//!   scales with cores instead of funneling through one event loop.
//! * A **worker pool** executes requests (`Daemon::handle`) off a
//!   **two-lane queue**: heavyweight requests (pool import/export,
//!   creation/deletion, recovery — see `service::lane_of`) ride the bulk
//!   lane, which only a reserved minority of workers prefer; the remaining
//!   workers serve the fast lane exclusively, so a burst of imports can
//!   never starve cheap metadata operations. Workers push the encoded
//!   response to the owning reactor's completion queue and wake it.
//!
//! # Protocol versions
//!
//! A connection speaks **v1** (bare `Request`/`Response` frames, one
//! request in flight, responses in request order) unless its first four
//! bytes are the [`puddles_proto::frame::V2_MAGIC`] preamble, which can
//! never be a valid v1 length prefix. After the preamble every frame is an
//! id-carrying envelope ([`puddles_proto::RequestEnvelope`] /
//! [`puddles_proto::ResponseEnvelope`]): up to [`MAX_PIPELINED_REQUESTS`]
//! requests may be in flight at once and responses complete — and are
//! written — **out of order**, paired by `req_id`.
//!
//! # Backpressure
//!
//! Three bounds keep a misbehaving peer from ballooning daemon memory: the
//! global connection cap (excess connections are turned away with a `Busy`
//! frame), a per-connection cap on parsed-plus-in-flight requests, and a
//! per-connection output high-water mark — a client that stops reading its
//! responses (or pipelines without reading) has its *read* interest dropped
//! until the output buffer drains, so its socket fills and the client
//! blocks instead of the daemon buffering without bound.
//!
//! # Shutdown
//!
//! [`UdsServer::shutdown`] is graceful and *bounded*: the acceptor stops,
//! every reactor drops idle connections immediately, gives in-flight
//! requests and partially written responses [`SHUTDOWN_GRACE`] to finish,
//! then force-drops stragglers; the worker pool is drained and joined
//! (detached past the deadline, so a pathological request cannot wedge the
//! process).

use crate::service::{grant_limit, lane_of, Daemon, Lane, DEFAULT_MAX_IN_FLIGHT};
use polling::{Event, Interest, Poller, Waker};
use puddles_pmem::clock::Clock;
use puddles_proto::frame::{FrameDecoder, V2_MAGIC};
use puddles_proto::{frame, Credentials, Request, RequestEnvelope, Response, ResponseEnvelope};
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Default bound on simultaneous client connections. A reactor holds one
/// fd and a small state machine per connection — no thread — so this is a
/// memory/fd bound, not a thread-count bound (the old design capped at 256
/// threads).
pub const DEFAULT_MAX_CONNECTIONS: usize = 4096;

/// Hard ceiling on reactor threads (more event loops than this buys
/// nothing: the worker pool, not event demultiplexing, is the next
/// bottleneck).
pub const MAX_REACTORS: usize = 4;

/// How long in-flight requests and partially written responses are given to
/// finish once shutdown is requested.
const SHUTDOWN_GRACE: Duration = Duration::from_secs(5);

/// Requests a single connection may have parsed-but-undispatched plus in
/// flight at once; above this the connection's read interest is dropped
/// until completions drain (its socket fills; the kernel pushes back on the
/// client). This is also the useful upper bound on a v2 client's pipeline
/// depth.
pub const MAX_PIPELINED_REQUESTS: usize = 64;

/// Per-connection output high-water mark: once this many bytes are parked
/// waiting for a slow reader, the connection's read interest is dropped
/// until the buffer drains below it.
const OUT_HIGH_WATER: usize = 1 << 20;

/// Largest chunk a reactor reads per `read` call.
const READ_CHUNK: usize = 64 * 1024;

/// Acceptor poll-token namespace: listener plus waker.
const TOKEN_LISTENER: u64 = 0;
/// Waker token (used by the acceptor's and every reactor's poller).
const TOKEN_WAKER: u64 = 1;
/// First token handed to a connection (per-reactor token space).
const FIRST_CONN_TOKEN: u64 = 2;

/// Runtime shape of a [`UdsServer`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bound on simultaneous connections across all reactors; beyond it the
    /// acceptor answers with a `Busy` frame and closes.
    pub max_connections: usize,
    /// Number of reactor (event-loop) threads. Clamped to
    /// `1..=`[`MAX_REACTORS`].
    pub reactors: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: DEFAULT_MAX_CONNECTIONS,
            reactors: default_reactor_count(),
        }
    }
}

/// The default reactor count: `min(cores, 4)`, at least 1.
pub fn default_reactor_count() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, MAX_REACTORS)
}

/// One request handed to the worker pool.
struct WorkItem {
    /// Index of the reactor owning the connection (completion routing).
    reactor: usize,
    /// Connection token within that reactor.
    conn: u64,
    /// v2 request id to echo in the response envelope; `None` on v1
    /// connections (bare response).
    req_id: Option<u64>,
    creds: Credentials,
    req: Request,
}

/// What a worker thread is allowed to pull from the two-lane queue.
#[derive(Clone, Copy)]
enum WorkerRole {
    /// Serves the fast lane only (while the queue is open): these workers
    /// are the fast lane's reservation and can never be captured by a
    /// burst of imports.
    FastOnly,
    /// Prefers the bulk lane, falls back to the fast lane when it is
    /// empty: the bulk lane's reservation, which still helps with cheap
    /// requests when no heavyweight work is queued.
    BulkPreferring,
}

/// The blocking two-lane queue feeding the worker pool.
struct WorkQueue {
    state: Mutex<Queues>,
    ready: Condvar,
}

struct Queues {
    fast: VecDeque<WorkItem>,
    bulk: VecDeque<WorkItem>,
    closed: bool,
}

impl WorkQueue {
    fn new() -> WorkQueue {
        WorkQueue {
            state: Mutex::new(Queues {
                fast: VecDeque::new(),
                bulk: VecDeque::new(),
                closed: false,
            }),
            ready: Condvar::new(),
        }
    }

    fn push(&self, lane: Lane, item: WorkItem) {
        let mut q = self.state.lock().unwrap();
        match lane {
            Lane::Fast => q.fast.push_back(item),
            Lane::Bulk => q.bulk.push_back(item),
        }
        // Consumers are selective (a FastOnly worker skips bulk items), so
        // waking just one waiter could wake a thread that cannot take the
        // new item while an eligible one keeps sleeping. Wake them all.
        self.ready.notify_all();
    }

    /// Blocks for the next item this role may take; `None` once closed
    /// **and** empty (close drains: queued requests still execute, their
    /// responses are simply discarded for connections that no longer
    /// exist — role restrictions are lifted so the drain cannot strand
    /// bulk items behind exited bulk workers).
    fn pop(&self, role: WorkerRole) -> Option<WorkItem> {
        let mut q = self.state.lock().unwrap();
        loop {
            let item = match role {
                WorkerRole::BulkPreferring => {
                    let bulk = q.bulk.pop_front();
                    bulk.or_else(|| q.fast.pop_front())
                }
                WorkerRole::FastOnly if q.closed => {
                    let fast = q.fast.pop_front();
                    fast.or_else(|| q.bulk.pop_front())
                }
                WorkerRole::FastOnly => q.fast.pop_front(),
            };
            if let Some(item) = item {
                return Some(item);
            }
            if q.closed {
                return None;
            }
            q = self.ready.wait(q).unwrap();
        }
    }

    fn close(&self) {
        let mut q = self.state.lock().unwrap();
        q.closed = true;
        self.ready.notify_all();
    }
}

/// Per-reactor state shared with the acceptor and the workers.
struct ReactorShared {
    /// Wakes this reactor's poller (new incoming connection or completion).
    waker: Waker,
    /// Sockets handed off by the acceptor, not yet registered.
    incoming: Mutex<Vec<(UnixStream, Option<Credentials>)>>,
    /// Completed responses: `(conn token, encoded frame)`. Workers push,
    /// the reactor drains after a waker event.
    completions: Mutex<Vec<(u64, Vec<u8>)>>,
    /// Connections owned by this reactor, **including** handed-off sockets
    /// it has not registered yet: the acceptor increments at handoff, the
    /// reactor decrements on close, so the global cap check never races a
    /// not-yet-registered socket past the limit. Behind an `Arc` because
    /// the daemon's `Stats` reports it (per-reactor placement skew).
    active: Arc<AtomicUsize>,
    /// Requests handled on behalf of this reactor's connections. Behind an
    /// `Arc` because `Stats`/`GetMetrics` report it (per-reactor *served
    /// traffic* skew, complementing the placement counter above).
    requests: Arc<AtomicU64>,
}

impl ReactorShared {
    fn new() -> io::Result<ReactorShared> {
        Ok(ReactorShared {
            waker: Waker::new()?,
            incoming: Mutex::new(Vec::new()),
            completions: Mutex::new(Vec::new()),
            active: Arc::new(AtomicUsize::new(0)),
            requests: Arc::new(AtomicU64::new(0)),
        })
    }
}

/// State shared between the acceptor, the reactors, the workers, and the
/// server handle.
struct Shared {
    daemon: Daemon,
    shutdown: AtomicBool,
    /// Wakes the acceptor's poller (shutdown).
    acceptor_waker: Waker,
    queue: WorkQueue,
    reactors: Vec<Arc<ReactorShared>>,
    /// Exit latches per thread group: each runtime thread signals its
    /// latch on the way out, so shutdown waits on a condvar instead of
    /// spin-polling `JoinHandle::is_finished` every 5 ms.
    acceptor_exits: ExitLatch,
    reactor_exits: ExitLatch,
    worker_exits: ExitLatch,
}

/// Counts thread exits; [`UdsServer::shutdown`] blocks on the condvar until
/// a group has fully arrived or its deadline passes. Virtual-clock-aware
/// through [`Clock::wait_timeout`], so a simulated timeline drives shutdown
/// deadlines exactly like every other timeout.
struct ExitLatch {
    exited: Mutex<usize>,
    all_out: Condvar,
}

impl ExitLatch {
    fn new() -> ExitLatch {
        ExitLatch {
            exited: Mutex::new(0),
            all_out: Condvar::new(),
        }
    }

    /// Signals one thread's exit (called from a drop guard, so panics and
    /// early returns still count).
    fn arrive(&self) {
        *self.exited.lock().unwrap() += 1;
        self.all_out.notify_all();
    }

    /// Waits until `n` threads have arrived or `clock` passes `deadline`;
    /// `true` when the whole group is out. The round cap bounds the wait in
    /// real time when a *frozen* virtual clock would otherwise never reach
    /// the deadline (each virtual-clock round is a short real-time poll).
    fn wait_all(&self, n: usize, clock: &Clock, deadline: Duration) -> bool {
        const MAX_ROUNDS: u32 = 20_000;
        let mut exited = self.exited.lock().unwrap();
        let mut rounds = 0u32;
        while *exited < n {
            let now = clock.now();
            if now >= deadline || rounds >= MAX_ROUNDS {
                return false;
            }
            rounds += 1;
            let (guard, _) = clock.wait_timeout(exited, &self.all_out, deadline - now);
            exited = guard;
        }
        true
    }
}

/// Signals `ExitLatch::arrive` when dropped; lives at the top of each
/// runtime thread so every exit path (including panics) is counted.
struct ExitGuard<'a>(&'a ExitLatch);

impl Drop for ExitGuard<'_> {
    fn drop(&mut self) {
        self.0.arrive();
    }
}

/// A running UNIX-domain-socket server for one daemon instance.
#[derive(Debug)]
pub struct UdsServer {
    path: PathBuf,
    shared: Arc<Shared>,
    acceptor: Option<JoinHandle<()>>,
    reactors: Vec<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("reactors", &self.reactors.len())
            .field("shutdown", &self.shutdown.load(Ordering::Relaxed))
            .finish()
    }
}

impl UdsServer {
    /// Starts serving `daemon` on a socket at `path` (any stale socket file
    /// is replaced) with the default [`ServerConfig`].
    pub fn start(daemon: Daemon, path: impl AsRef<Path>) -> io::Result<UdsServer> {
        Self::start_with_config(daemon, path, ServerConfig::default())
    }

    /// Starts the server with an explicit bound on simultaneous connections
    /// (default reactor count).
    pub fn start_with_limit(
        daemon: Daemon,
        path: impl AsRef<Path>,
        max_connections: usize,
    ) -> io::Result<UdsServer> {
        Self::start_with_config(
            daemon,
            path,
            ServerConfig {
                max_connections,
                ..ServerConfig::default()
            },
        )
    }

    /// Starts the server with an explicit runtime shape.
    pub fn start_with_config(
        daemon: Daemon,
        path: impl AsRef<Path>,
        config: ServerConfig,
    ) -> io::Result<UdsServer> {
        let path = path.as_ref().to_path_buf();
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path)?;
        listener.set_nonblocking(true)?;
        let max_connections = config.max_connections.max(1);
        let reactor_count = config.reactors.clamp(1, MAX_REACTORS);
        let mut reactor_shared = Vec::with_capacity(reactor_count);
        for _ in 0..reactor_count {
            reactor_shared.push(Arc::new(ReactorShared::new()?));
        }
        let shared = Arc::new(Shared {
            daemon,
            shutdown: AtomicBool::new(false),
            acceptor_waker: Waker::new()?,
            queue: WorkQueue::new(),
            reactors: reactor_shared,
            acceptor_exits: ExitLatch::new(),
            reactor_exits: ExitLatch::new(),
            worker_exits: ExitLatch::new(),
        });
        // Publish the per-reactor connection counters for `Stats`
        // (reactor-skew observability); detached again at shutdown.
        shared.daemon.attach_reactor_loads(
            shared
                .reactors
                .iter()
                .map(|r| Arc::clone(&r.active))
                .collect(),
        );
        shared.daemon.attach_reactor_requests(
            shared
                .reactors
                .iter()
                .map(|r| Arc::clone(&r.requests))
                .collect(),
        );

        let worker_count = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .clamp(2, 8);
        // The bulk lane's worker reservation: a minority of the pool (at
        // least one) prefers heavyweight requests; everyone else is pinned
        // to the fast lane.
        let bulk_workers = (worker_count / 4).max(1);
        let mut workers = Vec::with_capacity(worker_count);
        for i in 0..worker_count {
            let shared = Arc::clone(&shared);
            let role = if i < bulk_workers {
                WorkerRole::BulkPreferring
            } else {
                WorkerRole::FastOnly
            };
            workers.push(
                std::thread::Builder::new()
                    .name(format!("puddled-worker-{i}"))
                    .spawn(move || {
                        let _exit = ExitGuard(&shared.worker_exits);
                        worker_loop(&shared, role);
                    })?,
            );
        }

        let mut reactors = Vec::with_capacity(reactor_count);
        for index in 0..reactor_count {
            let shared = Arc::clone(&shared);
            reactors.push(
                std::thread::Builder::new()
                    .name(format!("puddled-reactor-{index}"))
                    .spawn(move || {
                        let _exit = ExitGuard(&shared.reactor_exits);
                        let mut r = match Reactor::new(Arc::clone(&shared), index) {
                            Ok(r) => r,
                            Err(_) => return,
                        };
                        r.run();
                    })?,
            );
        }

        let acceptor_shared = Arc::clone(&shared);
        let acceptor = std::thread::Builder::new()
            .name("puddled-acceptor".into())
            .spawn(move || {
                let _exit = ExitGuard(&acceptor_shared.acceptor_exits);
                let mut a =
                    match Acceptor::new(Arc::clone(&acceptor_shared), listener, max_connections) {
                        Ok(a) => a,
                        Err(_) => return,
                    };
                a.run();
            })?;

        Ok(UdsServer {
            path,
            shared,
            acceptor: Some(acceptor),
            reactors,
            workers,
        })
    }

    /// Returns the socket path clients should connect to.
    pub fn socket_path(&self) -> &Path {
        &self.path
    }

    /// Number of currently connected clients (summed across reactors).
    pub fn active_connections(&self) -> usize {
        self.shared
            .reactors
            .iter()
            .map(|r| r.active.load(Ordering::Relaxed))
            .sum()
    }

    /// Stops accepting, disconnects idle clients, lets in-flight requests
    /// finish within [`SHUTDOWN_GRACE`], and joins the acceptor, reactor,
    /// and worker threads. The join is *bounded*: any straggler past the
    /// deadline is detached instead of joined, so a wedged peer or request
    /// cannot hang the process.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.acceptor_waker.wake();
        for r in &self.shared.reactors {
            r.waker.wake();
        }
        let clock = self.shared.daemon.clock().clone();
        let deadline = clock.now() + SHUTDOWN_GRACE + Duration::from_secs(2);
        let out = self.shared.acceptor_exits.wait_all(
            usize::from(self.acceptor.is_some()),
            &clock,
            deadline,
        );
        if let Some(handle) = self.acceptor.take() {
            join_or_detach(handle, out);
        }
        let out = self
            .shared
            .reactor_exits
            .wait_all(self.reactors.len(), &clock, deadline);
        for handle in self.reactors.drain(..) {
            join_or_detach(handle, out);
        }
        // The reactors are gone; nothing enqueues work anymore. Drain the
        // workers (queued requests still execute — their mutations matter
        // even if no connection remains to read the response).
        self.shared.queue.close();
        let out = self
            .shared
            .worker_exits
            .wait_all(self.workers.len(), &clock, deadline);
        for handle in self.workers.drain(..) {
            join_or_detach(handle, out);
        }
        self.shared.daemon.attach_reactor_loads(Vec::new());
        self.shared.daemon.attach_reactor_requests(Vec::new());
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Joins `handle` when its exit latch fired (`arrived` — the join then only
/// waits out final thread teardown, microseconds); otherwise joins only an
/// already-finished thread and detaches stragglers (a detached thread holds
/// nothing but fds that process teardown closes).
fn join_or_detach(handle: JoinHandle<()>, arrived: bool) {
    if arrived || handle.is_finished() {
        let _ = handle.join();
    } else {
        drop(handle);
    }
}

impl Drop for UdsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: &Arc<Shared>, role: WorkerRole) {
    while let Some(item) = shared.queue.pop(role) {
        shared.reactors[item.reactor]
            .requests
            .fetch_add(1, Ordering::Relaxed);
        let resp = shared
            .daemon
            .handle_traced(item.creds, item.req, item.req_id.unwrap_or(0));
        let encoded = encode_response(item.req_id, resp);
        let bytes = encoded.unwrap_or_else(|e| {
            // Unencodable response (outsized payload): report the failure
            // in-band so the client is not left waiting on a silent drop.
            let err = Response::Error {
                code: puddles_proto::ErrorCode::Internal,
                message: format!("response encoding failed: {e}"),
            };
            encode_response(item.req_id, err).unwrap_or_default()
        });
        let target = &shared.reactors[item.reactor];
        target.completions.lock().unwrap().push((item.conn, bytes));
        target.waker.wake();
    }
}

/// Encodes a response as the connection's protocol version demands: a
/// [`ResponseEnvelope`] echoing the request id on v2, a bare [`Response`]
/// on v1.
fn encode_response(req_id: Option<u64>, resp: Response) -> io::Result<Vec<u8>> {
    match req_id {
        Some(req_id) => frame::encode_frame(&ResponseEnvelope { req_id, resp }),
        None => frame::encode_frame(&resp),
    }
}

/// Reads SO_PEERCRED credentials from a connected UNIX socket.
fn peer_credentials(stream: &UnixStream) -> Option<Credentials> {
    let mut ucred = libc::ucred {
        pid: 0,
        uid: 0,
        gid: 0,
    };
    let mut len = std::mem::size_of::<libc::ucred>() as libc::socklen_t;
    // SAFETY: `ucred`/`len` are valid for writes of the requested size and
    // the fd is a live socket owned by `stream`.
    let rc = unsafe {
        libc::getsockopt(
            stream.as_raw_fd(),
            libc::SOL_SOCKET,
            libc::SO_PEERCRED,
            &mut ucred as *mut libc::ucred as *mut libc::c_void,
            &mut len,
        )
    };
    if rc == 0 {
        Some(Credentials {
            uid: ucred.uid,
            gid: ucred.gid,
        })
    } else {
        None
    }
}

// -- Acceptor ---------------------------------------------------------------

/// The accept loop: owns the listener, places sockets onto reactors.
struct Acceptor {
    shared: Arc<Shared>,
    poller: Poller,
    listener: UnixListener,
    max_connections: usize,
    /// The listener is registered with the poller (deregistered while a
    /// persistent accept failure backs off, so a full backlog does not
    /// busy-loop on level-triggered accept readiness).
    accepting: bool,
    /// Accepting is paused until this clock reading after a persistent
    /// accept failure (e.g. EMFILE under a low fd rlimit).
    accept_backoff_until: Option<Duration>,
    /// The daemon's time source (virtual under torture).
    clock: Clock,
    /// Pre-encoded `Busy` rejection frame (a bare v1 response: it is sent
    /// before the client's preamble could have been read, and v2 clients
    /// decode bare frames via `ServerFrame`).
    busy_frame: Vec<u8>,
}

impl Acceptor {
    fn new(
        shared: Arc<Shared>,
        listener: UnixListener,
        max_connections: usize,
    ) -> io::Result<Acceptor> {
        let poller = Poller::new()?;
        poller.add(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READABLE)?;
        poller.add(shared.acceptor_waker.fd(), TOKEN_WAKER, Interest::READABLE)?;
        let busy_frame = frame::encode_frame(&Response::Error {
            code: puddles_proto::ErrorCode::Busy,
            message: format!("connection limit reached ({max_connections})"),
        })?;
        let clock = shared.daemon.clock().clone();
        Ok(Acceptor {
            shared,
            poller,
            listener,
            max_connections,
            accepting: true,
            accept_backoff_until: None,
            clock,
            busy_frame,
        })
    }

    fn run(&mut self) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            let timeout = self.accept_backoff_until.map(|_| Duration::from_millis(10));
            let _ = self.poller.wait(&mut events, timeout);
            if self.shared.shutdown.load(Ordering::SeqCst) {
                return;
            }
            if let Some(until) = self.accept_backoff_until {
                if self.clock.now() >= until {
                    self.accept_backoff_until = None;
                    self.resume_accepting();
                }
            }
            for &event in &events {
                match event.token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKER => {
                        self.shared.acceptor_waker.drain();
                    }
                    _ => {}
                }
            }
        }
    }

    fn accept_ready(&mut self) {
        loop {
            match self.listener.accept() {
                Ok((stream, _)) => self.place(stream),
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // Persistent accept failure (e.g. EMFILE under a low fd
                // rlimit): the level-triggered listener readiness would
                // fire on every wait while the backlog is non-empty,
                // spinning the loop hot. Deregister and retry after a
                // short backoff.
                Err(_) => {
                    self.pause_accepting();
                    self.accept_backoff_until = Some(self.clock.now() + Duration::from_millis(10));
                    return;
                }
            }
        }
    }

    /// Routes one accepted socket: least-loaded reactor with room in its
    /// slice of the budget, or a `Busy` rejection at the global cap.
    fn place(&mut self, stream: UnixStream) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let n = self.shared.reactors.len();
        // Per-reactor slice of the budget. Ceiling division: if the total
        // is below the cap, at least one reactor is below its slice, so a
        // non-rejected socket always finds a home.
        let slice = self.max_connections.div_ceil(n);
        let mut total = 0usize;
        let mut best: Option<(usize, usize)> = None;
        for (i, r) in self.shared.reactors.iter().enumerate() {
            let active = r.active.load(Ordering::Relaxed);
            total += active;
            if active < slice && best.is_none_or(|(_, b)| active < b) {
                best = Some((i, active));
            }
        }
        let target = match best {
            Some((i, _)) if total < self.max_connections => i,
            // At (or, transiently, above) the cap: tell the client to back
            // off. Best-effort — the frame is far smaller than a socket
            // buffer, so the nonblocking write only fails if the peer is
            // already gone.
            _ => {
                let mut stream = stream;
                let _ = stream.write(&self.busy_frame);
                self.shared.daemon.note_rejected_connection();
                return;
            }
        };
        let peer = peer_credentials(&stream);
        let reactor = &self.shared.reactors[target];
        // Count the connection *before* the reactor sees it so the cap
        // check above can never race a handed-off socket past the limit.
        reactor.active.fetch_add(1, Ordering::Relaxed);
        reactor.incoming.lock().unwrap().push((stream, peer));
        reactor.waker.wake();
    }

    fn pause_accepting(&mut self) {
        if self.accepting {
            let _ = self.poller.delete(self.listener.as_raw_fd());
            self.accepting = false;
        }
    }

    fn resume_accepting(&mut self) {
        if !self.accepting
            && self
                .poller
                .add(
                    self.listener.as_raw_fd(),
                    TOKEN_LISTENER,
                    Interest::READABLE,
                )
                .is_ok()
        {
            self.accepting = true;
        }
    }
}

// -- Connections ------------------------------------------------------------

/// Wire protocol spoken by one connection, fixed by its first bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnProto {
    /// Fewer than four bytes seen; could still become either version.
    Unknown,
    /// Bare frames, one request in flight, responses in request order.
    V1,
    /// Enveloped frames, pipelined, responses out of order.
    V2,
}

/// Per-connection state machine.
struct Conn {
    stream: UnixStream,
    decoder: FrameDecoder,
    proto: ConnProto,
    /// Kernel-verified peer credentials captured at accept (when available).
    peer: Option<Credentials>,
    /// Effective credentials, fixed by the first frame (peer credentials
    /// override whatever the client claims in `Hello`).
    creds: Option<Credentials>,
    /// Parsed requests not yet dispatched: `(req_id, request)` with the id
    /// present exactly on v2 connections.
    pending: VecDeque<(Option<u64>, Request)>,
    /// Requests from this connection currently with the worker pool.
    in_flight: usize,
    /// Encoded response bytes not yet accepted by the socket.
    out: Vec<u8>,
    /// Prefix of `out` already written.
    out_pos: usize,
    /// The peer half-closed (EOF on read); serve what is queued, then drop.
    peer_closed: bool,
    /// Protocol or I/O error: drop as soon as control returns to the loop.
    dead: bool,
    /// Interest bits currently registered with the poller.
    reg_readable: bool,
    reg_writable: bool,
    /// Server-side ceiling on the negotiable in-flight window (the daemon's
    /// configured max clamped to [`MAX_PIPELINED_REQUESTS`]).
    cap: u32,
    /// The in-flight window currently granted to this connection: the
    /// default grant until a `Hello` negotiates one.
    window: usize,
}

impl Conn {
    fn new(stream: UnixStream, peer: Option<Credentials>, cap: u32) -> Conn {
        Conn {
            stream,
            decoder: FrameDecoder::new(),
            proto: ConnProto::Unknown,
            peer,
            creds: None,
            pending: VecDeque::new(),
            in_flight: 0,
            out: Vec::new(),
            out_pos: 0,
            peer_closed: false,
            dead: false,
            reg_readable: true,
            reg_writable: false,
            cap,
            window: grant_limit(0, DEFAULT_MAX_IN_FLIGHT, cap) as usize,
        }
    }

    fn out_len(&self) -> usize {
        self.out.len() - self.out_pos
    }

    /// How many of this connection's requests may execute concurrently:
    /// v1 responses must stay in request order, so one; v2 responses carry
    /// ids, so the connection's negotiated window may run at once.
    fn max_in_flight(&self) -> usize {
        match self.proto {
            ConnProto::V2 => self.window,
            ConnProto::V1 | ConnProto::Unknown => 1,
        }
    }

    /// `true` when nothing remains to serve: no in-flight request, no
    /// queued request, no unwritten response bytes.
    fn idle(&self) -> bool {
        self.in_flight == 0 && self.pending.is_empty() && self.out_len() == 0
    }

    /// Whether the reactor should keep consuming bytes from this peer.
    fn wants_read(&self) -> bool {
        !self.dead
            && !self.peer_closed
            && self.pending.len() + self.in_flight < self.window
            && self.out_len() < OUT_HIGH_WATER
    }
}

// -- Reactor ----------------------------------------------------------------

/// One event loop: owns a poller and a shard of the connections.
struct Reactor {
    shared: Arc<Shared>,
    /// This reactor's slot in `shared.reactors`.
    index: usize,
    me: Arc<ReactorShared>,
    poller: Poller,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    /// Set once shutdown is observed; records the drain deadline (a clock
    /// reading).
    draining: Option<Duration>,
    /// The daemon's time source (virtual under torture).
    clock: Clock,
    /// Poll rounds spent draining: a real-time bound on the drain when a
    /// frozen virtual clock can never reach the deadline.
    drain_rounds: u32,
}

impl Reactor {
    fn new(shared: Arc<Shared>, index: usize) -> io::Result<Reactor> {
        let me = Arc::clone(&shared.reactors[index]);
        let poller = Poller::new()?;
        poller.add(me.waker.fd(), TOKEN_WAKER, Interest::READABLE)?;
        let clock = shared.daemon.clock().clone();
        Ok(Reactor {
            shared,
            index,
            me,
            poller,
            conns: HashMap::new(),
            next_token: FIRST_CONN_TOKEN,
            draining: None,
            clock,
            drain_rounds: 0,
        })
    }

    fn run(&mut self) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            // While draining, wake at least every 20 ms to check the
            // deadline; otherwise sleep until an event or waker.
            let timeout = self.draining.map(|_| Duration::from_millis(20));
            let _ = self.poller.wait(&mut events, timeout);
            if self.shared.shutdown.load(Ordering::SeqCst) && self.draining.is_none() {
                self.begin_drain();
            }

            for &event in &events {
                match event.token {
                    TOKEN_WAKER => {
                        self.me.waker.drain();
                    }
                    token => self.conn_ready(token, event),
                }
            }
            // Handoffs and completions may arrive with or without a waker
            // event in this round (coalesced wakes); drain unconditionally.
            self.process_incoming();
            self.process_completions();

            if self.draining.is_some() && self.drain_finished() {
                break;
            }
        }
        // Teardown: connections (and any never-registered handoffs) drop
        // here, closing their sockets.
        self.conns.clear();
        self.me.incoming.lock().unwrap().clear();
        self.me.active.store(0, Ordering::Relaxed);
    }

    // -- Accept handoff -----------------------------------------------------

    /// Registers sockets the acceptor handed to this reactor. Their
    /// `active` count was already taken at handoff; undone here on failure.
    fn process_incoming(&mut self) {
        let incoming: Vec<(UnixStream, Option<Credentials>)> =
            std::mem::take(&mut *self.me.incoming.lock().unwrap());
        for (stream, peer) in incoming {
            if self.draining.is_some() {
                self.me.active.fetch_sub(1, Ordering::Relaxed);
                continue;
            }
            let token = self.next_token;
            self.next_token += 1;
            if self
                .poller
                .add(stream.as_raw_fd(), token, Interest::READABLE)
                .is_err()
            {
                self.me.active.fetch_sub(1, Ordering::Relaxed);
                continue;
            }
            // Bytes that raced in before registration are reported by the
            // next level-triggered wait; no eager read needed.
            let cap = self.shared.daemon.in_flight_cap();
            self.conns.insert(token, Conn::new(stream, peer, cap));
        }
    }

    // -- Connection I/O -----------------------------------------------------

    fn conn_ready(&mut self, token: u64, event: Event) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        // Torture only: a fault plan may reset this connection mid-stream —
        // the peer sees an abrupt close, exactly like a crashed daemon
        // thread or a dropped socket.
        if let Some(plan) = self.shared.daemon.pm_dir().fault_plan() {
            if plan.on_conn_event() {
                conn.dead = true;
                self.after_io(token);
                return;
            }
        }
        if event.error {
            // EPOLLERR / EPOLLHUP: the peer is gone in both directions, so
            // no queued response is deliverable. (A graceful half-close
            // surfaces as readable + EOF instead and drains normally.)
            // Dropping now also keeps the unmaskable level-triggered HUP
            // from spinning the loop while a dead peer's request finishes.
            conn.dead = true;
        } else {
            if event.writable {
                flush_out(conn);
            }
            if event.readable {
                read_ready(conn);
            }
        }
        self.after_io(token);
    }

    /// Post-I/O bookkeeping for one connection: dispatch newly parsed
    /// requests, update poller interest, reap finished/broken connections.
    fn after_io(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        // Dispatch queued requests unless we are draining (drain finishes
        // in-flight work only).
        if self.draining.is_none() {
            dispatch_ready(&self.shared, self.index, token, conn);
        }
        let drop_now = conn.dead || (conn.peer_closed && conn.idle());
        if drop_now {
            self.remove_conn(token);
            return;
        }
        // Re-register interest if it changed.
        let want_read = conn.wants_read() && self.draining.is_none();
        let want_write = conn.out_len() > 0;
        if want_read != conn.reg_readable || want_write != conn.reg_writable {
            let interest = Interest {
                readable: want_read,
                writable: want_write,
            };
            if self
                .poller
                .modify(conn.stream.as_raw_fd(), token, interest)
                .is_err()
            {
                self.remove_conn(token);
                return;
            }
            let conn = self.conns.get_mut(&token).expect("just checked");
            conn.reg_readable = want_read;
            conn.reg_writable = want_write;
        }
    }

    fn remove_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.poller.delete(conn.stream.as_raw_fd());
            self.me.active.fetch_sub(1, Ordering::Relaxed);
        }
    }

    // -- Worker completions -------------------------------------------------

    fn process_completions(&mut self) {
        let completed: Vec<(u64, Vec<u8>)> =
            std::mem::take(&mut *self.me.completions.lock().unwrap());
        for (token, bytes) in completed {
            let Some(conn) = self.conns.get_mut(&token) else {
                // The connection died while its request executed; the
                // response has no reader. The mutation itself is fine —
                // exactly as if the client crashed after the daemon applied
                // its request.
                continue;
            };
            conn.in_flight = conn.in_flight.saturating_sub(1);
            if bytes.is_empty() {
                conn.dead = true;
            } else {
                // Compact the drained prefix before growing the buffer.
                if conn.out_pos > 0 {
                    conn.out.drain(..conn.out_pos);
                    conn.out_pos = 0;
                }
                conn.out.extend_from_slice(&bytes);
                flush_out(conn);
            }
            self.after_io(token);
        }
    }

    // -- Shutdown -----------------------------------------------------------

    fn begin_drain(&mut self) {
        self.draining = Some(self.clock.now() + SHUTDOWN_GRACE);
        // Idle connections go immediately; busy ones get the grace period
        // to finish their in-flight requests and flush.
        let idle: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.idle() || c.dead)
            .map(|(t, _)| *t)
            .collect();
        for token in idle {
            self.remove_conn(token);
        }
    }

    fn drain_finished(&mut self) -> bool {
        // ~SHUTDOWN_GRACE of 20 ms poll rounds: the real-time fallback for
        // a frozen virtual clock (whose deadline would never arrive).
        const MAX_DRAIN_ROUNDS: u32 = 500;
        let deadline = self.draining.expect("only called while draining");
        self.drain_rounds += 1;
        let done: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.dead || (c.in_flight == 0 && c.out_len() == 0))
            .map(|(t, _)| *t)
            .collect();
        for token in done {
            self.remove_conn(token);
        }
        self.conns.is_empty()
            || self.clock.now() >= deadline
            || self.drain_rounds >= MAX_DRAIN_ROUNDS
    }
}

/// Consumes every byte the socket currently has, parsing complete frames
/// into the pending queue. Stops early when backpressure bounds trip.
fn read_ready(conn: &mut Conn) {
    let mut buf = [0u8; READ_CHUNK];
    while conn.wants_read() {
        match conn.stream.read(&mut buf) {
            Ok(0) => {
                conn.peer_closed = true;
                break;
            }
            Ok(n) => {
                conn.decoder.feed(&buf[..n]);
                if !parse_frames(conn) {
                    return;
                }
                if n < buf.len() {
                    // Short read: the socket is drained (saves the final
                    // WouldBlock round trip).
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
    parse_frames(conn);
}

/// Pulls complete frames out of the decoder, negotiating the protocol
/// version off the first four bytes. Returns `false` when the connection
/// turned dead (framing error).
fn parse_frames(conn: &mut Conn) -> bool {
    if conn.proto == ConnProto::Unknown {
        match conn.decoder.peek(4) {
            Some(head) if head == V2_MAGIC => {
                conn.decoder.consume(4);
                conn.proto = ConnProto::V2;
            }
            // Anything else is a v1 length prefix (the magic LE-decodes
            // above MAX_FRAME, so the two cannot collide).
            Some(_) => conn.proto = ConnProto::V1,
            // Fewer than four bytes buffered: still ambiguous, wait.
            None => return true,
        }
    }
    loop {
        let parsed = match conn.proto {
            ConnProto::V1 => match conn.decoder.next_frame::<Request>() {
                Ok(Some(req)) => Some((None, req)),
                Ok(None) => return true,
                Err(_) => None,
            },
            ConnProto::V2 => match conn.decoder.next_frame::<RequestEnvelope>() {
                Ok(Some(env)) => Some((Some(env.req_id), env.req)),
                Ok(None) => return true,
                Err(_) => None,
            },
            ConnProto::Unknown => unreachable!("negotiated above"),
        };
        let Some((req_id, req)) = parsed else {
            conn.dead = true;
            return false;
        };
        if conn.creds.is_none() {
            // First frame fixes the connection's credentials:
            // kernel-verified peer credentials win; otherwise an explicit
            // Hello is trusted (tests); otherwise fall back to this
            // process's identity.
            conn.creds = Some(match (conn.peer, &req) {
                (Some(peer), _) => peer,
                (None, Request::Hello { creds, .. }) => *creds,
                (None, _) => Credentials::current_process(),
            });
        }
        if let Request::Hello { max_in_flight, .. } = &req {
            // Apply the negotiated window immediately: the same clamp the
            // service reports in `Welcome`, so enforcement matches the
            // grant the client is about to read.
            conn.window = grant_limit(*max_in_flight, DEFAULT_MAX_IN_FLIGHT, conn.cap) as usize;
        }
        conn.pending.push_back((req_id, req));
    }
}

/// Feeds queued requests to the worker pool, up to the connection's
/// in-flight window (one for v1 — responses stay in request order — the
/// whole pipeline window for v2).
fn dispatch_ready(shared: &Arc<Shared>, reactor: usize, token: u64, conn: &mut Conn) {
    if conn.dead {
        return;
    }
    while conn.in_flight < conn.max_in_flight() {
        let Some((req_id, req)) = conn.pending.pop_front() else {
            return;
        };
        let creds = conn.creds.unwrap_or_else(Credentials::current_process);
        conn.in_flight += 1;
        let lane = lane_of(&req);
        shared.queue.push(
            lane,
            WorkItem {
                reactor,
                conn: token,
                req_id,
                creds,
                req,
            },
        );
    }
}

/// Writes as much of the output buffer as the socket accepts; the rest
/// stays parked until the next writable event.
fn flush_out(conn: &mut Conn) {
    while conn.out_pos < conn.out.len() {
        match conn.stream.write(&conn.out[conn.out_pos..]) {
            Ok(0) => {
                conn.dead = true;
                return;
            }
            Ok(n) => conn.out_pos += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
    conn.out.clear();
    conn.out_pos = 0;
}
