//! UNIX-domain-socket server exposing the daemon to other processes.
//!
//! The paper's clients talk to `puddled` over a UNIX domain socket and
//! receive puddle file descriptors via `sendmsg(SCM_RIGHTS)`; here the
//! responses carry file paths instead (see DESIGN.md). Credentials are taken
//! from the client's `Hello` message; on Linux the kernel-verified
//! `SO_PEERCRED` uid/gid are preferred when available.
//!
//! # Concurrency
//!
//! Every accepted connection is served by its own handler thread, so slow or
//! idle clients never block the others; the daemon's request handler is
//! fully concurrent (sharded registry locks, see [`crate::service`]). The
//! number of simultaneous connections is bounded: when all slots are in use
//! the accept thread stops accepting and the kernel's listen backlog
//! provides backpressure. Shutdown is graceful — the accept loop is woken
//! from its *blocking* `accept` by a loopback connection (no busy-wait
//! polling), and every handler thread is joined before `shutdown` returns.

use crate::service::Daemon;
use puddles_proto::{frame, Credentials, Request};
use std::collections::HashMap;
use std::io;
use std::os::unix::io::AsRawFd;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// Default bound on simultaneous client connections.
pub const DEFAULT_MAX_CONNECTIONS: usize = 256;

/// Poll interval at which blocked handler reads re-check the shutdown flag.
const READ_POLL_INTERVAL: Duration = Duration::from_millis(50);

/// Shared state tracking live handler threads.
#[derive(Debug)]
struct Handlers {
    /// Live handler threads by connection id; finished handlers are reaped
    /// opportunistically on each accept and finally on shutdown.
    threads: Mutex<HashMap<u64, JoinHandle<()>>>,
    /// Signalled whenever a handler finishes (frees a connection slot).
    slot_freed: Condvar,
    max_connections: usize,
}

/// A running UNIX-domain-socket server for one daemon instance.
#[derive(Debug)]
pub struct UdsServer {
    path: PathBuf,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    handlers: Arc<Handlers>,
}

impl UdsServer {
    /// Starts serving `daemon` on a socket at `path` (any stale socket file
    /// is replaced), allowing up to [`DEFAULT_MAX_CONNECTIONS`] simultaneous
    /// connections.
    pub fn start(daemon: Daemon, path: impl AsRef<Path>) -> io::Result<UdsServer> {
        Self::start_with_limit(daemon, path, DEFAULT_MAX_CONNECTIONS)
    }

    /// Starts the server with an explicit bound on simultaneous connections.
    pub fn start_with_limit(
        daemon: Daemon,
        path: impl AsRef<Path>,
        max_connections: usize,
    ) -> io::Result<UdsServer> {
        let path = path.as_ref().to_path_buf();
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let handlers = Arc::new(Handlers {
            threads: Mutex::new(HashMap::new()),
            slot_freed: Condvar::new(),
            max_connections: max_connections.max(1),
        });
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_handlers = Arc::clone(&handlers);
        let accept_thread = std::thread::Builder::new()
            .name("puddled-accept".into())
            .spawn(move || accept_loop(daemon, listener, accept_shutdown, accept_handlers))?;
        Ok(UdsServer {
            path,
            shutdown,
            accept_thread: Some(accept_thread),
            handlers,
        })
    }

    /// Returns the socket path clients should connect to.
    pub fn socket_path(&self) -> &Path {
        &self.path
    }

    /// Number of currently connected clients.
    pub fn active_connections(&self) -> usize {
        self.handlers.threads.lock().unwrap().len()
    }

    /// Stops accepting connections, disconnects idle clients, and joins the
    /// accept loop and every handler thread.
    ///
    /// The join is *bounded*: threads normally exit within
    /// [`SHUTDOWN_FRAME_GRACE`] (handlers check the flag between frames and
    /// inside blocked reads/writes), but a pathological peer — or a socket
    /// file someone unlinked out from under the accept loop, making the
    /// wake-up connect miss — must not wedge the process, so any straggler
    /// past the deadline is detached instead of joined.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            // Wake the blocking accept with a throwaway connection. If the
            // socket file was unlinked or replaced this connect cannot reach
            // the listener; the bounded join below covers that case.
            let _ = UnixStream::connect(&self.path);
            join_with_deadline(handle, Duration::from_secs(2));
        }
        // Handlers poll the shutdown flag between frames and inside blocked
        // I/O; give them the frame grace plus margin, then detach.
        let threads: Vec<JoinHandle<()>> = {
            let mut map = self.handlers.threads.lock().unwrap();
            map.drain().map(|(_, handle)| handle).collect()
        };
        let deadline = std::time::Instant::now() + SHUTDOWN_FRAME_GRACE + Duration::from_secs(2);
        for handle in threads {
            let remaining = deadline.saturating_duration_since(std::time::Instant::now());
            join_with_deadline(handle, remaining);
        }
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Joins `handle` if it finishes within `limit`, detaching it otherwise
/// (dropping a `JoinHandle` detaches the thread; a detached handler only
/// holds its own connection, which the process teardown closes).
fn join_with_deadline(handle: JoinHandle<()>, limit: Duration) {
    let deadline = std::time::Instant::now() + limit;
    while !handle.is_finished() {
        if std::time::Instant::now() >= deadline {
            drop(handle);
            return;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    let _ = handle.join();
}

impl Drop for UdsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(
    daemon: Daemon,
    listener: UnixListener,
    shutdown: Arc<AtomicBool>,
    handlers: Arc<Handlers>,
) {
    let mut next_id: u64 = 0;
    loop {
        // Bound the number of simultaneous connections: wait (and reap
        // finished handlers) until a slot is free. The kernel listen backlog
        // queues clients in the meantime.
        {
            let mut threads = handlers.threads.lock().unwrap();
            loop {
                let finished: Vec<u64> = threads
                    .iter()
                    .filter(|(_, handle)| handle.is_finished())
                    .map(|(id, _)| *id)
                    .collect();
                for id in finished {
                    if let Some(handle) = threads.remove(&id) {
                        let _ = handle.join();
                    }
                }
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                if threads.len() < handlers.max_connections {
                    break;
                }
                let (guard, _timeout) = handlers
                    .slot_freed
                    .wait_timeout(threads, Duration::from_millis(100))
                    .unwrap();
                threads = guard;
            }
        }

        // Blocking accept; shutdown() wakes it with a loopback connection.
        match listener.accept() {
            Ok((stream, _)) => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let daemon = daemon.clone();
                let conn_id = next_id;
                next_id += 1;
                let conn_shutdown = Arc::clone(&shutdown);
                let conn_handlers = Arc::clone(&handlers);
                let spawned = std::thread::Builder::new()
                    .name(format!("puddled-conn-{conn_id}"))
                    .spawn(move || {
                        let _ = serve_connection(daemon, stream, &conn_shutdown);
                        // Free this connection's slot. The handle stays in
                        // the map until the accept loop or shutdown reaps
                        // it; `is_finished()` turns true once this closure
                        // returns.
                        conn_handlers.slot_freed.notify_one();
                    });
                if let Ok(handle) = spawned {
                    handlers.threads.lock().unwrap().insert(conn_id, handle);
                }
            }
            Err(_) => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // Transient accept failure (e.g. EMFILE); back off briefly
                // instead of spinning.
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }
}

/// Reads SO_PEERCRED credentials from a connected UNIX socket.
fn peer_credentials(stream: &UnixStream) -> Option<Credentials> {
    let mut ucred = libc::ucred {
        pid: 0,
        uid: 0,
        gid: 0,
    };
    let mut len = std::mem::size_of::<libc::ucred>() as libc::socklen_t;
    // SAFETY: `ucred`/`len` are valid for writes of the requested size and
    // the fd is a live socket owned by `stream`.
    let rc = unsafe {
        libc::getsockopt(
            stream.as_raw_fd(),
            libc::SOL_SOCKET,
            libc::SO_PEERCRED,
            &mut ucred as *mut libc::ucred as *mut libc::c_void,
            &mut len,
        )
    };
    if rc == 0 {
        Some(Credentials {
            uid: ucred.uid,
            gid: ucred.gid,
        })
    } else {
        None
    }
}

/// How long a handler keeps waiting for the rest of a partially received
/// frame after shutdown is requested, before abandoning the connection.
/// Bounds `UdsServer::shutdown` against clients stalled mid-frame.
const SHUTDOWN_FRAME_GRACE: Duration = Duration::from_secs(5);

/// Tracks the bounded wait an in-flight frame is granted once shutdown is
/// requested. Consulted on *every* I/O iteration — including ones that made
/// progress — so a peer trickling one byte per poll interval cannot stretch
/// the wait past [`SHUTDOWN_FRAME_GRACE`].
#[derive(Default)]
struct ShutdownGrace {
    deadline: Option<std::time::Instant>,
}

impl ShutdownGrace {
    /// Returns `true` once shutdown has been pending longer than the grace
    /// period (arming the deadline on first observation).
    fn expired(&mut self, shutdown: &AtomicBool) -> bool {
        if !shutdown.load(Ordering::SeqCst) {
            return false;
        }
        let deadline = *self
            .deadline
            .get_or_insert_with(|| std::time::Instant::now() + SHUTDOWN_FRAME_GRACE);
        std::time::Instant::now() >= deadline
    }
}

/// Fills `buf`, retrying across read timeouts so a partially received frame
/// is never dropped. Returns `Ok(false)` on clean EOF before the first byte
/// or on shutdown; mid-buffer EOF is an error (a torn frame).
fn read_full_interruptible(
    reader: &mut UnixStream,
    buf: &mut [u8],
    shutdown: &AtomicBool,
) -> io::Result<bool> {
    use std::io::Read;
    let mut filled = 0;
    let mut grace = ShutdownGrace::default();
    while filled < buf.len() {
        // Abandon the connection immediately on shutdown while idle; once
        // part of a frame has arrived keep going — trickling or blocked —
        // only until the grace deadline.
        if shutdown.load(Ordering::SeqCst) && filled == 0 {
            return Ok(false);
        }
        if grace.expired(shutdown) {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "shutdown while a frame was incomplete",
            ));
        }
        match reader.read(&mut buf[filled..]) {
            Ok(0) => {
                if filled == 0 {
                    return Ok(false);
                }
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed mid-frame",
                ));
            }
            Ok(n) => filled += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// Writes all of `buf`, retrying across write timeouts (the stream has a
/// write timeout so a peer that stops reading cannot block the handler
/// indefinitely); once shutdown is requested the retries stop at the grace
/// deadline.
fn write_full_interruptible(
    writer: &mut UnixStream,
    buf: &[u8],
    shutdown: &AtomicBool,
) -> io::Result<()> {
    use std::io::Write;
    let mut sent = 0;
    let mut grace = ShutdownGrace::default();
    while sent < buf.len() {
        if grace.expired(shutdown) {
            return Err(io::Error::new(
                io::ErrorKind::TimedOut,
                "shutdown while a response was partially written",
            ));
        }
        match writer.write(&buf[sent..]) {
            Ok(0) => {
                return Err(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "connection closed mid-response",
                ))
            }
            Ok(n) => sent += n,
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock
                    || e.kind() == io::ErrorKind::TimedOut
                    || e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    writer.flush()
}

/// Reads one frame, waking periodically to honour a server shutdown while
/// the client is idle. Returns `None` on clean EOF or shutdown.
fn read_frame_interruptible(
    reader: &mut UnixStream,
    shutdown: &AtomicBool,
) -> io::Result<Option<Request>> {
    let mut len_buf = [0u8; 4];
    if !read_full_interruptible(reader, &mut len_buf, shutdown)? {
        return Ok(None);
    }
    let len = puddles_proto::frame::frame_len(len_buf)?;
    let mut body = vec![0u8; len];
    if !read_full_interruptible(reader, &mut body, shutdown)? {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            "connection closed mid-frame",
        ));
    }
    puddles_proto::frame::decode_frame(&body).map(Some)
}

fn serve_connection(daemon: Daemon, stream: UnixStream, shutdown: &AtomicBool) -> io::Result<()> {
    let peer = peer_credentials(&stream);
    // Read/write timeouts turn blocked I/O into periodic shutdown-flag
    // checks; requests already in flight still complete (within the
    // shutdown grace), and a peer that stops reading its responses cannot
    // park the handler forever.
    stream.set_read_timeout(Some(READ_POLL_INTERVAL))?;
    stream.set_write_timeout(Some(READ_POLL_INTERVAL))?;
    let mut reader = stream.try_clone()?;
    let mut writer = stream;
    // First frame must be Hello; kernel-verified peer credentials override
    // whatever the client claims.
    let Some(first) = read_frame_interruptible(&mut reader, shutdown)? else {
        return Ok(());
    };
    let creds = match (&first, peer) {
        (_, Some(peer)) => peer,
        (Request::Hello { creds }, None) => *creds,
        _ => Credentials::current_process(),
    };
    let resp = daemon.handle(creds, first);
    write_full_interruptible(&mut writer, &frame::encode_frame(&resp)?, shutdown)?;
    loop {
        // Check between frames as well as inside blocked reads: a client
        // streaming back-to-back requests never blocks long enough for the
        // in-read check to fire, and must not keep its handler (and thus
        // `UdsServer::shutdown`'s join) alive past a shutdown request.
        if shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        let Some(req) = read_frame_interruptible(&mut reader, shutdown)? else {
            return Ok(());
        };
        let resp = daemon.handle(creds, req);
        write_full_interruptible(&mut writer, &frame::encode_frame(&resp)?, shutdown)?;
    }
}
