//! UNIX-domain-socket server exposing the daemon to other processes.
//!
//! The paper's clients talk to `puddled` over a UNIX domain socket and
//! receive puddle file descriptors via `sendmsg(SCM_RIGHTS)`; here the
//! responses carry file paths instead (see DESIGN.md). Credentials are taken
//! from the client's `Hello` message; on Linux the kernel-verified
//! `SO_PEERCRED` uid/gid are preferred when available.

use crate::service::Daemon;
use puddles_proto::{read_frame, write_frame, Credentials, Request};
use std::io;
use std::os::unix::io::AsRawFd;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A running UNIX-domain-socket server for one daemon instance.
#[derive(Debug)]
pub struct UdsServer {
    path: PathBuf,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl UdsServer {
    /// Starts serving `daemon` on a socket at `path` (any stale socket file
    /// is replaced).
    pub fn start(daemon: Daemon, path: impl AsRef<Path>) -> io::Result<UdsServer> {
        let path = path.as_ref().to_path_buf();
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path)?;
        listener.set_nonblocking(true)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_thread = std::thread::Builder::new()
            .name("puddled-accept".into())
            .spawn(move || accept_loop(daemon, listener, accept_shutdown))?;
        Ok(UdsServer {
            path,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// Returns the socket path clients should connect to.
    pub fn socket_path(&self) -> &Path {
        &self.path
    }

    /// Stops accepting connections and waits for the accept loop to exit.
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
        let _ = std::fs::remove_file(&self.path);
    }
}

impl Drop for UdsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(daemon: Daemon, listener: UnixListener, shutdown: Arc<AtomicBool>) {
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let daemon = daemon.clone();
                let _ = std::thread::Builder::new()
                    .name("puddled-conn".into())
                    .spawn(move || {
                        let _ = serve_connection(daemon, stream);
                    });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(2));
            }
            Err(_) => break,
        }
    }
}

/// Reads SO_PEERCRED credentials from a connected UNIX socket.
fn peer_credentials(stream: &UnixStream) -> Option<Credentials> {
    let mut ucred = libc::ucred {
        pid: 0,
        uid: 0,
        gid: 0,
    };
    let mut len = std::mem::size_of::<libc::ucred>() as libc::socklen_t;
    // SAFETY: `ucred`/`len` are valid for writes of the requested size and
    // the fd is a live socket owned by `stream`.
    let rc = unsafe {
        libc::getsockopt(
            stream.as_raw_fd(),
            libc::SOL_SOCKET,
            libc::SO_PEERCRED,
            &mut ucred as *mut libc::ucred as *mut libc::c_void,
            &mut len,
        )
    };
    if rc == 0 {
        Some(Credentials {
            uid: ucred.uid,
            gid: ucred.gid,
        })
    } else {
        None
    }
}

fn serve_connection(daemon: Daemon, stream: UnixStream) -> io::Result<()> {
    let peer = peer_credentials(&stream);
    let mut reader = stream.try_clone()?;
    let mut writer = stream;
    // First frame must be Hello; kernel-verified peer credentials override
    // whatever the client claims.
    let first: Request = read_frame(&mut reader)?;
    let creds = match (&first, peer) {
        (_, Some(peer)) => peer,
        (Request::Hello { creds }, None) => *creds,
        _ => Credentials::current_process(),
    };
    let resp = daemon.handle(creds, first);
    write_frame(&mut writer, &resp)?;
    loop {
        let req: Request = match read_frame(&mut reader) {
            Ok(req) => req,
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(()),
            Err(e) => return Err(e),
        };
        let resp = daemon.handle(creds, req);
        write_frame(&mut writer, &resp)?;
    }
}
