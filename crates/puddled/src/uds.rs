//! UNIX-domain-socket server exposing the daemon to other processes.
//!
//! The paper's clients talk to `puddled` over a UNIX domain socket and
//! receive puddle file descriptors via `sendmsg(SCM_RIGHTS)`; here the
//! responses carry file paths instead (see DESIGN.md). Credentials are taken
//! from the client's `Hello` message; on Linux the kernel-verified
//! `SO_PEERCRED` uid/gid are preferred when available.
//!
//! # Runtime
//!
//! The server is an **epoll reactor plus a worker pool** (it replaced the
//! original thread-per-connection design, which was hard-capped at 256 OS
//! threads):
//!
//! * One **reactor thread** owns the poller (`compat/polling`), the
//!   nonblocking listener, and every connection's state machine: it
//!   accepts, reads whatever bytes are available, feeds them to an
//!   incremental frame decoder ([`puddles_proto::frame::FrameDecoder`] —
//!   frames split at arbitrary byte boundaries reassemble transparently),
//!   and flushes response bytes, parking partial writes in a per-connection
//!   output buffer until the socket drains. The reactor never executes a
//!   request.
//! * A small **worker pool** executes requests (`Daemon::handle`), so a
//!   slow request — a recovery-time replay, a large `ImportPool` — occupies
//!   one worker and never stalls the event loop or other connections. One
//!   request per connection is in flight at a time (responses stay in
//!   request order); further pipelined requests queue per connection.
//!
//! # Backpressure
//!
//! Three bounds keep a misbehaving peer from ballooning daemon memory:
//! the connection cap (accepting pauses at [`DEFAULT_MAX_CONNECTIONS`];
//! the kernel listen backlog queues beyond it), a per-connection cap on
//! queued pipelined requests, and a per-connection output high-water mark —
//! a client that stops reading its responses (or pipelines without
//! reading) has its *read* interest dropped until the output buffer drains,
//! so its socket fills and the client blocks instead of the daemon
//! buffering without bound.
//!
//! # Shutdown
//!
//! [`UdsServer::shutdown`] is graceful and *bounded*: the reactor stops
//! accepting, drops idle connections immediately, gives in-flight requests
//! and partially written responses [`SHUTDOWN_GRACE`] to finish, then
//! force-drops stragglers; the worker pool is drained and joined (detached
//! past the deadline, so a pathological request cannot wedge the process).

use crate::service::Daemon;
use polling::{Event, Interest, Poller, Waker};
use puddles_proto::frame::FrameDecoder;
use puddles_proto::{frame, Credentials, Request, Response};
use std::collections::{HashMap, VecDeque};
use std::io::{self, Read, Write};
use std::os::unix::io::AsRawFd;
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Default bound on simultaneous client connections. The reactor holds one
/// fd and a small state machine per connection — no thread — so this is a
/// memory/fd bound, not a thread-count bound (the old design capped at 256
/// threads).
pub const DEFAULT_MAX_CONNECTIONS: usize = 4096;

/// How long in-flight requests and partially written responses are given to
/// finish once shutdown is requested.
const SHUTDOWN_GRACE: Duration = Duration::from_secs(5);

/// Pipelined requests queued per connection beyond the one in flight;
/// above this the connection's read interest is dropped until the queue
/// drains (its socket fills; the kernel pushes back on the client).
const MAX_PIPELINED_REQUESTS: usize = 64;

/// Per-connection output high-water mark: once this many bytes are parked
/// waiting for a slow reader, the connection's read interest is dropped
/// until the buffer drains below it.
const OUT_HIGH_WATER: usize = 1 << 20;

/// Largest chunk the reactor reads per `read` call.
const READ_CHUNK: usize = 64 * 1024;

/// Reactor poll-token namespace: listener, waker, then connections.
const TOKEN_LISTENER: u64 = 0;
const TOKEN_WAKER: u64 = 1;
const FIRST_CONN_TOKEN: u64 = 2;

/// One request handed to the worker pool.
struct WorkItem {
    conn: u64,
    creds: Credentials,
    req: Request,
}

/// The blocking FIFO feeding the worker pool.
struct WorkQueue {
    state: Mutex<(VecDeque<WorkItem>, bool)>,
    ready: Condvar,
}

impl WorkQueue {
    fn new() -> WorkQueue {
        WorkQueue {
            state: Mutex::new((VecDeque::new(), false)),
            ready: Condvar::new(),
        }
    }

    fn push(&self, item: WorkItem) {
        let mut state = self.state.lock().unwrap();
        state.0.push_back(item);
        self.ready.notify_one();
    }

    /// Blocks for the next item; `None` once closed **and** empty (close
    /// drains: queued requests still execute, their responses are simply
    /// discarded for connections that no longer exist).
    fn pop(&self) -> Option<WorkItem> {
        let mut state = self.state.lock().unwrap();
        loop {
            if let Some(item) = state.0.pop_front() {
                return Some(item);
            }
            if state.1 {
                return None;
            }
            state = self.ready.wait(state).unwrap();
        }
    }

    fn close(&self) {
        let mut state = self.state.lock().unwrap();
        state.1 = true;
        self.ready.notify_all();
    }
}

/// State shared between the reactor, the workers, and the server handle.
struct Shared {
    daemon: Daemon,
    shutdown: AtomicBool,
    waker: Waker,
    queue: WorkQueue,
    /// Completed responses: `(conn token, encoded frame)`. Workers push,
    /// the reactor drains after a waker event.
    completions: Mutex<Vec<(u64, Vec<u8>)>>,
    /// Live connections (reactor-maintained; read by `active_connections`).
    active: AtomicUsize,
}

/// A running UNIX-domain-socket server for one daemon instance.
#[derive(Debug)]
pub struct UdsServer {
    path: PathBuf,
    shared: Arc<Shared>,
    reactor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for Shared {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Shared")
            .field("active", &self.active.load(Ordering::Relaxed))
            .field("shutdown", &self.shutdown.load(Ordering::Relaxed))
            .finish()
    }
}

impl UdsServer {
    /// Starts serving `daemon` on a socket at `path` (any stale socket file
    /// is replaced), allowing up to [`DEFAULT_MAX_CONNECTIONS`] simultaneous
    /// connections.
    pub fn start(daemon: Daemon, path: impl AsRef<Path>) -> io::Result<UdsServer> {
        Self::start_with_limit(daemon, path, DEFAULT_MAX_CONNECTIONS)
    }

    /// Starts the server with an explicit bound on simultaneous connections.
    pub fn start_with_limit(
        daemon: Daemon,
        path: impl AsRef<Path>,
        max_connections: usize,
    ) -> io::Result<UdsServer> {
        let path = path.as_ref().to_path_buf();
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path)?;
        listener.set_nonblocking(true)?;
        let shared = Arc::new(Shared {
            daemon,
            shutdown: AtomicBool::new(false),
            waker: Waker::new()?,
            queue: WorkQueue::new(),
            completions: Mutex::new(Vec::new()),
            active: AtomicUsize::new(0),
        });

        let worker_count = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4)
            .clamp(2, 8);
        let mut workers = Vec::with_capacity(worker_count);
        for i in 0..worker_count {
            let shared = Arc::clone(&shared);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("puddled-worker-{i}"))
                    .spawn(move || worker_loop(shared))?,
            );
        }

        let reactor_shared = Arc::clone(&shared);
        let reactor = std::thread::Builder::new()
            .name("puddled-reactor".into())
            .spawn(move || {
                let mut r = match Reactor::new(reactor_shared, listener, max_connections.max(1)) {
                    Ok(r) => r,
                    Err(_) => return,
                };
                r.run();
            })?;
        Ok(UdsServer {
            path,
            shared,
            reactor: Some(reactor),
            workers,
        })
    }

    /// Returns the socket path clients should connect to.
    pub fn socket_path(&self) -> &Path {
        &self.path
    }

    /// Number of currently connected clients.
    pub fn active_connections(&self) -> usize {
        self.shared.active.load(Ordering::Relaxed)
    }

    /// Stops accepting, disconnects idle clients, lets in-flight requests
    /// finish within [`SHUTDOWN_GRACE`], and joins the reactor and worker
    /// threads. The join is *bounded*: any straggler past the deadline is
    /// detached instead of joined, so a wedged peer or request cannot hang
    /// the process.
    pub fn shutdown(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.waker.wake();
        let deadline = Instant::now() + SHUTDOWN_GRACE + Duration::from_secs(2);
        if let Some(handle) = self.reactor.take() {
            join_with_deadline(handle, deadline.saturating_duration_since(Instant::now()));
        }
        // The reactor is gone; nothing enqueues work anymore. Drain the
        // workers (queued requests still execute — their mutations matter
        // even if no connection remains to read the response).
        self.shared.queue.close();
        for handle in self.workers.drain(..) {
            join_with_deadline(handle, deadline.saturating_duration_since(Instant::now()));
        }
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Joins `handle` if it finishes within `limit`, detaching it otherwise
/// (dropping a `JoinHandle` detaches the thread; a detached thread only
/// holds fds that process teardown closes).
fn join_with_deadline(handle: JoinHandle<()>, limit: Duration) {
    let deadline = Instant::now() + limit;
    while !handle.is_finished() {
        if Instant::now() >= deadline {
            drop(handle);
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let _ = handle.join();
}

impl Drop for UdsServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(shared: Arc<Shared>) {
    while let Some(item) = shared.queue.pop() {
        let resp = shared.daemon.handle(item.creds, item.req);
        let bytes = match frame::encode_frame(&resp) {
            Ok(bytes) => bytes,
            // Unencodable response (outsized payload): report the failure
            // in-band so the client is not left waiting on a silent drop.
            Err(e) => frame::encode_frame(&Response::Error {
                code: puddles_proto::ErrorCode::Internal,
                message: format!("response encoding failed: {e}"),
            })
            .unwrap_or_default(),
        };
        shared.completions.lock().unwrap().push((item.conn, bytes));
        shared.waker.wake();
    }
}

/// Reads SO_PEERCRED credentials from a connected UNIX socket.
fn peer_credentials(stream: &UnixStream) -> Option<Credentials> {
    let mut ucred = libc::ucred {
        pid: 0,
        uid: 0,
        gid: 0,
    };
    let mut len = std::mem::size_of::<libc::ucred>() as libc::socklen_t;
    // SAFETY: `ucred`/`len` are valid for writes of the requested size and
    // the fd is a live socket owned by `stream`.
    let rc = unsafe {
        libc::getsockopt(
            stream.as_raw_fd(),
            libc::SOL_SOCKET,
            libc::SO_PEERCRED,
            &mut ucred as *mut libc::ucred as *mut libc::c_void,
            &mut len,
        )
    };
    if rc == 0 {
        Some(Credentials {
            uid: ucred.uid,
            gid: ucred.gid,
        })
    } else {
        None
    }
}

/// Per-connection state machine.
struct Conn {
    stream: UnixStream,
    decoder: FrameDecoder,
    /// Kernel-verified peer credentials captured at accept (when available).
    peer: Option<Credentials>,
    /// Effective credentials, fixed by the first frame (peer credentials
    /// override whatever the client claims in `Hello`).
    creds: Option<Credentials>,
    /// Parsed requests not yet dispatched (pipelining queue).
    pending: VecDeque<Request>,
    /// A request for this connection is with the worker pool.
    in_flight: bool,
    /// Encoded response bytes not yet accepted by the socket.
    out: Vec<u8>,
    /// Prefix of `out` already written.
    out_pos: usize,
    /// The peer half-closed (EOF on read); serve what is queued, then drop.
    peer_closed: bool,
    /// Protocol or I/O error: drop as soon as control returns to the loop.
    dead: bool,
    /// Interest bits currently registered with the poller.
    reg_readable: bool,
    reg_writable: bool,
}

impl Conn {
    fn new(stream: UnixStream, peer: Option<Credentials>) -> Conn {
        Conn {
            stream,
            decoder: FrameDecoder::new(),
            peer,
            creds: None,
            pending: VecDeque::new(),
            in_flight: false,
            out: Vec::new(),
            out_pos: 0,
            peer_closed: false,
            dead: false,
            reg_readable: true,
            reg_writable: false,
        }
    }

    fn out_len(&self) -> usize {
        self.out.len() - self.out_pos
    }

    /// `true` when nothing remains to serve: no in-flight request, no
    /// queued request, no unwritten response bytes.
    fn idle(&self) -> bool {
        !self.in_flight && self.pending.is_empty() && self.out_len() == 0
    }

    /// Whether the reactor should keep consuming bytes from this peer.
    fn wants_read(&self) -> bool {
        !self.dead
            && !self.peer_closed
            && self.pending.len() < MAX_PIPELINED_REQUESTS
            && self.out_len() < OUT_HIGH_WATER
    }
}

/// The event loop: owns the poller, the listener, and every connection.
struct Reactor {
    shared: Arc<Shared>,
    poller: Poller,
    listener: UnixListener,
    conns: HashMap<u64, Conn>,
    next_token: u64,
    max_connections: usize,
    /// The listener is registered with the poller (deregistered while the
    /// connection cap is reached, so a full house does not busy-loop on
    /// accept readiness).
    accepting: bool,
    /// Accepting is paused until this instant after a persistent accept
    /// failure (e.g. EMFILE below the connection cap): the level-triggered
    /// listener readiness would otherwise spin the loop hot while the
    /// error condition lasts.
    accept_backoff_until: Option<Instant>,
    /// Set once shutdown is observed; records the drain deadline.
    draining: Option<Instant>,
}

impl Reactor {
    fn new(
        shared: Arc<Shared>,
        listener: UnixListener,
        max_connections: usize,
    ) -> io::Result<Reactor> {
        let poller = Poller::new()?;
        poller.add(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READABLE)?;
        poller.add(shared.waker.fd(), TOKEN_WAKER, Interest::READABLE)?;
        Ok(Reactor {
            shared,
            poller,
            listener,
            conns: HashMap::new(),
            next_token: FIRST_CONN_TOKEN,
            max_connections,
            accepting: true,
            accept_backoff_until: None,
            draining: None,
        })
    }

    fn run(&mut self) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            // While draining (or backing off a failed accept), wake at
            // least every 20 ms to check the deadline; otherwise sleep
            // until an event or waker.
            let timeout = if self.draining.is_some() || self.accept_backoff_until.is_some() {
                Some(Duration::from_millis(20))
            } else {
                None
            };
            let _ = self.poller.wait(&mut events, timeout);
            if let Some(until) = self.accept_backoff_until {
                if Instant::now() >= until {
                    self.accept_backoff_until = None;
                    self.resume_accepting();
                }
            }
            let shutdown = self.shared.shutdown.load(Ordering::SeqCst);
            if shutdown && self.draining.is_none() {
                self.begin_drain();
            }

            for &event in &events {
                match event.token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKER => {
                        self.shared.waker.drain();
                    }
                    token => self.conn_ready(token, event),
                }
            }
            // Completions may arrive with or without a waker event in this
            // round (coalesced wakes); drain unconditionally.
            self.process_completions();

            if self.draining.is_some() && self.drain_finished() {
                break;
            }
        }
        // Teardown: connections drop here, closing their sockets.
        self.conns.clear();
        self.shared.active.store(0, Ordering::Relaxed);
    }

    // -- Accept path --------------------------------------------------------

    fn accept_ready(&mut self) {
        loop {
            if self.conns.len() >= self.max_connections || self.draining.is_some() {
                self.pause_accepting();
                return;
            }
            match self.listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let peer = peer_credentials(&stream);
                    let token = self.next_token;
                    self.next_token += 1;
                    if self
                        .poller
                        .add(stream.as_raw_fd(), token, Interest::READABLE)
                        .is_err()
                    {
                        continue;
                    }
                    self.conns.insert(token, Conn::new(stream, peer));
                    self.shared
                        .active
                        .store(self.conns.len(), Ordering::Relaxed);
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // Persistent accept failure (e.g. EMFILE under a low fd
                // rlimit, below the connection cap): the level-triggered
                // listener readiness would fire on every wait while the
                // backlog is non-empty, spinning the loop hot. Deregister
                // and retry after a short backoff.
                Err(_) => {
                    self.pause_accepting();
                    self.accept_backoff_until = Some(Instant::now() + Duration::from_millis(10));
                    return;
                }
            }
        }
    }

    fn pause_accepting(&mut self) {
        if self.accepting {
            let _ = self.poller.delete(self.listener.as_raw_fd());
            self.accepting = false;
        }
    }

    fn resume_accepting(&mut self) {
        if !self.accepting
            && self.draining.is_none()
            && self.accept_backoff_until.is_none()
            && self.conns.len() < self.max_connections
            && self
                .poller
                .add(
                    self.listener.as_raw_fd(),
                    TOKEN_LISTENER,
                    Interest::READABLE,
                )
                .is_ok()
        {
            self.accepting = true;
        }
    }

    // -- Connection I/O -----------------------------------------------------

    fn conn_ready(&mut self, token: u64, event: Event) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        if event.error {
            // EPOLLERR / EPOLLHUP: the peer is gone in both directions, so
            // no queued response is deliverable. (A graceful half-close
            // surfaces as readable + EOF instead and drains normally.)
            // Dropping now also keeps the unmaskable level-triggered HUP
            // from spinning the loop while a dead peer's request finishes.
            conn.dead = true;
        } else {
            if event.writable {
                flush_out(conn);
            }
            if event.readable {
                read_ready(conn);
            }
        }
        self.after_io(token);
    }

    /// Post-I/O bookkeeping for one connection: dispatch newly parsed
    /// requests, update poller interest, reap finished/broken connections.
    fn after_io(&mut self, token: u64) {
        let Some(conn) = self.conns.get_mut(&token) else {
            return;
        };
        // Dispatch the next queued request unless we are draining (drain
        // finishes in-flight work only).
        if self.draining.is_none() {
            dispatch_next(&self.shared, token, conn);
        }
        let drop_now = conn.dead || (conn.peer_closed && conn.idle());
        if drop_now {
            self.remove_conn(token);
            return;
        }
        // Re-register interest if it changed.
        let want_read = conn.wants_read() && self.draining.is_none();
        let want_write = conn.out_len() > 0;
        if want_read != conn.reg_readable || want_write != conn.reg_writable {
            let interest = Interest {
                readable: want_read,
                writable: want_write,
            };
            if self
                .poller
                .modify(conn.stream.as_raw_fd(), token, interest)
                .is_err()
            {
                self.remove_conn(token);
                return;
            }
            let conn = self.conns.get_mut(&token).expect("just checked");
            conn.reg_readable = want_read;
            conn.reg_writable = want_write;
        }
    }

    fn remove_conn(&mut self, token: u64) {
        if let Some(conn) = self.conns.remove(&token) {
            let _ = self.poller.delete(conn.stream.as_raw_fd());
        }
        self.shared
            .active
            .store(self.conns.len(), Ordering::Relaxed);
        // A closed connection freed an fd: an EMFILE backoff is worth
        // cutting short.
        self.accept_backoff_until = None;
        self.resume_accepting();
    }

    // -- Worker completions -------------------------------------------------

    fn process_completions(&mut self) {
        let completed: Vec<(u64, Vec<u8>)> =
            std::mem::take(&mut *self.shared.completions.lock().unwrap());
        for (token, bytes) in completed {
            let Some(conn) = self.conns.get_mut(&token) else {
                // The connection died while its request executed; the
                // response has no reader. The mutation itself is fine —
                // exactly as if the client crashed after the daemon applied
                // its request.
                continue;
            };
            conn.in_flight = false;
            if bytes.is_empty() {
                conn.dead = true;
            } else {
                // Compact the drained prefix before growing the buffer.
                if conn.out_pos > 0 {
                    conn.out.drain(..conn.out_pos);
                    conn.out_pos = 0;
                }
                conn.out.extend_from_slice(&bytes);
                flush_out(conn);
            }
            self.after_io(token);
        }
    }

    // -- Shutdown -----------------------------------------------------------

    fn begin_drain(&mut self) {
        self.draining = Some(Instant::now() + SHUTDOWN_GRACE);
        self.pause_accepting();
        // Idle connections go immediately; busy ones get the grace period
        // to finish their in-flight request and flush.
        let idle: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.idle() || c.dead)
            .map(|(t, _)| *t)
            .collect();
        for token in idle {
            self.remove_conn(token);
        }
    }

    fn drain_finished(&mut self) -> bool {
        let deadline = self.draining.expect("only called while draining");
        let done: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.dead || (!c.in_flight && c.out_len() == 0))
            .map(|(t, _)| *t)
            .collect();
        for token in done {
            self.remove_conn(token);
        }
        self.conns.is_empty() || Instant::now() >= deadline
    }
}

/// Consumes every byte the socket currently has, parsing complete frames
/// into the pending queue. Stops early when backpressure bounds trip.
fn read_ready(conn: &mut Conn) {
    let mut buf = [0u8; READ_CHUNK];
    while conn.wants_read() {
        match conn.stream.read(&mut buf) {
            Ok(0) => {
                conn.peer_closed = true;
                break;
            }
            Ok(n) => {
                conn.decoder.feed(&buf[..n]);
                if !parse_frames(conn) {
                    return;
                }
                if n < buf.len() {
                    // Short read: the socket is drained (saves the final
                    // WouldBlock round trip).
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
    parse_frames(conn);
}

/// Pulls complete frames out of the decoder. Returns `false` when the
/// connection turned dead (framing error).
fn parse_frames(conn: &mut Conn) -> bool {
    loop {
        match conn.decoder.next_frame::<Request>() {
            Ok(Some(req)) => {
                if conn.creds.is_none() {
                    // First frame fixes the connection's credentials:
                    // kernel-verified peer credentials win; otherwise an
                    // explicit Hello is trusted (tests); otherwise fall
                    // back to this process's identity.
                    conn.creds = Some(match (conn.peer, &req) {
                        (Some(peer), _) => peer,
                        (None, Request::Hello { creds }) => *creds,
                        (None, _) => Credentials::current_process(),
                    });
                }
                conn.pending.push_back(req);
            }
            Ok(None) => return true,
            Err(_) => {
                conn.dead = true;
                return false;
            }
        }
    }
}

/// Sends the next queued request to the worker pool (one in flight per
/// connection keeps responses in request order).
fn dispatch_next(shared: &Arc<Shared>, token: u64, conn: &mut Conn) {
    if conn.in_flight || conn.dead {
        return;
    }
    let Some(req) = conn.pending.pop_front() else {
        return;
    };
    let creds = conn.creds.unwrap_or_else(Credentials::current_process);
    conn.in_flight = true;
    shared.queue.push(WorkItem {
        conn: token,
        creds,
        req,
    });
}

/// Writes as much of the output buffer as the socket accepts; the rest
/// stays parked until the next writable event.
fn flush_out(conn: &mut Conn) {
    while conn.out_pos < conn.out.len() {
        match conn.stream.write(&conn.out[conn.out_pos..]) {
            Ok(0) => {
                conn.dead = true;
                return;
            }
            Ok(n) => conn.out_pos += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                return;
            }
        }
    }
    conn.out.clear();
    conn.out_pos = 0;
}
