//! On-PM puddle layout shared by the daemon and the client library.
//!
//! A puddle is a contiguous, page-aligned region of persistent memory with
//! two parts (§4.3): a *header* holding the puddle's identity and allocator
//! metadata, and a *heap* holding application objects. The daemon only ever
//! interprets the header plus — for log and log-space puddles — the
//! structures that `puddles-logfmt` defines in the heap; the object
//! allocator that manages data-puddle heaps lives in the client library.

use puddles_proto::PuddleId;

/// Magic number identifying an initialized puddle header.
pub const PUDDLE_MAGIC: u64 = 0x5055_4444_4c45_2131; // "PUDDLE!1"

/// Fixed size of the puddle header region.
///
/// The paper configures 4 KiB of header per 2 MiB of heap; we reserve a
/// fixed 4 KiB identity header here and place the (size-dependent) allocator
/// metadata table at the start of the heap region, which keeps the daemon's
/// view of the layout independent of the heap size.
pub const PUDDLE_HEADER_SIZE: usize = 4096;

/// On-PM header at offset 0 of every puddle.
#[derive(Debug, Clone, Copy)]
#[repr(C)]
pub struct PuddleHeader {
    /// Must equal [`PUDDLE_MAGIC`] once initialized.
    pub magic: u64,
    /// Low 64 bits of the puddle UUID.
    pub uuid_lo: u64,
    /// High 64 bits of the puddle UUID.
    pub uuid_hi: u64,
    /// Total puddle size in bytes (header + heap).
    pub size: u64,
    /// Offset of the heap region from the start of the puddle.
    pub heap_off: u64,
    /// The virtual address this puddle's pointers are currently written for.
    ///
    /// When the puddle is mapped at a different address (import, global-space
    /// relocation), every internal pointer is rewritten and this field is
    /// updated to the new address.
    pub current_addr: u64,
    /// Offset (from the puddle base) of the root object, or 0 if none.
    pub root_obj_off: u64,
    /// Flag bits (reserved; must be zero).
    pub flags: u64,
}

impl PuddleHeader {
    /// Builds a fresh header for a puddle of `size` bytes mapped at
    /// `current_addr`.
    pub fn new(id: PuddleId, size: u64, current_addr: u64) -> Self {
        PuddleHeader {
            magic: PUDDLE_MAGIC,
            uuid_lo: id.0 as u64,
            uuid_hi: (id.0 >> 64) as u64,
            size,
            heap_off: PUDDLE_HEADER_SIZE as u64,
            current_addr,
            root_obj_off: 0,
            flags: 0,
        }
    }

    /// Returns the puddle's UUID.
    pub fn id(&self) -> PuddleId {
        PuddleId((self.uuid_hi as u128) << 64 | self.uuid_lo as u128)
    }

    /// Returns `true` if the header looks initialized.
    pub fn is_valid(&self) -> bool {
        self.magic == PUDDLE_MAGIC && self.heap_off as usize >= std::mem::size_of::<Self>()
    }

    /// Reads a header from the start of a mapped puddle.
    ///
    /// # Safety
    ///
    /// `base` must point to at least [`PUDDLE_HEADER_SIZE`] readable bytes.
    pub unsafe fn read_from(base: *const u8) -> Self {
        // SAFETY: forwarded from the caller; `PuddleHeader` is plain data.
        unsafe { std::ptr::read_unaligned(base as *const PuddleHeader) }
    }

    /// Writes this header to the start of a mapped puddle and persists it.
    ///
    /// # Safety
    ///
    /// `base` must point to at least [`PUDDLE_HEADER_SIZE`] writable bytes.
    pub unsafe fn write_to(&self, base: *mut u8) {
        // SAFETY: forwarded from the caller.
        unsafe { std::ptr::write_unaligned(base as *mut PuddleHeader, *self) };
        puddles_pmem::persist::persist(base, std::mem::size_of::<Self>());
    }
}

/// Offset (from the puddle base) at which log / log-space structures start
/// inside log puddles: immediately after the header.
pub const LOG_REGION_OFFSET: usize = PUDDLE_HEADER_SIZE;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrips_through_memory() {
        let id = PuddleId(0xfeed_face_cafe_f00d_1234_5678_9abc_def0u128);
        let hdr = PuddleHeader::new(id, 1 << 21, 0x5000_0000_0000);
        let mut buf = vec![0u8; PUDDLE_HEADER_SIZE];
        // SAFETY: `buf` is large enough and exclusively owned.
        unsafe {
            hdr.write_to(buf.as_mut_ptr());
            let back = PuddleHeader::read_from(buf.as_ptr());
            assert!(back.is_valid());
            assert_eq!(back.id(), id);
            assert_eq!(back.size, 1 << 21);
            assert_eq!(back.current_addr, 0x5000_0000_0000);
        }
    }

    #[test]
    fn zeroed_header_is_invalid() {
        let buf = vec![0u8; PUDDLE_HEADER_SIZE];
        // SAFETY: `buf` is large enough.
        let hdr = unsafe { PuddleHeader::read_from(buf.as_ptr()) };
        assert!(!hdr.is_valid());
    }

    #[test]
    fn header_fits_in_reserved_region() {
        assert!(std::mem::size_of::<PuddleHeader>() <= PUDDLE_HEADER_SIZE);
    }
}
