//! The machine-wide global puddle space: reservation plus mapping tracker.
//!
//! The daemon owns one [`GlobalSpace`] per "machine" (one per daemon
//! instance). In-process clients share it via `Arc`; out-of-process clients
//! reserve their own range at the base the daemon reports in `Welcome`.
//! Mappings are reference counted so the daemon's recovery pass and the
//! client library can map the same puddle without tripping over each other.

use parking_lot::Mutex;
use puddles_pmem::space::VaReservation;
use puddles_pmem::{PmError, Result, PAGE_SIZE};
use std::collections::HashMap;
use std::fs::File;

/// State of one mapped puddle inside the global space.
#[derive(Debug)]
struct Mapping {
    len: usize,
    writable: bool,
    refcount: usize,
}

/// The reserved global puddle space plus the set of currently mapped
/// puddles.
#[derive(Debug)]
pub struct GlobalSpace {
    reservation: VaReservation,
    mappings: Mutex<HashMap<usize, Mapping>>,
}

impl GlobalSpace {
    /// Reserves a global space of `size` bytes, preferably at `base_hint`.
    pub fn reserve(base_hint: Option<usize>, size: usize) -> Result<Self> {
        let reservation = VaReservation::reserve(base_hint, size)?;
        Ok(GlobalSpace {
            reservation,
            mappings: Mutex::new(HashMap::new()),
        })
    }

    /// Returns the base virtual address of the space.
    pub fn base(&self) -> usize {
        self.reservation.base()
    }

    /// Returns the size of the space in bytes.
    pub fn size(&self) -> usize {
        self.reservation.len()
    }

    /// Translates an offset within the space to a virtual address.
    pub fn addr_of(&self, offset: usize) -> usize {
        self.base() + offset
    }

    /// Translates a virtual address inside the space back to an offset.
    pub fn offset_of(&self, addr: usize) -> Option<usize> {
        if addr >= self.base() && addr < self.base() + self.size() {
            Some(addr - self.base())
        } else {
            None
        }
    }

    /// Returns `true` if the puddle at `offset` is currently mapped.
    pub fn is_mapped(&self, offset: usize) -> bool {
        self.mappings.lock().contains_key(&offset)
    }

    /// Maps `len` bytes of `file` at `offset` within the space.
    ///
    /// If the puddle is already mapped the reference count is bumped; a
    /// read-only mapping is upgraded to read-write when `writable` is
    /// requested. Returns the puddle's virtual address.
    pub fn map_puddle(
        &self,
        file: &File,
        offset: usize,
        len: usize,
        writable: bool,
    ) -> Result<usize> {
        if !offset.is_multiple_of(PAGE_SIZE) || !len.is_multiple_of(PAGE_SIZE) || len == 0 {
            return Err(PmError::Misaligned {
                value: offset | len,
                align: PAGE_SIZE,
            });
        }
        let mut mappings = self.mappings.lock();
        if let Some(m) = mappings.get_mut(&offset) {
            if m.len != len {
                return Err(PmError::Corruption(format!(
                    "puddle at offset {offset:#x} already mapped with length {:#x}, requested {len:#x}",
                    m.len
                )));
            }
            if writable && !m.writable {
                self.reservation.map_file_fixed(offset, file, len, true)?;
                m.writable = true;
            }
            m.refcount += 1;
            return Ok(self.addr_of(offset));
        }
        let addr = self
            .reservation
            .map_file_fixed(offset, file, len, writable)?;
        mappings.insert(
            offset,
            Mapping {
                len,
                writable,
                refcount: 1,
            },
        );
        Ok(addr)
    }

    /// Releases one reference to the puddle mapped at `offset`, unmapping it
    /// when the count reaches zero.
    ///
    /// # Safety
    ///
    /// When this drops the last reference, no live references or raw-pointer
    /// accesses into the puddle's range may remain.
    pub unsafe fn unmap_puddle(&self, offset: usize) -> Result<()> {
        let mut mappings = self.mappings.lock();
        let Some(m) = mappings.get_mut(&offset) else {
            return Err(PmError::OutOfRange { offset, len: 0 });
        };
        m.refcount -= 1;
        if m.refcount == 0 {
            let len = m.len;
            mappings.remove(&offset);
            // SAFETY: last reference gone per the caller contract.
            unsafe { self.reservation.unmap(offset, len)? };
        }
        Ok(())
    }

    /// Returns the number of distinct puddles currently mapped.
    pub fn mapped_count(&self) -> usize {
        self.mappings.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use puddles_pmem::pmdir::PmDir;

    fn setup() -> (tempfile::TempDir, PmDir, GlobalSpace) {
        let tmp = tempfile::tempdir().unwrap();
        let pm = PmDir::open(tmp.path()).unwrap();
        let space = GlobalSpace::reserve(None, 1 << 26).unwrap();
        (tmp, pm, space)
    }

    #[test]
    fn map_refcount_and_unmap() {
        let (_tmp, pm, space) = setup();
        pm.create_puddle_file("p", 4 * PAGE_SIZE).unwrap();
        let (file, _) = pm.open_puddle_file("p", 4 * PAGE_SIZE).unwrap();
        let addr1 = space.map_puddle(&file, 0, 4 * PAGE_SIZE, true).unwrap();
        let addr2 = space.map_puddle(&file, 0, 4 * PAGE_SIZE, false).unwrap();
        assert_eq!(addr1, addr2);
        assert_eq!(space.mapped_count(), 1);
        assert!(space.is_mapped(0));
        // SAFETY: no outstanding references into the mapping.
        unsafe {
            space.unmap_puddle(0).unwrap();
            assert!(space.is_mapped(0));
            space.unmap_puddle(0).unwrap();
        }
        assert!(!space.is_mapped(0));
        assert!(unsafe { space.unmap_puddle(0) }.is_err());
    }

    #[test]
    fn read_only_then_write_upgrade() {
        let (_tmp, pm, space) = setup();
        pm.create_puddle_file("p", PAGE_SIZE).unwrap();
        let (file, _) = pm.open_puddle_file("p", PAGE_SIZE).unwrap();
        let addr = space
            .map_puddle(&file, PAGE_SIZE, PAGE_SIZE, false)
            .unwrap();
        // Upgrade to writable on second map.
        let addr2 = space.map_puddle(&file, PAGE_SIZE, PAGE_SIZE, true).unwrap();
        assert_eq!(addr, addr2);
        // SAFETY: mapping is now writable and exclusively ours.
        unsafe { *(addr as *mut u64) = 77 };
        // SAFETY: drop both references; no accesses remain.
        unsafe {
            space.unmap_puddle(PAGE_SIZE).unwrap();
            space.unmap_puddle(PAGE_SIZE).unwrap();
        }
    }

    #[test]
    fn offset_addr_translation() {
        let (_tmp, _pm, space) = setup();
        let base = space.base();
        assert_eq!(space.addr_of(0x2000), base + 0x2000);
        assert_eq!(space.offset_of(base + 0x2000), Some(0x2000));
        assert_eq!(space.offset_of(base - 1), None);
        assert_eq!(space.offset_of(base + space.size()), None);
    }

    #[test]
    fn misaligned_map_is_rejected() {
        let (_tmp, pm, space) = setup();
        pm.create_puddle_file("p", PAGE_SIZE).unwrap();
        let (file, _) = pm.open_puddle_file("p", PAGE_SIZE).unwrap();
        assert!(space.map_puddle(&file, 5, PAGE_SIZE, true).is_err());
        assert!(space.map_puddle(&file, 0, 100, true).is_err());
    }
}
