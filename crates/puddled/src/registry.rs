//! The daemon's persistent metadata: puddles, pools, pointer maps, log
//! spaces, and global-space address allocation.
//!
//! The paper stores this metadata in a persistent hash map owned by the
//! daemon (§4.2); we store it as an atomically replaced JSON document in the
//! PM directory (`meta/registry.json`), which gives the same crash safety
//! (the document is either the old or the new version, never torn) without
//! needing a self-hosted persistent allocator inside the daemon.

use puddles_pmem::pmdir::PmDir;
use puddles_pmem::util::align_up;
use puddles_pmem::{PmError, Result, PAGE_SIZE};
use puddles_proto::{PoolInfo, PtrMapDecl, PuddleId, PuddlePurpose, Translation};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Persistent record of one puddle.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct PuddleRecord {
    /// The puddle's UUID.
    pub id: PuddleId,
    /// Total size in bytes.
    pub size: u64,
    /// Offset of the puddle within the global puddle space.
    pub offset: u64,
    /// Name of the backing file inside the PM directory.
    pub file: String,
    /// What the puddle is used for.
    pub purpose: PuddlePurpose,
    /// Owning user id.
    pub owner_uid: u32,
    /// Owning group id.
    pub owner_gid: u32,
    /// UNIX-like permission bits.
    pub mode: u32,
    /// The pool this puddle belongs to, if any.
    pub pool: Option<String>,
    /// `true` if the puddle's pointers must be rewritten before use.
    pub needs_rewrite: bool,
    /// Old→new translations to apply while rewriting (the persisted
    /// "frontier" state of §4.2).
    pub translations: Vec<Translation>,
}

/// Persistent record of one pool.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct PoolRecord {
    /// Pool name.
    pub name: String,
    /// Root puddle UUID.
    pub root: PuddleId,
    /// All puddles in the pool, root first.
    pub puddles: Vec<PuddleId>,
}

impl PoolRecord {
    /// Converts the record into the protocol representation.
    pub fn to_info(&self) -> PoolInfo {
        PoolInfo {
            name: self.name.clone(),
            root_puddle: self.root,
            puddles: self.puddles.clone(),
        }
    }
}

/// Persistent record of a registered log space.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct LogSpaceRecord {
    /// The log-space puddle.
    pub puddle: PuddleId,
    /// Credentials of the registering client; recovery replays its logs with
    /// exactly this client's permissions.
    pub owner_uid: u32,
    /// Group id of the registering client.
    pub owner_gid: u32,
    /// Set when recovery found the log targeting unwritable memory; such
    /// logs are never replayed again (§4.6 "Recovery").
    pub invalid: bool,
}

/// The daemon's complete persistent state.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct RegistryData {
    /// Base address of the global space when this registry was last saved.
    pub space_base: u64,
    /// Size of the global space.
    pub space_size: u64,
    /// Bump pointer for address allocation (offset within the space).
    pub next_offset: u64,
    /// Freed `[offset, len)` ranges available for reuse.
    pub free_list: Vec<(u64, u64)>,
    /// Puddles keyed by UUID (hex).
    pub puddles: BTreeMap<String, PuddleRecord>,
    /// Pools keyed by name.
    pub pools: BTreeMap<String, PoolRecord>,
    /// Pointer maps keyed by decimal type id.
    pub ptr_maps: BTreeMap<String, PtrMapDecl>,
    /// Registered log spaces.
    pub log_spaces: Vec<LogSpaceRecord>,
    /// Monotonic counter used to derive fresh UUIDs.
    pub next_seq: u64,
}

/// The registry plus its persistence handle.
#[derive(Debug)]
pub struct Registry {
    data: RegistryData,
    pmdir: PmDir,
}

/// Name of the registry document inside the PM directory.
const REGISTRY_FILE: &str = "registry.json";

impl Registry {
    /// Loads the registry from `pmdir`, or creates a fresh one.
    pub fn load_or_create(pmdir: &PmDir, space_base: u64, space_size: u64) -> Result<Self> {
        let data = match pmdir.read_meta(REGISTRY_FILE)? {
            Some(bytes) => serde_json::from_slice::<RegistryData>(&bytes)
                .map_err(|e| PmError::Corruption(format!("registry parse error: {e}")))?,
            None => RegistryData {
                space_base,
                space_size,
                next_offset: PAGE_SIZE as u64,
                ..RegistryData::default()
            },
        };
        let mut reg = Registry {
            data,
            pmdir: pmdir.clone(),
        };
        if reg.data.space_size == 0 {
            reg.data.space_size = space_size;
        }
        reg.save()?;
        Ok(reg)
    }

    /// Persists the registry atomically.
    pub fn save(&self) -> Result<()> {
        let bytes = serde_json::to_vec_pretty(&self.data)
            .map_err(|e| PmError::Corruption(format!("registry encode error: {e}")))?;
        self.pmdir.write_meta(REGISTRY_FILE, &bytes)
    }

    /// Read access to the raw data (tests and stats).
    pub fn data(&self) -> &RegistryData {
        &self.data
    }

    /// Records the global-space base for this run and returns the previous
    /// one (callers relocate every puddle if it moved).
    pub fn update_space_base(&mut self, new_base: u64) -> u64 {
        let old = self.data.space_base;
        self.data.space_base = new_base;
        old
    }

    /// Allocates a fresh UUID.
    pub fn fresh_id(&mut self) -> PuddleId {
        self.data.next_seq += 1;
        // Mix a per-daemon random salt with a sequence number so ids from
        // different daemon instances (different "machines") do not collide.
        let salt: u64 = rand::random();
        PuddleId(((salt as u128) << 64) | self.data.next_seq as u128)
    }

    /// Allocates `size` bytes of the global space, returning the offset.
    pub fn alloc_space(&mut self, size: u64) -> Result<u64> {
        let size = align_up(size as usize, PAGE_SIZE) as u64;
        // First fit from the free list.
        if let Some(pos) = self
            .data
            .free_list
            .iter()
            .position(|&(_, len)| len >= size)
        {
            let (off, len) = self.data.free_list[pos];
            if len == size {
                self.data.free_list.remove(pos);
            } else {
                self.data.free_list[pos] = (off + size, len - size);
            }
            return Ok(off);
        }
        let off = self.data.next_offset;
        if off + size > self.data.space_size {
            return Err(PmError::OutOfRange {
                offset: off as usize,
                len: size as usize,
            });
        }
        self.data.next_offset = off + size;
        Ok(off)
    }

    /// Returns `size` bytes at `offset` to the free list.
    pub fn free_space(&mut self, offset: u64, size: u64) {
        let size = align_up(size as usize, PAGE_SIZE) as u64;
        self.data.free_list.push((offset, size));
        // Coalesce adjacent ranges to keep the list short.
        self.data.free_list.sort_unstable();
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(self.data.free_list.len());
        for (off, len) in self.data.free_list.drain(..) {
            match merged.last_mut() {
                Some((moff, mlen)) if *moff + *mlen == off => *mlen += len,
                _ => merged.push((off, len)),
            }
        }
        self.data.free_list = merged;
    }

    /// Inserts a puddle record.
    pub fn insert_puddle(&mut self, record: PuddleRecord) {
        self.data.puddles.insert(record.id.to_hex(), record);
    }

    /// Looks up a puddle record.
    pub fn puddle(&self, id: PuddleId) -> Option<&PuddleRecord> {
        self.data.puddles.get(&id.to_hex())
    }

    /// Mutable lookup of a puddle record.
    pub fn puddle_mut(&mut self, id: PuddleId) -> Option<&mut PuddleRecord> {
        self.data.puddles.get_mut(&id.to_hex())
    }

    /// Removes a puddle record, returning it.
    pub fn remove_puddle(&mut self, id: PuddleId) -> Option<PuddleRecord> {
        self.data.puddles.remove(&id.to_hex())
    }

    /// Iterates over every puddle record.
    pub fn puddles(&self) -> impl Iterator<Item = &PuddleRecord> {
        self.data.puddles.values()
    }

    /// Inserts a pool record.
    pub fn insert_pool(&mut self, record: PoolRecord) {
        self.data.pools.insert(record.name.clone(), record);
    }

    /// Looks up a pool by name.
    pub fn pool(&self, name: &str) -> Option<&PoolRecord> {
        self.data.pools.get(name)
    }

    /// Mutable lookup of a pool.
    pub fn pool_mut(&mut self, name: &str) -> Option<&mut PoolRecord> {
        self.data.pools.get_mut(name)
    }

    /// Removes a pool record.
    pub fn remove_pool(&mut self, name: &str) -> Option<PoolRecord> {
        self.data.pools.remove(name)
    }

    /// Registers (or replaces) a pointer map.
    pub fn register_ptr_map(&mut self, decl: PtrMapDecl) {
        self.data.ptr_maps.insert(decl.type_id.to_string(), decl);
    }

    /// Returns every registered pointer map.
    pub fn ptr_maps(&self) -> Vec<PtrMapDecl> {
        self.data.ptr_maps.values().cloned().collect()
    }

    /// Registers a log space for a client, replacing an older registration
    /// of the same puddle.
    pub fn register_log_space(&mut self, record: LogSpaceRecord) {
        self.data
            .log_spaces
            .retain(|existing| existing.puddle != record.puddle);
        self.data.log_spaces.push(record);
    }

    /// Returns every registered log space.
    pub fn log_spaces(&self) -> &[LogSpaceRecord] {
        &self.data.log_spaces
    }

    /// Marks a log space invalid (its logs will never be replayed).
    pub fn invalidate_log_space(&mut self, puddle: PuddleId) {
        for ls in &mut self.data.log_spaces {
            if ls.puddle == puddle {
                ls.invalid = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn registry() -> (tempfile::TempDir, Registry) {
        let tmp = tempfile::tempdir().unwrap();
        let pm = PmDir::open(tmp.path()).unwrap();
        let reg = Registry::load_or_create(&pm, 0x5000_0000_0000, 1 << 30).unwrap();
        (tmp, reg)
    }

    #[test]
    fn allocation_is_page_aligned_and_disjoint() {
        let (_tmp, mut reg) = registry();
        let a = reg.alloc_space(100).unwrap();
        let b = reg.alloc_space(8192).unwrap();
        let c = reg.alloc_space(1).unwrap();
        assert_eq!(a % PAGE_SIZE as u64, 0);
        assert_eq!(b % PAGE_SIZE as u64, 0);
        assert!(b >= a + PAGE_SIZE as u64);
        assert!(c >= b + 8192);
    }

    #[test]
    fn freed_space_is_reused_and_coalesced() {
        let (_tmp, mut reg) = registry();
        let a = reg.alloc_space(PAGE_SIZE as u64).unwrap();
        let b = reg.alloc_space(PAGE_SIZE as u64).unwrap();
        reg.free_space(a, PAGE_SIZE as u64);
        reg.free_space(b, PAGE_SIZE as u64);
        assert_eq!(reg.data().free_list.len(), 1);
        assert_eq!(reg.data().free_list[0], (a, 2 * PAGE_SIZE as u64));
        let c = reg.alloc_space(2 * PAGE_SIZE as u64).unwrap();
        assert_eq!(c, a);
    }

    #[test]
    fn allocation_fails_when_space_is_exhausted() {
        let tmp = tempfile::tempdir().unwrap();
        let pm = PmDir::open(tmp.path()).unwrap();
        let mut reg = Registry::load_or_create(&pm, 0, (4 * PAGE_SIZE) as u64).unwrap();
        reg.alloc_space(2 * PAGE_SIZE as u64).unwrap();
        assert!(reg.alloc_space(2 * PAGE_SIZE as u64).is_err());
    }

    #[test]
    fn registry_persists_across_reloads() {
        let tmp = tempfile::tempdir().unwrap();
        let pm = PmDir::open(tmp.path()).unwrap();
        let id;
        {
            let mut reg = Registry::load_or_create(&pm, 7, 1 << 30).unwrap();
            id = reg.fresh_id();
            let off = reg.alloc_space(1 << 20).unwrap();
            reg.insert_puddle(PuddleRecord {
                id,
                size: 1 << 20,
                offset: off,
                file: id.to_hex(),
                purpose: PuddlePurpose::Data,
                owner_uid: 1,
                owner_gid: 2,
                mode: 0o600,
                pool: Some("p".into()),
                needs_rewrite: false,
                translations: vec![],
            });
            reg.insert_pool(PoolRecord {
                name: "p".into(),
                root: id,
                puddles: vec![id],
            });
            reg.save().unwrap();
        }
        let reg = Registry::load_or_create(&pm, 7, 1 << 30).unwrap();
        assert!(reg.puddle(id).is_some());
        assert_eq!(reg.pool("p").unwrap().root, id);
        assert_eq!(reg.data().space_base, 7);
    }

    #[test]
    fn fresh_ids_are_unique() {
        let (_tmp, mut reg) = registry();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            assert!(seen.insert(reg.fresh_id()));
        }
    }

    #[test]
    fn log_space_registration_replaces_duplicates() {
        let (_tmp, mut reg) = registry();
        let id = reg.fresh_id();
        reg.register_log_space(LogSpaceRecord {
            puddle: id,
            owner_uid: 1,
            owner_gid: 1,
            invalid: false,
        });
        reg.register_log_space(LogSpaceRecord {
            puddle: id,
            owner_uid: 2,
            owner_gid: 2,
            invalid: false,
        });
        assert_eq!(reg.log_spaces().len(), 1);
        assert_eq!(reg.log_spaces()[0].owner_uid, 2);
        reg.invalidate_log_space(id);
        assert!(reg.log_spaces()[0].invalid);
    }
}
