//! The daemon's persistent metadata: puddles, pools, pointer maps, log
//! spaces, and global-space address allocation.
//!
//! The paper stores this metadata in a persistent hash map owned by the
//! daemon so each mutation persists incrementally (§4.2). We reproduce that
//! cost profile with a **checkpoint + WAL** pair in the PM directory:
//!
//! * `meta/registry.json` — the checkpoint: a complete JSON snapshot,
//!   atomically replaced (write-temp + rename, never torn);
//! * `meta/registry.wal` — the append-only metadata WAL ([`crate::wal`]):
//!   every mutation appends one checksummed [`RegistryOp`] record and makes
//!   it durable with a *group commit* (one fsync covers every concurrently
//!   enqueued record), so steady-state persistence is O(record), not
//!   O(registry).
//!
//! When the WAL passes a byte threshold the registry writes a fresh
//! checkpoint and truncates the WAL ([`Registry::checkpoint`]). Loading
//! reverses the pipeline: read the checkpoint, replay the WAL tail
//! (skipping records the checkpoint's sequence floor already covers,
//! tolerating a torn final record), then run [`reconcile`].
//!
//! # Concurrency
//!
//! The registry is internally sharded so concurrent clients contend only on
//! the tables they actually touch:
//!
//! * [`puddles`](Registry::puddle) — `RwLock`, read-mostly (`GetPuddle`,
//!   `GetRelocation`/translation lookups run under a read lock and in
//!   parallel);
//! * pools — `RwLock`, separate from puddles so pool opens don't block
//!   puddle lookups;
//! * pointer maps and log spaces — their own `RwLock`s;
//! * the global-space allocator — [`crate::alloc::SpaceAlloc`], segregated
//!   free lists with a sharded front-end and **lazy coalescing**: alloc and
//!   free are O(1), and the deferred merge pass runs on the background
//!   scheduler past a free-extent threshold (forced inline past the hard
//!   ceiling), mirroring the WAL checkpoint pattern.
//!
//! Cross-table operations (a puddle joining a pool, a pool drop) take the
//! locks they need in a fixed order — **pools → puddles → ptr_maps →
//! log_spaces → space** — which makes deadlock impossible; every multi-lock
//! method in this file follows that order. Mutators enqueue their WAL
//! records *while holding* the shard lock that serializes the mutation
//! (the WAL's internal lock is a leaf), so conflicting records land in the
//! log in application order; the fsync wait happens after the shard locks
//! are released. Checkpoints snapshot the shards under short read locks
//! while holding a dedicated checkpoint lock, so concurrent checkpoints
//! serialize but readers are never blocked for the I/O.

use crate::alloc::{AllocStats, CoalesceKind, SpaceAlloc, COALESCE_HARD_FACTOR};
use crate::background::Background;
use crate::wal::{self, RegistryOp, Wal, WalHandle};
use parking_lot::{Mutex, MutexGuard, RwLock};
use puddles_pmem::failpoint::{self, names};
use puddles_pmem::obs::TraceEventKind;
use puddles_pmem::pmdir::PmDir;
use puddles_pmem::util::align_up;
use puddles_pmem::{PmError, Result, PAGE_SIZE};
use puddles_proto::{PoolInfo, PtrMapDecl, PuddleId, PuddlePurpose, Translation};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Weak};

/// Persistent record of one puddle.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct PuddleRecord {
    /// The puddle's UUID.
    pub id: PuddleId,
    /// Total size in bytes.
    pub size: u64,
    /// Offset of the puddle within the global puddle space.
    pub offset: u64,
    /// Name of the backing file inside the PM directory.
    pub file: String,
    /// What the puddle is used for.
    pub purpose: PuddlePurpose,
    /// Owning user id.
    pub owner_uid: u32,
    /// Owning group id.
    pub owner_gid: u32,
    /// UNIX-like permission bits.
    pub mode: u32,
    /// The pool this puddle belongs to, if any.
    pub pool: Option<String>,
    /// `true` if the puddle's pointers must be rewritten before use.
    pub needs_rewrite: bool,
    /// Old→new translations to apply while rewriting (the persisted
    /// "frontier" state of §4.2).
    pub translations: Vec<Translation>,
}

/// Persistent record of one pool.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct PoolRecord {
    /// Pool name.
    pub name: String,
    /// Root puddle UUID.
    pub root: PuddleId,
    /// All puddles in the pool, root first.
    pub puddles: Vec<PuddleId>,
}

impl PoolRecord {
    /// Converts the record into the protocol representation.
    pub fn to_info(&self) -> PoolInfo {
        PoolInfo {
            name: self.name.clone(),
            root_puddle: self.root,
            puddles: self.puddles.clone(),
        }
    }
}

/// Persistent record of a registered log space.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct LogSpaceRecord {
    /// The log-space puddle.
    pub puddle: PuddleId,
    /// Credentials of the registering client; recovery replays its logs with
    /// exactly this client's permissions.
    pub owner_uid: u32,
    /// Group id of the registering client.
    pub owner_gid: u32,
    /// Set when recovery found the log targeting unwritable memory; such
    /// logs are never replayed again (§4.6 "Recovery").
    pub invalid: bool,
}

/// The daemon's complete persistent state (the on-disk schema).
#[derive(Debug, Clone, Serialize, Deserialize, Default, PartialEq)]
pub struct RegistryData {
    /// Base address of the global space when this registry was last saved.
    pub space_base: u64,
    /// Size of the global space.
    pub space_size: u64,
    /// Bump pointer for address allocation (offset within the space).
    pub next_offset: u64,
    /// Freed `[offset, len)` ranges available for reuse.
    pub free_list: Vec<(u64, u64)>,
    /// Puddles keyed by UUID (hex).
    pub puddles: BTreeMap<String, PuddleRecord>,
    /// Pools keyed by name.
    pub pools: BTreeMap<String, PoolRecord>,
    /// Pointer maps keyed by decimal type id.
    pub ptr_maps: BTreeMap<String, PtrMapDecl>,
    /// Registered log spaces.
    pub log_spaces: Vec<LogSpaceRecord>,
    /// Monotonic counter used to derive fresh UUIDs.
    pub next_seq: u64,
    /// WAL record sequence this checkpoint covers: replay skips records
    /// with a lower sequence (they are already reflected here). `None` in
    /// documents written before the WAL existed (treated as 0).
    pub wal_seq: Option<u64>,
}

/// Failure modes of cross-table registry operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryOpError {
    /// The named pool does not exist.
    NoSuchPool(String),
}

/// The sharded registry plus its persistence handle. All methods take
/// `&self`; shards are locked internally (see the module docs for the lock
/// order).
#[derive(Debug)]
pub struct Registry {
    pmdir: PmDir,
    /// The metadata WAL every mutator appends to.
    wal: WalHandle,
    // Shards, declared in lock order. The puddle table is keyed by
    // `PuddleId` directly — hexifying the id (a fresh 32-char String) on
    // every insert/get/remove made the hot lookup path allocate; hex keys
    // now exist only in file names and the JSON snapshot schema.
    pools: RwLock<BTreeMap<String, PoolRecord>>,
    puddles: RwLock<BTreeMap<PuddleId, PuddleRecord>>,
    ptr_maps: RwLock<BTreeMap<String, PtrMapDecl>>,
    log_spaces: RwLock<Vec<LogSpaceRecord>>,
    alloc: SpaceAlloc,
    next_seq: AtomicU64,
    /// Serializes checkpoint snapshot + write-out + WAL truncation.
    ckpt_lock: Mutex<()>,
    /// Background executor for threshold-triggered checkpoints (the daemon
    /// attaches one via [`Registry::enable_background_checkpoints`]; bare
    /// registries — tests, benches — checkpoint inline as before). The
    /// `Weak` is this registry's own handle, captured by submitted tasks.
    background: Mutex<Option<(Background, Weak<Registry>)>>,
    /// `true` while a background checkpoint is queued or running; dedups
    /// submissions so a burst of commits enqueues one checkpoint, not N.
    ckpt_pending: AtomicBool,
    /// Checkpoints completed by the background scheduler.
    background_checkpoints: AtomicU64,
    /// Checkpoints forced inline on the request path because the WAL passed
    /// the hard ceiling (the background scheduler fell behind).
    forced_inline_checkpoints: AtomicU64,
    /// `true` while a lazy coalesce pass is queued or running on the
    /// background scheduler; dedups submissions exactly like
    /// [`Registry::ckpt_pending`] does for checkpoints.
    coalesce_pending: AtomicBool,
}

/// Name of the registry document inside the PM directory.
const REGISTRY_FILE: &str = "registry.json";

/// Repairs a loaded registry document in place.
///
/// Saves snapshot the shards under sequentially acquired locks, so a save
/// that raced a multi-table operation (or a crash between an operation and
/// its save) can persist a document that is torn *between* tables: a pool
/// listing a member whose record is gone, a puddle naming a pool that was
/// never completed, or allocator state that leaks a freed extent. Each table
/// is internally consistent, so the cross-table state is re-derived here at
/// load: membership is reconciled against the puddle table (the source of
/// truth) and the space allocator is rebuilt from the live extents.
fn reconcile(data: &mut RegistryData) {
    let live_ids: std::collections::BTreeSet<PuddleId> =
        data.puddles.values().map(|p| p.id).collect();

    // Drop member ids whose puddle record is gone.
    for pool in data.pools.values_mut() {
        pool.puddles.retain(|id| live_ids.contains(id));
    }
    // Drop pools whose root puddle never materialized (e.g. a crash between
    // the name claim and the root creation), detaching surviving members.
    let dead_pools: Vec<String> = data
        .pools
        .values()
        .filter(|pool| !live_ids.contains(&pool.root))
        .map(|pool| pool.name.clone())
        .collect();
    for name in &dead_pools {
        data.pools.remove(name);
    }
    // Re-derive each puddle's membership: a puddle naming a missing pool is
    // detached; one missing from its (existing) pool's list is re-attached.
    for record in data.puddles.values_mut() {
        if let Some(pool_name) = record.pool.clone() {
            match data.pools.get_mut(&pool_name) {
                None => record.pool = None,
                Some(pool) => {
                    if !pool.puddles.contains(&record.id) {
                        pool.puddles.push(record.id);
                    }
                }
            }
        }
    }
    // Rebuild the allocator from the live extents: the free list is exactly
    // the set of gaps, and the bump pointer the end of the last extent, so a
    // torn allocator snapshot can never leak space past a restart. This is
    // also the canonical form live checkpoints serialize
    // ([`crate::alloc::FrozenSpace::canonical`]), so replayed and live
    // snapshots stay bit-identical.
    let mut extents: Vec<(u64, u64)> = data
        .puddles
        .values()
        .map(|p| (p.offset, align_up(p.size as usize, PAGE_SIZE) as u64))
        .collect();
    extents.sort_unstable();
    let mut free_list = Vec::new();
    let mut cursor = PAGE_SIZE as u64;
    for (offset, len) in extents {
        if offset > cursor {
            free_list.push((cursor, offset - cursor));
        }
        cursor = cursor.max(offset + len);
    }
    data.free_list = free_list;
    data.next_offset = cursor;
}

impl Registry {
    /// Loads the registry from `pmdir` (opening its WAL internally), or
    /// creates a fresh one.
    pub fn load_or_create(pmdir: &PmDir, space_base: u64, space_size: u64) -> Result<Self> {
        let wal = Arc::new(Wal::open(pmdir)?);
        Self::load_or_create_with_wal(pmdir, wal, space_base, space_size)
    }

    /// Loads the registry using an externally opened WAL handle (the daemon
    /// threads one through so it can also report WAL stats): reads the
    /// checkpoint, replays the WAL tail over it, reconciles, and writes a
    /// fresh checkpoint (which truncates the WAL).
    pub fn load_or_create_with_wal(
        pmdir: &PmDir,
        wal: WalHandle,
        space_base: u64,
        space_size: u64,
    ) -> Result<Self> {
        let mut data = match pmdir.read_meta(REGISTRY_FILE)? {
            Some(bytes) => serde_json::from_slice::<RegistryData>(&bytes)
                .map_err(|e| PmError::Corruption(format!("registry parse error: {e}")))?,
            None => RegistryData {
                space_base,
                space_size,
                next_offset: PAGE_SIZE as u64,
                ..RegistryData::default()
            },
        };
        // Replay the WAL tail over the checkpoint. Records below the
        // checkpoint's sequence floor are already reflected in it (a crash
        // landed between the checkpoint rename and the WAL truncation);
        // skipping them keeps stale records from undoing newer state.
        let floor = data.wal_seq.unwrap_or(0);
        wal.ensure_seq_at_least(floor);
        for (seq, op) in wal.take_initial_replay() {
            if seq < floor {
                continue;
            }
            wal::apply_op(&mut data, &op);
        }
        reconcile(&mut data);
        if data.space_size == 0 {
            data.space_size = space_size;
        }
        // The reconciled free list seeds the segregated buckets; the JSON
        // schema keeps hex-string puddle keys (stable on-disk format), the
        // in-memory table is keyed by `PuddleId` directly.
        let puddles: BTreeMap<PuddleId, PuddleRecord> =
            data.puddles.into_values().map(|p| (p.id, p)).collect();
        let reg = Registry {
            pmdir: pmdir.clone(),
            wal,
            pools: RwLock::new(data.pools),
            puddles: RwLock::new(puddles),
            ptr_maps: RwLock::new(data.ptr_maps),
            log_spaces: RwLock::new(data.log_spaces),
            alloc: SpaceAlloc::new(
                data.space_base,
                data.space_size,
                data.next_offset,
                data.free_list,
            ),
            next_seq: AtomicU64::new(data.next_seq),
            ckpt_lock: Mutex::new(()),
            background: Mutex::new(None),
            ckpt_pending: AtomicBool::new(false),
            background_checkpoints: AtomicU64::new(0),
            forced_inline_checkpoints: AtomicU64::new(0),
            coalesce_pending: AtomicBool::new(false),
        };
        reg.checkpoint()?;
        Ok(reg)
    }

    /// Returns the registry's WAL handle (stats, tests).
    pub fn wal(&self) -> &WalHandle {
        &self.wal
    }

    /// Routes threshold-triggered checkpoints to `bg` instead of running
    /// them inline on whichever request trips the byte threshold. Tasks hold
    /// only a `Weak` back-reference, so the scheduler never keeps a dropped
    /// registry alive.
    pub fn enable_background_checkpoints(self: &Arc<Self>, bg: Background) {
        *self.background.lock() = Some((bg, Arc::downgrade(self)));
    }

    /// `(background, forced_inline)` checkpoint counters — how often the
    /// byte threshold was absorbed off the request path vs. paid inline
    /// because the WAL passed the hard ceiling.
    pub fn checkpoint_counters(&self) -> (u64, u64) {
        (
            self.background_checkpoints.load(Ordering::Relaxed),
            self.forced_inline_checkpoints.load(Ordering::Relaxed),
        )
    }

    /// Checkpoints if records have sat uncheckpointed longer than
    /// `max_age_ms` — the **age-based** trigger the daemon's timer wheel
    /// fires periodically, complementing the byte threshold: a quiet daemon
    /// whose trickle of mutations never reaches the threshold still gets
    /// its WAL folded away, bounding replay work at the next start. Returns
    /// `true` if a checkpoint ran (counted as a background checkpoint).
    pub fn checkpoint_if_stale(&self, max_age_ms: u64) -> Result<bool> {
        let stats = self.wal.stats();
        if stats.records == 0 || stats.checkpoint_age_ms < max_age_ms {
            return Ok(false);
        }
        self.checkpoint()?;
        self.background_checkpoints.fetch_add(1, Ordering::Relaxed);
        Ok(true)
    }

    /// Enqueues one WAL record, deferring any failure to the next
    /// [`Registry::commit`]. Mutators call this while holding the shard
    /// lock that serializes the mutation, so conflicting records are logged
    /// in application order; a failed submit poisons the WAL and every
    /// later commit reports it.
    fn wal_submit(&self, op: RegistryOp) {
        let _ = self.wal.submit(&op);
    }

    /// Makes every registry mutation performed so far durable: one group
    /// commit covers this thread's records and any enqueued concurrently.
    /// The service layer calls this once per client request, after the
    /// request's (possibly several) mutations. Also checkpoints when the
    /// WAL has outgrown its threshold.
    pub fn commit(&self) -> Result<()> {
        self.wal.flush()?;
        self.maybe_checkpoint()
    }

    /// Snapshot plus the WAL cut it corresponds to. All shard guards are
    /// held together while the cut is read (the allocator is frozen across
    /// all its shards), so every record below the cut is reflected in the
    /// snapshot and every record at or above it is not.
    ///
    /// The allocator serializes in **canonical** form — merged free list,
    /// frontier-adjacent extents (including shard slab remainders) absorbed
    /// into the bump pointer — which is exactly what [`reconcile`] rebuilds,
    /// so a checkpoint and a post-crash replay are bit-identical.
    fn snapshot_with_cut(&self) -> (RegistryData, u64) {
        let pools_guard = self.pools.read();
        let puddles_guard = self.puddles.read();
        let ptr_maps_guard = self.ptr_maps.read();
        let log_spaces_guard = self.log_spaces.read();
        let frozen = self.alloc.freeze();
        let (cut_pos, cut_seq) = self.wal.position();
        let pools = pools_guard.clone();
        // The JSON schema keys puddles by zero-padded hex, which sorts
        // identically to the numeric id — the snapshot is byte-stable.
        let puddles = puddles_guard
            .values()
            .map(|p| (p.id.to_hex(), p.clone()))
            .collect();
        let ptr_maps = ptr_maps_guard.clone();
        let log_spaces = log_spaces_guard.clone();
        let (free_list, next_offset) = frozen.canonical();
        let data = RegistryData {
            space_base: frozen.space_base(),
            space_size: frozen.space_size(),
            next_offset,
            free_list,
            puddles,
            pools,
            ptr_maps,
            log_spaces,
            next_seq: self.next_seq.load(Ordering::Relaxed),
            wal_seq: Some(cut_seq),
        };
        (data, cut_pos)
    }

    /// Assembles a consistent copy of the full registry state (stats, tests,
    /// persistence). All shard guards are acquired in lock order and held
    /// together while cloning, so a snapshot never interleaves a multi-table
    /// operation that holds its first lock for the whole operation; the
    /// residual torn cases (operations spanning lock releases) are healed by
    /// [`reconcile`] at the next load.
    pub fn snapshot(&self) -> RegistryData {
        self.snapshot_with_cut().0
    }

    /// Writes a checkpoint — the complete snapshot, atomically renamed over
    /// `meta/registry.json` — then truncates the WAL to the records the
    /// checkpoint does not cover. Concurrent checkpoints serialize.
    pub fn checkpoint(&self) -> Result<()> {
        let guard = self.ckpt_lock.lock();
        self.checkpoint_locked(guard)
    }

    /// Handles a WAL that outgrew its checkpoint threshold. In steady state
    /// (a [`Background`] is attached) the triggering request only *enqueues*
    /// a checkpoint and returns — the latency lands on the scheduler, not
    /// the request path. Two fallbacks keep the WAL bounded and bare
    /// registries working:
    ///
    /// * past the **hard ceiling** (threshold × factor) the checkpoint runs
    ///   inline even with a scheduler attached — it has fallen behind, and
    ///   unbounded WAL growth would make every recovery slower;
    /// * with no scheduler (tests, benches, tools) the old inline-on-trip
    ///   behaviour is preserved (contended trips skip; the next commit
    ///   re-trips).
    fn maybe_checkpoint(&self) -> Result<()> {
        if !self.wal.should_checkpoint() {
            return Ok(());
        }
        if self.wal.past_hard_ceiling() {
            let guard = self.ckpt_lock.lock();
            // Re-check under the lock: a checkpoint that just finished may
            // already have cut the WAL back below the ceiling.
            if !self.wal.past_hard_ceiling() {
                return Ok(());
            }
            self.forced_inline_checkpoints
                .fetch_add(1, Ordering::Relaxed);
            return self.checkpoint_locked(guard);
        }
        if self.submit_background_checkpoint() {
            return Ok(());
        }
        match self.ckpt_lock.try_lock() {
            Some(guard) => self.checkpoint_locked(guard),
            None => Ok(()),
        }
    }

    /// Enqueues one checkpoint on the attached background scheduler.
    /// Returns `false` when none is attached; dedups while one is pending.
    fn submit_background_checkpoint(&self) -> bool {
        let background = self.background.lock();
        let Some((bg, weak)) = &*background else {
            return false;
        };
        if self.ckpt_pending.swap(true, Ordering::SeqCst) {
            return true;
        }
        let weak = weak.clone();
        bg.submit(Box::new(move || {
            let Some(reg) = weak.upgrade() else { return };
            let result = reg.checkpoint();
            // Clear the dedup flag *after* the checkpoint so commits racing
            // it enqueue a fresh one only once this one's cut is taken.
            reg.ckpt_pending.store(false, Ordering::SeqCst);
            if result.is_ok() {
                reg.background_checkpoints.fetch_add(1, Ordering::Relaxed);
            }
        }));
        true
    }

    fn checkpoint_locked(&self, _guard: MutexGuard<'_, ()>) -> Result<()> {
        let clock = self.wal.clock().clone();
        let obs = Arc::clone(self.wal.obs());
        let start = clock.now();
        let (data, cut_pos) = self.snapshot_with_cut();
        let cut_seq = data.wal_seq.unwrap_or(0);
        obs.trace(TraceEventKind::CheckpointBegin, "", cut_seq, 0);
        let bytes = serde_json::to_vec_pretty(&data)
            .map_err(|e| PmError::Corruption(format!("registry encode error: {e}")))?;
        self.pmdir.write_meta(REGISTRY_FILE, &bytes)?;
        if failpoint::should_fail(names::WAL_CHECKPOINT_BEFORE_TRUNCATE) {
            return Err(PmError::CrashInjected(
                names::WAL_CHECKPOINT_BEFORE_TRUNCATE,
            ));
        }
        let result = self.wal.truncate_to(cut_pos, cut_seq);
        if result.is_ok() {
            obs.series("checkpoint")
                .record_duration(clock.now() - start);
            obs.trace(TraceEventKind::CheckpointEnd, "", cut_seq, 0);
        }
        result
    }

    /// Base address of the global space as recorded in the registry.
    pub fn space_base(&self) -> u64 {
        self.alloc.space_base()
    }

    /// Records the global-space base for this run and returns the previous
    /// one (callers relocate every puddle if it moved).
    ///
    /// Deliberately emits no WAL record: a base move only persists via the
    /// full checkpoint in [`Registry::apply_base_relocation`], atomically
    /// with the puddle rewrite marks it implies — a replayed base change
    /// without those marks would leave pointers unrewritten.
    pub fn update_space_base(&self, new_base: u64) -> u64 {
        self.alloc.set_space_base(new_base)
    }

    /// Allocates a fresh UUID.
    pub fn fresh_id(&self) -> PuddleId {
        // Relaxed: the counter is purely monotonic and the random salt makes
        // collisions across daemon instances vanishingly unlikely; no other
        // memory is ordered against it (records reach the tables under their
        // shard locks).
        let seq = self.next_seq.fetch_add(1, Ordering::Relaxed) + 1;
        // Mix a per-daemon random salt with a sequence number so ids from
        // different daemon instances (different "machines") do not collide.
        let salt: u64 = rand::random();
        PuddleId(((salt as u128) << 64) | seq as u128)
    }

    /// Allocates `size` bytes of the global space, returning the offset —
    /// O(1) through the sharded segregated-fit allocator
    /// ([`crate::alloc::SpaceAlloc`]).
    ///
    /// The extent grant is logged but not individually fsynced: it becomes
    /// durable with the next group commit, and a grant lost to a crash is
    /// reclaimed by [`reconcile`] (an extent no puddle record covers is
    /// free by definition). Internal slab refills are *not* logged — only
    /// user-visible grants carry WAL records, so the on-WAL contract is
    /// unchanged from the flat-list allocator.
    pub fn alloc_space(&self, size: u64) -> Result<u64> {
        let size = align_up(size as usize, PAGE_SIZE) as u64;
        let off = self.alloc.alloc(size)?;
        self.wal_submit(RegistryOp::AllocExtent {
            offset: off,
            len: size,
        });
        Ok(off)
    }

    /// Returns `size` bytes at `offset` to the free lists — an O(1) push;
    /// merging is deferred to the lazy coalesce pass. The `FreeExtent`
    /// record is logged *before* the extent becomes reusable so a re-grant
    /// of the same range can never precede the free in the WAL.
    pub fn free_space(&self, offset: u64, size: u64) {
        let size = align_up(size as usize, PAGE_SIZE) as u64;
        self.wal_submit(RegistryOp::FreeExtent { offset, len: size });
        self.alloc.free(offset, size);
        self.maybe_coalesce();
    }

    /// Handles a free-extent count that outgrew the coalesce threshold,
    /// mirroring [`Registry::maybe_checkpoint`]: in steady state the pass is
    /// *enqueued* on the background scheduler (deduped while one is
    /// pending); past the hard ceiling it runs forced-inline even with a
    /// scheduler attached; bare registries run it inline on the free that
    /// trips the threshold (still amortized O(1) per free).
    fn maybe_coalesce(&self) {
        let pending = self.alloc.bucket_extents();
        let threshold = self.alloc.coalesce_threshold();
        // Re-arm relative to the last pass's residue, multiplicatively: a
        // heap whose holes genuinely cannot merge (residue above the
        // threshold) would otherwise re-run the O(n log n) pass on *every*
        // free, turning the O(1) fast path back into the flat-Vec behaviour
        // this allocator replaced. Requiring the count to double keeps the
        // total merge work geometric in the frees between passes.
        let trigger = self
            .alloc
            .coalesce_floor()
            .saturating_mul(2)
            .saturating_add(threshold);
        if pending < trigger {
            return;
        }
        if pending >= trigger.saturating_mul(COALESCE_HARD_FACTOR) {
            self.timed_coalesce(CoalesceKind::ForcedInline, "forced");
            return;
        }
        if self.submit_background_coalesce() {
            return;
        }
        self.timed_coalesce(CoalesceKind::Lazy, "lazy");
    }

    /// Runs one coalesce pass, timing it into the `alloc.coalesce` series
    /// and marking it in the trace ring (`a` = 1 if the pass merged).
    fn timed_coalesce(&self, kind: CoalesceKind, detail: &'static str) -> bool {
        let clock = self.wal.clock();
        let obs = self.wal.obs();
        let start = clock.now();
        let merged = self.alloc.coalesce(kind);
        obs.series("alloc.coalesce")
            .record_duration(clock.now() - start);
        obs.trace(TraceEventKind::Coalesce, detail, merged as u64, 0);
        merged
    }

    /// Enqueues one lazy coalesce pass on the attached background scheduler.
    /// Returns `false` when none is attached; dedups while one is pending.
    fn submit_background_coalesce(&self) -> bool {
        let background = self.background.lock();
        let Some((bg, weak)) = &*background else {
            return false;
        };
        if self.coalesce_pending.swap(true, Ordering::SeqCst) {
            return true;
        }
        let weak = weak.clone();
        bg.submit(Box::new(move || {
            let Some(reg) = weak.upgrade() else { return };
            reg.timed_coalesce(CoalesceKind::Lazy, "lazy");
            reg.coalesce_pending.store(false, Ordering::SeqCst);
        }));
        true
    }

    /// Runs a coalesce pass immediately (tests, tools); counted as
    /// forced-inline. Returns `false` when there was nothing to merge.
    pub fn force_coalesce(&self) -> bool {
        self.timed_coalesce(CoalesceKind::ForcedInline, "forced")
    }

    /// Overrides the free-extent count that triggers a lazy coalesce pass
    /// (tests, benches).
    pub fn set_coalesce_threshold(&self, threshold: u64) {
        self.alloc.set_coalesce_threshold(threshold);
    }

    /// Allocator observability counters for the daemon's `Stats` response.
    pub fn alloc_stats(&self) -> AllocStats {
        self.alloc.stats()
    }

    // -- Puddle table -------------------------------------------------------

    /// Inserts a puddle record without touching pool membership (used by
    /// import, which creates the pool after its puddles). Most callers want
    /// [`Registry::register_puddle`].
    pub fn insert_puddle(&self, record: PuddleRecord) {
        let mut puddles = self.puddles.write();
        puddles.insert(record.id, record.clone());
        self.wal_submit(RegistryOp::PutPuddle(record));
    }

    /// Atomically verifies the target pool exists (when the record names
    /// one), inserts the puddle, and appends it to the pool's member list.
    /// Lock order: pools → puddles.
    pub fn register_puddle(
        &self,
        record: PuddleRecord,
    ) -> std::result::Result<(), RegistryOpError> {
        match &record.pool {
            Some(pool_name) => {
                let mut pools = self.pools.write();
                let pool = pools
                    .get_mut(pool_name)
                    .ok_or_else(|| RegistryOpError::NoSuchPool(pool_name.clone()))?;
                pool.puddles.push(record.id);
                // O(1) membership delta — logging the whole member list
                // here would make building an N-puddle pool O(N²) WAL
                // traffic.
                let pool_op = RegistryOp::AddPoolMember {
                    pool: pool_name.clone(),
                    id: record.id,
                };
                let mut puddles = self.puddles.write();
                puddles.insert(record.id, record.clone());
                self.wal_submit(RegistryOp::PutPuddle(record));
                self.wal_submit(pool_op);
                Ok(())
            }
            None => {
                let mut puddles = self.puddles.write();
                puddles.insert(record.id, record.clone());
                self.wal_submit(RegistryOp::PutPuddle(record));
                Ok(())
            }
        }
    }

    /// Atomically removes a puddle record and its pool membership, returning
    /// the record. Lock order: pools → puddles.
    pub fn unregister_puddle(&self, id: PuddleId) -> Option<PuddleRecord> {
        let mut pools = self.pools.write();
        let mut puddles = self.puddles.write();
        let record = puddles.remove(&id)?;
        let mut pool_op = None;
        if let Some(pool_name) = &record.pool {
            if let Some(pool) = pools.get_mut(pool_name) {
                pool.puddles.retain(|p| *p != id);
                pool_op = Some(RegistryOp::RemovePoolMember {
                    pool: pool_name.clone(),
                    id,
                });
            }
        }
        self.wal_submit(RegistryOp::DropPuddle { id });
        if let Some(op) = pool_op {
            self.wal_submit(op);
        }
        Some(record)
    }

    /// Looks up a puddle record (clones under a shared read lock, so
    /// concurrent lookups never serialize — and never allocate for the key:
    /// the table is keyed by `PuddleId` directly).
    pub fn puddle(&self, id: PuddleId) -> Option<PuddleRecord> {
        self.puddles.read().get(&id).cloned()
    }

    /// Applies `f` to a puddle record under the write lock.
    pub fn update_puddle<R>(
        &self,
        id: PuddleId,
        f: impl FnOnce(&mut PuddleRecord) -> R,
    ) -> Option<R> {
        let mut puddles = self.puddles.write();
        let record = puddles.get_mut(&id)?;
        let result = f(record);
        self.wal_submit(RegistryOp::PutPuddle(record.clone()));
        Some(result)
    }

    /// Clones every puddle record (recovery, relocation, export).
    pub fn puddles_snapshot(&self) -> Vec<PuddleRecord> {
        self.puddles.read().values().cloned().collect()
    }

    /// Number of live puddles and their total size in bytes.
    pub fn puddle_usage(&self) -> (u64, u64) {
        let puddles = self.puddles.read();
        (
            puddles.len() as u64,
            puddles.values().map(|p| p.size).sum::<u64>(),
        )
    }

    // -- Pool table ---------------------------------------------------------

    /// Inserts a pool record, failing if the name is taken. Returns `true`
    /// if the pool was inserted.
    pub fn try_insert_pool(&self, record: PoolRecord) -> bool {
        let mut pools = self.pools.write();
        if pools.contains_key(&record.name) {
            return false;
        }
        pools.insert(record.name.clone(), record.clone());
        self.wal_submit(RegistryOp::PutPool(record));
        true
    }

    /// Inserts (or replaces) a pool record.
    pub fn insert_pool(&self, record: PoolRecord) {
        let mut pools = self.pools.write();
        pools.insert(record.name.clone(), record.clone());
        self.wal_submit(RegistryOp::PutPool(record));
    }

    /// Looks up a pool by name (clones under a shared read lock).
    pub fn pool(&self, name: &str) -> Option<PoolRecord> {
        self.pools.read().get(name).cloned()
    }

    /// Applies `f` to a pool record under the write lock.
    pub fn update_pool<R>(&self, name: &str, f: impl FnOnce(&mut PoolRecord) -> R) -> Option<R> {
        let mut pools = self.pools.write();
        let record = pools.get_mut(name)?;
        let result = f(record);
        self.wal_submit(RegistryOp::PutPool(record.clone()));
        Some(result)
    }

    /// Removes a pool record, returning it. The pool's member puddles are
    /// untouched (callers free them explicitly).
    pub fn remove_pool(&self, name: &str) -> Option<PoolRecord> {
        let mut pools = self.pools.write();
        let record = pools.remove(name)?;
        self.wal_submit(RegistryOp::DropPool {
            name: name.to_string(),
        });
        Some(record)
    }

    /// Number of pools.
    pub fn pool_count(&self) -> u64 {
        self.pools.read().len() as u64
    }

    // -- Pointer maps -------------------------------------------------------

    /// Registers (or replaces) a pointer map.
    pub fn register_ptr_map(&self, decl: PtrMapDecl) {
        let mut ptr_maps = self.ptr_maps.write();
        ptr_maps.insert(decl.type_id.to_string(), decl.clone());
        self.wal_submit(RegistryOp::PutPtrMap(decl));
    }

    /// Returns every registered pointer map.
    pub fn ptr_maps(&self) -> Vec<PtrMapDecl> {
        self.ptr_maps.read().values().cloned().collect()
    }

    /// Number of registered pointer maps.
    pub fn ptr_map_count(&self) -> u64 {
        self.ptr_maps.read().len() as u64
    }

    // -- Log spaces ---------------------------------------------------------

    /// Registers a log space for a client, replacing an older registration
    /// of the same puddle.
    pub fn register_log_space(&self, record: LogSpaceRecord) {
        let mut log_spaces = self.log_spaces.write();
        log_spaces.retain(|existing| existing.puddle != record.puddle);
        log_spaces.push(record.clone());
        self.wal_submit(RegistryOp::PutLogSpace(record));
    }

    /// Clones every registered log space.
    pub fn log_spaces_snapshot(&self) -> Vec<LogSpaceRecord> {
        self.log_spaces.read().clone()
    }

    /// Number of registered log spaces.
    pub fn log_space_count(&self) -> u64 {
        self.log_spaces.read().len() as u64
    }

    /// Marks a log space invalid (its logs will never be replayed).
    pub fn invalidate_log_space(&self, puddle: PuddleId) {
        let mut log_spaces = self.log_spaces.write();
        for ls in log_spaces.iter_mut() {
            if ls.puddle == puddle {
                ls.invalid = true;
            }
        }
        self.wal_submit(RegistryOp::InvalidateLogSpace { puddle });
    }

    // -- Relocation ---------------------------------------------------------

    /// If the global space landed at a different base than the recorded one,
    /// marks every puddle for pointer rewrite with the corresponding
    /// translation and records the new base. Returns `true` if the base
    /// moved.
    ///
    /// A base move shifts every puddle by the same delta, so a single
    /// whole-space translation covers all cross-puddle pointers — per-record
    /// state stays O(1) regardless of the puddle count (a per-extent table
    /// here would make the registry O(N²) after a move). Import keeps
    /// per-extent tables because imported puddles land at unrelated offsets.
    pub fn apply_base_relocation(&self, new_base: u64) -> Result<bool> {
        let (old_base, space_size) = {
            let frozen = self.alloc.freeze();
            (frozen.space_base(), frozen.space_size())
        };
        if old_base == new_base {
            return Ok(false);
        }
        let whole_space = Translation {
            old_addr: old_base,
            new_addr: new_base,
            len: space_size,
        };
        {
            let mut puddles = self.puddles.write();
            for p in puddles.values_mut() {
                p.needs_rewrite = true;
                p.translations = vec![whole_space];
            }
        }
        self.update_space_base(new_base);
        // A base move is a rare, startup-only event that touches every
        // record; persist it as one atomic checkpoint (rewrite marks and
        // the new base land together) rather than O(N) WAL records.
        self.checkpoint()?;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn registry() -> (tempfile::TempDir, Registry) {
        let tmp = tempfile::tempdir().unwrap();
        let pm = PmDir::open(tmp.path()).unwrap();
        let reg = Registry::load_or_create(&pm, 0x5000_0000_0000, 1 << 30).unwrap();
        (tmp, reg)
    }

    fn record(reg: &Registry, pool: Option<&str>) -> PuddleRecord {
        let id = reg.fresh_id();
        let offset = reg.alloc_space(PAGE_SIZE as u64).unwrap();
        PuddleRecord {
            id,
            size: PAGE_SIZE as u64,
            offset,
            file: id.to_hex(),
            purpose: PuddlePurpose::Data,
            owner_uid: 1,
            owner_gid: 2,
            mode: 0o600,
            pool: pool.map(String::from),
            needs_rewrite: false,
            translations: vec![],
        }
    }

    #[test]
    fn allocation_is_page_aligned_and_disjoint() {
        let (_tmp, reg) = registry();
        let a = reg.alloc_space(100).unwrap();
        let b = reg.alloc_space(8192).unwrap();
        let c = reg.alloc_space(1).unwrap();
        assert_eq!(a % PAGE_SIZE as u64, 0);
        assert_eq!(b % PAGE_SIZE as u64, 0);
        assert!(b >= a + PAGE_SIZE as u64);
        assert!(c >= b + 8192);
    }

    #[test]
    fn freed_space_is_reused_and_coalesced() {
        let (_tmp, reg) = registry();
        let a = reg.alloc_space(PAGE_SIZE as u64).unwrap();
        let b = reg.alloc_space(PAGE_SIZE as u64).unwrap();
        reg.free_space(a, PAGE_SIZE as u64);
        reg.free_space(b, PAGE_SIZE as u64);
        // Frees are lazy (no merge ran yet), but snapshots always serialize
        // the canonical view: here everything the registry ever allocated is
        // free again, so the whole region folds back into the bump frontier.
        let snap = reg.snapshot();
        assert!(snap.free_list.is_empty());
        assert_eq!(snap.next_offset, a);
        // After a merge pass the two adjacent pages satisfy one two-page
        // allocation at the original offset.
        assert!(reg.force_coalesce());
        let c = reg.alloc_space(2 * PAGE_SIZE as u64).unwrap();
        assert_eq!(c, a);
    }

    #[test]
    fn coalesce_threshold_triggers_inline_for_bare_registries() {
        let (_tmp, reg) = registry();
        reg.set_coalesce_threshold(4);
        let offs: Vec<u64> = (0..8)
            .map(|_| reg.alloc_space(PAGE_SIZE as u64).unwrap())
            .collect();
        for &off in &offs {
            reg.free_space(off, PAGE_SIZE as u64);
        }
        let stats = reg.alloc_stats();
        // With no background scheduler attached the threshold trip runs the
        // pass inline (counted as lazy). The trigger re-arms relative to the
        // previous pass's residue, so not every free past the fourth merges
        // — but the count must sit well below the eight raw frees.
        assert!(
            stats.lazy_coalesce_runs >= 1,
            "threshold never tripped: {stats:?}"
        );
        assert!(stats.free_extents <= 5, "frees were not merged: {stats:?}");
        // A fragmented residue must not re-trigger on every free: a second
        // identical storm may merge again, but the pass count stays bounded
        // by the re-arm schedule instead of growing one-per-free.
        let runs_after_first_storm = stats.lazy_coalesce_runs + stats.forced_inline_coalesces;
        let offs: Vec<u64> = (0..8)
            .map(|_| reg.alloc_space(PAGE_SIZE as u64).unwrap())
            .collect();
        for &off in &offs {
            reg.free_space(off, PAGE_SIZE as u64);
        }
        let stats = reg.alloc_stats();
        let runs = stats.lazy_coalesce_runs + stats.forced_inline_coalesces;
        assert!(
            runs - runs_after_first_storm <= 3,
            "coalesce re-triggered on nearly every free: {stats:?}"
        );
    }

    #[test]
    fn allocation_fails_when_space_is_exhausted() {
        let tmp = tempfile::tempdir().unwrap();
        let pm = PmDir::open(tmp.path()).unwrap();
        let reg = Registry::load_or_create(&pm, 0, (4 * PAGE_SIZE) as u64).unwrap();
        reg.alloc_space(2 * PAGE_SIZE as u64).unwrap();
        assert!(reg.alloc_space(2 * PAGE_SIZE as u64).is_err());
    }

    #[test]
    fn registry_persists_across_reloads() {
        let tmp = tempfile::tempdir().unwrap();
        let pm = PmDir::open(tmp.path()).unwrap();
        let id;
        {
            let reg = Registry::load_or_create(&pm, 7, 1 << 30).unwrap();
            let rec = record(&reg, Some("p"));
            id = rec.id;
            reg.insert_pool(PoolRecord {
                name: "p".into(),
                root: id,
                puddles: vec![],
            });
            reg.register_puddle(rec).unwrap();
            reg.commit().unwrap();
        }
        let reg = Registry::load_or_create(&pm, 7, 1 << 30).unwrap();
        assert!(reg.puddle(id).is_some());
        assert_eq!(reg.pool("p").unwrap().puddles, vec![id]);
        assert_eq!(reg.snapshot().space_base, 7);
    }

    #[test]
    fn fresh_ids_are_unique() {
        let (_tmp, reg) = registry();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..100 {
            assert!(seen.insert(reg.fresh_id()));
        }
    }

    #[test]
    fn log_space_registration_replaces_duplicates() {
        let (_tmp, reg) = registry();
        let id = reg.fresh_id();
        reg.register_log_space(LogSpaceRecord {
            puddle: id,
            owner_uid: 1,
            owner_gid: 1,
            invalid: false,
        });
        reg.register_log_space(LogSpaceRecord {
            puddle: id,
            owner_uid: 2,
            owner_gid: 2,
            invalid: false,
        });
        let spaces = reg.log_spaces_snapshot();
        assert_eq!(spaces.len(), 1);
        assert_eq!(spaces[0].owner_uid, 2);
        reg.invalidate_log_space(id);
        assert!(reg.log_spaces_snapshot()[0].invalid);
    }

    #[test]
    fn register_puddle_requires_the_pool() {
        let (_tmp, reg) = registry();
        let rec = record(&reg, Some("missing"));
        assert_eq!(
            reg.register_puddle(rec),
            Err(RegistryOpError::NoSuchPool("missing".into()))
        );
        let rec = record(&reg, None);
        let id = rec.id;
        reg.register_puddle(rec).unwrap();
        assert!(reg.puddle(id).is_some());
    }

    #[test]
    fn unregister_puddle_detaches_from_pool() {
        let (_tmp, reg) = registry();
        reg.insert_pool(PoolRecord {
            name: "p".into(),
            root: PuddleId(0),
            puddles: vec![],
        });
        let rec = record(&reg, Some("p"));
        let id = rec.id;
        reg.register_puddle(rec).unwrap();
        assert_eq!(reg.pool("p").unwrap().puddles, vec![id]);
        let removed = reg.unregister_puddle(id).unwrap();
        assert_eq!(removed.id, id);
        assert!(reg.pool("p").unwrap().puddles.is_empty());
        assert!(reg.puddle(id).is_none());
    }

    #[test]
    fn base_relocation_marks_all_puddles() {
        let (_tmp, reg) = registry();
        let rec = record(&reg, None);
        let id = rec.id;
        let offset = rec.offset;
        reg.register_puddle(rec).unwrap();
        let old_base = reg.space_base();
        assert!(!reg.apply_base_relocation(old_base).unwrap());
        let new_base = old_base + (1 << 30);
        assert!(reg.apply_base_relocation(new_base).unwrap());
        let p = reg.puddle(id).unwrap();
        assert!(p.needs_rewrite);
        // One whole-space translation (O(1) per record), which still
        // translates this puddle's own addresses correctly.
        assert_eq!(p.translations.len(), 1);
        let t = p.translations[0];
        assert_eq!(
            t.translate(old_base + offset),
            Some(new_base + offset),
            "whole-space translation must cover the puddle's extent"
        );
        assert_eq!(reg.space_base(), new_base);
    }

    #[test]
    fn reconcile_heals_torn_snapshots_at_load() {
        let tmp = tempfile::tempdir().unwrap();
        let pm = PmDir::open(tmp.path()).unwrap();
        let survivor_id;
        let survivor_offset;
        {
            let reg = Registry::load_or_create(&pm, 0, 1 << 30).unwrap();
            // A healthy pool with one member.
            let root = record(&reg, Some("ok"));
            survivor_id = root.id;
            survivor_offset = root.offset;
            reg.insert_pool(PoolRecord {
                name: "ok".into(),
                root: root.id,
                puddles: vec![],
            });
            reg.register_puddle(root).unwrap();
            // Torn state 1: a pool whose root puddle never materialized.
            reg.insert_pool(PoolRecord {
                name: "headless".into(),
                root: PuddleId(0xdead),
                puddles: vec![],
            });
            // Torn state 2: a pool member id whose record is gone.
            reg.update_pool("ok", |p| p.puddles.push(PuddleId(0xbeef)));
            // Torn state 3: leaked space — an extent freed in memory whose
            // free-list entry was lost (simulated by allocating and
            // dropping the record without freeing).
            let leaked = record(&reg, None);
            reg.register_puddle(leaked.clone()).unwrap();
            reg.unregister_puddle(leaked.id).unwrap(); // free_space "lost"
            reg.commit().unwrap();
        }
        let reg = Registry::load_or_create(&pm, 0, 1 << 30).unwrap();
        // The headless pool is gone; the healthy pool kept only live ids.
        assert!(reg.pool("headless").is_none());
        assert_eq!(reg.pool("ok").unwrap().puddles, vec![survivor_id]);
        // The allocator was rebuilt from live extents: the next allocation
        // reuses the leaked gap instead of bumping past it.
        let reused = reg.alloc_space(PAGE_SIZE as u64).unwrap();
        assert_ne!(reused, survivor_offset);
        assert!(
            reused < reg.snapshot().next_offset,
            "leaked extent was not reclaimed"
        );
    }

    #[test]
    fn stale_records_are_checkpointed_by_age_not_just_bytes() {
        let (_tmp, reg) = registry();
        // Far below the byte threshold: the trickle case.
        let rec = record(&reg, None);
        reg.register_puddle(rec).unwrap();
        reg.commit().unwrap();
        assert!(reg.wal().stats().records > 0);
        // Young records are left alone...
        assert!(!reg.checkpoint_if_stale(u64::MAX).unwrap());
        assert!(reg.wal().stats().records > 0);
        // ...stale ones are folded into a checkpoint (age floor 0 makes
        // "stale" immediate for the test).
        assert!(reg.checkpoint_if_stale(0).unwrap());
        assert_eq!(reg.wal().stats().records, 0);
        // Nothing pending: the next age check is a no-op.
        assert!(!reg.checkpoint_if_stale(0).unwrap());
    }

    #[test]
    fn concurrent_allocations_are_disjoint_and_reads_do_not_block() {
        let tmp = tempfile::tempdir().unwrap();
        let pm = PmDir::open(tmp.path()).unwrap();
        let reg = Arc::new(Registry::load_or_create(&pm, 0, 1 << 30).unwrap());
        let threads: Vec<_> = (0..8)
            .map(|_| {
                let reg = Arc::clone(&reg);
                std::thread::spawn(move || {
                    let mut offsets = Vec::new();
                    for _ in 0..50 {
                        let rec = record(&reg, None);
                        offsets.push((rec.offset, rec.size));
                        reg.register_puddle(rec).unwrap();
                    }
                    offsets
                })
            })
            .collect();
        let mut all: Vec<(u64, u64)> = Vec::new();
        for t in threads {
            all.extend(t.join().unwrap());
        }
        all.sort_unstable();
        for pair in all.windows(2) {
            assert!(
                pair[0].0 + pair[0].1 <= pair[1].0,
                "overlapping allocations: {pair:?}"
            );
        }
        let (count, _) = reg.puddle_usage();
        assert_eq!(count, 400);
    }
}
