//! The global-space address allocator: size-bucketed segregated free lists
//! with lazy coalescing and a sharded front-end.
//!
//! The seed allocator was first-fit over a flat `Vec` with a full
//! sort-and-coalesce on **every** free — O(extents) per operation behind a
//! single mutex. Fine for dozens of puddles; hopeless for the millions the
//! roadmap targets (every log segment, B-tree node pool, and user pool is a
//! daemon-granted extent). This module replaces it with:
//!
//! * **Segregated free lists** — freed extents are binned into power-of-two
//!   buckets by page count (bucket *b* holds extents of `[2^b, 2^(b+1))`
//!   pages). Alloc pops from the first bucket guaranteed to fit (a bounded
//!   first-fit scan of the floor bucket first, so exact-size churn reuses
//!   exact-size extents), splits, and re-bins the remainder: O(1). Free is
//!   a push: O(1).
//! * **Lazy coalescing** — adjacent free extents are *not* merged on free.
//!   A deferred merge pass (collect, sort, merge, re-bin, and absorb any
//!   extent touching the bump frontier back into it) runs when the
//!   free-extent count passes a threshold — on the [`Background`] scheduler
//!   when the daemon attaches one, inline otherwise, and *forced* inline
//!   past a hard ceiling or when an allocation would otherwise fail. This
//!   mirrors the WAL checkpoint pattern exactly (threshold → background,
//!   ceiling → inline).
//! * **A sharded front-end** — threads are round-robined onto `NSHARDS`
//!   shards; small allocations (≤ [`SHARD_MAX_BYTES`]) are served from the
//!   shard's own buckets or its private bump **slab** (refilled from the
//!   global arena [`SLAB_BYTES`] at a time), so create/drop storms from
//!   many pipelined clients stop serializing on one mutex. Large extents
//!   and slab refills go through the global arena.
//!
//! [`Background`]: crate::background::Background
//!
//! # Persistence contract
//!
//! The allocator itself is volatile. Grants and frees are logged by the
//! registry as `AllocExtent`/`FreeExtent` WAL records (slab refills are
//! *not* logged — they are not user-visible grants), and recovery rebuilds
//! the allocator from the live puddle extents regardless
//! ([`crate::registry`]'s `reconcile`). [`FrozenSpace::canonical`] serializes
//! the in-memory state in exactly the form `reconcile` would rebuild —
//! sorted, fully merged, frontier-adjacent extents absorbed into the bump
//! pointer — so a checkpoint taken from a live allocator and one rebuilt
//! after a crash are bit-identical, and pre-existing WALs/checkpoints
//! replay unchanged.

use parking_lot::{Mutex, MutexGuard};
use puddles_pmem::util::align_up;
use puddles_pmem::{PmError, Result, PAGE_SIZE};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Number of front-end shards. Threads are assigned round-robin, so up to
/// this many allocating threads proceed without touching a shared lock.
pub const NSHARDS: usize = 8;

/// Largest allocation served from a shard (and binned into shard buckets on
/// free); bigger extents go straight to the global arena.
pub const SHARD_MAX_BYTES: u64 = 64 * PAGE_SIZE as u64; // 256 KiB

/// Bytes a shard reserves from the global arena per refill. Each refill is
/// one global-lock acquisition amortized over many small grants.
pub const SLAB_BYTES: u64 = 256 * PAGE_SIZE as u64; // 1 MiB

/// Shard buckets cover `[2^0, 2^(SHARD_BUCKETS))` pages = up to
/// `SHARD_MAX_BYTES`.
const SHARD_BUCKETS: usize = 7;

/// Global buckets cover any u64 extent length.
const GLOBAL_BUCKETS: usize = 48;

/// Entries of the floor bucket examined before giving up and splitting a
/// larger extent. Bounds the alloc path at O(1) while letting exact-size
/// churn (the common create/drop pattern) reuse exact-size extents.
const FLOOR_SCAN: usize = 8;

/// Default free-extent count that triggers a lazy coalesce pass.
pub const DEFAULT_COALESCE_THRESHOLD: u64 = 1024;

/// Past `threshold × FACTOR` free extents the pass runs forced-inline even
/// with a background scheduler attached (it has fallen behind).
pub const COALESCE_HARD_FACTOR: u64 = 4;

/// Why a coalesce pass ran (the registry's counters distinguish the two).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoalesceKind {
    /// Threshold-triggered, deferred off the request path (or inline for
    /// bare registries with no scheduler — still amortized).
    Lazy,
    /// Forced inline: the hard ceiling was passed or an allocation would
    /// otherwise fail. Also reclaims shard slabs back into the pool.
    ForcedInline,
}

/// Allocator observability, surfaced through the daemon's `Stats` response.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Bytes sitting on free lists below the bump frontier (canonical view:
    /// merged, frontier-absorbed).
    pub free_bytes: u64,
    /// Free extents in the canonical view.
    pub free_extents: u64,
    /// Largest single free extent.
    pub largest_free: u64,
    /// External fragmentation in basis points:
    /// `10000 × (1 − largest_free / free_bytes)`. 0 when the free space is
    /// one extent (or there is none); approaches 10000 as it shatters.
    pub fragmentation_bp: u64,
    /// Lazy (threshold-triggered) coalesce passes run.
    pub lazy_coalesce_runs: u64,
    /// Coalesce passes forced inline (hard ceiling or allocation pressure).
    pub forced_inline_coalesces: u64,
}

/// One front-end shard: segregated buckets for small freed extents plus a
/// private bump slab `[cur, end)` carved from the global arena.
#[derive(Debug)]
struct Shard {
    buckets: [Vec<(u64, u64)>; SHARD_BUCKETS],
    slab: (u64, u64),
}

/// The global arena: geometry, the bump frontier, and buckets for large
/// extents, slab-refill reserves, and everything a coalesce pass merged.
#[derive(Debug)]
struct GlobalArena {
    space_base: u64,
    space_size: u64,
    next_offset: u64,
    buckets: [Vec<(u64, u64)>; GLOBAL_BUCKETS],
}

/// The segregated-fit allocator. All methods take `&self`; shards and the
/// global arena are locked internally (lock order: one shard, then global —
/// a coalesce pass drains shards one at a time, never holding two).
pub struct SpaceAlloc {
    shards: [Mutex<Shard>; NSHARDS],
    global: Mutex<GlobalArena>,
    /// Extents across all buckets (shard + global); the lazy-coalesce
    /// trigger reads this without any lock.
    bucket_extents: AtomicU64,
    /// Extents in the *global* buckets only: a zero lets the shard fast
    /// path skip the global lock entirely during first-touch storms.
    global_hint: AtomicU64,
    coalesce_threshold: AtomicU64,
    /// Extents the last coalesce pass could *not* merge (its residue). The
    /// trigger re-arms relative to this floor: a fragmented heap whose holes
    /// genuinely cannot merge must not re-run an O(n log n) pass on every
    /// subsequent free.
    coalesce_floor: AtomicU64,
    lazy_coalesces: AtomicU64,
    forced_coalesces: AtomicU64,
}

impl std::fmt::Debug for SpaceAlloc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpaceAlloc")
            .field(
                "bucket_extents",
                &self.bucket_extents.load(Ordering::Relaxed),
            )
            .finish_non_exhaustive()
    }
}

/// Round-robin thread→shard assignment (stable for a thread's lifetime).
fn my_shard() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static SLOT: usize = NEXT.fetch_add(1, Ordering::Relaxed);
    }
    SLOT.with(|s| *s % NSHARDS)
}

/// Bucket index for an extent of `len` bytes: `floor(log2(pages))`, clamped
/// to the table. Bucket `b` holds extents of `[2^b, 2^(b+1))` pages.
fn bucket_of(len: u64, nbuckets: usize) -> usize {
    let pages = (len / PAGE_SIZE as u64).max(1);
    ((63 - pages.leading_zeros()) as usize).min(nbuckets - 1)
}

/// Pops an extent of at least `size` bytes from `buckets`: a bounded
/// first-fit scan of the floor bucket, then the first non-empty larger
/// bucket (whose every extent is guaranteed to fit). Returns the whole
/// extent; the caller splits. O(1): the scan is bounded and the bucket walk
/// is over at most `buckets.len()` heads.
fn take_fit(buckets: &mut [Vec<(u64, u64)>], size: u64) -> Option<(u64, u64)> {
    let floor = bucket_of(size, buckets.len());
    let list = &mut buckets[floor];
    let scan = list.len().min(FLOOR_SCAN);
    for back in 1..=scan {
        let idx = list.len() - back;
        if list[idx].1 >= size {
            return Some(list.swap_remove(idx));
        }
    }
    for bucket in buckets.iter_mut().skip(floor + 1) {
        if let Some(extent) = bucket.pop() {
            return Some(extent);
        }
    }
    None
}

impl SpaceAlloc {
    /// Builds the allocator from reconciled registry state: the free list
    /// goes into the global buckets (shards warm up from subsequent frees),
    /// the bump frontier is taken as-is.
    pub fn new(
        space_base: u64,
        space_size: u64,
        next_offset: u64,
        free_list: Vec<(u64, u64)>,
    ) -> Self {
        let mut global = GlobalArena {
            space_base,
            space_size,
            next_offset,
            buckets: std::array::from_fn(|_| Vec::new()),
        };
        let count = free_list.len() as u64;
        for (off, len) in free_list {
            global.buckets[bucket_of(len, GLOBAL_BUCKETS)].push((off, len));
        }
        SpaceAlloc {
            shards: std::array::from_fn(|_| {
                Mutex::new(Shard {
                    buckets: std::array::from_fn(|_| Vec::new()),
                    slab: (0, 0),
                })
            }),
            global: Mutex::new(global),
            bucket_extents: AtomicU64::new(count),
            global_hint: AtomicU64::new(count),
            coalesce_threshold: AtomicU64::new(DEFAULT_COALESCE_THRESHOLD),
            // A reconciled free list is already fully merged: treat it as
            // the first pass's residue so recovery into a fragmented heap
            // doesn't trip an immediate (useless) pass.
            coalesce_floor: AtomicU64::new(count),
            lazy_coalesces: AtomicU64::new(0),
            forced_coalesces: AtomicU64::new(0),
        }
    }

    /// Allocates `size` bytes (page-aligned up), returning the offset. On
    /// exhaustion a forced coalesce pass (merge everything, reclaim shard
    /// slabs) runs once before the allocation is declared impossible.
    pub fn alloc(&self, size: u64) -> Result<u64> {
        let size = align_up(size.max(1) as usize, PAGE_SIZE) as u64;
        for attempt in 0..2 {
            if let Some(off) = self.try_alloc(size) {
                return Ok(off);
            }
            if attempt == 0 && !self.coalesce(CoalesceKind::ForcedInline) {
                break;
            }
        }
        Err(PmError::OutOfRange {
            offset: self.global.lock().next_offset as usize,
            len: size as usize,
        })
    }

    fn try_alloc(&self, size: u64) -> Option<u64> {
        if size > SHARD_MAX_BYTES {
            let mut global = self.global.lock();
            return self.global_grab(&mut global, size);
        }
        let mut shard = self.shards[my_shard()].lock();
        // 1. The shard's own buckets: the create/drop churn fast path.
        if let Some((off, len)) = take_fit(&mut shard.buckets, size) {
            self.bucket_extents.fetch_sub(1, Ordering::Relaxed);
            let rem = len - size;
            if rem > 0 {
                shard.buckets[bucket_of(rem, SHARD_BUCKETS)].push((off + size, rem));
                self.bucket_extents.fetch_add(1, Ordering::Relaxed);
            }
            return Some(off);
        }
        // 2. Global buckets, but only when the lock-free hint says they are
        //    non-empty (reuse of coalesced/reconciled free space).
        if self.global_hint.load(Ordering::Relaxed) > 0 {
            let mut global = self.global.lock();
            if let Some((off, len)) = take_fit(&mut global.buckets, size) {
                self.bucket_extents.fetch_sub(1, Ordering::Relaxed);
                self.global_hint.fetch_sub(1, Ordering::Relaxed);
                let rem = len - size;
                if rem > 0 {
                    global.buckets[bucket_of(rem, GLOBAL_BUCKETS)].push((off + size, rem));
                    self.bucket_extents.fetch_add(1, Ordering::Relaxed);
                    self.global_hint.fetch_add(1, Ordering::Relaxed);
                }
                return Some(off);
            }
        }
        // 3. The shard's private bump slab.
        if shard.slab.1 - shard.slab.0 >= size {
            let off = shard.slab.0;
            shard.slab.0 += size;
            return Some(off);
        }
        // 4. Refill the slab from the global arena; the leftover of the old
        //    slab (smaller than `size` ≤ SHARD_MAX_BYTES) is re-binned, not
        //    leaked.
        let mut global = self.global.lock();
        if let Some(off) = self.global_grab(&mut global, SLAB_BYTES) {
            if shard.slab.0 < shard.slab.1 {
                let (cur, end) = shard.slab;
                shard.buckets[bucket_of(end - cur, SHARD_BUCKETS)].push((cur, end - cur));
                self.bucket_extents.fetch_add(1, Ordering::Relaxed);
            }
            shard.slab = (off + size, off + SLAB_BYTES);
            return Some(off);
        }
        // 5. Too tight for a whole slab: grab exactly `size`.
        self.global_grab(&mut global, size)
    }

    /// Takes `size` bytes from the global arena: buckets first, bump second.
    fn global_grab(&self, global: &mut GlobalArena, size: u64) -> Option<u64> {
        if let Some((off, len)) = take_fit(&mut global.buckets, size) {
            self.bucket_extents.fetch_sub(1, Ordering::Relaxed);
            self.global_hint.fetch_sub(1, Ordering::Relaxed);
            let rem = len - size;
            if rem > 0 {
                global.buckets[bucket_of(rem, GLOBAL_BUCKETS)].push((off + size, rem));
                self.bucket_extents.fetch_add(1, Ordering::Relaxed);
                self.global_hint.fetch_add(1, Ordering::Relaxed);
            }
            return Some(off);
        }
        let off = global.next_offset;
        if off + size > global.space_size {
            return None;
        }
        global.next_offset = off + size;
        Some(off)
    }

    /// Returns `[offset, offset + size)` to the free lists: one push, no
    /// merging — coalescing is the deferred pass's job.
    pub fn free(&self, offset: u64, size: u64) {
        let size = align_up(size.max(1) as usize, PAGE_SIZE) as u64;
        if size <= SHARD_MAX_BYTES {
            let mut shard = self.shards[my_shard()].lock();
            shard.buckets[bucket_of(size, SHARD_BUCKETS)].push((offset, size));
        } else {
            let mut global = self.global.lock();
            global.buckets[bucket_of(size, GLOBAL_BUCKETS)].push((offset, size));
            self.global_hint.fetch_add(1, Ordering::Relaxed);
        }
        self.bucket_extents.fetch_add(1, Ordering::Relaxed);
    }

    /// Runs one coalesce pass: drain every bucket (shards one at a time,
    /// then the global arena), sort, merge adjacent extents, absorb an
    /// extent touching the bump frontier back into it, and re-bin the rest
    /// into the **global** buckets (where any shard can reuse them via the
    /// hint). `ForcedInline` additionally reclaims shard slabs — under
    /// allocation pressure a half-empty slab parked on an idle shard is
    /// space the failing thread needs. Returns `false` when there was
    /// nothing to merge.
    pub fn coalesce(&self, kind: CoalesceKind) -> bool {
        match kind {
            CoalesceKind::Lazy => self.lazy_coalesces.fetch_add(1, Ordering::Relaxed),
            CoalesceKind::ForcedInline => self.forced_coalesces.fetch_add(1, Ordering::Relaxed),
        };
        let reclaim_slabs = kind == CoalesceKind::ForcedInline;
        let mut collected: Vec<(u64, u64)> = Vec::new();
        let mut drained_buckets = 0u64;
        let mut drained_global = 0u64;
        for shard in &self.shards {
            let mut shard = shard.lock();
            for bucket in shard.buckets.iter_mut() {
                drained_buckets += bucket.len() as u64;
                collected.append(bucket);
            }
            if reclaim_slabs && shard.slab.0 < shard.slab.1 {
                collected.push((shard.slab.0, shard.slab.1 - shard.slab.0));
                shard.slab = (0, 0);
            }
        }
        let mut global = self.global.lock();
        for bucket in global.buckets.iter_mut() {
            drained_buckets += bucket.len() as u64;
            drained_global += bucket.len() as u64;
            collected.append(bucket);
        }
        if collected.is_empty() {
            self.coalesce_floor.store(0, Ordering::Relaxed);
            return false;
        }
        collected.sort_unstable();
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(collected.len());
        for (off, len) in collected {
            match merged.last_mut() {
                Some((moff, mlen)) if *moff + *mlen == off => *mlen += len,
                _ => merged.push((off, len)),
            }
        }
        // Merged extents are pairwise non-adjacent, so at most one can touch
        // the frontier; absorbing it lowers the bump pointer.
        if let Some(&(off, len)) = merged.last() {
            if off + len == global.next_offset {
                global.next_offset = off;
                merged.pop();
            }
        }
        let kept = merged.len() as u64;
        for (off, len) in merged {
            global.buckets[bucket_of(len, GLOBAL_BUCKETS)].push((off, len));
        }
        // Delta updates: frees racing the drain have already bumped the
        // counters for extents we never saw, so stores would lose them.
        fetch_signed(&self.bucket_extents, kept as i64 - drained_buckets as i64);
        fetch_signed(&self.global_hint, kept as i64 - drained_global as i64);
        self.coalesce_floor.store(kept, Ordering::Relaxed);
        true
    }

    /// Residual extent count left by the last coalesce pass (the trigger's
    /// re-arm baseline).
    pub fn coalesce_floor(&self) -> u64 {
        self.coalesce_floor.load(Ordering::Relaxed)
    }

    /// Lock-free view of the coalesce trigger inputs.
    pub fn bucket_extents(&self) -> u64 {
        self.bucket_extents.load(Ordering::Relaxed)
    }

    /// Free-extent count that triggers a lazy coalesce pass.
    pub fn coalesce_threshold(&self) -> u64 {
        self.coalesce_threshold.load(Ordering::Relaxed)
    }

    /// Overrides the lazy-coalesce threshold (tests, benches).
    pub fn set_coalesce_threshold(&self, threshold: u64) {
        self.coalesce_threshold
            .store(threshold.max(1), Ordering::Relaxed);
    }

    /// Base address of the global space.
    pub fn space_base(&self) -> u64 {
        self.global.lock().space_base
    }

    /// Records a new base, returning the previous one.
    pub fn set_space_base(&self, new_base: u64) -> u64 {
        let mut global = self.global.lock();
        std::mem::replace(&mut global.space_base, new_base)
    }

    /// Size of the global space in bytes.
    pub fn space_size(&self) -> u64 {
        self.global.lock().space_size
    }

    /// Locks every shard (ascending) plus the global arena, freezing the
    /// allocator for a consistent read. The registry holds the freeze while
    /// reading the WAL cut so checkpoints are exact.
    pub fn freeze(&self) -> FrozenSpace<'_> {
        FrozenSpace {
            shards: self.shards.iter().map(|s| s.lock()).collect(),
            global: self.global.lock(),
        }
    }

    /// Observability snapshot (computed under a short freeze).
    pub fn stats(&self) -> AllocStats {
        let frozen = self.freeze();
        let (free_list, _next) = frozen.canonical();
        drop(frozen);
        let free_bytes: u64 = free_list.iter().map(|&(_, len)| len).sum();
        let largest_free = free_list.iter().map(|&(_, len)| len).max().unwrap_or(0);
        let fragmentation_bp = (largest_free * 10_000)
            .checked_div(free_bytes)
            .map_or(0, |solid| 10_000 - solid);
        AllocStats {
            free_bytes,
            free_extents: free_list.len() as u64,
            largest_free,
            fragmentation_bp,
            lazy_coalesce_runs: self.lazy_coalesces.load(Ordering::Relaxed),
            forced_inline_coalesces: self.forced_coalesces.load(Ordering::Relaxed),
        }
    }
}

/// Adds a signed delta to an unsigned counter.
fn fetch_signed(counter: &AtomicU64, delta: i64) {
    if delta >= 0 {
        counter.fetch_add(delta as u64, Ordering::Relaxed);
    } else {
        counter.fetch_sub(delta.unsigned_abs(), Ordering::Relaxed);
    }
}

/// A consistent point-in-time view of the allocator (all locks held).
pub struct FrozenSpace<'a> {
    shards: Vec<MutexGuard<'a, Shard>>,
    global: MutexGuard<'a, GlobalArena>,
}

impl FrozenSpace<'_> {
    /// Base address of the global space.
    pub fn space_base(&self) -> u64 {
        self.global.space_base
    }

    /// Size of the global space.
    pub fn space_size(&self) -> u64 {
        self.global.space_size
    }

    /// The canonical `(free_list, next_offset)` pair: every free extent
    /// (bucketed or sitting in a shard slab) sorted and merged, with a
    /// frontier-adjacent extent absorbed into the bump pointer. This is
    /// byte-for-byte the state `reconcile` rebuilds from the live extents
    /// at load, which keeps crash-replayed registries bit-identical to the
    /// checkpoints the live daemon writes.
    pub fn canonical(&self) -> (Vec<(u64, u64)>, u64) {
        let mut extents: Vec<(u64, u64)> = Vec::new();
        for shard in &self.shards {
            for bucket in &shard.buckets {
                extents.extend_from_slice(bucket);
            }
            if shard.slab.0 < shard.slab.1 {
                extents.push((shard.slab.0, shard.slab.1 - shard.slab.0));
            }
        }
        for bucket in &self.global.buckets {
            extents.extend_from_slice(bucket);
        }
        extents.sort_unstable();
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(extents.len());
        for (off, len) in extents {
            match merged.last_mut() {
                Some((moff, mlen)) if *moff + *mlen == off => *mlen += len,
                _ => merged.push((off, len)),
            }
        }
        let mut next_offset = self.global.next_offset;
        if let Some(&(off, len)) = merged.last() {
            if off + len == next_offset {
                next_offset = off;
                merged.pop();
            }
        }
        (merged, next_offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: u64 = PAGE_SIZE as u64;

    fn fresh(size: u64) -> SpaceAlloc {
        SpaceAlloc::new(0, size, P, Vec::new())
    }

    #[test]
    fn alloc_is_page_granular_and_disjoint() {
        let alloc = fresh(1 << 30);
        let mut seen: Vec<(u64, u64)> = Vec::new();
        for size in [1, 100, P, P + 1, 17 * P] {
            let off = alloc.alloc(size).unwrap();
            let len = align_up(size as usize, PAGE_SIZE) as u64;
            assert_eq!(off % P, 0);
            for &(o, l) in &seen {
                assert!(off + len <= o || o + l <= off, "overlap at {off:#x}");
            }
            seen.push((off, len));
        }
    }

    #[test]
    fn free_then_alloc_reuses_after_coalesce() {
        let alloc = fresh(1 << 30);
        let a = alloc.alloc(P).unwrap();
        let b = alloc.alloc(P).unwrap();
        alloc.free(a, P);
        alloc.free(b, P);
        // Lazily: the two pages sit unmerged in shard buckets, so a 2-page
        // request cannot use them yet...
        assert_eq!(alloc.bucket_extents(), 2);
        // ...until a merge pass runs.
        assert!(alloc.coalesce(CoalesceKind::ForcedInline));
        let c = alloc.alloc(2 * P).unwrap();
        assert_eq!(c, a);
    }

    #[test]
    fn canonical_merges_and_absorbs_the_frontier() {
        let alloc = fresh(1 << 30);
        let a = alloc.alloc(P).unwrap();
        let _b = alloc.alloc(P).unwrap();
        let c = alloc.alloc(P).unwrap();
        alloc.free(a, P);
        alloc.free(c, P);
        let (free_list, next) = alloc.freeze().canonical();
        // `c` and the slab remainder merge into the frontier; `a` stays.
        assert_eq!(free_list, vec![(a, P)]);
        assert_eq!(next, c);
    }

    #[test]
    fn exhaustion_reclaims_slabs_before_failing() {
        // Space fits a slab exactly once; the second shard-sized request
        // must claw back the first shard's half-empty slab via the forced
        // coalesce, then genuinely fail only when nothing is left.
        let alloc = fresh(P + SLAB_BYTES);
        let a = alloc.alloc(P).unwrap();
        assert_eq!(a, P);
        // Slab holds the rest; a same-thread alloc bumps within it.
        let b = alloc.alloc(P).unwrap();
        assert_eq!(b, 2 * P);
        // Exhaust the slab remainder exactly.
        let rest = SLAB_BYTES - 2 * P;
        let c = alloc.alloc(rest).unwrap();
        assert_eq!(c, 3 * P);
        assert!(alloc.alloc(P).is_err());
        // Freeing makes it allocatable again (via the pressure coalesce).
        alloc.free(c, rest);
        let d = alloc.alloc(P).unwrap();
        assert_eq!(d, 3 * P);
    }

    #[test]
    fn large_allocations_bypass_shards() {
        let alloc = fresh(1 << 30);
        let big = alloc.alloc(SHARD_MAX_BYTES + P).unwrap();
        alloc.free(big, SHARD_MAX_BYTES + P);
        assert_eq!(alloc.bucket_extents(), 1);
        // Large frees land in global buckets, immediately reusable.
        let again = alloc.alloc(SHARD_MAX_BYTES + P).unwrap();
        assert_eq!(again, big);
    }

    #[test]
    fn stats_report_fragmentation() {
        let alloc = fresh(1 << 30);
        let offs: Vec<u64> = (0..8).map(|_| alloc.alloc(P).unwrap()).collect();
        // Free alternating pages: four 1-page islands.
        for chunk in offs.chunks(2) {
            alloc.free(chunk[0], P);
        }
        let stats = alloc.stats();
        assert_eq!(stats.free_extents, 4);
        assert_eq!(stats.free_bytes, 4 * P);
        assert_eq!(stats.largest_free, P);
        assert_eq!(stats.fragmentation_bp, 7_500);
        // One contiguous free region → fragmentation 0.
        let alloc = fresh(1 << 30);
        let a = alloc.alloc(P).unwrap();
        let _pin = alloc.alloc(P).unwrap();
        alloc.free(a, P);
        assert_eq!(alloc.stats().fragmentation_bp, 0);
    }
}
