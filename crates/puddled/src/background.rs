//! Background task scheduler: a submit queue plus a hashed timer wheel,
//! executed by one daemon-owned worker thread.
//!
//! The daemon keeps latency-insensitive work — WAL checkpoints and the
//! space allocator's lazy coalesce passes (see [`crate::registry`] and
//! [`crate::alloc`]) — off the request path by handing it to this
//! scheduler: a request that *triggers* such work enqueues it and returns,
//! instead of absorbing the work's latency inline. Two entry points:
//!
//! * [`Background::submit`] — run a task as soon as the worker is free
//!   (FIFO);
//! * [`Background::submit_after`] — run a task once a delay elapses, via a
//!   single-level **hashed timer wheel** ([`TIMER_SLOTS`] slots of
//!   [`TIMER_TICK`]; entries further out than one revolution carry a rounds
//!   counter), so thousands of pending timers cost O(1) per tick.
//!
//! # Shutdown
//!
//! [`Background::shutdown`] *drains*: every task already submitted — queued
//! or parked on the wheel — runs before the worker exits, so a checkpoint
//! enqueued moments before the daemon stops still lands on disk. Tasks
//! submitted after shutdown run inline in the submitter, preserving the
//! "submitted means executed" guarantee. (A *crash*, by contrast, loses
//! queued tasks by design — WAL replay covers exactly that window.)
//!
//! [`Background::pause`] / [`Background::resume`] exist for tests that need
//! a deterministically stalled scheduler (e.g. to force the registry's
//! inline-checkpoint fallback); shutdown overrides a pause.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use puddles_pmem::clock::Clock;

/// A unit of background work.
pub type Task = Box<dyn FnOnce() + Send + 'static>;

/// Width of one timer-wheel tick.
pub const TIMER_TICK: Duration = Duration::from_millis(10);

/// Number of slots in the wheel (one revolution = `TIMER_SLOTS` ticks).
pub const TIMER_SLOTS: usize = 256;

/// One entry parked on the wheel.
struct TimerEntry {
    /// Revolutions left before the entry is due when its slot comes up.
    rounds: u64,
    task: Task,
}

/// The hashed timer wheel. Time advances in fixed ticks; an entry lands in
/// slot `(cursor + delay_ticks) % TIMER_SLOTS` with `delay_ticks /
/// TIMER_SLOTS` rounds, and fires when the cursor reaches its slot with
/// zero rounds remaining.
struct TimerWheel {
    slots: Vec<Vec<TimerEntry>>,
    /// Slot the next tick will process.
    cursor: usize,
    /// Ticks processed since `epoch`.
    ticks: u64,
    /// Clock reading the wheel was created at; tick math is relative to it.
    epoch: Duration,
    /// Entries currently parked (avoids scanning 256 slots to learn "any?").
    len: usize,
}

impl TimerWheel {
    fn new(epoch: Duration) -> TimerWheel {
        TimerWheel {
            slots: (0..TIMER_SLOTS).map(|_| Vec::new()).collect(),
            cursor: 0,
            ticks: 0,
            epoch,
            len: 0,
        }
    }

    fn insert(&mut self, delay: Duration, task: Task) {
        // At least one full tick out, so a zero delay still goes through the
        // wheel (submit() is the path for "now").
        let delay_ticks = (delay.as_nanos() / TIMER_TICK.as_nanos()).max(1) as u64;
        let slot = (self.cursor + delay_ticks as usize) % TIMER_SLOTS;
        // The cursor first *reaches* the slot after `delay_ticks` ticks
        // when `delay_ticks <= TIMER_SLOTS`, so that arrival must already
        // count: rounds is the number of full revolutions *beyond* the
        // first arrival ((delay_ticks - 1) / SLOTS, not delay_ticks /
        // SLOTS — the latter fires exact-revolution delays one revolution
        // late).
        let rounds = (delay_ticks - 1) / TIMER_SLOTS as u64;
        self.slots[slot].push(TimerEntry { rounds, task });
        self.len += 1;
    }

    /// Advances the wheel up to `now` (a clock reading), collecting every
    /// due task.
    fn advance(&mut self, now: Duration, due: &mut Vec<Task>) {
        let target = (now.saturating_sub(self.epoch).as_nanos() / TIMER_TICK.as_nanos()) as u64;
        while self.ticks < target {
            self.ticks += 1;
            self.cursor = (self.cursor + 1) % TIMER_SLOTS;
            let slot = &mut self.slots[self.cursor];
            let mut keep = Vec::new();
            for mut entry in slot.drain(..) {
                if entry.rounds == 0 {
                    self.len -= 1;
                    due.push(entry.task);
                } else {
                    entry.rounds -= 1;
                    keep.push(entry);
                }
            }
            *slot = keep;
            if self.len == 0 {
                // Nothing parked: skip straight to `target` (keeping the
                // `cursor == ticks % TIMER_SLOTS` invariant) so an idle
                // scheduler does not spin through empty ticks.
                self.ticks = target;
                self.cursor = (target % TIMER_SLOTS as u64) as usize;
                break;
            }
        }
    }

    /// Clock reading of the next tick worth waking for, if anything is
    /// parked.
    fn next_wake(&self) -> Option<Duration> {
        if self.len == 0 {
            return None;
        }
        let next = Duration::from_nanos(TIMER_TICK.as_nanos() as u64 * (self.ticks + 1));
        Some(self.epoch + next)
    }

    /// Takes every parked entry, due or not (shutdown drain).
    fn drain_all(&mut self, due: &mut Vec<Task>) {
        for slot in &mut self.slots {
            for entry in slot.drain(..) {
                due.push(entry.task);
            }
        }
        self.len = 0;
    }
}

struct State {
    queue: VecDeque<Task>,
    wheel: TimerWheel,
    shutdown: bool,
    paused: bool,
}

struct Inner {
    state: Mutex<State>,
    wake: Condvar,
    /// Time source for the wheel and the idle wait; virtual under test.
    clock: Clock,
    /// Tasks completed since start (drained tasks included).
    executed: AtomicU64,
    thread: Mutex<Option<JoinHandle<()>>>,
}

/// Handle to the daemon's background scheduler. Clones share one worker.
#[derive(Clone)]
pub struct Background {
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Background {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.inner.state.lock().unwrap();
        f.debug_struct("Background")
            .field("queued", &state.queue.len())
            .field("timers", &state.wheel.len)
            .field("executed", &self.inner.executed.load(Ordering::Relaxed))
            .field("shutdown", &state.shutdown)
            .finish()
    }
}

impl Background {
    /// Starts the scheduler's worker thread on the real clock.
    pub fn start(name: &str) -> Background {
        Background::start_with_clock(name, Clock::real())
    }

    /// Starts the scheduler's worker thread reading time from `clock` —
    /// a virtual clock makes the wheel's timeline test-controlled.
    pub fn start_with_clock(name: &str, clock: Clock) -> Background {
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                wheel: TimerWheel::new(clock.now()),
                shutdown: false,
                paused: false,
            }),
            wake: Condvar::new(),
            clock,
            executed: AtomicU64::new(0),
            thread: Mutex::new(None),
        });
        let worker_inner = Arc::clone(&inner);
        let handle = std::thread::Builder::new()
            .name(name.to_string())
            .spawn(move || worker_loop(worker_inner))
            .expect("spawn background worker");
        *inner.thread.lock().unwrap() = Some(handle);
        Background { inner }
    }

    /// Enqueues `task` to run as soon as the worker is free. After
    /// [`Background::shutdown`] the task runs inline in the caller instead
    /// (submitted work is never silently dropped).
    pub fn submit(&self, task: Task) {
        {
            let mut state = self.inner.state.lock().unwrap();
            if !state.shutdown {
                state.queue.push_back(task);
                self.inner.wake.notify_one();
                return;
            }
        }
        task();
        self.inner.executed.fetch_add(1, Ordering::Relaxed);
    }

    /// Parks `task` on the timer wheel to run once `delay` has elapsed
    /// (rounded up to the next tick). After shutdown the task runs inline
    /// immediately.
    pub fn submit_after(&self, delay: Duration, task: Task) {
        {
            let mut state = self.inner.state.lock().unwrap();
            if !state.shutdown {
                state.wheel.insert(delay, task);
                self.inner.wake.notify_one();
                return;
            }
        }
        task();
        self.inner.executed.fetch_add(1, Ordering::Relaxed);
    }

    /// Tasks completed so far (including inline-after-shutdown ones).
    pub fn executed(&self) -> u64 {
        self.inner.executed.load(Ordering::Relaxed)
    }

    /// Tasks submitted but not yet run (queue + wheel).
    pub fn pending(&self) -> usize {
        let state = self.inner.state.lock().unwrap();
        state.queue.len() + state.wheel.len
    }

    /// Stops the worker from picking up tasks (they keep queueing). Test
    /// hook for forcing "scheduler saturated" conditions deterministically.
    pub fn pause(&self) {
        self.inner.state.lock().unwrap().paused = true;
    }

    /// Resumes a paused worker.
    pub fn resume(&self) {
        let mut state = self.inner.state.lock().unwrap();
        state.paused = false;
        self.inner.wake.notify_one();
    }

    /// `true` once [`Background::shutdown`] has been requested. Recurring
    /// tasks check this before re-arming themselves, so a drain cannot turn
    /// into an infinite re-schedule loop.
    pub fn is_shutdown(&self) -> bool {
        self.inner.state.lock().unwrap().shutdown
    }

    /// Drains and stops: every task submitted before this call — queued or
    /// parked on the wheel — is executed, then the worker thread is joined.
    /// Idempotent; overrides a pause.
    pub fn shutdown(&self) {
        {
            let mut state = self.inner.state.lock().unwrap();
            state.shutdown = true;
            state.paused = false;
            self.inner.wake.notify_all();
        }
        // Joining from the worker itself (a task calling shutdown) would
        // deadlock; the flag alone stops the loop in that case.
        let handle = self.inner.thread.lock().unwrap().take();
        if let Some(handle) = handle {
            if handle.thread().id() != std::thread::current().id() {
                let _ = handle.join();
            }
        }
    }
}

fn worker_loop(inner: Arc<Inner>) {
    let mut due: Vec<Task> = Vec::new();
    let mut state = inner.state.lock().unwrap();
    loop {
        if state.shutdown {
            // Drain: everything already submitted runs before we exit.
            due.extend(state.queue.drain(..));
            state.wheel.drain_all(&mut due);
            drop(state);
            for task in due.drain(..) {
                task();
                inner.executed.fetch_add(1, Ordering::Relaxed);
            }
            return;
        }
        if !state.paused {
            state.wheel.advance(inner.clock.now(), &mut due);
            if let Some(task) = state.queue.pop_front() {
                due.push(task);
            }
            if !due.is_empty() {
                drop(state);
                for task in due.drain(..) {
                    task();
                    inner.executed.fetch_add(1, Ordering::Relaxed);
                }
                state = inner.state.lock().unwrap();
                continue;
            }
        }
        // Idle: sleep until the next timer tick (or indefinitely when the
        // wheel is empty or we are paused); submits notify the condvar.
        let wake_at = if state.paused {
            None
        } else {
            state.wheel.next_wake()
        };
        state = match wake_at {
            Some(at) => {
                let timeout = at
                    .saturating_sub(inner.clock.now())
                    .max(Duration::from_millis(1));
                inner.clock.wait_timeout(state, &inner.wake, timeout).0
            }
            None => inner.wake.wait(state).unwrap(),
        };
    }
}

impl Drop for Inner {
    fn drop(&mut self) {
        // Last handle gone without an explicit shutdown: stop the worker
        // (it is detached if still parked; the condvar wake below lets it
        // exit promptly).
        if let Ok(mut state) = self.state.lock() {
            state.shutdown = true;
        }
        self.wake.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn counter_task(counter: &Arc<AtomicUsize>) -> Task {
        let counter = Arc::clone(counter);
        Box::new(move || {
            counter.fetch_add(1, Ordering::SeqCst);
        })
    }

    fn wait_for(pred: impl Fn() -> bool, what: &str) {
        let real = Clock::real();
        let deadline = real.now() + Duration::from_secs(5);
        while !pred() {
            assert!(real.now() < deadline, "timed out waiting for {what}");
            real.sleep(Duration::from_millis(2));
        }
    }

    #[test]
    fn submitted_tasks_run_in_fifo_order() {
        let bg = Background::start("bg-test");
        let order = Arc::new(Mutex::new(Vec::new()));
        for i in 0..10 {
            let order = Arc::clone(&order);
            bg.submit(Box::new(move || order.lock().unwrap().push(i)));
        }
        wait_for(|| bg.executed() >= 10, "10 tasks");
        assert_eq!(*order.lock().unwrap(), (0..10).collect::<Vec<_>>());
        bg.shutdown();
    }

    #[test]
    fn timer_tasks_fire_after_their_delay() {
        let bg = Background::start("bg-timer");
        let real = Clock::real();
        let hits = Arc::new(AtomicUsize::new(0));
        let start = real.now();
        bg.submit_after(Duration::from_millis(50), counter_task(&hits));
        // A short-delay task must not wait for the long one.
        bg.submit_after(Duration::from_millis(10), counter_task(&hits));
        wait_for(|| hits.load(Ordering::SeqCst) >= 1, "first timer");
        assert!(real.now() - start < Duration::from_millis(45));
        wait_for(|| hits.load(Ordering::SeqCst) == 2, "second timer");
        assert!(real.now() - start >= Duration::from_millis(50));
        bg.shutdown();
    }

    #[test]
    fn timer_beyond_one_wheel_revolution_still_fires() {
        // > TIMER_SLOTS * TICK would take seconds; instead park an entry
        // whose delay wraps the wheel exactly once via the rounds counter.
        let mut wheel = TimerWheel::new(Duration::ZERO);
        let fired = Arc::new(AtomicUsize::new(0));
        let f = Arc::clone(&fired);
        wheel.insert(
            TIMER_TICK * (TIMER_SLOTS as u32 + 3),
            Box::new(move || {
                f.fetch_add(1, Ordering::SeqCst);
            }),
        );
        let mut due = Vec::new();
        // One full revolution: the entry's slot comes up but rounds > 0.
        wheel.advance(wheel.epoch + TIMER_TICK * TIMER_SLOTS as u32, &mut due);
        assert!(due.is_empty());
        // Three more ticks: now it is due.
        wheel.advance(
            wheel.epoch + TIMER_TICK * (TIMER_SLOTS as u32 + 3),
            &mut due,
        );
        assert_eq!(due.len(), 1);
        for task in due.drain(..) {
            task();
        }
        assert_eq!(fired.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn timer_at_exactly_one_revolution_fires_on_time() {
        // delay == TIMER_SLOTS ticks lands on the cursor's own slot; the
        // first arrival (one full revolution later) must fire it — not a
        // second revolution.
        let mut wheel = TimerWheel::new(Duration::ZERO);
        let fired = Arc::new(AtomicUsize::new(0));
        let f = Arc::clone(&fired);
        wheel.insert(
            TIMER_TICK * TIMER_SLOTS as u32,
            Box::new(move || {
                f.fetch_add(1, Ordering::SeqCst);
            }),
        );
        let mut due = Vec::new();
        wheel.advance(
            wheel.epoch + TIMER_TICK * (TIMER_SLOTS as u32 - 1),
            &mut due,
        );
        assert!(due.is_empty(), "one tick early must not fire");
        wheel.advance(wheel.epoch + TIMER_TICK * TIMER_SLOTS as u32, &mut due);
        assert_eq!(due.len(), 1, "exact-revolution delay fired late");
    }

    #[test]
    fn shutdown_drains_queued_and_parked_tasks() {
        let bg = Background::start("bg-drain");
        bg.pause();
        let hits = Arc::new(AtomicUsize::new(0));
        for _ in 0..5 {
            bg.submit(counter_task(&hits));
        }
        // Parked far in the future: drain must run it anyway.
        bg.submit_after(Duration::from_secs(3600), counter_task(&hits));
        assert_eq!(hits.load(Ordering::SeqCst), 0, "paused worker ran a task");
        assert_eq!(bg.pending(), 6);
        bg.shutdown();
        assert_eq!(hits.load(Ordering::SeqCst), 6);
        assert_eq!(bg.pending(), 0);
        // Submit-after-shutdown runs inline, never silently dropped.
        bg.submit(counter_task(&hits));
        assert_eq!(hits.load(Ordering::SeqCst), 7);
    }

    #[test]
    fn pause_blocks_and_resume_releases() {
        let bg = Background::start("bg-pause");
        bg.pause();
        let hits = Arc::new(AtomicUsize::new(0));
        bg.submit(counter_task(&hits));
        Clock::real().sleep(Duration::from_millis(30));
        assert_eq!(hits.load(Ordering::SeqCst), 0);
        bg.resume();
        wait_for(|| hits.load(Ordering::SeqCst) == 1, "resumed task");
        bg.shutdown();
    }

    #[test]
    fn virtual_clock_timers_fire_only_when_time_advances() {
        let clock = Clock::simulated(42);
        let vc = clock.virtual_clock().unwrap().clone();
        vc.set_auto_advance(false);
        let bg = Background::start_with_clock("bg-virtual", clock);
        let hits = Arc::new(AtomicUsize::new(0));
        bg.submit_after(Duration::from_millis(50), counter_task(&hits));
        bg.submit_after(Duration::from_millis(10), counter_task(&hits));
        // Immediate tasks still run: the worker is live, time is frozen.
        bg.submit(counter_task(&hits));
        wait_for(|| bg.executed() >= 1, "immediate task under frozen time");
        assert_eq!(
            hits.load(Ordering::SeqCst),
            1,
            "timer fired with time frozen"
        );
        vc.advance(Duration::from_millis(10));
        wait_for(
            || hits.load(Ordering::SeqCst) == 2,
            "10ms timer after advance",
        );
        assert_eq!(hits.load(Ordering::SeqCst), 2, "50ms timer fired early");
        vc.advance(Duration::from_millis(40));
        wait_for(
            || hits.load(Ordering::SeqCst) == 3,
            "50ms timer after advance",
        );
        bg.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent_and_safe_from_clones() {
        let bg = Background::start("bg-idem");
        let clone = bg.clone();
        bg.shutdown();
        clone.shutdown();
        assert_eq!(bg.pending(), 0);
    }
}
