//! UNIX-like access control for puddles (§4.6).
//!
//! The daemon owns every puddle file; applications never touch the files
//! directly. Instead the daemon keeps a per-puddle owner uid/gid and a
//! permission mode, and checks the requesting client's credentials against
//! them — the same owner/group/other read-write model as UNIX files.

use puddles_proto::Credentials;

/// The kind of access being requested.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Read-only mapping.
    Read,
    /// Read-write mapping (required to log against the puddle).
    Write,
}

/// Returns `true` if `creds` may access a puddle owned by
/// (`owner_uid`, `owner_gid`) with permission bits `mode`.
///
/// `mode` uses the standard octal layout (e.g. `0o640`): owner bits in the
/// hundreds place, group bits in the tens, other bits in the ones. Only the
/// read (4) and write (2) bits are interpreted. Uid 0 bypasses the check,
/// matching the usual superuser convention.
pub fn check(
    creds: Credentials,
    owner_uid: u32,
    owner_gid: u32,
    mode: u32,
    access: Access,
) -> bool {
    if creds.uid == 0 {
        return true;
    }
    let bits = if creds.uid == owner_uid {
        (mode >> 6) & 0o7
    } else if creds.gid == owner_gid {
        (mode >> 3) & 0o7
    } else {
        mode & 0o7
    };
    match access {
        Access::Read => bits & 0o4 != 0,
        Access::Write => bits & 0o2 != 0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const OWNER: Credentials = Credentials { uid: 100, gid: 10 };
    const GROUP: Credentials = Credentials { uid: 200, gid: 10 };
    const OTHER: Credentials = Credentials { uid: 300, gid: 30 };
    const ROOT: Credentials = Credentials { uid: 0, gid: 0 };

    #[test]
    fn owner_group_other_bits_are_respected() {
        let mode = 0o640;
        assert!(check(OWNER, 100, 10, mode, Access::Read));
        assert!(check(OWNER, 100, 10, mode, Access::Write));
        assert!(check(GROUP, 100, 10, mode, Access::Read));
        assert!(!check(GROUP, 100, 10, mode, Access::Write));
        assert!(!check(OTHER, 100, 10, mode, Access::Read));
        assert!(!check(OTHER, 100, 10, mode, Access::Write));
    }

    #[test]
    fn root_bypasses_checks() {
        assert!(check(ROOT, 100, 10, 0o000, Access::Write));
    }

    #[test]
    fn world_readable_puddle() {
        let mode = 0o644;
        assert!(check(OTHER, 100, 10, mode, Access::Read));
        assert!(!check(OTHER, 100, 10, mode, Access::Write));
    }

    #[test]
    fn owner_without_write_bit_cannot_write() {
        // Models the paper's "credentials expired" scenario: the user can no
        // longer obtain write access, yet recovery must still be possible
        // because the daemon (not the user) replays the logs.
        let mode = 0o400;
        assert!(check(OWNER, 100, 10, mode, Access::Read));
        assert!(!check(OWNER, 100, 10, mode, Access::Write));
    }
}
