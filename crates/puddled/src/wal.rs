//! Append-only metadata WAL: the registry's persistence engine.
//!
//! The paper's daemon keeps its metadata in a persistent hash map so each
//! mutation persists incrementally (§4.2). Our registry previously rewrote
//! the *entire* JSON document on every mutation — O(registry) per op. This
//! module makes steady-state persistence O(record):
//!
//! * every registry mutation appends one checksummed, length-prefixed
//!   [`RegistryOp`] record to `meta/registry.wal` (framing modeled on
//!   `puddles_logfmt::entry`: the checksum covers the header fields and the
//!   payload, so a torn append is detected and the tail discarded);
//! * **group commit**: concurrent mutators enqueue records under their
//!   registry shard locks and a single *leader* thread writes and fsyncs
//!   the whole batch, so N concurrent mutations cost one `fdatasync`;
//! * when the WAL grows past a byte threshold the registry writes an
//!   **incremental checkpoint** — the JSON snapshot, atomically renamed —
//!   and truncates the WAL to the records the checkpoint does not cover;
//! * recovery loads the checkpoint and replays the WAL tail (skipping
//!   records below the checkpoint's sequence floor, tolerating a torn
//!   final record) before the registry's reconcile pass.
//!
//! # Record layout
//!
//! ```text
//! [checksum: u64 LE][seq: u64 LE][len: u32 LE][pad: u32 = 0]
//! [payload: len bytes][zero pad to 8 bytes]
//! ```
//!
//! The payload is a **binary-encoded** [`RegistryOp`]: a version byte
//! ([`WAL_BINARY_VERSION`]), a variant tag, then the fields as fixed-width
//! little-endian integers and length-prefixed strings — roughly 3–5x
//! smaller than the JSON records of earlier daemons and much cheaper to
//! encode on the group-commit path. Records whose first payload byte is not
//! the version byte are decoded as legacy JSON, so WALs written before the
//! format change still replay. Checkpoint snapshots remain JSON (they are
//! rewritten wholesale and benefit from being inspectable).
//!
//! `seq` increases by one per record and never resets (a checkpoint records
//! the sequence floor it covers), so replay after a crash *between* the
//! checkpoint rename and the WAL truncation does not re-apply stale records
//! over newer state.

use crate::registry::{LogSpaceRecord, PoolRecord, PuddleRecord, RegistryData};
use puddles_pmem::checksum::{fnv1a64, fnv1a64_with_seed};
use puddles_pmem::failpoint::{self, names};
use puddles_pmem::faultio::{
    self, FaultPlan, FaultSite, IoStats, SyncFault, WriteFault, MAX_IO_RETRIES,
};
use puddles_pmem::pmdir::PmDir;
use puddles_pmem::util::align_up;
use puddles_pmem::{PmError, Result};
use puddles_proto::{PtrField, PtrMapDecl, PuddleId, PuddlePurpose, Translation};
use serde::{Deserialize, Serialize};
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use puddles_pmem::clock::Clock;
use puddles_pmem::obs::{Metrics, TraceEventKind};

/// Name of the WAL file inside the PM directory's `meta/` subdirectory.
pub const WAL_FILE: &str = "registry.wal";

/// Size of the on-disk record header in bytes.
pub const RECORD_HEADER_SIZE: usize = 24;

/// Payload alignment inside the WAL (matches `logfmt::ENTRY_ALIGN`).
const RECORD_ALIGN: usize = 8;

/// Upper bound on a single record's payload; guards decode against a
/// corrupt length prefix.
const MAX_RECORD: usize = 16 << 20;

/// Default WAL size at which the registry writes a checkpoint and truncates.
pub const DEFAULT_CHECKPOINT_BYTES: u64 = 1 << 20;

/// Multiplier on the checkpoint threshold giving the **hard ceiling**: past
/// it the registry checkpoints inline on the request path even when a
/// background checkpoint is queued (the scheduler has fallen behind and the
/// WAL must not grow without bound). Overridable per WAL with
/// [`Wal::set_checkpoint_hard_ceiling`].
pub const DEFAULT_HARD_CEILING_FACTOR: u64 = 8;

/// A shared handle to the daemon's metadata WAL; `service` threads one
/// through the registry and keeps a clone for `Stats`.
pub type WalHandle = Arc<Wal>;

/// One registry mutation, as persisted in the WAL.
///
/// Ops are **idempotent puts and removes** keyed like the registry tables,
/// so replaying a prefix of the WAL (after a torn tail) or a suffix that
/// partially overlaps the checkpoint always lands on a state the load-time
/// reconcile can finish healing.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub enum RegistryOp {
    /// Insert or replace a puddle record.
    PutPuddle(PuddleRecord),
    /// Remove a puddle record.
    DropPuddle {
        /// The removed puddle.
        id: PuddleId,
    },
    /// Insert or replace a pool record (pool creation, root assignment;
    /// membership churn uses the O(1) delta ops below so a large pool does
    /// not make every registration log its whole member list).
    PutPool(PoolRecord),
    /// Remove a pool record.
    DropPool {
        /// The removed pool's name.
        name: String,
    },
    /// Append one puddle to a pool's member list.
    AddPoolMember {
        /// The pool gaining a member.
        pool: String,
        /// The joining puddle.
        id: PuddleId,
    },
    /// Remove one puddle from a pool's member list.
    RemovePoolMember {
        /// The pool losing a member.
        pool: String,
        /// The leaving puddle.
        id: PuddleId,
    },
    /// Register (or replace) a pointer map.
    PutPtrMap(PtrMapDecl),
    /// Register a log space, replacing an older registration of the puddle.
    PutLogSpace(LogSpaceRecord),
    /// Mark a log space invalid (its logs are never replayed again).
    InvalidateLogSpace {
        /// The log-space puddle.
        puddle: PuddleId,
    },
    /// The allocator granted `[offset, offset + len)` of the global space.
    AllocExtent {
        /// Offset of the granted extent.
        offset: u64,
        /// Page-aligned length of the granted extent.
        len: u64,
    },
    /// The allocator returned `[offset, offset + len)` to the free list.
    FreeExtent {
        /// Offset of the freed extent.
        offset: u64,
        /// Page-aligned length of the freed extent.
        len: u64,
    },
}

/// Applies one replayed op to a loaded registry document.
///
/// Allocator ops mirror the *logical* effect of `alloc_space`/`free_space`
/// on the flat document schema (first-fit grant, push-and-merge free); the
/// reconcile pass that follows replay rebuilds the allocator from live
/// extents anyway — and since PR 7 seeds the segregated buckets from the
/// result — so they only need to be approximately faithful, and WALs
/// written before the segregated allocator replay unchanged. `next_seq` is
/// re-derived from
/// the ids of created puddles (ids embed the daemon's sequence counter in
/// their low 64 bits).
pub fn apply_op(data: &mut RegistryData, op: &RegistryOp) {
    match op {
        RegistryOp::PutPuddle(rec) => {
            data.next_seq = data.next_seq.max(rec.id.0 as u64);
            data.puddles.insert(rec.id.to_hex(), rec.clone());
        }
        RegistryOp::DropPuddle { id } => {
            data.puddles.remove(&id.to_hex());
        }
        RegistryOp::PutPool(rec) => {
            data.pools.insert(rec.name.clone(), rec.clone());
        }
        RegistryOp::DropPool { name } => {
            data.pools.remove(name);
        }
        RegistryOp::AddPoolMember { pool, id } => {
            if let Some(record) = data.pools.get_mut(pool) {
                if !record.puddles.contains(id) {
                    record.puddles.push(*id);
                }
            }
        }
        RegistryOp::RemovePoolMember { pool, id } => {
            if let Some(record) = data.pools.get_mut(pool) {
                record.puddles.retain(|member| member != id);
            }
        }
        RegistryOp::PutPtrMap(decl) => {
            data.ptr_maps.insert(decl.type_id.to_string(), decl.clone());
        }
        RegistryOp::PutLogSpace(rec) => {
            data.log_spaces.retain(|e| e.puddle != rec.puddle);
            data.log_spaces.push(rec.clone());
        }
        RegistryOp::InvalidateLogSpace { puddle } => {
            for ls in data.log_spaces.iter_mut() {
                if ls.puddle == *puddle {
                    ls.invalid = true;
                }
            }
        }
        RegistryOp::AllocExtent { offset, len } => {
            if let Some(pos) = data
                .free_list
                .iter()
                .position(|&(o, l)| o == *offset && l >= *len)
            {
                let (o, l) = data.free_list[pos];
                if l == *len {
                    data.free_list.remove(pos);
                } else {
                    data.free_list[pos] = (o + len, l - len);
                }
            } else {
                data.next_offset = data.next_offset.max(offset + len);
            }
        }
        RegistryOp::FreeExtent { offset, len } => {
            data.free_list.push((*offset, *len));
            data.free_list.sort_unstable();
            let mut merged: Vec<(u64, u64)> = Vec::with_capacity(data.free_list.len());
            for (off, l) in data.free_list.drain(..) {
                match merged.last_mut() {
                    Some((moff, mlen)) if *moff + *mlen == off => *mlen += l,
                    _ => merged.push((off, l)),
                }
            }
            data.free_list = merged;
        }
    }
}

// ---------------------------------------------------------------------
// Binary op encoding.
// ---------------------------------------------------------------------

/// First payload byte of a binary-encoded record. JSON payloads start with
/// `{` (0x7b), so this byte doubles as the format discriminator for replay
/// of WALs written by earlier daemons.
pub const WAL_BINARY_VERSION: u8 = 0x01;

/// Variant tags of the binary [`RegistryOp`] encoding. Stable on-disk
/// values: append only, never renumber.
mod tag {
    pub const PUT_PUDDLE: u8 = 1;
    pub const DROP_PUDDLE: u8 = 2;
    pub const PUT_POOL: u8 = 3;
    pub const DROP_POOL: u8 = 4;
    pub const ADD_POOL_MEMBER: u8 = 5;
    pub const REMOVE_POOL_MEMBER: u8 = 6;
    pub const PUT_PTR_MAP: u8 = 7;
    pub const PUT_LOG_SPACE: u8 = 8;
    pub const INVALIDATE_LOG_SPACE: u8 = 9;
    pub const ALLOC_EXTENT: u8 = 10;
    pub const FREE_EXTENT: u8 = 11;
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u128(out: &mut Vec<u8>, v: u128) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

fn put_purpose(out: &mut Vec<u8>, p: PuddlePurpose) {
    out.push(match p {
        PuddlePurpose::Data => 0,
        PuddlePurpose::Log => 1,
        PuddlePurpose::LogSpace => 2,
    });
}

/// Encodes one op as a versioned binary payload.
pub fn encode_op(op: &RegistryOp) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.push(WAL_BINARY_VERSION);
    match op {
        RegistryOp::PutPuddle(rec) => {
            out.push(tag::PUT_PUDDLE);
            put_u128(&mut out, rec.id.0);
            put_u64(&mut out, rec.size);
            put_u64(&mut out, rec.offset);
            put_str(&mut out, &rec.file);
            put_purpose(&mut out, rec.purpose);
            put_u32(&mut out, rec.owner_uid);
            put_u32(&mut out, rec.owner_gid);
            put_u32(&mut out, rec.mode);
            match &rec.pool {
                Some(pool) => {
                    out.push(1);
                    put_str(&mut out, pool);
                }
                None => out.push(0),
            }
            out.push(rec.needs_rewrite as u8);
            put_u32(&mut out, rec.translations.len() as u32);
            for t in &rec.translations {
                put_u64(&mut out, t.old_addr);
                put_u64(&mut out, t.new_addr);
                put_u64(&mut out, t.len);
            }
        }
        RegistryOp::DropPuddle { id } => {
            out.push(tag::DROP_PUDDLE);
            put_u128(&mut out, id.0);
        }
        RegistryOp::PutPool(rec) => {
            out.push(tag::PUT_POOL);
            put_str(&mut out, &rec.name);
            put_u128(&mut out, rec.root.0);
            put_u32(&mut out, rec.puddles.len() as u32);
            for id in &rec.puddles {
                put_u128(&mut out, id.0);
            }
        }
        RegistryOp::DropPool { name } => {
            out.push(tag::DROP_POOL);
            put_str(&mut out, name);
        }
        RegistryOp::AddPoolMember { pool, id } => {
            out.push(tag::ADD_POOL_MEMBER);
            put_str(&mut out, pool);
            put_u128(&mut out, id.0);
        }
        RegistryOp::RemovePoolMember { pool, id } => {
            out.push(tag::REMOVE_POOL_MEMBER);
            put_str(&mut out, pool);
            put_u128(&mut out, id.0);
        }
        RegistryOp::PutPtrMap(decl) => {
            out.push(tag::PUT_PTR_MAP);
            put_u64(&mut out, decl.type_id);
            put_str(&mut out, &decl.type_name);
            put_u64(&mut out, decl.size);
            put_u32(&mut out, decl.fields.len() as u32);
            for f in &decl.fields {
                put_u64(&mut out, f.offset);
                put_u64(&mut out, f.target_type);
            }
        }
        RegistryOp::PutLogSpace(rec) => {
            out.push(tag::PUT_LOG_SPACE);
            put_u128(&mut out, rec.puddle.0);
            put_u32(&mut out, rec.owner_uid);
            put_u32(&mut out, rec.owner_gid);
            out.push(rec.invalid as u8);
        }
        RegistryOp::InvalidateLogSpace { puddle } => {
            out.push(tag::INVALIDATE_LOG_SPACE);
            put_u128(&mut out, puddle.0);
        }
        RegistryOp::AllocExtent { offset, len } => {
            out.push(tag::ALLOC_EXTENT);
            put_u64(&mut out, *offset);
            put_u64(&mut out, *len);
        }
        RegistryOp::FreeExtent { offset, len } => {
            out.push(tag::FREE_EXTENT);
            put_u64(&mut out, *offset);
            put_u64(&mut out, *len);
        }
    }
    out
}

/// Bounds-checked sequential reader over a binary payload.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let slice = self.bytes.get(self.pos..self.pos.checked_add(n)?)?;
        self.pos += n;
        Some(slice)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().unwrap()))
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap()))
    }

    fn u128(&mut self) -> Option<u128> {
        self.take(16)
            .map(|b| u128::from_le_bytes(b.try_into().unwrap()))
    }

    fn string(&mut self) -> Option<String> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }

    fn bool(&mut self) -> Option<bool> {
        match self.u8()? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }

    fn purpose(&mut self) -> Option<PuddlePurpose> {
        match self.u8()? {
            0 => Some(PuddlePurpose::Data),
            1 => Some(PuddlePurpose::Log),
            2 => Some(PuddlePurpose::LogSpace),
            _ => None,
        }
    }

    fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

fn decode_binary_op(payload: &[u8]) -> Option<RegistryOp> {
    let mut r = Reader::new(payload);
    let op = match r.u8()? {
        tag::PUT_PUDDLE => {
            let id = PuddleId(r.u128()?);
            let size = r.u64()?;
            let offset = r.u64()?;
            let file = r.string()?;
            let purpose = r.purpose()?;
            let owner_uid = r.u32()?;
            let owner_gid = r.u32()?;
            let mode = r.u32()?;
            let pool = if r.bool()? { Some(r.string()?) } else { None };
            let needs_rewrite = r.bool()?;
            let n = r.u32()? as usize;
            let mut translations = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                translations.push(Translation {
                    old_addr: r.u64()?,
                    new_addr: r.u64()?,
                    len: r.u64()?,
                });
            }
            RegistryOp::PutPuddle(PuddleRecord {
                id,
                size,
                offset,
                file,
                purpose,
                owner_uid,
                owner_gid,
                mode,
                pool,
                needs_rewrite,
                translations,
            })
        }
        tag::DROP_PUDDLE => RegistryOp::DropPuddle {
            id: PuddleId(r.u128()?),
        },
        tag::PUT_POOL => {
            let name = r.string()?;
            let root = PuddleId(r.u128()?);
            let n = r.u32()? as usize;
            let mut puddles = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                puddles.push(PuddleId(r.u128()?));
            }
            RegistryOp::PutPool(PoolRecord {
                name,
                root,
                puddles,
            })
        }
        tag::DROP_POOL => RegistryOp::DropPool { name: r.string()? },
        tag::ADD_POOL_MEMBER => RegistryOp::AddPoolMember {
            pool: r.string()?,
            id: PuddleId(r.u128()?),
        },
        tag::REMOVE_POOL_MEMBER => RegistryOp::RemovePoolMember {
            pool: r.string()?,
            id: PuddleId(r.u128()?),
        },
        tag::PUT_PTR_MAP => {
            let type_id = r.u64()?;
            let type_name = r.string()?;
            let size = r.u64()?;
            let n = r.u32()? as usize;
            let mut fields = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                fields.push(PtrField {
                    offset: r.u64()?,
                    target_type: r.u64()?,
                });
            }
            RegistryOp::PutPtrMap(PtrMapDecl {
                type_id,
                type_name,
                size,
                fields,
            })
        }
        tag::PUT_LOG_SPACE => RegistryOp::PutLogSpace(LogSpaceRecord {
            puddle: PuddleId(r.u128()?),
            owner_uid: r.u32()?,
            owner_gid: r.u32()?,
            invalid: r.bool()?,
        }),
        tag::INVALIDATE_LOG_SPACE => RegistryOp::InvalidateLogSpace {
            puddle: PuddleId(r.u128()?),
        },
        tag::ALLOC_EXTENT => RegistryOp::AllocExtent {
            offset: r.u64()?,
            len: r.u64()?,
        },
        tag::FREE_EXTENT => RegistryOp::FreeExtent {
            offset: r.u64()?,
            len: r.u64()?,
        },
        _ => return None,
    };
    // Trailing bytes mean a writer/reader format mismatch: reject rather
    // than silently ignoring data.
    r.done().then_some(op)
}

/// Decodes one record payload: binary (versioned) or legacy JSON.
pub fn decode_op(payload: &[u8]) -> Option<RegistryOp> {
    match payload.first() {
        Some(&WAL_BINARY_VERSION) => decode_binary_op(&payload[1..]),
        // Legacy JSON record from a pre-binary-format daemon.
        Some(_) => serde_json::from_slice::<RegistryOp>(payload).ok(),
        None => None,
    }
}

/// Checksum over a record's header fields and payload (seeded FNV-1a, same
/// discipline as `logfmt::LogEntryHeader`).
fn record_checksum(seq: u64, payload: &[u8]) -> u64 {
    let mut head = [0u8; 12];
    head[0..8].copy_from_slice(&seq.to_le_bytes());
    head[8..12].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    fnv1a64_with_seed(fnv1a64(&head), payload)
}

/// Encodes one record (header + payload + alignment padding).
fn encode_record(seq: u64, payload: &[u8]) -> Vec<u8> {
    let padded = align_up(payload.len(), RECORD_ALIGN);
    let mut rec = Vec::with_capacity(RECORD_HEADER_SIZE + padded);
    rec.extend_from_slice(&record_checksum(seq, payload).to_le_bytes());
    rec.extend_from_slice(&seq.to_le_bytes());
    rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    rec.extend_from_slice(&0u32.to_le_bytes());
    rec.extend_from_slice(payload);
    rec.resize(RECORD_HEADER_SIZE + padded, 0);
    rec
}

/// Decodes records from `bytes`, stopping at the first record that is
/// incomplete, fails its checksum, or does not parse (the torn tail after a
/// crash). Returns the decoded `(seq, op)` pairs and the number of bytes
/// occupied by valid records.
fn decode_records(bytes: &[u8]) -> (Vec<(u64, RegistryOp)>, usize) {
    let mut ops = Vec::new();
    let mut pos = 0usize;
    while bytes.len() - pos >= RECORD_HEADER_SIZE {
        let checksum = u64::from_le_bytes(bytes[pos..pos + 8].try_into().unwrap());
        let seq = u64::from_le_bytes(bytes[pos + 8..pos + 16].try_into().unwrap());
        let len = u32::from_le_bytes(bytes[pos + 16..pos + 20].try_into().unwrap()) as usize;
        if len > MAX_RECORD {
            break;
        }
        let total = RECORD_HEADER_SIZE + align_up(len, RECORD_ALIGN);
        if pos + total > bytes.len() {
            break;
        }
        let payload = &bytes[pos + RECORD_HEADER_SIZE..pos + RECORD_HEADER_SIZE + len];
        if checksum != record_checksum(seq, payload) {
            break;
        }
        let Some(op) = decode_op(payload) else {
            break;
        };
        ops.push((seq, op));
        pos += total;
    }
    (ops, pos)
}

/// WAL health/statistics snapshot reported through `Stats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalStats {
    /// Bytes of WAL not yet covered by a checkpoint (including buffered,
    /// not-yet-flushed records).
    pub bytes: u64,
    /// Records not yet covered by a checkpoint.
    pub records: u64,
    /// Checkpoints written since the daemon started.
    pub checkpoints: u64,
    /// Milliseconds since the last checkpoint (or since startup).
    pub checkpoint_age_ms: u64,
}

/// Mutable WAL state: the enqueue buffer and the group-commit bookkeeping.
///
/// Positions are *logical stream offsets*: byte 0 is the start of the WAL
/// file as it existed when the daemon opened it, and truncation records the
/// new logical offset of the file's first byte in `file_base`, so a
/// checkpoint cut taken before a truncation stays meaningful after it.
#[derive(Debug)]
struct WalState {
    /// Encoded records enqueued but not yet written to the file.
    buf: Vec<u8>,
    /// Commit ticket of the most recently enqueued record.
    pending_hi: u64,
    /// Every ticket up to this value is durable (fsynced, or superseded by
    /// a checkpoint).
    durable_hi: u64,
    /// `true` while a group-commit leader (or a truncation) owns the file.
    syncing: bool,
    /// Logical end of the WAL stream (file + buffer).
    stream_pos: u64,
    /// Logical offset of the file's first byte.
    file_base: u64,
    /// Sequence number the next record will carry; never decreases, even
    /// across truncations.
    next_seq: u64,
    /// Records currently in the WAL (file tail + buffer).
    records: u64,
    /// Set when a write failed (or a crash was injected): the in-memory
    /// registry may be ahead of the log, so all further WAL traffic is
    /// refused and the daemon must restart and recover.
    poisoned: bool,
    /// Clock reading when the WAL was last truncated by a checkpoint.
    last_checkpoint: Duration,
    /// Checkpoints completed since open.
    checkpoints: u64,
}

/// The append-only metadata WAL (see the module docs).
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    /// The file handle; held only by the current group-commit leader (or a
    /// truncation), never while `state` waits, so enqueues proceed during
    /// an fsync — that is what makes commits batch.
    io: Mutex<File>,
    state: Mutex<WalState>,
    /// Signalled when `durable_hi` advances or the leader role frees up.
    durable: Condvar,
    checkpoint_threshold: AtomicU64,
    /// Explicit hard ceiling; 0 means "threshold × [`DEFAULT_HARD_CEILING_FACTOR`]".
    checkpoint_hard_ceiling: AtomicU64,
    /// The records decoded by [`Wal::open`]'s torn-tail scan, retained so
    /// the registry's replay does not read and decode the file a second
    /// time; taken once by [`Wal::take_initial_replay`].
    initial_replay: Mutex<Option<Vec<(u64, RegistryOp)>>>,
    /// Fault-injection plan inherited from the `PmDir` this WAL was opened
    /// in (torture harness only; `None` in production).
    fault: Option<Arc<FaultPlan>>,
    /// Robustness counters shared with the owning `PmDir` (and through it,
    /// the daemon's `Stats` response).
    io_stats: Arc<IoStats>,
    /// Time source for checkpoint age/staleness; virtual under torture.
    clock: Clock,
    /// Observability hub: group-commit flush latency lands in the
    /// `wal.flush` series, each durable batch in the trace ring. The
    /// registry borrows this handle for checkpoint/coalesce timing too.
    obs: Arc<Metrics>,
}

impl Wal {
    /// Opens (creating if necessary) the WAL inside `pmdir`.
    ///
    /// A torn tail left by a crash is truncated away *now*, before any new
    /// append could bury it mid-file where replay would discard everything
    /// after it.
    pub fn open(pmdir: &PmDir) -> Result<Wal> {
        Wal::open_with_clock(pmdir, Clock::real())
    }

    /// [`Wal::open`], reading checkpoint age from `clock` — virtual under
    /// the torture harness so staleness is part of the replayed timeline.
    pub fn open_with_clock(pmdir: &PmDir, clock: Clock) -> Result<Wal> {
        let obs = Metrics::new(clock.clone());
        Wal::open_with_obs(pmdir, clock, obs)
    }

    /// [`Wal::open_with_clock`], recording into an existing observability
    /// hub (the daemon's, so WAL series merge into one `GetMetrics` view).
    pub fn open_with_obs(pmdir: &PmDir, clock: Clock, obs: Arc<Metrics>) -> Result<Wal> {
        let path = pmdir.meta_path(WAL_FILE);
        let existing = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(PmError::Io(e)),
        };
        let (records, valid_len) = decode_records(&existing);
        if valid_len < existing.len() {
            let tmp = pmdir.meta_path(&format!("{WAL_FILE}.tmp"));
            let mut file = File::create(&tmp)?;
            file.write_all(&existing[..valid_len])?;
            file.sync_all()?;
            fs::rename(&tmp, &path)?;
        }
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let next_seq = records.last().map(|(seq, _)| seq + 1).unwrap_or(0);
        Ok(Wal {
            path,
            io: Mutex::new(file),
            state: Mutex::new(WalState {
                buf: Vec::new(),
                pending_hi: 0,
                durable_hi: 0,
                syncing: false,
                stream_pos: valid_len as u64,
                file_base: 0,
                next_seq,
                records: records.len() as u64,
                poisoned: false,
                last_checkpoint: clock.now(),
                checkpoints: 0,
            }),
            durable: Condvar::new(),
            checkpoint_threshold: AtomicU64::new(DEFAULT_CHECKPOINT_BYTES),
            checkpoint_hard_ceiling: AtomicU64::new(0),
            initial_replay: Mutex::new(Some(records)),
            fault: pmdir.fault_plan().cloned(),
            io_stats: Arc::clone(pmdir.io_stats()),
            clock,
            obs,
        })
    }

    /// The WAL's time source (the daemon's clock; virtual under torture).
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// The observability hub this WAL records into.
    pub fn obs(&self) -> &Arc<Metrics> {
        &self.obs
    }

    /// Takes the replay set decoded when the WAL was opened (every valid
    /// `(seq, op)` record that was on disk). The registry consumes this
    /// once at load, before the first append; later callers who need the
    /// current contents use [`Wal::pending_replay`].
    pub fn take_initial_replay(&self) -> Vec<(u64, RegistryOp)> {
        self.initial_replay
            .lock()
            .unwrap()
            .take()
            .unwrap_or_default()
    }

    fn poisoned_err() -> PmError {
        PmError::Corruption(
            "metadata WAL poisoned by an earlier write failure; restart to recover".into(),
        )
    }

    /// Reads every valid `(seq, op)` record currently in the WAL (the
    /// replay set for recovery). Call before the first append.
    pub fn pending_replay(&self) -> Result<Vec<(u64, RegistryOp)>> {
        let bytes = match fs::read(&self.path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(PmError::Io(e)),
        };
        Ok(decode_records(&bytes).0)
    }

    /// Raises the record sequence floor (called with the checkpoint's
    /// recorded floor before the first append, so records written after a
    /// crash-interrupted checkpoint can never be mistaken for records the
    /// checkpoint already covers).
    pub fn ensure_seq_at_least(&self, floor: u64) {
        let mut state = self.state.lock().unwrap();
        state.next_seq = state.next_seq.max(floor);
    }

    /// Enqueues one record, returning its commit ticket. The record is
    /// *not* durable until [`Wal::flush`] (or a later ticket's flush)
    /// returns.
    ///
    /// Call while holding the registry shard lock that serializes the
    /// mutation, so conflicting ops enqueue in their application order.
    /// A record that cannot be enqueued (encode failure, oversized payload)
    /// **poisons** the WAL: the caller has typically already mutated the
    /// in-memory tables, so the log can no longer represent them — every
    /// later flush must fail rather than acknowledge a lost mutation.
    pub fn submit(&self, op: &RegistryOp) -> Result<u64> {
        let payload = encode_op(op);
        if payload.len() > MAX_RECORD {
            self.state.lock().unwrap().poisoned = true;
            self.durable.notify_all();
            return Err(PmError::Corruption("wal record too large".into()));
        }
        let mut state = self.state.lock().unwrap();
        if state.poisoned {
            return Err(Self::poisoned_err());
        }
        let seq = state.next_seq;
        state.next_seq += 1;
        let rec = encode_record(seq, &payload);
        state.stream_pos += rec.len() as u64;
        state.buf.extend_from_slice(&rec);
        state.records += 1;
        state.pending_hi += 1;
        Ok(state.pending_hi)
    }

    /// Makes every record enqueued so far durable (group commit): the first
    /// caller to find no leader becomes one, writes the whole buffered
    /// batch, and fsyncs once; everyone else blocks until their ticket is
    /// covered.
    pub fn flush(&self) -> Result<()> {
        let target = self.state.lock().unwrap().pending_hi;
        self.wait_durable(target)
    }

    fn wait_durable(&self, target: u64) -> Result<()> {
        let mut state = self.state.lock().unwrap();
        loop {
            if state.durable_hi >= target {
                return Ok(());
            }
            if state.poisoned {
                return Err(Self::poisoned_err());
            }
            if !state.syncing {
                // Become the leader: take the batch and release the state
                // lock so later mutators keep enqueuing while we fsync.
                state.syncing = true;
                let batch = std::mem::take(&mut state.buf);
                let hi = state.pending_hi;
                let covered = hi - state.durable_hi;
                drop(state);
                let flush_start = self.clock.now();
                let result = self.write_batch(&batch);
                if result.is_ok() {
                    self.obs
                        .series("wal.flush")
                        .record_duration(self.clock.now() - flush_start);
                    self.obs
                        .trace(TraceEventKind::WalCommit, "", covered, batch.len() as u64);
                }
                state = self.state.lock().unwrap();
                state.syncing = false;
                match result {
                    Ok(()) => state.durable_hi = state.durable_hi.max(hi),
                    Err(e) => {
                        state.poisoned = true;
                        self.durable.notify_all();
                        return Err(e);
                    }
                }
                self.durable.notify_all();
            } else {
                state = self.durable.wait(state).unwrap();
            }
        }
    }

    /// Writes one batch and fsyncs it; the single place crash injection
    /// tears group commits.
    ///
    /// Transient I/O failures (injected EIO, short writes) are absorbed by
    /// a bounded retry loop: the file is wound back to the batch start and
    /// the whole batch re-appended, so a retried batch is never duplicated
    /// or interleaved. ENOSPC and non-transient errors surface immediately
    /// — the caller poisons the WAL, which is the correct degradation when
    /// durability can no longer be promised.
    fn write_batch(&self, batch: &[u8]) -> Result<()> {
        let mut file = self.io.lock().unwrap();
        if failpoint::should_fail(names::WAL_MID_GROUP_COMMIT) {
            // Persist only a prefix of the batch: earlier records of the
            // group survive, the record the cut lands in is torn.
            let cut = batch.len() / 2;
            file.write_all(&batch[..cut])?;
            let _ = file.sync_data();
            return Err(PmError::CrashInjected(names::WAL_MID_GROUP_COMMIT));
        }
        if failpoint::should_fail(names::WAL_APPEND_TORN) {
            // Lose the tail of the last record only.
            let cut = batch.len() - (batch.len() / 4).max(1).min(batch.len());
            file.write_all(&batch[..cut])?;
            let _ = file.sync_data();
            return Err(PmError::CrashInjected(names::WAL_APPEND_TORN));
        }
        let start = file.metadata()?.len();
        let mut attempt = 0usize;
        loop {
            match self.write_batch_once(&mut file, batch) {
                Ok(()) => return Ok(()),
                Err(e) => {
                    let transient = matches!(&e, PmError::Io(io) if faultio::is_transient_io(io));
                    if transient && attempt < MAX_IO_RETRIES {
                        attempt += 1;
                        self.io_stats.note_retry();
                        // Wind back to the batch start; the file is in
                        // append mode, so the retry re-appends from there.
                        file.set_len(start)?;
                        continue;
                    }
                    if matches!(e, PmError::NoSpace(_)) {
                        self.io_stats.note_enospc();
                        // Drop any partial write so the tail stays clean.
                        let _ = file.set_len(start);
                    } else if transient {
                        self.io_stats.note_transient();
                    }
                    return Err(e);
                }
            }
        }
    }

    /// One physical append + fsync attempt, consulting the fault plan (if
    /// any) before touching the file and before syncing it.
    fn write_batch_once(&self, file: &mut File, batch: &[u8]) -> Result<()> {
        if let Some(plan) = &self.fault {
            match plan.on_write(FaultSite::WalWrite, batch.len()) {
                Some(WriteFault::Eio) => return Err(faultio::eio(FaultSite::WalWrite).into()),
                Some(WriteFault::Enospc) => return Err(faultio::enospc().into()),
                Some(WriteFault::Short(keep)) => {
                    // A torn append: part of the batch reaches the file,
                    // then the device errors out.
                    file.write_all(&batch[..keep])?;
                    let _ = file.sync_data();
                    return Err(faultio::eio(FaultSite::WalWrite).into());
                }
                None => {}
            }
        }
        file.write_all(batch)?;
        if let Some(plan) = &self.fault {
            match plan.on_sync(FaultSite::WalSync) {
                Some(SyncFault::Eio) => return Err(faultio::eio(FaultSite::WalSync).into()),
                // A dropped fsync: report success without the barrier. In
                // this in-process simulation the data still reaches the
                // file (there is no page cache to lose), so the fault is
                // observable only in the trace.
                Some(SyncFault::Dropped) => return Ok(()),
                None => {}
            }
        }
        file.sync_data()?;
        Ok(())
    }

    /// Logical end-of-stream position and next record sequence — the
    /// checkpoint *cut*. Call while holding every registry shard lock so
    /// the cut is a consistent snapshot boundary: every record at a
    /// position below the cut is reflected in the snapshot, every one at
    /// or above it is not.
    pub fn position(&self) -> (u64, u64) {
        let state = self.state.lock().unwrap();
        (state.stream_pos, state.next_seq)
    }

    /// Drops every record below the checkpoint cut — `cut_pos` bytes,
    /// `cut_seq` record sequence, both captured together by
    /// [`Wal::position`] — keeping records enqueued after it (they are not
    /// covered by the checkpoint).
    ///
    /// Acts as an exclusive writer (same protocol as a group-commit
    /// leader): flushes the buffered batch, rewrites the file as its
    /// post-cut tail via write-temp + rename, and marks everything up to
    /// the cut durable — pre-cut records are now covered by the checkpoint,
    /// post-cut ones by the fsynced rewrite.
    pub fn truncate_to(&self, cut_pos: u64, cut_seq: u64) -> Result<()> {
        let mut state = self.state.lock().unwrap();
        loop {
            if state.poisoned {
                return Err(Self::poisoned_err());
            }
            if !state.syncing {
                break;
            }
            state = self.durable.wait(state).unwrap();
        }
        state.syncing = true;
        let batch = std::mem::take(&mut state.buf);
        let hi = state.pending_hi;
        let file_base = state.file_base;
        drop(state);

        let result = (|| -> Result<()> {
            let mut file = self.io.lock().unwrap();
            if !batch.is_empty() {
                file.write_all(&batch)?;
            }
            let bytes = fs::read(&self.path)?;
            let keep_from = ((cut_pos - file_base) as usize).min(bytes.len());
            let tmp = self.path.with_extension("wal.tmp");
            {
                let mut tf = File::create(&tmp)?;
                tf.write_all(&bytes[keep_from..])?;
                tf.sync_all()?;
            }
            fs::rename(&tmp, &self.path)?;
            *file = OpenOptions::new().append(true).open(&self.path)?;
            Ok(())
        })();

        let mut state = self.state.lock().unwrap();
        state.syncing = false;
        match &result {
            Ok(()) => {
                state.durable_hi = state.durable_hi.max(hi);
                state.file_base = cut_pos;
                // Sequence numbers count records along the stream, so the
                // surviving record count — including any enqueued while we
                // rotated, which sit after the cut — is just the sequence
                // distance from the cut; no re-decode needed.
                state.records = state.next_seq - cut_seq;
                state.last_checkpoint = self.clock.now();
                state.checkpoints += 1;
            }
            Err(_) => state.poisoned = true,
        }
        self.durable.notify_all();
        result
    }

    /// `true` once the uncheckpointed WAL exceeds the configured threshold.
    pub fn should_checkpoint(&self) -> bool {
        let threshold = self.checkpoint_threshold.load(Ordering::Relaxed);
        let state = self.state.lock().unwrap();
        !state.poisoned && state.stream_pos - state.file_base >= threshold
    }

    /// Sets the WAL size at which the registry checkpoints (tests and
    /// benchmarks use small values to exercise the checkpoint path).
    pub fn set_checkpoint_threshold(&self, bytes: u64) {
        self.checkpoint_threshold.store(bytes, Ordering::Relaxed);
    }

    /// `true` once the uncheckpointed WAL has outgrown the hard ceiling —
    /// the point where deferring to a background checkpoint stops being
    /// acceptable and the triggering request must absorb the latency.
    pub fn past_hard_ceiling(&self) -> bool {
        let explicit = self.checkpoint_hard_ceiling.load(Ordering::Relaxed);
        let ceiling = if explicit != 0 {
            explicit
        } else {
            self.checkpoint_threshold
                .load(Ordering::Relaxed)
                .saturating_mul(DEFAULT_HARD_CEILING_FACTOR)
        };
        let state = self.state.lock().unwrap();
        !state.poisoned && state.stream_pos - state.file_base >= ceiling
    }

    /// Overrides the hard ceiling (0 restores the default of threshold ×
    /// [`DEFAULT_HARD_CEILING_FACTOR`]).
    pub fn set_checkpoint_hard_ceiling(&self, bytes: u64) {
        self.checkpoint_hard_ceiling.store(bytes, Ordering::Relaxed);
    }

    /// Current WAL statistics.
    pub fn stats(&self) -> WalStats {
        let state = self.state.lock().unwrap();
        WalStats {
            bytes: state.stream_pos - state.file_base,
            records: state.records,
            checkpoints: state.checkpoints,
            checkpoint_age_ms: self
                .clock
                .now()
                .saturating_sub(state.last_checkpoint)
                .as_millis() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use puddles_proto::PuddlePurpose;

    fn sample_op(n: u64) -> RegistryOp {
        RegistryOp::PutPuddle(PuddleRecord {
            id: PuddleId(n as u128),
            size: 4096,
            offset: 4096 * n,
            file: format!("{n:032x}"),
            purpose: PuddlePurpose::Data,
            owner_uid: 1,
            owner_gid: 1,
            mode: 0o600,
            pool: None,
            needs_rewrite: false,
            translations: vec![],
        })
    }

    fn wal() -> (tempfile::TempDir, PmDir, Wal) {
        let tmp = tempfile::tempdir().unwrap();
        let pm = PmDir::open(tmp.path()).unwrap();
        let wal = Wal::open(&pm).unwrap();
        (tmp, pm, wal)
    }

    /// Every `RegistryOp` variant, with the fiddly fields populated.
    fn all_ops() -> Vec<RegistryOp> {
        vec![
            RegistryOp::PutPuddle(PuddleRecord {
                id: PuddleId(0xDEAD_BEEF_0123),
                size: 1 << 20,
                offset: 4096,
                file: "0000deadbeef".into(),
                purpose: PuddlePurpose::LogSpace,
                owner_uid: 1000,
                owner_gid: 1001,
                mode: 0o640,
                pool: Some("pool-ü".into()),
                needs_rewrite: true,
                translations: vec![
                    Translation {
                        old_addr: 1,
                        new_addr: 2,
                        len: 3,
                    },
                    Translation {
                        old_addr: u64::MAX,
                        new_addr: 0,
                        len: 7,
                    },
                ],
            }),
            RegistryOp::DropPuddle {
                id: PuddleId(u128::MAX),
            },
            RegistryOp::PutPool(PoolRecord {
                name: String::new(),
                root: PuddleId(9),
                puddles: vec![PuddleId(9), PuddleId(10)],
            }),
            RegistryOp::DropPool { name: "p".into() },
            RegistryOp::AddPoolMember {
                pool: "q".into(),
                id: PuddleId(11),
            },
            RegistryOp::RemovePoolMember {
                pool: "q".into(),
                id: PuddleId(11),
            },
            RegistryOp::PutPtrMap(PtrMapDecl {
                type_id: 42,
                type_name: "crate::Node".into(),
                size: 24,
                fields: vec![PtrField {
                    offset: 8,
                    target_type: 42,
                }],
            }),
            RegistryOp::PutLogSpace(LogSpaceRecord {
                puddle: PuddleId(77),
                owner_uid: 3,
                owner_gid: 4,
                invalid: true,
            }),
            RegistryOp::InvalidateLogSpace {
                puddle: PuddleId(77),
            },
            RegistryOp::AllocExtent {
                offset: 1 << 30,
                len: 4096,
            },
            RegistryOp::FreeExtent {
                offset: 1 << 30,
                len: 4096,
            },
        ]
    }

    #[test]
    fn binary_encoding_roundtrips_every_variant() {
        for op in all_ops() {
            let payload = encode_op(&op);
            assert_eq!(payload[0], WAL_BINARY_VERSION);
            let back = decode_op(&payload).unwrap_or_else(|| panic!("decode failed for {op:?}"));
            assert_eq!(back, op);
        }
    }

    #[test]
    fn binary_decoding_rejects_truncated_and_oversized_payloads() {
        for op in all_ops() {
            let payload = encode_op(&op);
            // Any strict prefix must fail (no partial decode)...
            for cut in 1..payload.len() {
                assert!(
                    decode_op(&payload[..cut]).is_none(),
                    "prefix {cut} of {op:?} decoded"
                );
            }
            // ...and so must trailing garbage.
            let mut long = payload.clone();
            long.push(0);
            assert!(decode_op(&long).is_none());
        }
        assert!(decode_op(&[]).is_none());
        assert!(decode_op(&[WAL_BINARY_VERSION, 0xEE]).is_none());
    }

    #[test]
    fn legacy_json_records_still_replay() {
        // A WAL written by a pre-binary daemon: JSON payloads. The decoder
        // must replay them transparently (version-byte discrimination).
        let op = sample_op(5);
        let json = serde_json::to_vec(&op).unwrap();
        assert_ne!(json[0], WAL_BINARY_VERSION);
        assert_eq!(decode_op(&json), Some(op.clone()));

        // A mixed-format WAL (old JSON records, then new binary ones)
        // decodes in order.
        let mut bytes = encode_record(0, &json);
        bytes.extend_from_slice(&encode_record(1, &encode_op(&sample_op(6))));
        let (ops, consumed) = decode_records(&bytes);
        assert_eq!(consumed, bytes.len());
        assert_eq!(ops, vec![(0, sample_op(5)), (1, sample_op(6))]);
    }

    #[test]
    fn binary_records_are_much_smaller_than_json() {
        // PutPuddle carries a 32-char file name, so the string dominates
        // and the shrink is ~2.6x; ops without long strings shrink more.
        let op = sample_op(7);
        let json = serde_json::to_vec(&op).unwrap().len();
        let binary = encode_op(&op).len();
        assert!(
            binary * 2 <= json,
            "expected >= 2x shrink, got json {json} B vs binary {binary} B"
        );
        let op = RegistryOp::AllocExtent {
            offset: 1 << 40,
            len: 1 << 21,
        };
        let json = serde_json::to_vec(&op).unwrap().len();
        let binary = encode_op(&op).len();
        assert!(
            binary * 2 <= json,
            "AllocExtent: json {json} B vs binary {binary} B"
        );
    }

    #[test]
    fn record_roundtrip_and_alignment() {
        let payload = encode_op(&sample_op(7));
        let rec = encode_record(3, &payload);
        assert_eq!(rec.len() % RECORD_ALIGN, 0);
        let (ops, consumed) = decode_records(&rec);
        assert_eq!(consumed, rec.len());
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].0, 3);
        assert_eq!(ops[0].1, sample_op(7));
    }

    #[test]
    fn torn_tail_is_discarded_but_prefix_survives() {
        let a = encode_record(0, &encode_op(&sample_op(1)));
        let b = encode_record(1, &encode_op(&sample_op(2)));
        let mut bytes = a.clone();
        bytes.extend_from_slice(&b[..b.len() - 5]);
        let (ops, consumed) = decode_records(&bytes);
        assert_eq!(ops.len(), 1);
        assert_eq!(consumed, a.len());

        // A bit flip in the second record's payload also stops the scan.
        let mut bytes = a.clone();
        let mut bad = b.clone();
        let n = bad.len();
        bad[n - RECORD_ALIGN] ^= 0x40;
        bytes.extend_from_slice(&bad);
        let (ops, _) = decode_records(&bytes);
        assert!(ops.len() <= 1);
    }

    #[test]
    fn append_flush_and_replay_roundtrip() {
        let (_tmp, pm, wal) = wal();
        for n in 0..10 {
            wal.submit(&sample_op(n)).unwrap();
        }
        wal.flush().unwrap();
        drop(wal);

        let wal = Wal::open(&pm).unwrap();
        let ops = wal.pending_replay().unwrap();
        assert_eq!(ops.len(), 10);
        for (n, (seq, op)) in ops.iter().enumerate() {
            assert_eq!(*seq, n as u64);
            assert_eq!(*op, sample_op(n as u64));
        }
        // Sequence numbers continue after the replayed records.
        assert_eq!(wal.position().1, 10);
    }

    #[test]
    fn open_heals_a_torn_tail_on_disk() {
        let (_tmp, pm, wal) = wal();
        wal.submit(&sample_op(1)).unwrap();
        wal.submit(&sample_op(2)).unwrap();
        wal.flush().unwrap();
        drop(wal);

        // Tear the last record by chopping bytes off the file.
        let path = pm.meta_path(WAL_FILE);
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 6]).unwrap();

        let wal = Wal::open(&pm).unwrap();
        assert_eq!(wal.pending_replay().unwrap().len(), 1);
        // New appends land after the healed prefix, not after the garbage.
        wal.submit(&sample_op(3)).unwrap();
        wal.flush().unwrap();
        drop(wal);
        let wal = Wal::open(&pm).unwrap();
        let ops: Vec<RegistryOp> = wal
            .pending_replay()
            .unwrap()
            .into_iter()
            .map(|(_, op)| op)
            .collect();
        assert_eq!(ops, vec![sample_op(1), sample_op(3)]);
    }

    #[test]
    fn truncate_keeps_only_records_after_the_cut() {
        let (_tmp, pm, wal) = wal();
        wal.submit(&sample_op(1)).unwrap();
        wal.flush().unwrap();
        let (cut_pos, cut_seq) = wal.position();
        wal.submit(&sample_op(2)).unwrap();
        wal.truncate_to(cut_pos, cut_seq).unwrap();
        assert_eq!(wal.stats().checkpoints, 1);
        assert_eq!(wal.stats().records, 1);
        drop(wal);

        let wal = Wal::open(&pm).unwrap();
        let ops: Vec<RegistryOp> = wal
            .pending_replay()
            .unwrap()
            .into_iter()
            .map(|(_, op)| op)
            .collect();
        assert_eq!(ops, vec![sample_op(2)]);
    }

    #[test]
    fn group_commit_batches_concurrent_mutators() {
        let (_tmp, _pm, wal) = wal();
        let wal = Arc::new(wal);
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let wal = Arc::clone(&wal);
                std::thread::spawn(move || {
                    for n in 0..25 {
                        wal.submit(&sample_op(t * 100 + n)).unwrap();
                        wal.flush().unwrap();
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(wal.stats().records, 200);
        assert_eq!(wal.pending_replay().unwrap().len(), 200);
    }

    #[test]
    fn transient_wal_faults_are_absorbed_by_retries() {
        use puddles_pmem::faultio::FaultProfile;
        let tmp = tempfile::tempdir().unwrap();
        // 6% per-attempt fault rate: frequent enough to fire many times
        // over 200 appends, low enough that 4 retries always clear it.
        let plan = FaultPlan::new(0xBADC_0FFE, FaultProfile::transient(60_000));
        let pm = PmDir::open(tmp.path())
            .unwrap()
            .with_fault_plan(Arc::clone(&plan));
        let wal = Wal::open(&pm).unwrap();
        for n in 0..200 {
            wal.submit(&sample_op(n)).unwrap();
            wal.flush().unwrap();
        }
        assert!(plan.injected() > 0, "fault plan never fired");
        assert!(pm.io_stats().io_retries() > 0, "retries not counted");

        // Quiesce injection and confirm every record survived intact.
        plan.set_enabled(false);
        assert_eq!(wal.pending_replay().unwrap().len(), 200);
        drop(wal);
        let reopened = Wal::open(&pm).unwrap();
        assert_eq!(reopened.take_initial_replay().len(), 200);
    }

    #[test]
    fn wal_enospc_surfaces_typed_without_partial_tail() {
        use puddles_pmem::faultio::FaultProfile;
        let tmp = tempfile::tempdir().unwrap();
        let profile = FaultProfile {
            write_enospc_ppm: 1_000_000,
            ..FaultProfile::default()
        };
        let plan = FaultPlan::new(7, profile);
        let pm = PmDir::open(tmp.path())
            .unwrap()
            .with_fault_plan(Arc::clone(&plan));
        let wal = Wal::open(&pm).unwrap();
        wal.submit(&sample_op(1)).unwrap();
        let err = wal.flush().unwrap_err();
        assert!(matches!(err, PmError::NoSpace(_)), "got {err:?}");
        assert_eq!(pm.io_stats().enospc_rejections(), 1);

        // The full-device WAL is poisoned (durability can't be promised)
        // and the on-disk tail holds no partial record.
        plan.set_enabled(false);
        assert!(wal.flush().is_err());
        drop(wal);
        let reopened = Wal::open(&pm).unwrap();
        assert_eq!(reopened.take_initial_replay().len(), 0);
    }

    #[test]
    fn apply_op_tracks_next_seq_across_drops() {
        let mut data = RegistryData::default();
        apply_op(&mut data, &sample_op(1));
        apply_op(&mut data, &RegistryOp::DropPuddle { id: PuddleId(1) });
        assert!(data.puddles.is_empty());
        // next_seq tracks created ids even after drops.
        assert_eq!(data.next_seq, 1);
    }
}
