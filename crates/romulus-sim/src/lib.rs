//! `romulus-sim`: a clean-room, simplified Romulus-style baseline.
//!
//! Romulus (SPAA'18) keeps **two replicas** of the persistent heap — *main*
//! and *back* — plus a **volatile redo log** of the offsets modified by the
//! current transaction. Transactions write main in place (no PM logging on
//! the critical path), flush the modified lines, flip a persistent state
//! flag, and then copy the modified ranges into back. Recovery picks
//! whichever replica is consistent. The performance consequence the paper's
//! Fig. 9–11 show is that Romulus avoids PM log writes (its log is in DRAM)
//! at the cost of writing every update twice.
//!
//! This reproduction keeps the same structure: a pool file holding
//! `[header | main | back]`, a DRAM redo list, the two-phase commit, and
//! recovery on open.

pub mod pool;

pub use pool::{RomulusError, RomulusPool, RomulusTx};
