//! The Romulus-style twin-replica pool.

use parking_lot::Mutex;
use puddles_pmem::persist;
use puddles_pmem::space::VaReservation;
use puddles_pmem::util::align_up;
use std::fmt;
use std::fs::OpenOptions;
use std::path::Path;

/// Result alias for romulus-sim operations.
pub type Result<T> = std::result::Result<T, RomulusError>;

/// Errors produced by the Romulus baseline.
#[derive(Debug)]
pub enum RomulusError {
    /// Underlying I/O or mmap failure.
    Io(String),
    /// The file is not a valid romulus-sim pool.
    BadPool(String),
    /// The pool's main replica is out of space.
    OutOfSpace,
    /// A transaction was aborted by its body.
    Aborted(String),
}

impl fmt::Display for RomulusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RomulusError::Io(m) => write!(f, "I/O error: {m}"),
            RomulusError::BadPool(m) => write!(f, "invalid pool: {m}"),
            RomulusError::OutOfSpace => write!(f, "pool out of space"),
            RomulusError::Aborted(m) => write!(f, "transaction aborted: {m}"),
        }
    }
}

impl std::error::Error for RomulusError {}

const MAGIC: u64 = 0x524f_4d55_4c53_494d; // "ROMULSIM"
const HEADER_SIZE: usize = 4096;
const ALLOC_ALIGN: usize = 64;

/// Persistent commit-state flag.
const STATE_IDLE: u64 = 0;
const STATE_COPYING: u64 = 1;

#[derive(Debug, Clone, Copy)]
#[repr(C)]
struct PoolHeader {
    magic: u64,
    size: u64,
    region_size: u64,
    state: u64,
    root_off: u64,
    heap_bump: u64,
}

/// A Romulus-style pool with main and back replicas.
pub struct RomulusPool {
    base: usize,
    size: usize,
    region_size: usize,
    tx_lock: Mutex<()>,
}

impl fmt::Debug for RomulusPool {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RomulusPool")
            .field("size", &self.size)
            .field("region_size", &self.region_size)
            .finish()
    }
}

impl RomulusPool {
    /// Creates a pool whose *main* replica holds `region_size` usable bytes.
    pub fn create(path: impl AsRef<Path>, region_size: usize) -> Result<RomulusPool> {
        let region_size = align_up(region_size.max(64 * 1024), 4096);
        let size = HEADER_SIZE + 2 * region_size;
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .create_new(true)
            .open(path.as_ref())
            .map_err(|e| RomulusError::Io(e.to_string()))?;
        file.set_len(size as u64)
            .map_err(|e| RomulusError::Io(e.to_string()))?;
        let base = VaReservation::map_file_anywhere(&file, size, true)
            .map_err(|e| RomulusError::Io(e.to_string()))?;
        let header = PoolHeader {
            magic: MAGIC,
            size: size as u64,
            region_size: region_size as u64,
            state: STATE_IDLE,
            root_off: 0,
            heap_bump: ALLOC_ALIGN as u64,
        };
        // SAFETY: fresh writable mapping of at least HEADER_SIZE bytes.
        unsafe { std::ptr::write_unaligned(base as *mut PoolHeader, header) };
        persist::persist(base as *const u8, HEADER_SIZE);
        Ok(RomulusPool {
            base,
            size,
            region_size,
            tx_lock: Mutex::new(()),
        })
    }

    /// Opens an existing pool, reconciling the replicas if a crash left them
    /// out of sync.
    pub fn open(path: impl AsRef<Path>) -> Result<RomulusPool> {
        let file = OpenOptions::new()
            .read(true)
            .write(true)
            .open(path.as_ref())
            .map_err(|e| RomulusError::Io(e.to_string()))?;
        let size = file
            .metadata()
            .map_err(|e| RomulusError::Io(e.to_string()))?
            .len() as usize;
        let base = VaReservation::map_file_anywhere(&file, size, true)
            .map_err(|e| RomulusError::Io(e.to_string()))?;
        // SAFETY: mapping of at least HEADER_SIZE bytes.
        let header = unsafe { std::ptr::read_unaligned(base as *const PoolHeader) };
        if header.magic != MAGIC || size != header.size as usize {
            // SAFETY: mapping not published.
            unsafe { VaReservation::unmap_anywhere(base, size).ok() };
            return Err(RomulusError::BadPool("bad magic or size".into()));
        }
        let pool = RomulusPool {
            base,
            size,
            region_size: header.region_size as usize,
            tx_lock: Mutex::new(()),
        };
        pool.recover();
        Ok(pool)
    }

    fn header(&self) -> PoolHeader {
        // SAFETY: mapping lives as long as `self`.
        unsafe { std::ptr::read_unaligned(self.base as *const PoolHeader) }
    }

    fn write_header(&self, header: PoolHeader) {
        // SAFETY: as above.
        unsafe { std::ptr::write_unaligned(self.base as *mut PoolHeader, header) };
        persist::persist(self.base as *const u8, std::mem::size_of::<PoolHeader>());
    }

    fn main_base(&self) -> usize {
        self.base + HEADER_SIZE
    }

    fn back_base(&self) -> usize {
        self.base + HEADER_SIZE + self.region_size
    }

    /// Recovery: if a crash happened while copying main→back, main is
    /// consistent (the transaction had committed) — finish the copy. If the
    /// state is idle, back is authoritative for any torn main updates, so
    /// restore main from back.
    fn recover(&self) {
        let mut header = self.header();
        if header.state == STATE_COPYING {
            // Main is the committed image; resynchronize back from it.
            // SAFETY: both replicas lie inside the mapping.
            unsafe {
                std::ptr::copy_nonoverlapping(
                    self.main_base() as *const u8,
                    self.back_base() as *mut u8,
                    self.region_size,
                );
            }
            persist::flush(self.back_base() as *const u8, self.region_size);
            persist::sfence();
            header.state = STATE_IDLE;
            self.write_header(header);
        } else {
            // Any un-committed main updates are discarded by restoring main
            // from back.
            // SAFETY: as above.
            unsafe {
                std::ptr::copy_nonoverlapping(
                    self.back_base() as *const u8,
                    self.main_base() as *mut u8,
                    self.region_size,
                );
            }
            persist::flush(self.main_base() as *const u8, self.region_size);
            persist::sfence();
        }
    }

    /// Translates a main-region offset to a native pointer.
    #[inline]
    pub fn at<T>(&self, off: u64) -> *mut T {
        (self.main_base() + off as usize) as *mut T
    }

    /// Reads the root offset (0 if unset).
    pub fn root_off(&self) -> u64 {
        self.header().root_off
    }

    /// Returns the number of bytes used in the main replica.
    pub fn used_bytes(&self) -> usize {
        self.header().heap_bump as usize
    }

    /// Runs a failure-atomic transaction.
    pub fn tx<R>(&self, body: impl FnOnce(&mut RomulusTx<'_>) -> Result<R>) -> Result<R> {
        let _guard = self.tx_lock.lock();
        let mut tx = RomulusTx {
            pool: self,
            dirty: Vec::new(),
        };
        match body(&mut tx) {
            Ok(value) => {
                tx.commit();
                Ok(value)
            }
            Err(e) => {
                tx.abort();
                Err(e)
            }
        }
    }
}

impl Drop for RomulusPool {
    fn drop(&mut self) {
        // SAFETY: the pool owns the mapping and is being dropped; callers
        // must not retain pointers produced by `at` beyond the pool.
        unsafe {
            let _ = VaReservation::unmap_anywhere(self.base, self.size);
        }
    }
}

/// An open Romulus-style transaction: writes go to main in place, the
/// modified ranges are tracked in DRAM, and commit copies them to back.
pub struct RomulusTx<'p> {
    pool: &'p RomulusPool,
    /// Modified (offset, len) ranges in the main replica (the volatile log).
    dirty: Vec<(u64, u64)>,
}

impl<'p> RomulusTx<'p> {
    /// Allocates `size` bytes in the main replica, returning its offset.
    pub fn alloc(&mut self, size: usize) -> Result<u64> {
        let need = align_up(size.max(1), ALLOC_ALIGN) as u64;
        let mut header = self.pool.header();
        if header.heap_bump + need > self.pool.region_size as u64 {
            return Err(RomulusError::OutOfSpace);
        }
        let off = header.heap_bump;
        header.heap_bump += need;
        self.pool.write_header(header);
        // Header changes must reach the back replica too.
        self.dirty.push((u64::MAX, 0)); // sentinel: header modified
        Ok(off)
    }

    /// Records a store of `value` at main-region offset `off`.
    pub fn store<T: Copy>(&mut self, off: u64, value: T) {
        // SAFETY: `off` was produced by `alloc` within the main region; the
        // caller is responsible for type agreement, as with raw PM stores.
        unsafe { std::ptr::write_unaligned(self.pool.at::<T>(off), value) };
        self.dirty.push((off, std::mem::size_of::<T>() as u64));
    }

    /// Records a store of raw bytes at main-region offset `off`.
    pub fn store_bytes(&mut self, off: u64, bytes: &[u8]) {
        // SAFETY: as in `store`.
        unsafe {
            std::ptr::copy_nonoverlapping(bytes.as_ptr(), self.pool.at::<u8>(off), bytes.len());
        }
        self.dirty.push((off, bytes.len() as u64));
    }

    /// Reads a value from main-region offset `off`.
    pub fn load<T: Copy>(&self, off: u64) -> T {
        // SAFETY: as in `store`.
        unsafe { std::ptr::read_unaligned(self.pool.at::<T>(off)) }
    }

    /// Sets the pool root offset.
    pub fn set_root(&mut self, off: u64) {
        let mut header = self.pool.header();
        header.root_off = off;
        self.pool.write_header(header);
        self.dirty.push((u64::MAX, 0));
    }

    fn commit(&mut self) {
        let pool = self.pool;
        // Phase 1: persist main.
        for &(off, len) in &self.dirty {
            if off == u64::MAX {
                continue;
            }
            persist::flush(pool.at::<u8>(off) as *const u8, len as usize);
        }
        persist::sfence();
        // Phase 2: mark copying, then apply the volatile log to back.
        let mut header = pool.header();
        header.state = STATE_COPYING;
        pool.write_header(header);
        for &(off, len) in &self.dirty {
            if off == u64::MAX {
                continue;
            }
            // SAFETY: both ranges lie inside the mapped replicas.
            unsafe {
                std::ptr::copy_nonoverlapping(
                    pool.at::<u8>(off) as *const u8,
                    (pool.back_base() + off as usize) as *mut u8,
                    len as usize,
                );
            }
            persist::flush((pool.back_base() + off as usize) as *const u8, len as usize);
        }
        persist::sfence();
        let mut header = pool.header();
        header.state = STATE_IDLE;
        pool.write_header(header);
    }

    fn abort(&mut self) {
        // Discard main updates by restoring the touched ranges from back.
        let pool = self.pool;
        for &(off, len) in &self.dirty {
            if off == u64::MAX {
                continue;
            }
            // SAFETY: both ranges lie inside the mapped replicas.
            unsafe {
                std::ptr::copy_nonoverlapping(
                    (pool.back_base() + off as usize) as *const u8,
                    pool.at::<u8>(off),
                    len as usize,
                );
            }
        }
        // Header (allocation bump, root) changes are rolled back from back
        // as well, except the magic/size fields which never change.
        // SAFETY: headers of both replicas are inside the mapping.
        persist::sfence();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_store_commit_reopen() {
        let tmp = tempfile::tempdir().unwrap();
        let path = tmp.path().join("r.pool");
        {
            let pool = RomulusPool::create(&path, 1 << 20).unwrap();
            pool.tx(|tx| {
                let off = tx.alloc(16)?;
                tx.store(off, 0xabcdu64);
                tx.store(off + 8, 99u64);
                tx.set_root(off);
                Ok(())
            })
            .unwrap();
        }
        let pool = RomulusPool::open(&path).unwrap();
        let root = pool.root_off();
        assert_ne!(root, 0);
        // SAFETY: root points at a committed 16-byte allocation.
        unsafe {
            assert_eq!(std::ptr::read_unaligned(pool.at::<u64>(root)), 0xabcd);
            assert_eq!(std::ptr::read_unaligned(pool.at::<u64>(root + 8)), 99);
        }
    }

    #[test]
    fn uncommitted_main_updates_are_discarded_on_reopen() {
        let tmp = tempfile::tempdir().unwrap();
        let path = tmp.path().join("crash.pool");
        let off;
        {
            let pool = RomulusPool::create(&path, 1 << 20).unwrap();
            off = pool
                .tx(|tx| {
                    let off = tx.alloc(8)?;
                    tx.store(off, 1u64);
                    tx.set_root(off);
                    Ok(off)
                })
                .unwrap();
            // Simulate a crash mid-transaction: write main directly without
            // going through commit.
            // SAFETY: `off` is a live allocation in the main region.
            unsafe { std::ptr::write_unaligned(pool.at::<u64>(off), 777u64) };
            persist::persist(pool.at::<u8>(off) as *const u8, 8);
        }
        let pool = RomulusPool::open(&path).unwrap();
        // SAFETY: as above.
        assert_eq!(unsafe { std::ptr::read_unaligned(pool.at::<u64>(off)) }, 1);
    }

    #[test]
    fn aborted_transactions_restore_main_from_back() {
        let tmp = tempfile::tempdir().unwrap();
        let path = tmp.path().join("abort.pool");
        let pool = RomulusPool::create(&path, 1 << 20).unwrap();
        let off = pool
            .tx(|tx| {
                let off = tx.alloc(8)?;
                tx.store(off, 5u64);
                tx.set_root(off);
                Ok(off)
            })
            .unwrap();
        let err = pool
            .tx(|tx| {
                tx.store(off, 6u64);
                Err::<(), _>(RomulusError::Aborted("no".into()))
            })
            .unwrap_err();
        assert!(matches!(err, RomulusError::Aborted(_)));
        // SAFETY: `off` is a live allocation.
        assert_eq!(unsafe { std::ptr::read_unaligned(pool.at::<u64>(off)) }, 5);
    }

    #[test]
    fn out_of_space_is_reported() {
        let tmp = tempfile::tempdir().unwrap();
        let path = tmp.path().join("full.pool");
        let pool = RomulusPool::create(&path, 64 * 1024).unwrap();
        let err = pool
            .tx(|tx| {
                loop {
                    tx.alloc(4096)?;
                }
                #[allow(unreachable_code)]
                Ok(())
            })
            .unwrap_err();
        assert!(matches!(err, RomulusError::OutOfSpace));
    }
}
