//! Length-prefixed JSON framing for the UNIX-domain-socket transport.

use serde::de::DeserializeOwned;
use serde::Serialize;
use std::io::{self, Read, Write};

/// Maximum accepted frame size (16 MiB); guards against corrupt prefixes.
pub const MAX_FRAME: u32 = 16 << 20;

/// Encodes one length-prefixed JSON frame into a byte buffer (prefix
/// included). The single place that knows the frame encoding; writers that
/// need custom I/O (e.g. interruptible writes) send these bytes verbatim.
pub fn encode_frame<T: Serialize>(value: &T) -> io::Result<Vec<u8>> {
    let body = serde_json::to_vec(value).map_err(io::Error::other)?;
    let len = u32::try_from(body.len()).map_err(|_| io::Error::other("frame too large"))?;
    if len > MAX_FRAME {
        return Err(io::Error::other("frame too large"));
    }
    let mut bytes = Vec::with_capacity(4 + body.len());
    bytes.extend_from_slice(&len.to_le_bytes());
    bytes.extend_from_slice(&body);
    Ok(bytes)
}

/// Writes one length-prefixed JSON frame.
pub fn write_frame<W: Write, T: Serialize>(writer: &mut W, value: &T) -> io::Result<()> {
    writer.write_all(&encode_frame(value)?)?;
    writer.flush()
}

/// Decodes and bounds-checks a frame's length prefix. The single place that
/// knows the prefix encoding; every reader (blocking or interruptible) goes
/// through it.
pub fn frame_len(len_buf: [u8; 4]) -> io::Result<usize> {
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame length exceeds limit",
        ));
    }
    Ok(len as usize)
}

/// Decodes a frame body into a message.
pub fn decode_frame<T: DeserializeOwned>(body: &[u8]) -> io::Result<T> {
    serde_json::from_slice(body).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Reads one length-prefixed JSON frame.
pub fn read_frame<R: Read, T: DeserializeOwned>(reader: &mut R) -> io::Result<T> {
    let mut len_buf = [0u8; 4];
    reader.read_exact(&mut len_buf)?;
    let len = frame_len(len_buf)?;
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body)?;
    decode_frame(&body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Request, Response};

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Request::Ping).unwrap();
        write_frame(&mut buf, &Response::Ok).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        let req: Request = read_frame(&mut cursor).unwrap();
        let resp: Response = read_frame(&mut cursor).unwrap();
        assert_eq!(req, Request::Ping);
        assert_eq!(resp, Response::Ok);
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        buf.extend_from_slice(&[0; 16]);
        let mut cursor = std::io::Cursor::new(buf);
        assert!(read_frame::<_, Request>(&mut cursor).is_err());
    }

    #[test]
    fn truncated_frame_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Request::Ping).unwrap();
        buf.truncate(buf.len() - 1);
        let mut cursor = std::io::Cursor::new(buf);
        assert!(read_frame::<_, Request>(&mut cursor).is_err());
    }
}
