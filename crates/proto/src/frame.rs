//! Length-prefixed JSON framing for the UNIX-domain-socket transport.

use serde::de::DeserializeOwned;
use serde::Serialize;
use std::io::{self, Read, Write};

/// Maximum accepted frame size (16 MiB); guards against corrupt prefixes.
pub const MAX_FRAME: u32 = 16 << 20;

/// Writes one length-prefixed JSON frame.
pub fn write_frame<W: Write, T: Serialize>(writer: &mut W, value: &T) -> io::Result<()> {
    let body = serde_json::to_vec(value).map_err(io::Error::other)?;
    let len = u32::try_from(body.len()).map_err(|_| io::Error::other("frame too large"))?;
    if len > MAX_FRAME {
        return Err(io::Error::other("frame too large"));
    }
    writer.write_all(&len.to_le_bytes())?;
    writer.write_all(&body)?;
    writer.flush()
}

/// Reads one length-prefixed JSON frame.
pub fn read_frame<R: Read, T: DeserializeOwned>(reader: &mut R) -> io::Result<T> {
    let mut len_buf = [0u8; 4];
    reader.read_exact(&mut len_buf)?;
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame length exceeds limit",
        ));
    }
    let mut body = vec![0u8; len as usize];
    reader.read_exact(&mut body)?;
    serde_json::from_slice(&body).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Request, Response};

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Request::Ping).unwrap();
        write_frame(&mut buf, &Response::Ok).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        let req: Request = read_frame(&mut cursor).unwrap();
        let resp: Response = read_frame(&mut cursor).unwrap();
        assert_eq!(req, Request::Ping);
        assert_eq!(resp, Response::Ok);
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        buf.extend_from_slice(&[0; 16]);
        let mut cursor = std::io::Cursor::new(buf);
        assert!(read_frame::<_, Request>(&mut cursor).is_err());
    }

    #[test]
    fn truncated_frame_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Request::Ping).unwrap();
        buf.truncate(buf.len() - 1);
        let mut cursor = std::io::Cursor::new(buf);
        assert!(read_frame::<_, Request>(&mut cursor).is_err());
    }
}
