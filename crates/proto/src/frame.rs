//! Length-prefixed JSON framing for the UNIX-domain-socket transport.

use serde::de::DeserializeOwned;
use serde::Serialize;
use std::io::{self, Read, Write};

/// Maximum accepted frame size (16 MiB); guards against corrupt prefixes.
pub const MAX_FRAME: u32 = 16 << 20;

/// Protocol-v2 connection preamble.
///
/// A v2 client writes these 4 bytes once, immediately after connecting and
/// before its first frame; everything after them is `RequestEnvelope` /
/// `ResponseEnvelope` frames (see the crate docs). The bytes are chosen so
/// they can never be confused with a v1 frame: interpreted as a v1
/// little-endian length prefix they decode to `0x3244_5550`, far above
/// [`MAX_FRAME`], so a v1 peer rejects the stream instead of misparsing it
/// (and a v1 first frame, whose prefix is always ≤ [`MAX_FRAME`], can never
/// equal the magic). `version_negotiation_magic_cannot_be_a_v1_prefix`
/// pins this down.
pub const V2_MAGIC: [u8; 4] = *b"PUD2";

/// Encodes one length-prefixed JSON frame into a byte buffer (prefix
/// included). The single place that knows the frame encoding; writers that
/// need custom I/O (e.g. interruptible writes) send these bytes verbatim.
pub fn encode_frame<T: Serialize>(value: &T) -> io::Result<Vec<u8>> {
    let body = serde_json::to_vec(value).map_err(io::Error::other)?;
    let len = u32::try_from(body.len()).map_err(|_| io::Error::other("frame too large"))?;
    if len > MAX_FRAME {
        return Err(io::Error::other("frame too large"));
    }
    let mut bytes = Vec::with_capacity(4 + body.len());
    bytes.extend_from_slice(&len.to_le_bytes());
    bytes.extend_from_slice(&body);
    Ok(bytes)
}

/// Writes one length-prefixed JSON frame.
pub fn write_frame<W: Write, T: Serialize>(writer: &mut W, value: &T) -> io::Result<()> {
    writer.write_all(&encode_frame(value)?)?;
    writer.flush()
}

/// Decodes and bounds-checks a frame's length prefix. The single place that
/// knows the prefix encoding; every reader (blocking or interruptible) goes
/// through it.
pub fn frame_len(len_buf: [u8; 4]) -> io::Result<usize> {
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame length exceeds limit",
        ));
    }
    Ok(len as usize)
}

/// Decodes a frame body into a message.
pub fn decode_frame<T: DeserializeOwned>(body: &[u8]) -> io::Result<T> {
    serde_json::from_slice(body).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Incremental frame decoder for nonblocking transports.
///
/// A reactor-style server reads whatever bytes the socket has — which may
/// be half a length prefix, several frames back-to-back, or a frame split
/// at any byte boundary — and feeds them here; [`FrameDecoder::next_frame`]
/// yields each complete message exactly once. The decoder owns a single
/// contiguous buffer; consumed frames are drained from its front.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: Vec<u8>,
}

impl FrameDecoder {
    /// Creates an empty decoder.
    pub fn new() -> FrameDecoder {
        FrameDecoder::default()
    }

    /// Appends raw bytes received from the transport.
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Number of bytes buffered but not yet decoded (partial frame plus any
    /// frames not yet pulled with [`FrameDecoder::next_frame`]).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Returns the first `n` buffered bytes without consuming them, or
    /// `None` if fewer are buffered. Servers use this to sniff the
    /// [`V2_MAGIC`] preamble before deciding how to decode the stream.
    pub fn peek(&self, n: usize) -> Option<&[u8]> {
        (self.buf.len() >= n).then(|| &self.buf[..n])
    }

    /// Discards the first `n` buffered bytes (the caller has interpreted
    /// them out of band, e.g. the [`V2_MAGIC`] preamble).
    ///
    /// # Panics
    ///
    /// Panics if fewer than `n` bytes are buffered.
    pub fn consume(&mut self, n: usize) {
        assert!(self.buf.len() >= n, "consume past the buffered bytes");
        self.buf.drain(..n);
    }

    /// Decodes the next complete frame, if the buffer holds one.
    ///
    /// Returns `Ok(None)` while the frame is still incomplete. A corrupt
    /// prefix (length beyond [`MAX_FRAME`]) or an undecodable body is an
    /// error; the connection should be dropped — after a framing error the
    /// stream position is unrecoverable.
    pub fn next_frame<T: DeserializeOwned>(&mut self) -> io::Result<Option<T>> {
        if self.buf.len() < 4 {
            return Ok(None);
        }
        let len = frame_len(self.buf[..4].try_into().expect("4 bytes checked"))?;
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        let value = decode_frame(&self.buf[4..4 + len])?;
        self.buf.drain(..4 + len);
        Ok(Some(value))
    }
}

/// Reads one length-prefixed JSON frame.
pub fn read_frame<R: Read, T: DeserializeOwned>(reader: &mut R) -> io::Result<T> {
    let mut len_buf = [0u8; 4];
    reader.read_exact(&mut len_buf)?;
    let len = frame_len(len_buf)?;
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body)?;
    decode_frame(&body)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Request, Response};

    #[test]
    fn frame_roundtrip() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Request::Ping).unwrap();
        write_frame(&mut buf, &Response::Ok).unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        let req: Request = read_frame(&mut cursor).unwrap();
        let resp: Response = read_frame(&mut cursor).unwrap();
        assert_eq!(req, Request::Ping);
        assert_eq!(resp, Response::Ok);
    }

    #[test]
    fn oversized_frame_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&(MAX_FRAME + 1).to_le_bytes());
        buf.extend_from_slice(&[0; 16]);
        let mut cursor = std::io::Cursor::new(buf);
        assert!(read_frame::<_, Request>(&mut cursor).is_err());
    }

    #[test]
    fn truncated_frame_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, &Request::Ping).unwrap();
        buf.truncate(buf.len() - 1);
        let mut cursor = std::io::Cursor::new(buf);
        assert!(read_frame::<_, Request>(&mut cursor).is_err());
    }

    /// A stream of frames the decoder tests chop up.
    fn sample_stream() -> (Vec<Request>, Vec<u8>) {
        let reqs = vec![
            Request::Ping,
            Request::OpenPool {
                name: "pool-with-a-longer-name".into(),
            },
            Request::GetPtrMaps,
            Request::CreatePool {
                name: "p".into(),
                root_size: 1 << 20,
                mode: 0o640,
            },
            Request::Ping,
        ];
        let mut bytes = Vec::new();
        for req in &reqs {
            bytes.extend_from_slice(&encode_frame(req).unwrap());
        }
        (reqs, bytes)
    }

    #[test]
    fn decoder_yields_frames_fed_byte_by_byte() {
        let (reqs, bytes) = sample_stream();
        let mut dec = FrameDecoder::new();
        let mut out: Vec<Request> = Vec::new();
        for b in bytes {
            dec.feed(&[b]);
            while let Some(req) = dec.next_frame().unwrap() {
                out.push(req);
            }
        }
        assert_eq!(out, reqs);
        assert_eq!(dec.buffered(), 0);
    }

    #[test]
    fn decoder_yields_frames_fed_all_at_once() {
        let (reqs, bytes) = sample_stream();
        let mut dec = FrameDecoder::new();
        dec.feed(&bytes);
        let mut out: Vec<Request> = Vec::new();
        while let Some(req) = dec.next_frame().unwrap() {
            out.push(req);
        }
        assert_eq!(out, reqs);
    }

    #[test]
    fn decoder_rejects_oversized_length_prefix() {
        let mut dec = FrameDecoder::new();
        dec.feed(&(MAX_FRAME + 1).to_le_bytes());
        assert!(dec.next_frame::<Request>().is_err());
    }

    #[test]
    fn version_negotiation_magic_cannot_be_a_v1_prefix() {
        // As a v1 length prefix the magic must be rejected outright, so a
        // v2 preamble reaching a v1 decoder fails instead of misparsing.
        assert!(u32::from_le_bytes(V2_MAGIC) > MAX_FRAME);
        assert!(frame_len(V2_MAGIC).is_err());
    }

    #[test]
    fn peek_and_consume_strip_a_preamble() {
        let mut dec = FrameDecoder::new();
        dec.feed(&V2_MAGIC[..2]);
        assert_eq!(dec.peek(4), None, "partial preamble is not peekable");
        dec.feed(&V2_MAGIC[2..]);
        dec.feed(&encode_frame(&Request::Ping).unwrap());
        assert_eq!(dec.peek(4), Some(&V2_MAGIC[..]));
        dec.consume(4);
        assert_eq!(dec.next_frame::<Request>().unwrap(), Some(Request::Ping));
        assert_eq!(dec.buffered(), 0);
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(64))]

        /// Frames split across arbitrary read boundaries decode exactly as
        /// the unsplit stream: the reactor's invariant that socket read
        /// chunking can never change what the daemon sees.
        #[test]
        fn decoder_is_chunking_invariant(
            cuts in proptest::collection::vec(1usize..24, 0..40)
        ) {
            let (reqs, bytes) = sample_stream();
            let mut dec = FrameDecoder::new();
            let mut out: Vec<Request> = Vec::new();
            let mut pos = 0usize;
            // Interpret the sampled values as successive chunk lengths;
            // whatever remains after the last cut is fed in one piece.
            for cut in cuts {
                if pos >= bytes.len() {
                    break;
                }
                let end = (pos + cut).min(bytes.len());
                dec.feed(&bytes[pos..end]);
                pos = end;
                while let Some(req) = dec.next_frame().unwrap() {
                    out.push(req);
                }
            }
            dec.feed(&bytes[pos..]);
            while let Some(req) = dec.next_frame().unwrap() {
                out.push(req);
            }
            proptest::prop_assert_eq!(&out, &reqs);
            proptest::prop_assert_eq!(dec.buffered(), 0);
        }

        /// A v2 stream — magic preamble plus enveloped frames — fed at
        /// arbitrary split boundaries negotiates and decodes exactly as the
        /// unsplit stream, with every request keeping its `req_id`. This is
        /// the daemon-side invariant behind pipelining: chunking can change
        /// neither the version decision nor id→request pairing.
        #[test]
        fn v2_stream_is_chunking_invariant(
            cuts in proptest::collection::vec(1usize..24, 0..40)
        ) {
            let (reqs, _) = sample_stream();
            let envelopes: Vec<crate::RequestEnvelope> = reqs
                .into_iter()
                .enumerate()
                .map(|(i, req)| crate::RequestEnvelope {
                    req_id: 1000 + i as u64,
                    req,
                })
                .collect();
            let mut bytes = V2_MAGIC.to_vec();
            for env in &envelopes {
                bytes.extend_from_slice(&encode_frame(env).unwrap());
            }
            let mut dec = FrameDecoder::new();
            let mut negotiated = false;
            let mut out: Vec<crate::RequestEnvelope> = Vec::new();
            let drain = |dec: &mut FrameDecoder, negotiated: &mut bool,
                             out: &mut Vec<crate::RequestEnvelope>| {
                if !*negotiated {
                    match dec.peek(4) {
                        Some(head) if head == V2_MAGIC => {
                            dec.consume(4);
                            *negotiated = true;
                        }
                        Some(_) => panic!("v2 preamble misread as a v1 prefix"),
                        None => return,
                    }
                }
                while let Some(env) = dec.next_frame().unwrap() {
                    out.push(env);
                }
            };
            let mut pos = 0usize;
            for cut in cuts {
                if pos >= bytes.len() {
                    break;
                }
                let end = (pos + cut).min(bytes.len());
                dec.feed(&bytes[pos..end]);
                pos = end;
                drain(&mut dec, &mut negotiated, &mut out);
            }
            dec.feed(&bytes[pos..]);
            drain(&mut dec, &mut negotiated, &mut out);
            proptest::prop_assert_eq!(&out, &envelopes);
            proptest::prop_assert_eq!(dec.buffered(), 0);
        }
    }
}
