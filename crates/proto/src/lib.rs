//! Client ↔ daemon protocol for the Puddles system.
//!
//! `libpuddles` talks to `puddled` over a UNIX-domain socket (or an
//! in-process endpoint) using the request/response messages defined here.
//! The paper's daemon returns puddle file descriptors via
//! `sendmsg(SCM_RIGHTS)`; this reproduction returns the puddle's file path
//! plus a grant token instead (see DESIGN.md, substitutions), so the
//! protocol is plain serde-serializable data.

pub mod frame;
pub mod types;

pub use frame::{read_frame, write_frame};
pub use types::*;

use serde::{Deserialize, Serialize};

/// A request sent from a client (`libpuddles`) to the daemon (`puddled`).
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub enum Request {
    /// Introduces the client and its credentials; must be the first message.
    Hello {
        /// Client credentials used for access-control decisions.
        creds: Credentials,
        /// Requested per-connection in-flight request window (protocol v2
        /// pipelining). `0` asks for the server default; the server clamps
        /// to its configured maximum and reports the grant in `Welcome`.
        /// Defaulted so `Hello` frames from older clients still parse.
        #[serde(default)]
        max_in_flight: u32,
        /// Requested client-side connection-pool depth. `0` asks for the
        /// server default; clamped and granted like `max_in_flight`.
        #[serde(default)]
        pool_depth: u32,
        /// `true` when this `Hello` re-establishes a connection the client
        /// already had (retry/backoff path); counted in daemon stats.
        #[serde(default)]
        reconnect: bool,
    },
    /// Allocates a new puddle of `size` bytes.
    CreatePuddle {
        /// Puddle size in bytes (multiple of the page size).
        size: u64,
        /// Pool to attach the puddle to, if any.
        pool: Option<String>,
        /// What the puddle will be used for.
        purpose: PuddlePurpose,
        /// Access mode bits for the new puddle (UNIX-like, e.g. 0o600).
        mode: u32,
    },
    /// Requests access to an existing puddle.
    GetPuddle {
        /// The puddle to open.
        id: PuddleId,
        /// Whether write access is requested.
        writable: bool,
    },
    /// Frees a puddle, removing it from its pool and deleting its backing
    /// file.
    FreePuddle {
        /// The puddle to free.
        id: PuddleId,
    },
    /// Creates a pool with a fresh root puddle.
    CreatePool {
        /// Pool name (unique per daemon).
        name: String,
        /// Size of the root puddle in bytes.
        root_size: u64,
        /// Access mode bits for the pool's puddles.
        mode: u32,
    },
    /// Opens an existing pool.
    OpenPool {
        /// Pool name.
        name: String,
    },
    /// Deletes a pool and all of its puddles.
    DropPool {
        /// Pool name.
        name: String,
    },
    /// Registers a puddle as the client's log space (§4.1).
    RegLogSpace {
        /// The log-space puddle.
        puddle: PuddleId,
    },
    /// Registers (or re-registers) a pointer map for a persistent type.
    RegisterPtrMap {
        /// Declaration of the type's pointer fields.
        decl: PtrMapDecl,
    },
    /// Fetches every registered pointer map.
    GetPtrMaps,
    /// Exports a pool (its puddles plus metadata manifest) to a directory.
    ExportPool {
        /// Pool name.
        name: String,
        /// Destination directory (created if missing).
        dest: String,
    },
    /// Imports a previously exported pool under a new name.
    ImportPool {
        /// Directory containing the export manifest.
        src: String,
        /// Name for the imported pool.
        new_name: String,
    },
    /// Returns relocation information for a puddle (whether its pointers
    /// still need rewriting, and the old→new address translations to use).
    GetRelocation {
        /// The puddle being mapped.
        id: PuddleId,
    },
    /// Records that the client finished rewriting a puddle's pointers.
    MarkRewritten {
        /// The rewritten puddle.
        id: PuddleId,
    },
    /// Runs crash recovery immediately (normally done at daemon start).
    Recover,
    /// Returns daemon statistics.
    Stats,
    /// Returns the daemon's latency histograms and counters (the
    /// observability plane; `Stats` keeps the flat counter set for older
    /// clients).
    GetMetrics,
    /// A no-op round trip, used to measure daemon latency (§5.1).
    Ping,
}

/// A response from the daemon.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub enum Response {
    /// Generic success.
    Ok,
    /// Reply to `Hello`: where this machine's global puddle space lives,
    /// plus the granted connection parameters.
    Welcome {
        /// Base virtual address of the global puddle space.
        space_base: u64,
        /// Size of the global puddle space in bytes.
        space_size: u64,
        /// Granted per-connection in-flight window (the requested value
        /// clamped to the server's configured maximum; v1 connections are
        /// always granted 1). Defaulted (`0` = no grant information) so a
        /// `Welcome` from an older daemon still parses.
        #[serde(default)]
        max_in_flight: u32,
        /// Granted client connection-pool depth (`0` = no grant
        /// information, keep the client's current depth).
        #[serde(default)]
        pool_depth: u32,
    },
    /// A puddle was created or opened.
    Puddle(PuddleInfo),
    /// Pool metadata.
    Pool(PoolInfo),
    /// Registered pointer maps.
    PtrMaps(Vec<PtrMapDecl>),
    /// Result of an import: the new pool plus address translations.
    Imported {
        /// The freshly registered pool.
        pool: PoolInfo,
        /// Old→new address translations for every imported puddle.
        translations: Vec<Translation>,
    },
    /// Relocation state of a puddle.
    Relocation {
        /// `true` if the client must rewrite pointers before use.
        needs_rewrite: bool,
        /// Address translations to apply while rewriting.
        translations: Vec<Translation>,
    },
    /// Outcome of a recovery pass.
    Recovered(RecoveryReport),
    /// Daemon statistics.
    Stats(DaemonStats),
    /// Histogram snapshots and counters (reply to `GetMetrics`).
    Metrics(MetricsReport),
    /// The request failed.
    Error {
        /// Machine-readable error category.
        code: ErrorCode,
        /// Human-readable description.
        message: String,
    },
}

/// A protocol-v2 request frame: a client-assigned id plus the request.
///
/// Ids are chosen by the client (any `u64`; monotonically increasing in
/// practice) and echoed back verbatim in the matching [`ResponseEnvelope`].
/// A v2 daemon may complete and write responses in any order, so the id is
/// the only way to pair a response with its request.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct RequestEnvelope {
    /// Client-assigned request id, echoed in the response.
    pub req_id: u64,
    /// The wrapped request.
    pub req: Request,
}

/// A protocol-v2 response frame: the echoed id plus the response.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq)]
pub struct ResponseEnvelope {
    /// The id of the request this response answers.
    pub req_id: u64,
    /// The wrapped response.
    pub resp: Response,
}

/// A daemon→client frame as a v2 client must parse it.
///
/// Almost every frame on a v2 connection is a [`ResponseEnvelope`], but the
/// daemon can emit one bare v1 [`Response`] before it has seen the client's
/// preamble: the `Busy` rejection written when the connection cap is hit.
/// Decoding is structural — an object carrying a `req_id` key is an
/// envelope, anything else is a bare response — so no extra tag byte is
/// needed on the wire.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerFrame {
    /// An id-tagged v2 response.
    Enveloped(ResponseEnvelope),
    /// A bare v1 response (pre-handshake `Busy` rejection).
    Bare(Response),
}

impl Serialize for ServerFrame {
    fn serialize(&self) -> serde::Value {
        match self {
            ServerFrame::Enveloped(env) => env.serialize(),
            ServerFrame::Bare(resp) => resp.serialize(),
        }
    }
}

impl Deserialize for ServerFrame {
    fn deserialize(v: &serde::Value) -> Result<Self, serde::Error> {
        let is_envelope = v
            .as_map()
            .is_some_and(|m| m.iter().any(|(k, _)| k == "req_id"));
        if is_envelope {
            Ok(ServerFrame::Enveloped(ResponseEnvelope::deserialize(v)?))
        } else {
            Ok(ServerFrame::Bare(Response::deserialize(v)?))
        }
    }
}

impl Request {
    /// A `Hello` with default connection parameters (server picks the
    /// window and pool depth) on a fresh, first-time connection.
    pub fn hello(creds: Credentials) -> Request {
        Request::Hello {
            creds,
            max_in_flight: 0,
            pool_depth: 0,
            reconnect: false,
        }
    }
}

impl Response {
    /// Converts an error response into `Err`, passing others through.
    pub fn into_result(self) -> Result<Response, ProtoError> {
        match self {
            Response::Error { code, message } => Err(ProtoError { code, message }),
            other => Ok(other),
        }
    }
}

/// A daemon-reported failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    /// Machine-readable error category.
    pub code: ErrorCode,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "daemon error ({:?}): {}", self.code, self.message)
    }
}

impl std::error::Error for ProtoError {}

/// A bidirectional request/response channel to the daemon.
///
/// Implemented by the in-process endpoint (`puddled::LocalEndpoint`) and by
/// the UNIX-domain-socket client (`puddles::client::UdsEndpoint`).
pub trait Endpoint: Send + Sync {
    /// Sends one request and waits for its response.
    fn call(&self, req: &Request) -> std::io::Result<Response>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrips_through_json() {
        let reqs = vec![
            Request::Hello {
                creds: Credentials {
                    uid: 1000,
                    gid: 100,
                },
                max_in_flight: 64,
                pool_depth: 2,
                reconnect: true,
            },
            Request::hello(Credentials { uid: 1, gid: 2 }),
            Request::CreatePuddle {
                size: 2 << 20,
                pool: Some("p".into()),
                purpose: PuddlePurpose::Data,
                mode: 0o600,
            },
            Request::GetPuddle {
                id: PuddleId(0xdead_beef_dead_beef_dead_beef_dead_beefu128),
                writable: false,
            },
            Request::RegisterPtrMap {
                decl: PtrMapDecl {
                    type_id: 42,
                    type_name: "Node".into(),
                    size: 16,
                    fields: vec![PtrField {
                        offset: 8,
                        target_type: 42,
                    }],
                },
            },
            Request::Ping,
        ];
        for req in reqs {
            let json = serde_json::to_string(&req).unwrap();
            let back: Request = serde_json::from_str(&json).unwrap();
            assert_eq!(req, back);
        }
    }

    /// `Hello`/`Welcome` grew negotiation fields after the wire format
    /// shipped; frames from peers that predate them must still parse, with
    /// the absent fields falling back to "server default" semantics.
    #[test]
    fn hello_and_welcome_without_negotiation_fields_still_parse() {
        let old_hello = r#"{"Hello":{"creds":{"uid":1000,"gid":100}}}"#;
        let req: Request = serde_json::from_str(old_hello).unwrap();
        assert_eq!(
            req,
            Request::hello(Credentials {
                uid: 1000,
                gid: 100
            })
        );

        let old_welcome = r#"{"Welcome":{"space_base":4096,"space_size":8192}}"#;
        let resp: Response = serde_json::from_str(old_welcome).unwrap();
        assert_eq!(
            resp,
            Response::Welcome {
                space_base: 4096,
                space_size: 8192,
                max_in_flight: 0,
                pool_depth: 0,
            }
        );
    }

    /// `GetMetrics` must interoperate across both wire protocols: as a v1
    /// bare frame and inside v2 envelopes, with reports from peers that
    /// predate the trace-ring fields still parsing.
    #[test]
    fn get_metrics_interops_across_protocol_versions() {
        let json = serde_json::to_string(&Request::GetMetrics).unwrap();
        assert_eq!(
            serde_json::from_str::<Request>(&json).unwrap(),
            Request::GetMetrics
        );
        let env = RequestEnvelope {
            req_id: 9,
            req: Request::GetMetrics,
        };
        let json = serde_json::to_string(&env).unwrap();
        assert_eq!(serde_json::from_str::<RequestEnvelope>(&json).unwrap(), env);

        let report = MetricsReport {
            series: vec![SeriesSnapshot {
                name: "service.Ping".into(),
                count: 3,
                sum_nanos: 300,
                p50_nanos: 100,
                p90_nanos: 110,
                p99_nanos: 120,
                max_nanos: 118,
            }],
            counters: vec![CounterSnapshot {
                name: "client_reconnects".into(),
                value: 1,
            }],
            trace_buffered: 9,
            trace_dropped: 0,
        };
        // v1: a bare response frame.
        let bare = Response::Metrics(report.clone());
        let json = serde_json::to_string(&bare).unwrap();
        let frame: ServerFrame = serde_json::from_str(&json).unwrap();
        assert_eq!(frame, ServerFrame::Bare(bare.clone()));
        // v2: the same response enveloped.
        let env = ResponseEnvelope {
            req_id: 42,
            resp: bare,
        };
        let json = serde_json::to_string(&env).unwrap();
        let frame: ServerFrame = serde_json::from_str(&json).unwrap();
        assert_eq!(frame, ServerFrame::Enveloped(env));
        // A report without the trace fields (older daemon) still parses.
        let old = r#"{"series":[],"counters":[]}"#;
        let report: MetricsReport = serde_json::from_str(old).unwrap();
        assert_eq!(report.trace_buffered, 0);
        assert_eq!(report.trace_dropped, 0);
    }

    /// `reactor_connections` shipped as a fixed `[u64; 4]` before it became
    /// a length-`reactors` `Vec`; frames in the old shape (and frames
    /// without the reactor fields at all) must still decode.
    #[test]
    fn stats_frames_with_fixed_reactor_array_still_parse() {
        let json = serde_json::to_string(&Response::Stats(DaemonStats::default())).unwrap();
        let old_fixed = json
            .replace(
                "\"reactor_connections\":[]",
                "\"reactor_connections\":[0,3,0,0]",
            )
            .replace("\"reactor_requests\":[],", "");
        let back: Response = serde_json::from_str(&old_fixed).unwrap();
        let Response::Stats(stats) = back else {
            panic!("expected Stats, got {back:?}");
        };
        assert_eq!(stats.reactor_connections, vec![0, 3, 0, 0]);
        assert!(stats.reactor_requests.is_empty(), "absent field defaults");
    }

    #[test]
    fn response_error_into_result() {
        let ok = Response::Ok.into_result().unwrap();
        assert_eq!(ok, Response::Ok);
        let err = Response::Error {
            code: ErrorCode::PermissionDenied,
            message: "nope".into(),
        }
        .into_result()
        .unwrap_err();
        assert_eq!(err.code, ErrorCode::PermissionDenied);
    }

    #[test]
    fn server_frame_distinguishes_envelopes_from_bare_responses() {
        let env = ResponseEnvelope {
            req_id: 7,
            resp: Response::Welcome {
                space_base: 0x1000,
                space_size: 0x2000,
                max_in_flight: 64,
                pool_depth: 2,
            },
        };
        let json = serde_json::to_string(&env).unwrap();
        let frame: ServerFrame = serde_json::from_str(&json).unwrap();
        assert_eq!(frame, ServerFrame::Enveloped(env));

        let bare = Response::Error {
            code: ErrorCode::Busy,
            message: "connection limit reached".into(),
        };
        let json = serde_json::to_string(&bare).unwrap();
        let frame: ServerFrame = serde_json::from_str(&json).unwrap();
        assert_eq!(frame, ServerFrame::Bare(bare));

        let unit = Response::Ok;
        let json = serde_json::to_string(&unit).unwrap();
        let frame: ServerFrame = serde_json::from_str(&json).unwrap();
        assert_eq!(frame, ServerFrame::Bare(unit));
    }

    #[test]
    fn request_envelope_roundtrips_through_json() {
        let env = RequestEnvelope {
            req_id: u64::MAX,
            req: Request::OpenPool { name: "p".into() },
        };
        let json = serde_json::to_string(&env).unwrap();
        let back: RequestEnvelope = serde_json::from_str(&json).unwrap();
        assert_eq!(back, env);
    }

    #[test]
    fn puddle_id_json_is_stable_hex() {
        let id = PuddleId(0x0123_4567_89ab_cdef_0123_4567_89ab_cdefu128);
        let json = serde_json::to_string(&id).unwrap();
        assert_eq!(json, "\"0123456789abcdef0123456789abcdef\"");
        let back: PuddleId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, id);
    }
}
