//! Shared data types for the client/daemon protocol.

use serde::{Deserialize, Error as SerdeError, Serialize, Value};

/// A 128-bit universally unique puddle identifier (§4.3).
///
/// Serialized as a 32-character lowercase hex string so every JSON consumer
/// (including non-Rust tooling) can parse it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PuddleId(pub u128);

impl PuddleId {
    /// Formats the identifier as 32 hex characters.
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }

    /// Parses a 32-character hex string.
    pub fn from_hex(s: &str) -> Option<Self> {
        u128::from_str_radix(s, 16).ok().map(PuddleId)
    }
}

impl std::fmt::Display for PuddleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_hex())
    }
}

impl Serialize for PuddleId {
    fn serialize(&self) -> Value {
        Value::Str(self.to_hex())
    }
}

impl Deserialize for PuddleId {
    fn deserialize(v: &Value) -> Result<Self, SerdeError> {
        let s = String::deserialize(v)?;
        PuddleId::from_hex(&s).ok_or_else(|| SerdeError::custom("invalid puddle id"))
    }
}

/// Client credentials presented in `Hello`, used for access control.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq, Eq)]
pub struct Credentials {
    /// Numeric user id.
    pub uid: u32,
    /// Numeric group id.
    pub gid: u32,
}

impl Credentials {
    /// Credentials of the calling process.
    pub fn current_process() -> Self {
        // SAFETY: getuid/getgid have no preconditions.
        unsafe {
            Credentials {
                uid: sys::getuid(),
                gid: sys::getgid(),
            }
        }
    }
}

/// Minimal libc declarations so `puddles-proto` does not depend on the full
/// `libc` crate: only `getuid`/`getgid` are needed, for
/// [`Credentials::current_process`].
mod sys {
    extern "C" {
        pub fn getuid() -> u32;
        pub fn getgid() -> u32;
    }
}

/// What a puddle is used for; the daemon treats log and log-space puddles
/// specially during recovery.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq, Eq)]
pub enum PuddlePurpose {
    /// Ordinary data puddle (part of a pool heap).
    Data,
    /// Holds a client's crash-consistency log.
    Log,
    /// Holds a client's log space (directory of log puddles).
    LogSpace,
}

/// Metadata describing one puddle, as returned by the daemon.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct PuddleInfo {
    /// The puddle's UUID.
    pub id: PuddleId,
    /// Total size in bytes (header + heap).
    pub size: u64,
    /// Assigned address in the global puddle space.
    pub assigned_addr: u64,
    /// Path of the backing file (capability grant; see DESIGN.md).
    pub path: String,
    /// What the puddle is used for.
    pub purpose: PuddlePurpose,
    /// Owning user id.
    pub owner_uid: u32,
    /// Owning group id.
    pub owner_gid: u32,
    /// UNIX-like permission bits (rw for owner/group/other).
    pub mode: u32,
    /// `true` if the puddle's pointers must be rewritten before use.
    pub needs_rewrite: bool,
    /// `true` if the requesting client was granted write access.
    pub writable: bool,
}

/// Metadata describing a pool: a named collection of puddles with a root.
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct PoolInfo {
    /// Pool name.
    pub name: String,
    /// UUID of the root puddle (holds the pool's root object).
    pub root_puddle: PuddleId,
    /// Every puddle belonging to the pool, root first.
    pub puddles: Vec<PuddleId>,
}

/// One pointer field inside a persistent type.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq, Eq)]
pub struct PtrField {
    /// Byte offset of the pointer within the object.
    pub offset: u64,
    /// Type id of the pointed-to type (0 if unknown / opaque).
    pub target_type: u64,
}

/// A pointer map registered for a persistent type (§4.2 "Pointer maps").
#[derive(Debug, Clone, Serialize, Deserialize, PartialEq, Eq)]
pub struct PtrMapDecl {
    /// Stable 64-bit type identifier (hash of the type name).
    pub type_id: u64,
    /// Human-readable type name (diagnostics only).
    pub type_name: String,
    /// Size of the type in bytes.
    pub size: u64,
    /// Offsets of every pointer field.
    pub fields: Vec<PtrField>,
}

/// An old→new address translation produced by relocation on import.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq, Eq)]
pub struct Translation {
    /// Base address the puddle was assigned when it was exported.
    pub old_addr: u64,
    /// Base address assigned in this machine's global space.
    pub new_addr: u64,
    /// Length of the translated range.
    pub len: u64,
}

impl Translation {
    /// Translates `addr` if it falls inside this range.
    pub fn translate(&self, addr: u64) -> Option<u64> {
        if addr >= self.old_addr && addr < self.old_addr + self.len {
            Some(self.new_addr + (addr - self.old_addr))
        } else {
            None
        }
    }
}

/// Summary of a recovery pass.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Log spaces examined.
    pub log_spaces: u64,
    /// Logs examined.
    pub logs: u64,
    /// Log entries applied.
    pub entries_applied: u64,
    /// Log entries denied by access control.
    pub entries_denied: u64,
    /// Logs that were already complete (nothing to do).
    pub logs_clean: u64,
    /// Logs marked invalid because replay was not permitted.
    pub logs_invalidated: u64,
    /// Logs that spanned more than one puddle (chained via `chain_index`).
    pub chained_logs: u64,
    /// Chained tail segments unregistered and freed after their transaction
    /// was resolved (orphaned by a crash before the client released them).
    pub chain_tails_reclaimed: u64,
}

/// One latency series in a [`MetricsReport`]: summary quantiles of a
/// daemon-side log-linear histogram. All time values are nanoseconds of
/// the daemon's clock (logical nanoseconds under a virtual clock).
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq, Eq)]
pub struct SeriesSnapshot {
    /// Series name (`service.<RequestKind>`, `wal.flush`, `checkpoint`,
    /// `alloc.coalesce`, ...).
    pub name: String,
    /// Values recorded.
    pub count: u64,
    /// Sum of recorded values (nanoseconds); `sum / count` is the mean.
    pub sum_nanos: u64,
    /// Median latency (bucket upper bound, ≲6% relative error).
    pub p50_nanos: u64,
    /// 90th-percentile latency.
    pub p90_nanos: u64,
    /// 99th-percentile latency.
    pub p99_nanos: u64,
    /// Largest recorded value (exact).
    pub max_nanos: u64,
}

/// One named counter in a [`MetricsReport`].
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq, Eq)]
pub struct CounterSnapshot {
    /// Counter name.
    pub name: String,
    /// Current value.
    pub value: u64,
}

/// Reply to `GetMetrics`: every histogram series and counter the daemon's
/// observability hub holds, name-sorted. Also produced client-side by the
/// client's local reporter (retry/pipeline counters).
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq, Eq)]
pub struct MetricsReport {
    /// Latency series, sorted by name.
    pub series: Vec<SeriesSnapshot>,
    /// Counters, sorted by name.
    pub counters: Vec<CounterSnapshot>,
    /// Trace events currently buffered in the daemon's trace ring.
    #[serde(default)]
    pub trace_buffered: u64,
    /// Trace events dropped to ring-capacity overflow.
    #[serde(default)]
    pub trace_dropped: u64,
}

impl MetricsReport {
    /// The named series, if present.
    pub fn series(&self, name: &str) -> Option<&SeriesSnapshot> {
        self.series.iter().find(|s| s.name == name)
    }

    /// The named counter's value, if present.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.value)
    }
}

/// Daemon statistics (puddle/pool counts and space usage).
#[derive(Debug, Clone, Default, Serialize, Deserialize, PartialEq, Eq)]
pub struct DaemonStats {
    /// Number of live puddles.
    pub puddles: u64,
    /// Number of pools.
    pub pools: u64,
    /// Number of registered pointer maps.
    pub ptr_maps: u64,
    /// Number of registered log spaces.
    pub log_spaces: u64,
    /// Bytes of global puddle space handed out.
    pub space_used: u64,
    /// Total bytes of global puddle space.
    pub space_total: u64,
    /// Bytes of metadata WAL not yet covered by a checkpoint.
    pub wal_bytes: u64,
    /// Metadata-WAL records not yet covered by a checkpoint.
    pub wal_records: u64,
    /// Registry checkpoints written since the daemon started.
    pub checkpoints: u64,
    /// Checkpoints executed by the background scheduler (off the request
    /// path — the steady state).
    pub checkpoints_background: u64,
    /// Checkpoints forced inline on the request path because the WAL passed
    /// its hard ceiling (the background scheduler fell behind).
    pub checkpoints_forced_inline: u64,
    /// Tasks completed by the daemon's background scheduler.
    pub background_tasks_executed: u64,
    /// Milliseconds since the last registry checkpoint.
    pub checkpoint_age_ms: u64,
    /// Orphan puddle files deleted by the startup directory sweep.
    pub orphan_files_swept: u64,
    /// Log puddles referenced by no log space, reclaimed at startup (the
    /// crash window between allocating a chain segment and registering it).
    pub log_puddles_swept: u64,
    /// LogSpace puddles with no log-space registration, reclaimed at
    /// startup (the crash window between allocation and `RegLogSpace`).
    pub logspace_puddles_swept: u64,
    /// Connections rejected at the connection cap with a `Busy` frame.
    pub connections_rejected: u64,
    /// Bytes on the space allocator's free lists (fragmented free space
    /// below the bump frontier, canonical merged view).
    pub space_free_bytes: u64,
    /// Free extents in the allocator's canonical view.
    pub free_extents: u64,
    /// External fragmentation of the free space in basis points:
    /// `10000 × (1 − largest_free_extent / free_bytes)`; 0 when the free
    /// space is contiguous or empty.
    pub fragmentation_bp: u64,
    /// Lazy (threshold-triggered) allocator coalesce passes run.
    pub lazy_coalesce_runs: u64,
    /// Allocator coalesce passes forced inline (hard ceiling or allocation
    /// pressure).
    pub forced_inline_coalesces: u64,
    /// Storage operations retried after a transient I/O error (WAL appends,
    /// metadata writes, puddle-file creation/deletion).
    pub io_retries: u64,
    /// Transient storage errors observed (each retry attempt counts one).
    pub transient_io_errors: u64,
    /// `Hello` messages flagged as reconnections (clients re-dialing after
    /// a dropped or reset connection).
    pub client_reconnects: u64,
    /// Operations refused with a typed out-of-space error instead of
    /// poisoning the WAL or panicking.
    pub enospc_rejections: u64,
    /// Live connections currently placed on each reactor (one entry per
    /// running reactor; empty when no socket server is attached). Makes
    /// accept-time placement skew observable: placement is least-loaded at
    /// accept only and connections never migrate, so a long-lived hot
    /// connection shows up here as a lopsided row.
    #[serde(default)]
    pub reactor_connections: Vec<u64>,
    /// Requests dispatched from each reactor's connections since the
    /// socket server started (same indexing as `reactor_connections`).
    /// Placement skew shows where connections *sit*; this shows where the
    /// *work* goes — a balanced placement row with a lopsided request row
    /// is exactly the long-lived-hot-connection case.
    #[serde(default)]
    pub reactor_requests: Vec<u64>,
    /// Reactor threads the attached socket server is running (0 when no
    /// socket server is attached, e.g. in-process endpoints).
    #[serde(default)]
    pub reactors: u64,
}

/// Machine-readable error categories returned by the daemon.
#[derive(Debug, Clone, Copy, Serialize, Deserialize, PartialEq, Eq)]
pub enum ErrorCode {
    /// The named object does not exist.
    NotFound,
    /// An object with this name already exists.
    AlreadyExists,
    /// The caller lacks permission.
    PermissionDenied,
    /// The request was malformed or violated an invariant.
    InvalidRequest,
    /// The global puddle space (or a puddle file) is exhausted.
    OutOfSpace,
    /// An internal daemon error (I/O, corruption...).
    Internal,
    /// The daemon is at its connection cap; retry after backing off.
    Busy,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn puddle_id_hex_roundtrip() {
        let id = PuddleId(12345678901234567890123456789012345678u128);
        assert_eq!(PuddleId::from_hex(&id.to_hex()), Some(id));
        assert_eq!(PuddleId::from_hex("zz"), None);
        assert_eq!(id.to_hex().len(), 32);
    }

    #[test]
    fn translation_translates_only_inside_range() {
        let t = Translation {
            old_addr: 0x1000,
            new_addr: 0x9000,
            len: 0x100,
        };
        assert_eq!(t.translate(0x1000), Some(0x9000));
        assert_eq!(t.translate(0x10ff), Some(0x90ff));
        assert_eq!(t.translate(0x1100), None);
        assert_eq!(t.translate(0xfff), None);
    }

    #[test]
    fn current_process_credentials_are_consistent() {
        let a = Credentials::current_process();
        let b = Credentials::current_process();
        assert_eq!(a, b);
    }

    #[test]
    fn info_types_roundtrip_through_json() {
        let info = PuddleInfo {
            id: PuddleId(7),
            size: 4096,
            assigned_addr: 0x5000_0000_0000,
            path: "/tmp/x".into(),
            purpose: PuddlePurpose::Log,
            owner_uid: 0,
            owner_gid: 0,
            mode: 0o640,
            needs_rewrite: true,
            writable: false,
        };
        let json = serde_json::to_string(&info).unwrap();
        let back: PuddleInfo = serde_json::from_str(&json).unwrap();
        assert_eq!(info, back);

        let report = RecoveryReport {
            log_spaces: 1,
            logs: 2,
            entries_applied: 3,
            entries_denied: 0,
            logs_clean: 1,
            logs_invalidated: 0,
            chained_logs: 1,
            chain_tails_reclaimed: 2,
        };
        let json = serde_json::to_string(&report).unwrap();
        assert_eq!(
            serde_json::from_str::<RecoveryReport>(&json).unwrap(),
            report
        );
    }
}
