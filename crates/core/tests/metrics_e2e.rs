//! End-to-end `GetMetrics`: drive a daemon through the client library and
//! assert the observability plane saw the traffic — per-request latency
//! series, WAL flush timings, counters, and the trace ring — both over
//! the in-process endpoint and a real UDS connection.

use puddled::{Daemon, DaemonConfig, UdsServer};
use puddles::{PoolOptions, PuddleClient};
use puddles_proto::MetricsReport;

fn series_count(report: &MetricsReport, name: &str) -> u64 {
    report
        .series
        .iter()
        .find(|s| s.name == name)
        .map(|s| s.count)
        .unwrap_or_else(|| panic!("series `{name}` missing from {report:?}"))
}

/// Pings and pool create/drop through a client must show up as non-empty
/// latency series with sane percentiles, WAL flush samples, and trace
/// events.
#[test]
fn get_metrics_reports_request_series() {
    let tmp = tempfile::tempdir().unwrap();
    let daemon = Daemon::start(DaemonConfig::for_testing(tmp.path())).unwrap();
    let socket = tmp.path().join("metrics.sock");
    let _server = UdsServer::start(daemon.clone(), &socket).unwrap();
    let client = PuddleClient::connect_uds_shared(&socket, daemon.global_space()).unwrap();

    for i in 0..10 {
        client.ping().unwrap();
        let pool = client
            .create_pool(&format!("m{i}"), PoolOptions::default())
            .unwrap();
        drop(pool);
        client.drop_pool(&format!("m{i}")).unwrap();
    }

    let report = client.metrics().expect("GetMetrics over UDS");
    assert!(series_count(&report, "service.Ping") >= 10);
    assert!(series_count(&report, "service.CreatePool") >= 10);
    assert!(series_count(&report, "service.DropPool") >= 10);
    assert!(
        series_count(&report, "wal.flush") > 0,
        "pool create/drop must flush the WAL: {report:?}"
    );
    let ping = report.series("service.Ping").unwrap();
    assert!(ping.p50_nanos > 0, "real-clock p50 must be non-zero");
    assert!(ping.p50_nanos <= ping.p99_nanos && ping.p99_nanos <= ping.max_nanos);
    assert!(ping.sum_nanos >= ping.max_nanos);

    // The trace ring saw the requests (start/end pairs at minimum).
    assert!(
        report.trace_buffered > 0,
        "trace ring empty after 40+ requests"
    );

    // Counters include the per-reactor request split, and it adds up to
    // at least the requests this client sent.
    let reactor_total: u64 = report
        .counters
        .iter()
        .filter(|c| c.name.starts_with("reactor.") && c.name.ends_with(".requests"))
        .map(|c| c.value)
        .sum();
    assert!(
        reactor_total >= 40,
        "reactor request counters too small: {reactor_total}"
    );
}

/// The same plane is reachable without a socket (in-process endpoint),
/// and the client-local reporter tracks its own connection behavior.
#[test]
fn local_endpoint_and_client_reporter() {
    let tmp = tempfile::tempdir().unwrap();
    let daemon = Daemon::start(DaemonConfig::for_testing(tmp.path())).unwrap();
    let client = PuddleClient::connect_local(&daemon).unwrap();
    client.ping().unwrap();
    client.ping().unwrap();

    let report = client.metrics().expect("GetMetrics in-process");
    assert!(series_count(&report, "service.Ping") >= 2);
    assert_eq!(series_count(&report, "service.ExportPool"), 0);

    // The client-side reporter exists and carries the three local
    // counters (all zero on a quiet in-process connection).
    let local = client.client_metrics();
    for name in [
        "client.retry_attempts",
        "client.reconnects",
        "client.pipeline_depth_hwm",
    ] {
        assert!(
            local.counter(name).is_some(),
            "client reporter missing `{name}`: {local:?}"
        );
    }
}
