//! Client retry/backoff against a daemon at its connection cap.
//!
//! The acceptor answers connections beyond `max_connections` with a `Busy`
//! frame and closes — which the client maps to a transient
//! `ConnectionRefused` and retries with bounded exponential backoff. Under
//! connection churn (clients connecting, working briefly, and leaving) a
//! waiting client must eventually land in a freed slot rather than fail on
//! one fixed-delay attempt.

use puddled::{Daemon, DaemonConfig, ServerConfig, UdsServer};
use puddles::{PuddleClient, RetryPolicy};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

#[test]
fn backoff_wins_a_slot_under_connection_cap_churn() {
    let tmp = tempfile::tempdir().unwrap();
    let daemon = Daemon::start(DaemonConfig::for_testing(tmp.path())).unwrap();
    let socket = tmp.path().join("cap.sock");
    // Two connection slots for six churning client threads: most dials hit
    // the cap and must back off into a freed slot.
    let server_config = ServerConfig {
        max_connections: 2,
        ..ServerConfig::default()
    };
    let _server = UdsServer::start_with_config(daemon.clone(), &socket, server_config).unwrap();

    const THREADS: usize = 6;
    const ROUNDS: usize = 8;
    let completed = Arc::new(AtomicUsize::new(0));
    let workers: Vec<_> = (0..THREADS)
        .map(|_| {
            let socket = socket.clone();
            let space = daemon.global_space();
            let completed = Arc::clone(&completed);
            std::thread::spawn(move || {
                for _ in 0..ROUNDS {
                    // Patient policy: plenty of attempts, long deadline —
                    // churn (other threads dropping their client) is what
                    // frees a slot, backoff is what waits for it.
                    let retry = RetryPolicy::new(256, Duration::from_secs(60))
                        .with_backoff(Duration::from_micros(200), Duration::from_millis(10));
                    // Pool depth 1: hold exactly one of the two slots, so
                    // six churning clients genuinely share the cap.
                    let client = PuddleClient::connect_uds_shared_tuned(
                        &socket,
                        Arc::clone(&space),
                        retry,
                        1,
                    )
                    .expect("backoff should eventually win a connection slot");
                    client.ping().expect("ping on a won slot");
                    completed.fetch_add(1, Ordering::Relaxed);
                    // Dropping the client frees its slot for a waiter.
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("churn worker panicked");
    }
    assert_eq!(completed.load(Ordering::Relaxed), THREADS * ROUNDS);
}
