//! End-to-end tests of the client library: pools, allocation, transactions,
//! aborts, crash injection + system recovery, and relocation on import.

use puddled::{Daemon, DaemonConfig};
use puddles::{impl_pm_type, Error, PmPtr, PmType, PoolOptions, PuddleClient};

#[repr(C)]
struct Counter {
    value: u64,
    touched: u64,
}
impl_pm_type!(Counter, "pool_tx::Counter", []);

#[repr(C)]
struct Node {
    value: u64,
    next: PmPtr<Node>,
}
impl_pm_type!(Node, "pool_tx::Node", [next => Node]);

#[repr(C)]
struct ListRoot {
    head: PmPtr<Node>,
    len: u64,
}
impl_pm_type!(ListRoot, "pool_tx::ListRoot", [head => Node]);

/// Serializes the tests that arm process-global failpoints AND the
/// append-heavy chaining tests: an armed countdown (e.g. `LOG_APPEND_CRASH`
/// after N) decrements on every append from any thread, so a concurrently
/// running transaction-heavy test would otherwise consume it (or crash on
/// it) and make both tests flaky.
fn failpoint_lock() -> parking_lot::MutexGuard<'static, ()> {
    static LOCK: parking_lot::Mutex<()> = parking_lot::Mutex::new(());
    LOCK.lock()
}

fn setup() -> (tempfile::TempDir, DaemonConfig, Daemon, PuddleClient) {
    let tmp = tempfile::tempdir().unwrap();
    let config = DaemonConfig::for_testing(tmp.path());
    let daemon = Daemon::start(config.clone()).unwrap();
    let client = PuddleClient::connect_local(&daemon).unwrap();
    (tmp, config, daemon, client)
}

fn push_front(pool: &puddles::Pool, value: u64) {
    let root: PmPtr<ListRoot> = pool.root().unwrap();
    pool.tx(|tx| {
        let head = pool.deref(root)?.head;
        let node = pool.alloc_value(tx, Node { value, next: head })?;
        let root_ref = pool.deref_mut(root)?;
        let new_len = root_ref.len + 1;
        tx.set(&mut root_ref.head, node)?;
        tx.set(&mut root_ref.len, new_len)?;
        Ok(())
    })
    .unwrap();
}

fn list_values(pool: &puddles::Pool) -> Vec<u64> {
    let root: PmPtr<ListRoot> = pool.root().unwrap();
    let mut out = Vec::new();
    let mut cur = pool.deref(root).unwrap().head;
    while !cur.is_null() {
        let node = pool.deref(cur).unwrap();
        out.push(node.value);
        cur = node.next;
    }
    out
}

#[test]
fn transactional_updates_survive_reopen() {
    let (_tmp, config, daemon, client) = setup();
    {
        let pool = client
            .create_pool("counters", PoolOptions::default())
            .unwrap();
        pool.tx(|tx| {
            pool.create_root(
                tx,
                Counter {
                    value: 0,
                    touched: 0,
                },
            )
        })
        .unwrap();
        let root: PmPtr<Counter> = pool.root().unwrap();
        for i in 1..=10u64 {
            pool.tx(|tx| {
                let c = pool.deref_mut(root)?;
                let touched = c.touched + 1;
                tx.set(&mut c.value, i)?;
                tx.set(&mut c.touched, touched)?;
                Ok(())
            })
            .unwrap();
        }
        assert_eq!(pool.deref(root).unwrap().value, 10);
        assert_eq!(pool.deref(root).unwrap().touched, 10);
    }
    drop(client);
    drop(daemon);

    // A different "application" (new daemon instance + new client) reads the
    // data back.
    let daemon = Daemon::start(config).unwrap();
    let client = PuddleClient::connect_local(&daemon).unwrap();
    let pool = client.open_pool("counters").unwrap();
    let root: PmPtr<Counter> = pool.root().unwrap();
    assert_eq!(pool.deref(root).unwrap().value, 10);
    assert_eq!(pool.deref(root).unwrap().touched, 10);
}

#[test]
fn aborted_transactions_roll_back_data_and_allocations() {
    let (_tmp, _config, _daemon, client) = setup();
    let pool = client.create_pool("abort", PoolOptions::default()).unwrap();
    pool.tx(|tx| {
        pool.create_root(
            tx,
            ListRoot {
                head: PmPtr::null(),
                len: 0,
            },
        )
    })
    .unwrap();
    push_front(&pool, 1);
    push_front(&pool, 2);
    let objects_before = pool.live_objects().len();
    let root: PmPtr<ListRoot> = pool.root().unwrap();

    // A transaction that allocates, links, and then fails must leave no
    // trace: the list is unchanged and the allocation is rolled back.
    let err = pool
        .tx(|tx| {
            let head = pool.deref(root)?.head;
            let node = pool.alloc_value(
                tx,
                Node {
                    value: 99,
                    next: head,
                },
            )?;
            let root_ref = pool.deref_mut(root)?;
            let new_len = root_ref.len + 1;
            tx.set(&mut root_ref.head, node)?;
            tx.set(&mut root_ref.len, new_len)?;
            Err::<(), _>(Error::Aborted("simulated failure".into()))
        })
        .unwrap_err();
    assert!(matches!(err, Error::Aborted(_)));

    assert_eq!(list_values(&pool), vec![2, 1]);
    assert_eq!(pool.deref(root).unwrap().len, 2);
    assert_eq!(pool.live_objects().len(), objects_before);
}

#[test]
fn nested_transactions_are_rejected() {
    let (_tmp, _config, _daemon, client) = setup();
    let pool = client
        .create_pool("nested", PoolOptions::default())
        .unwrap();
    let err = pool
        .tx(|_outer| {
            let inner = pool.tx(|_tx| Ok(()));
            match inner {
                Err(Error::NestedTransaction) => Err::<(), _>(Error::Aborted("saw nested".into())),
                other => panic!("expected NestedTransaction, got {other:?}"),
            }
        })
        .unwrap_err();
    assert!(matches!(err, Error::Aborted(_)));
}

#[test]
fn redo_logged_updates_apply_only_at_commit() {
    let (_tmp, _config, _daemon, client) = setup();
    let pool = client.create_pool("redo", PoolOptions::default()).unwrap();
    pool.tx(|tx| {
        pool.create_root(
            tx,
            Counter {
                value: 5,
                touched: 0,
            },
        )
    })
    .unwrap();
    let root: PmPtr<Counter> = pool.root().unwrap();
    pool.tx(|tx| {
        let c = pool.deref(root)?;
        tx.redo_set(&c.value, 77u64)?;
        // The in-place value is unchanged inside the transaction body.
        assert_eq!(pool.deref(root)?.value, 5);
        Ok(())
    })
    .unwrap();
    assert_eq!(pool.deref(root).unwrap().value, 77);
}

#[test]
fn pool_grows_beyond_one_puddle() {
    let (_tmp, _config, _daemon, client) = setup();
    // Small puddles force growth.
    let options = PoolOptions::default().puddle_size(256 * 1024);
    let pool = client.create_pool("grow", options).unwrap();
    pool.tx(|tx| {
        pool.create_root(
            tx,
            ListRoot {
                head: PmPtr::null(),
                len: 0,
            },
        )
    })
    .unwrap();
    // Allocate ~2 MiB of 4 KiB objects in several transactions.
    let root: PmPtr<ListRoot> = pool.root().unwrap();
    for chunk in 0..8 {
        pool.tx(|tx| {
            for i in 0..64u64 {
                let addr = pool.alloc_raw(tx, 4096, 0)?;
                // SAFETY: fresh 4 KiB allocation in a writable mapping.
                unsafe { std::ptr::write_bytes(addr as *mut u8, (chunk * 64 + i) as u8, 4096) };
            }
            let root_ref = pool.deref_mut(root)?;
            let new_len = root_ref.len + 64;
            tx.set(&mut root_ref.len, new_len)?;
            Ok(())
        })
        .unwrap();
    }
    assert!(pool.puddle_count() > 1, "pool should have grown");
    assert_eq!(pool.deref(root).unwrap().len, 512);
}

#[test]
fn crash_during_commit_is_recovered_by_the_system() {
    use puddles_pmem::failpoint;
    let _guard = failpoint_lock();

    let failpoints = [
        failpoint::names::COMMIT_AFTER_UNDO_FLUSH,
        failpoint::names::COMMIT_BEFORE_REDO_APPLY,
        failpoint::names::COMMIT_MID_REDO_APPLY,
        failpoint::names::COMMIT_BEFORE_INVALIDATE,
    ];
    for (i, fp) in failpoints.iter().enumerate() {
        let tmp = tempfile::tempdir().unwrap();
        let config = DaemonConfig::for_testing(tmp.path());
        let pool_name = format!("crash-{i}");
        {
            let daemon = Daemon::start(config.clone()).unwrap();
            let client = PuddleClient::connect_local(&daemon).unwrap();
            let pool = client
                .create_pool(&pool_name, PoolOptions::default())
                .unwrap();
            pool.tx(|tx| {
                pool.create_root(
                    tx,
                    Counter {
                        value: 100,
                        touched: 1,
                    },
                )
            })
            .unwrap();
            let root: PmPtr<Counter> = pool.root().unwrap();

            // A hybrid transaction: undo-logged update of `value`,
            // redo-logged update of `touched`; crash at the chosen stage.
            failpoint::arm(fp, 0);
            let err = pool
                .tx(|tx| {
                    let c = pool.deref_mut(root)?;
                    tx.set(&mut c.value, 200)?;
                    tx.redo_set(&c.touched, 2u64)?;
                    Ok(())
                })
                .unwrap_err();
            failpoint::clear_all();
            assert!(
                err.is_injected_crash(),
                "{fp}: expected injected crash, got {err}"
            );
            // The "crashed" client is dropped without any cleanup.
        }

        // Restart: the daemon recovers before any application maps the data.
        let daemon = Daemon::start(config).unwrap();
        let client = PuddleClient::connect_local(&daemon).unwrap();
        let pool = client.open_pool(&pool_name).unwrap();
        let root: PmPtr<Counter> = pool.root().unwrap();
        let counter = pool.deref(root).unwrap();
        // Atomicity: either the whole transaction happened or none of it.
        let consistent = (counter.value == 100 && counter.touched == 1)
            || (counter.value == 200 && counter.touched == 2);
        assert!(
            consistent,
            "{fp}: inconsistent state value={} touched={}",
            counter.value, counter.touched
        );
        // Stage-specific expectation: before the redo stage is published the
        // transaction must roll back; at or after it, it must roll forward.
        match *fp {
            x if x == failpoint::names::COMMIT_AFTER_UNDO_FLUSH => {
                assert_eq!(counter.value, 100, "{fp}: expected rollback");
            }
            x if x == failpoint::names::COMMIT_BEFORE_INVALIDATE => {
                assert_eq!(counter.value, 200, "{fp}: expected roll-forward");
                assert_eq!(counter.touched, 2);
            }
            _ => {}
        }
    }
}

#[test]
fn crash_after_unfenced_appends_rolls_back_exactly_the_logged_prefix() {
    use puddles_pmem::failpoint;
    let _guard = failpoint_lock();

    // The volatile-cursor log keeps no durable head pointer: after a crash
    // mid-body, recovery must replay exactly the checksummed prefix of
    // unfenced appends. The body issues three appends (undo `value`, undo
    // `touched`, redo `value`); crash after N = 0, 1, 2 of them. Every
    // durable undo entry must roll its field back, fields never logged were
    // never modified, and the redo entry is never applied (the commit point
    // was not reached).
    for n in 0..3usize {
        let tmp = tempfile::tempdir().unwrap();
        let config = DaemonConfig::for_testing(tmp.path());
        {
            let daemon = Daemon::start(config.clone()).unwrap();
            let client = PuddleClient::connect_local(&daemon).unwrap();
            let pool = client
                .create_pool("prefix", PoolOptions::default())
                .unwrap();
            pool.tx(|tx| {
                pool.create_root(
                    tx,
                    Counter {
                        value: 10,
                        touched: 20,
                    },
                )
            })
            .unwrap();
            let root: PmPtr<Counter> = pool.root().unwrap();

            failpoint::arm(failpoint::names::LOG_APPEND_CRASH, n);
            let err = pool
                .tx(|tx| {
                    let c = pool.deref_mut(root)?;
                    tx.set(&mut c.value, 111)?; // append 1 (undo)
                    tx.set(&mut c.touched, 222)?; // append 2 (undo)
                    tx.redo_set(&c.value, 333u64)?; // append 3 (redo)
                    Ok(())
                })
                .unwrap_err();
            failpoint::clear_all();
            assert!(err.is_injected_crash(), "n={n}: got {err}");
        }

        // Restart: system recovery replays the durable undo prefix.
        let daemon = Daemon::start(config).unwrap();
        let client = PuddleClient::connect_local(&daemon).unwrap();
        let pool = client.open_pool("prefix").unwrap();
        let root: PmPtr<Counter> = pool.root().unwrap();
        let c = pool.deref(root).unwrap();
        assert_eq!(c.value, 10, "n={n}: value must be rolled back / untouched");
        assert_eq!(
            c.touched, 20,
            "n={n}: touched must be rolled back / untouched"
        );
    }
}

#[test]
fn relogging_a_covered_range_appends_nothing() {
    let (_tmp, _config, _daemon, client) = setup();
    let pool = client.create_pool("dedup", PoolOptions::default()).unwrap();
    pool.tx(|tx| {
        pool.create_root(
            tx,
            Counter {
                value: 1,
                touched: 0,
            },
        )
    })
    .unwrap();
    let root: PmPtr<Counter> = pool.root().unwrap();
    // The btree's dominant pattern: the same location is undo-logged on
    // every mutation of its node. Only the first touch may append.
    pool.tx(|tx| {
        let c = pool.deref_mut(root)?;
        tx.set(&mut c.value, 2)?;
        let after_first = tx.entries();
        for i in 3..20u64 {
            tx.set(&mut c.value, i)?;
        }
        assert_eq!(
            tx.entries(),
            after_first,
            "re-logging a covered range must not append"
        );
        // A range that spills beyond the covered one still logs.
        tx.set(&mut c.touched, 9)?;
        assert_eq!(tx.entries(), after_first + 1);
        Ok(())
    })
    .unwrap();
    assert_eq!(pool.deref(root).unwrap().value, 19);
    assert_eq!(pool.deref(root).unwrap().touched, 9);

    // Dedup must not break rollback to the *first-touch* value: the undo
    // entry captured value == 19, not any intermediate.
    let _ = pool.tx(|tx| {
        let c = pool.deref_mut(root)?;
        for i in 0..10u64 {
            tx.set(&mut c.value, 100 + i)?;
        }
        Err::<(), _>(Error::Aborted("rollback".into()))
    });
    assert_eq!(pool.deref(root).unwrap().value, 19);
}

#[test]
fn oversized_transaction_chains_and_tx_too_large_needs_daemon_refusal() {
    let _guard = failpoint_lock();
    let (_tmp, _config, _daemon, client) = setup();
    let pool = client.create_pool("huge", PoolOptions::default()).unwrap();
    // Redo-log more bytes than one 4 MiB log puddle can hold: since PR 4
    // the transaction chains additional log puddles and *commits* instead
    // of failing with TxTooLarge.
    let blob: Vec<u8> = (0..256 * 1024).map(|i| (i % 251) as u8).collect();
    let addr = pool.tx(|tx| pool.alloc_raw(tx, blob.len(), 0)).unwrap();
    pool.tx(|tx| {
        // 64 x 256 KiB = 16 MiB of redo payload against 4 MiB segments.
        for _ in 0..64 {
            tx.redo_set_bytes(addr, &blob)?;
        }
        assert!(tx.chain_segments() > 1, "16 MiB must have chained");
        Ok(())
    })
    .unwrap();
    // The committed redo landed.
    // SAFETY: `addr` is a live allocation of `blob.len()` bytes.
    let stored = unsafe { std::slice::from_raw_parts(addr as *const u8, blob.len()) };
    assert_eq!(stored, &blob[..]);
}

#[test]
fn tx_too_large_is_raised_only_when_the_daemon_refuses_a_log_puddle() {
    let _guard = failpoint_lock();
    // A daemon with a deliberately tiny global space: the pool, log space,
    // thread log and a couple of chained segments fit, then CreatePuddle
    // fails with OutOfSpace — only then may TxTooLarge surface.
    let tmp = tempfile::tempdir().unwrap();
    let config = puddled::DaemonConfig {
        space_base: None,
        space_size: 16 << 20,
        ..puddled::DaemonConfig::new(tmp.path())
    };
    let daemon = Daemon::start(config).unwrap();
    let client = PuddleClient::connect_local(&daemon).unwrap();
    // 1 MiB log segments so the accounting is easy: 16 MiB space minus a
    // 2 MiB pool leaves room for the log space, the thread log, and a
    // handful of chained segments.
    client.set_log_puddle_size(1 << 20);
    let options = PoolOptions::default().puddle_size(2 << 20);
    let pool = client.create_pool("tiny", options).unwrap();
    pool.tx(|tx| {
        pool.create_root(
            tx,
            Counter {
                value: 7,
                touched: 0,
            },
        )
    })
    .unwrap();
    let root: PmPtr<Counter> = pool.root().unwrap();
    let blob = vec![0xEEu8; 512 * 1024];
    let addr = pool.tx(|tx| pool.alloc_raw(tx, blob.len(), 0)).unwrap();

    let err = pool
        .tx(|tx| {
            let c = pool.deref_mut(root)?;
            tx.set(&mut c.value, 8)?;
            // Unbounded redo logging: chaining grows until the global space
            // is exhausted and the daemon refuses the next log puddle.
            for _ in 0..1024 {
                tx.redo_set_bytes(addr, &blob)?;
            }
            Ok(())
        })
        .unwrap_err();
    assert!(
        matches!(err, Error::TxTooLarge { .. }),
        "expected TxTooLarge after daemon refusal, got {err}"
    );
    // The abort rolled the whole chain back and released its segments, so
    // ordinary transactions keep working afterwards.
    assert_eq!(pool.deref(root).unwrap().value, 7);
    pool.tx(|tx| {
        let c = pool.deref_mut(root)?;
        tx.set(&mut c.value, 9)?;
        Ok(())
    })
    .unwrap();
    assert_eq!(pool.deref(root).unwrap().value, 9);
}

#[test]
fn transaction_one_entry_past_a_full_segment_commits_via_chaining() {
    let _guard = failpoint_lock();
    // The capacity-accounting regression: fill the log to exactly
    // free_bytes == 0, then one more entry must chain (not fail), and the
    // chained segment must be released back to the daemon after commit.
    let (_tmp, _config, _daemon, client) = setup();
    client.set_log_puddle_size(64 * 1024);
    let pool = client.create_pool("exact", PoolOptions::default()).unwrap();
    let region = 128 * 1024;
    let addr = pool.tx(|tx| pool.alloc_raw(tx, region, 0)).unwrap();
    // SAFETY: fresh allocation in a writable mapping.
    unsafe { std::ptr::write_bytes(addr as *mut u8, 0x11, region) };
    let puddles_before = client.stats().unwrap().puddles;

    pool.tx(|tx| {
        let free = tx.log_free_bytes();
        assert!(free > 0 && free < region);
        // One entry of exactly free_bytes() fills the segment...
        tx.add_range(addr, free)?;
        assert_eq!(tx.log_free_bytes(), 0);
        assert_eq!(tx.chain_segments(), 1);
        // ...and the next entry — one more than the segment holds — chains.
        tx.add_range(addr + free + 64, 8)?;
        assert_eq!(tx.chain_segments(), 2);
        // After chaining, free_bytes reports the fresh tail's headroom.
        assert!(tx.log_free_bytes() > 0);
        // SAFETY: both logged ranges lie inside the allocated region.
        unsafe { std::ptr::write_bytes(addr as *mut u8, 0x22, free) };
        Ok(())
    })
    .unwrap();

    // The committed write stuck. The chained segment is no longer part of
    // any log chain but sits *parked* in the client's spare cache (one
    // puddle still registered daemon-side), ready for the next extension.
    // SAFETY: `addr` is a live `region`-byte allocation.
    let first = unsafe { std::slice::from_raw_parts(addr as *const u8, 8) };
    assert_eq!(first, &[0x22; 8]);
    assert_eq!(client.stats().unwrap().puddles, puddles_before + 1);

    // A second chaining transaction reuses the spare instead of allocating:
    // the daemon-side puddle count stays flat.
    pool.tx(|tx| {
        let free = tx.log_free_bytes();
        tx.add_range(addr, free)?;
        tx.add_range(addr + free + 64, 8)?;
        assert_eq!(tx.chain_segments(), 2);
        Ok(())
    })
    .unwrap();
    assert_eq!(client.stats().unwrap().puddles, puddles_before + 1);
}

#[test]
fn spare_log_cache_parks_tails_and_frees_them_on_disconnect() {
    let _guard = failpoint_lock();
    let (_tmp, _config, daemon, client) = setup();
    // A second client observes daemon state after the first disconnects.
    let observer = PuddleClient::connect_local(&daemon).unwrap();
    client.set_log_puddle_size(64 * 1024);
    let pool = client.create_pool("spare", PoolOptions::default()).unwrap();
    let region = 256 * 1024;
    let addr = pool.tx(|tx| pool.alloc_raw(tx, region, 0)).unwrap();

    // A transaction that undo-logs `total` bytes in 8 KiB entries (small
    // enough to fit any segment size used here), chaining as needed.
    let chain_tx = |total: usize| {
        pool.tx(|tx| {
            let mut off = 0;
            while off < total {
                let len = (total - off).min(8 * 1024);
                tx.add_range(addr + off, len)?;
                off += len;
            }
            Ok(tx.chain_segments())
        })
        .unwrap()
    };
    let segments = chain_tx(150 * 1024);
    assert!(segments >= 3, "150 KiB undo must chain 64 KiB segments");
    let parked = observer.stats().unwrap().puddles;
    // Subsequent chain-heavy transactions run entirely out of the cache up
    // to its capacity: the daemon-side puddle count stays flat.
    for _ in 0..3 {
        assert!(chain_tx(120 * 1024) >= 2);
        assert_eq!(observer.stats().unwrap().puddles, parked);
    }

    // Changing the segment size invalidates parked spares: the next
    // acquisition frees them rather than reusing the wrong geometry.
    client.set_log_puddle_size(32 * 1024);
    assert!(chain_tx(80 * 1024) >= 2);

    // Disconnect: the cache is dropped and every parked puddle is freed.
    let before_drop = observer.stats().unwrap().puddles;
    drop(pool);
    drop(client);
    let after_drop = observer.stats().unwrap().puddles;
    assert!(
        after_drop < before_drop,
        "disconnect must free parked spares ({before_drop} -> {after_drop})"
    );
}

#[test]
fn max_segment_payload_chains_and_oversized_payload_is_rejected() {
    let _guard = failpoint_lock();
    // Boundary of the never-fits check: when the active segment is full, a
    // payload of *exactly* a fresh segment's capacity must chain and
    // commit; one byte more can never fit any segment and must be
    // TxTooLarge (without looping on chain extensions).
    let (_tmp, _config, _daemon, client) = setup();
    client.set_log_puddle_size(64 * 1024);
    let segment_capacity = 64 * 1024 - puddled::LOG_REGION_OFFSET;
    let max_payload = puddles_logfmt::segment_payload_capacity(segment_capacity);
    let pool = client
        .create_pool("maxpay", PoolOptions::default())
        .unwrap();
    let region = 2 * max_payload;
    let addr = pool.tx(|tx| pool.alloc_raw(tx, region, 0)).unwrap();

    pool.tx(|tx| {
        // Exhaust the active segment...
        let fill = tx.log_free_bytes();
        tx.add_range(addr, fill)?;
        assert_eq!(tx.log_free_bytes(), 0);
        // ...then log a payload of exactly one whole fresh segment.
        let max = vec![0x7Au8; max_payload];
        tx.redo_set_bytes(addr, &max)?;
        assert_eq!(tx.chain_segments(), 2);
        Ok(())
    })
    .unwrap();
    // SAFETY: `addr` is a live `region`-byte allocation.
    let stored = unsafe { std::slice::from_raw_parts(addr as *const u8, max_payload) };
    assert!(stored.iter().all(|&b| b == 0x7A));

    let err = pool
        .tx(|tx| {
            let fill = tx.log_free_bytes();
            tx.add_range(addr, fill)?;
            let too_big = vec![0u8; max_payload + 1];
            tx.redo_set_bytes(addr, &too_big)?;
            Ok(())
        })
        .unwrap_err();
    assert!(
        matches!(err, Error::TxTooLarge { .. }),
        "payload over a whole segment must be TxTooLarge, got {err}"
    );
}

/// Sets up a pool with a 0xAB-filled 256 KiB region and a root counter,
/// using 64 KiB log puddles so chaining is cheap to trigger. Returns the
/// region address.
fn chain_crash_setup(client: &PuddleClient, pool: &puddles::Pool) -> usize {
    client.set_log_puddle_size(64 * 1024);
    pool.tx(|tx| {
        pool.create_root(
            tx,
            Counter {
                value: 1,
                touched: 0,
            },
        )
    })
    .unwrap();
    let region = 256 * 1024;
    let addr = pool.tx(|tx| pool.alloc_raw(tx, region, 0)).unwrap();
    // SAFETY: fresh allocation in a writable mapping.
    unsafe { std::ptr::write_bytes(addr as *mut u8, 0xAB, region) };
    addr
}

/// The transaction body used by the chain crash tests: undo-log and
/// overwrite the region in 16 KiB chunks, which outgrows a 64 KiB log
/// segment after a few chunks and forces chain extensions.
fn chain_crash_body(
    pool: &puddles::Pool,
    root: PmPtr<Counter>,
    addr: usize,
) -> impl Fn(&mut puddles::Transaction<'_>) -> Result<(), Error> + '_ {
    move |tx| {
        let c = pool.deref_mut(root)?;
        tx.set(&mut c.value, 2)?;
        for chunk in 0..16usize {
            let chunk_addr = addr + chunk * 16 * 1024;
            tx.add_range(chunk_addr, 16 * 1024)?;
            // SAFETY: the chunk lies inside the allocated region.
            unsafe { std::ptr::write_bytes(chunk_addr as *mut u8, 0xCD, 16 * 1024) };
        }
        Ok(())
    }
}

fn assert_chain_rolled_back(pool: &puddles::Pool, addr: usize, context: &str) {
    let root: PmPtr<Counter> = pool.root().unwrap();
    assert_eq!(pool.deref(root).unwrap().value, 1, "{context}: root value");
    // SAFETY: the region is a live 256 KiB allocation in the reopened pool.
    let region = unsafe { std::slice::from_raw_parts(addr as *const u8, 256 * 1024) };
    assert!(
        region.iter().all(|&b| b == 0xAB),
        "{context}: region must be uniformly rolled back"
    );
}

#[test]
fn crash_during_chain_extension_is_recovered_and_tails_reclaimed() {
    use puddles_pmem::failpoint;
    let _guard = failpoint_lock();

    // Crash (a) after the daemon allocated the next chain segment but
    // before it was registered — the unreferenced puddle is swept at the
    // next daemon startup; (b) after registration but before the first
    // append — recovery treats the empty tail as benign and reclaims it.
    for fp in [
        failpoint::names::LOG_CHAIN_ALLOC_CRASH,
        failpoint::names::LOG_CHAIN_REGISTER_CRASH,
    ] {
        let tmp = tempfile::tempdir().unwrap();
        let config = DaemonConfig::for_testing(tmp.path());
        let addr;
        {
            let daemon = Daemon::start(config.clone()).unwrap();
            let client = PuddleClient::connect_local(&daemon).unwrap();
            let pool = client
                .create_pool("chaincrash", PoolOptions::default())
                .unwrap();
            addr = chain_crash_setup(&client, &pool);
            let root: PmPtr<Counter> = pool.root().unwrap();

            failpoint::arm(fp, 0);
            let err = pool.tx(chain_crash_body(&pool, root, addr)).unwrap_err();
            failpoint::clear_all();
            assert!(err.is_injected_crash(), "{fp}: got {err}");
        }

        // Restart without auto-recovery so the report is observable.
        let daemon = Daemon::start(config.no_auto_recover()).unwrap();
        let client = PuddleClient::connect_local(&daemon).unwrap();
        let report = client.recover().unwrap();
        match fp {
            x if x == failpoint::names::LOG_CHAIN_ALLOC_CRASH => {
                // The never-registered segment was already swept at startup.
                assert!(
                    client.stats().unwrap().log_puddles_swept >= 1,
                    "alloc-crash puddle must be swept at startup"
                );
                assert_eq!(report.chain_tails_reclaimed, 0);
            }
            _ => {
                // The registered-but-empty tail is benign and reclaimed.
                assert!(
                    report.chain_tails_reclaimed >= 1,
                    "register-crash tail must be reclaimed, report {report:?}"
                );
            }
        }
        let pool = client.open_pool("chaincrash").unwrap();
        assert_chain_rolled_back(&pool, addr, fp);
    }
}

#[test]
fn crash_mid_chain_rolls_back_across_segment_boundaries() {
    use puddles_pmem::failpoint;
    let _guard = failpoint_lock();

    // Crash after N unfenced appends with N chosen to land in the *second*
    // chain segment: recovery must stitch (log_id, chain_index) segments,
    // replay the undo entries of both, and reclaim the tail.
    for n in [6usize, 9, 13] {
        let tmp = tempfile::tempdir().unwrap();
        let config = DaemonConfig::for_testing(tmp.path());
        let addr;
        {
            let daemon = Daemon::start(config.clone()).unwrap();
            let client = PuddleClient::connect_local(&daemon).unwrap();
            let pool = client
                .create_pool("midchain", PoolOptions::default())
                .unwrap();
            addr = chain_crash_setup(&client, &pool);
            let root: PmPtr<Counter> = pool.root().unwrap();

            failpoint::arm(failpoint::names::LOG_APPEND_CRASH, n);
            let err = pool.tx(chain_crash_body(&pool, root, addr)).unwrap_err();
            failpoint::clear_all();
            assert!(err.is_injected_crash(), "n={n}: got {err}");
        }

        let daemon = Daemon::start(config.no_auto_recover()).unwrap();
        let client = PuddleClient::connect_local(&daemon).unwrap();
        let report = client.recover().unwrap();
        // 16 KiB entries against 64 KiB segments: appends 1..=4 land in the
        // head, later ones in chained segments.
        if n > 4 {
            assert!(
                report.chained_logs >= 1,
                "n={n}: expected a chained log in {report:?}"
            );
            assert!(
                report.chain_tails_reclaimed >= 1,
                "n={n}: expected reclaimed tails in {report:?}"
            );
        }
        assert!(report.entries_applied > 0, "n={n}: {report:?}");
        let pool = client.open_pool("midchain").unwrap();
        assert_chain_rolled_back(&pool, addr, &format!("n={n}"));
    }
}

#[test]
fn export_import_rewrites_pointers_and_keeps_both_copies_open() {
    let (tmp, _config, _daemon, client) = setup();
    let pool = client
        .create_pool("source", PoolOptions::default())
        .unwrap();
    pool.tx(|tx| {
        pool.create_root(
            tx,
            ListRoot {
                head: PmPtr::null(),
                len: 0,
            },
        )
    })
    .unwrap();
    for v in 0..50 {
        push_front(&pool, v);
    }
    let original: Vec<u64> = list_values(&pool);

    // Export, then import as a copy into the same machine: every address
    // conflicts with the original, so all pointers must be rewritten.
    let export_dir = tmp.path().join("export");
    client.export_pool("source", &export_dir).unwrap();
    let copy = client.import_pool(&export_dir, "copy").unwrap();

    // Both copies are open simultaneously — impossible in PMDK.
    let copied: Vec<u64> = {
        let root: PmPtr<ListRoot> = copy.root().unwrap();
        let mut out = Vec::new();
        let mut cur = copy.deref(root).unwrap().head;
        while !cur.is_null() {
            let node = copy.deref(cur).unwrap();
            out.push(node.value);
            cur = node.next;
        }
        out
    };
    assert_eq!(copied, original);

    // The copies are independent: modifying one does not affect the other.
    push_front(&copy, 999);
    assert_eq!(list_values(&pool), original);
    assert_eq!(
        copy.deref(copy.root::<ListRoot>().unwrap()).unwrap().len,
        51
    );
}

#[test]
fn cross_pool_transaction_updates_two_pools_atomically() {
    let (_tmp, _config, _daemon, client) = setup();
    let accounts = client
        .create_pool("accounts", PoolOptions::default())
        .unwrap();
    let audit = client.create_pool("audit", PoolOptions::default()).unwrap();
    accounts
        .tx(|tx| {
            accounts.create_root(
                tx,
                Counter {
                    value: 1000,
                    touched: 0,
                },
            )
        })
        .unwrap();
    audit
        .tx(|tx| {
            audit.create_root(
                tx,
                Counter {
                    value: 0,
                    touched: 0,
                },
            )
        })
        .unwrap();
    let acc: PmPtr<Counter> = accounts.root().unwrap();
    let log: PmPtr<Counter> = audit.root().unwrap();

    // One transaction touches both pools (cross-pool transaction, §3.6).
    client
        .tx(|tx| {
            let a = accounts.deref_mut(acc)?;
            let debited = a.value - 100;
            tx.set(&mut a.value, debited)?;
            let l = audit.deref_mut(log)?;
            let credited = l.value + 1;
            tx.set(&mut l.value, credited)?;
            Ok(())
        })
        .unwrap();
    assert_eq!(accounts.deref(acc).unwrap().value, 900);
    assert_eq!(audit.deref(log).unwrap().value, 1);

    // An aborted cross-pool transaction rolls back both pools.
    let _ = client.tx(|tx| {
        let a = accounts.deref_mut(acc)?;
        tx.set(&mut a.value, 0)?;
        let l = audit.deref_mut(log)?;
        tx.set(&mut l.value, 999)?;
        Err::<(), _>(Error::Aborted("no".into()))
    });
    assert_eq!(accounts.deref(acc).unwrap().value, 900);
    assert_eq!(audit.deref(log).unwrap().value, 1);
}

#[test]
fn read_only_client_can_read_but_not_write() {
    let (_tmp, _config, daemon, client) = setup();
    // Owner creates a world-readable pool.
    let options = PoolOptions::default().mode(0o644);
    let pool = client.create_pool("shared", options).unwrap();
    pool.tx(|tx| {
        pool.create_root(
            tx,
            Counter {
                value: 7,
                touched: 0,
            },
        )
    })
    .unwrap();
    drop(pool);

    // Another user (different uid) opens it read-only and reads the data
    // without any PM-awareness of who wrote it.
    let other = PuddleClient::connect_local_as(
        &daemon,
        puddles_proto::Credentials {
            uid: puddles_proto::Credentials::current_process().uid + 1,
            gid: puddles_proto::Credentials::current_process().gid + 1,
        },
    )
    .unwrap();
    let pool = other.open_pool("shared").unwrap();
    let root: PmPtr<Counter> = pool.root().unwrap();
    assert_eq!(pool.deref(root).unwrap().value, 7);
}

#[test]
fn multithreaded_transactions_use_per_thread_logs() {
    let (_tmp, _config, _daemon, client) = setup();
    let pool = std::sync::Arc::new(client.create_pool("mt", PoolOptions::default()).unwrap());
    pool.tx(|tx| {
        pool.create_root(
            tx,
            Counter {
                value: 0,
                touched: 0,
            },
        )
    })
    .unwrap();

    // Each thread allocates and writes its own objects; the shared counter
    // is updated under a mutex (transactions provide failure atomicity, not
    // isolation, exactly like the paper).
    let lock = std::sync::Arc::new(parking_lot::Mutex::new(()));
    let threads: Vec<_> = (0..4)
        .map(|_| {
            let pool = std::sync::Arc::clone(&pool);
            let client = client.clone();
            let lock = std::sync::Arc::clone(&lock);
            std::thread::spawn(move || {
                for _ in 0..50 {
                    let root: PmPtr<Counter> = pool.root().unwrap();
                    let _guard = lock.lock();
                    client
                        .tx(|tx| {
                            let c = pool.deref_mut(root)?;
                            let next = c.value + 1;
                            tx.set(&mut c.value, next)?;
                            Ok(())
                        })
                        .unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let root: PmPtr<Counter> = pool.root().unwrap();
    assert_eq!(pool.deref(root).unwrap().value, 200);
}

#[test]
fn type_ids_and_pointer_maps_are_registered_with_the_daemon() {
    let (_tmp, _config, _daemon, client) = setup();
    let pool = client.create_pool("types", PoolOptions::default()).unwrap();
    pool.tx(|tx| {
        pool.create_root(
            tx,
            ListRoot {
                head: PmPtr::null(),
                len: 0,
            },
        )
    })
    .unwrap();
    push_front(&pool, 1);
    let stats = client.stats().unwrap();
    assert!(
        stats.ptr_maps >= 2,
        "expected ListRoot and Node maps, got {}",
        stats.ptr_maps
    );
    // The maps round-trip through the daemon with the right offsets.
    let node_decl = Node::decl();
    assert_eq!(node_decl.fields[0].offset, 8);
}
