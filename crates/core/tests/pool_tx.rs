//! End-to-end tests of the client library: pools, allocation, transactions,
//! aborts, crash injection + system recovery, and relocation on import.

use puddled::{Daemon, DaemonConfig};
use puddles::{impl_pm_type, Error, PmPtr, PmType, PoolOptions, PuddleClient};

#[repr(C)]
struct Counter {
    value: u64,
    touched: u64,
}
impl_pm_type!(Counter, "pool_tx::Counter", []);

#[repr(C)]
struct Node {
    value: u64,
    next: PmPtr<Node>,
}
impl_pm_type!(Node, "pool_tx::Node", [next => Node]);

#[repr(C)]
struct ListRoot {
    head: PmPtr<Node>,
    len: u64,
}
impl_pm_type!(ListRoot, "pool_tx::ListRoot", [head => Node]);

fn setup() -> (tempfile::TempDir, DaemonConfig, Daemon, PuddleClient) {
    let tmp = tempfile::tempdir().unwrap();
    let config = DaemonConfig::for_testing(tmp.path());
    let daemon = Daemon::start(config.clone()).unwrap();
    let client = PuddleClient::connect_local(&daemon).unwrap();
    (tmp, config, daemon, client)
}

fn push_front(pool: &puddles::Pool, value: u64) {
    let root: PmPtr<ListRoot> = pool.root().unwrap();
    pool.tx(|tx| {
        let head = pool.deref(root)?.head;
        let node = pool.alloc_value(tx, Node { value, next: head })?;
        let root_ref = pool.deref_mut(root)?;
        let new_len = root_ref.len + 1;
        tx.set(&mut root_ref.head, node)?;
        tx.set(&mut root_ref.len, new_len)?;
        Ok(())
    })
    .unwrap();
}

fn list_values(pool: &puddles::Pool) -> Vec<u64> {
    let root: PmPtr<ListRoot> = pool.root().unwrap();
    let mut out = Vec::new();
    let mut cur = pool.deref(root).unwrap().head;
    while !cur.is_null() {
        let node = pool.deref(cur).unwrap();
        out.push(node.value);
        cur = node.next;
    }
    out
}

#[test]
fn transactional_updates_survive_reopen() {
    let (_tmp, config, daemon, client) = setup();
    {
        let pool = client
            .create_pool("counters", PoolOptions::default())
            .unwrap();
        pool.tx(|tx| {
            pool.create_root(
                tx,
                Counter {
                    value: 0,
                    touched: 0,
                },
            )
        })
        .unwrap();
        let root: PmPtr<Counter> = pool.root().unwrap();
        for i in 1..=10u64 {
            pool.tx(|tx| {
                let c = pool.deref_mut(root)?;
                let touched = c.touched + 1;
                tx.set(&mut c.value, i)?;
                tx.set(&mut c.touched, touched)?;
                Ok(())
            })
            .unwrap();
        }
        assert_eq!(pool.deref(root).unwrap().value, 10);
        assert_eq!(pool.deref(root).unwrap().touched, 10);
    }
    drop(client);
    drop(daemon);

    // A different "application" (new daemon instance + new client) reads the
    // data back.
    let daemon = Daemon::start(config).unwrap();
    let client = PuddleClient::connect_local(&daemon).unwrap();
    let pool = client.open_pool("counters").unwrap();
    let root: PmPtr<Counter> = pool.root().unwrap();
    assert_eq!(pool.deref(root).unwrap().value, 10);
    assert_eq!(pool.deref(root).unwrap().touched, 10);
}

#[test]
fn aborted_transactions_roll_back_data_and_allocations() {
    let (_tmp, _config, _daemon, client) = setup();
    let pool = client.create_pool("abort", PoolOptions::default()).unwrap();
    pool.tx(|tx| {
        pool.create_root(
            tx,
            ListRoot {
                head: PmPtr::null(),
                len: 0,
            },
        )
    })
    .unwrap();
    push_front(&pool, 1);
    push_front(&pool, 2);
    let objects_before = pool.live_objects().len();
    let root: PmPtr<ListRoot> = pool.root().unwrap();

    // A transaction that allocates, links, and then fails must leave no
    // trace: the list is unchanged and the allocation is rolled back.
    let err = pool
        .tx(|tx| {
            let head = pool.deref(root)?.head;
            let node = pool.alloc_value(
                tx,
                Node {
                    value: 99,
                    next: head,
                },
            )?;
            let root_ref = pool.deref_mut(root)?;
            let new_len = root_ref.len + 1;
            tx.set(&mut root_ref.head, node)?;
            tx.set(&mut root_ref.len, new_len)?;
            Err::<(), _>(Error::Aborted("simulated failure".into()))
        })
        .unwrap_err();
    assert!(matches!(err, Error::Aborted(_)));

    assert_eq!(list_values(&pool), vec![2, 1]);
    assert_eq!(pool.deref(root).unwrap().len, 2);
    assert_eq!(pool.live_objects().len(), objects_before);
}

#[test]
fn nested_transactions_are_rejected() {
    let (_tmp, _config, _daemon, client) = setup();
    let pool = client
        .create_pool("nested", PoolOptions::default())
        .unwrap();
    let err = pool
        .tx(|_outer| {
            let inner = pool.tx(|_tx| Ok(()));
            match inner {
                Err(Error::NestedTransaction) => Err::<(), _>(Error::Aborted("saw nested".into())),
                other => panic!("expected NestedTransaction, got {other:?}"),
            }
        })
        .unwrap_err();
    assert!(matches!(err, Error::Aborted(_)));
}

#[test]
fn redo_logged_updates_apply_only_at_commit() {
    let (_tmp, _config, _daemon, client) = setup();
    let pool = client.create_pool("redo", PoolOptions::default()).unwrap();
    pool.tx(|tx| {
        pool.create_root(
            tx,
            Counter {
                value: 5,
                touched: 0,
            },
        )
    })
    .unwrap();
    let root: PmPtr<Counter> = pool.root().unwrap();
    pool.tx(|tx| {
        let c = pool.deref(root)?;
        tx.redo_set(&c.value, 77u64)?;
        // The in-place value is unchanged inside the transaction body.
        assert_eq!(pool.deref(root)?.value, 5);
        Ok(())
    })
    .unwrap();
    assert_eq!(pool.deref(root).unwrap().value, 77);
}

#[test]
fn pool_grows_beyond_one_puddle() {
    let (_tmp, _config, _daemon, client) = setup();
    // Small puddles force growth.
    let options = PoolOptions::default().puddle_size(256 * 1024);
    let pool = client.create_pool("grow", options).unwrap();
    pool.tx(|tx| {
        pool.create_root(
            tx,
            ListRoot {
                head: PmPtr::null(),
                len: 0,
            },
        )
    })
    .unwrap();
    // Allocate ~2 MiB of 4 KiB objects in several transactions.
    let root: PmPtr<ListRoot> = pool.root().unwrap();
    for chunk in 0..8 {
        pool.tx(|tx| {
            for i in 0..64u64 {
                let addr = pool.alloc_raw(tx, 4096, 0)?;
                // SAFETY: fresh 4 KiB allocation in a writable mapping.
                unsafe { std::ptr::write_bytes(addr as *mut u8, (chunk * 64 + i) as u8, 4096) };
            }
            let root_ref = pool.deref_mut(root)?;
            let new_len = root_ref.len + 64;
            tx.set(&mut root_ref.len, new_len)?;
            Ok(())
        })
        .unwrap();
    }
    assert!(pool.puddle_count() > 1, "pool should have grown");
    assert_eq!(pool.deref(root).unwrap().len, 512);
}

#[test]
fn crash_during_commit_is_recovered_by_the_system() {
    use puddles_pmem::failpoint;

    let failpoints = [
        failpoint::names::COMMIT_AFTER_UNDO_FLUSH,
        failpoint::names::COMMIT_BEFORE_REDO_APPLY,
        failpoint::names::COMMIT_MID_REDO_APPLY,
        failpoint::names::COMMIT_BEFORE_INVALIDATE,
    ];
    for (i, fp) in failpoints.iter().enumerate() {
        let tmp = tempfile::tempdir().unwrap();
        let config = DaemonConfig::for_testing(tmp.path());
        let pool_name = format!("crash-{i}");
        {
            let daemon = Daemon::start(config.clone()).unwrap();
            let client = PuddleClient::connect_local(&daemon).unwrap();
            let pool = client
                .create_pool(&pool_name, PoolOptions::default())
                .unwrap();
            pool.tx(|tx| {
                pool.create_root(
                    tx,
                    Counter {
                        value: 100,
                        touched: 1,
                    },
                )
            })
            .unwrap();
            let root: PmPtr<Counter> = pool.root().unwrap();

            // A hybrid transaction: undo-logged update of `value`,
            // redo-logged update of `touched`; crash at the chosen stage.
            failpoint::arm(fp, 0);
            let err = pool
                .tx(|tx| {
                    let c = pool.deref_mut(root)?;
                    tx.set(&mut c.value, 200)?;
                    tx.redo_set(&c.touched, 2u64)?;
                    Ok(())
                })
                .unwrap_err();
            failpoint::clear_all();
            assert!(
                err.is_injected_crash(),
                "{fp}: expected injected crash, got {err}"
            );
            // The "crashed" client is dropped without any cleanup.
        }

        // Restart: the daemon recovers before any application maps the data.
        let daemon = Daemon::start(config).unwrap();
        let client = PuddleClient::connect_local(&daemon).unwrap();
        let pool = client.open_pool(&pool_name).unwrap();
        let root: PmPtr<Counter> = pool.root().unwrap();
        let counter = pool.deref(root).unwrap();
        // Atomicity: either the whole transaction happened or none of it.
        let consistent = (counter.value == 100 && counter.touched == 1)
            || (counter.value == 200 && counter.touched == 2);
        assert!(
            consistent,
            "{fp}: inconsistent state value={} touched={}",
            counter.value, counter.touched
        );
        // Stage-specific expectation: before the redo stage is published the
        // transaction must roll back; at or after it, it must roll forward.
        match *fp {
            x if x == failpoint::names::COMMIT_AFTER_UNDO_FLUSH => {
                assert_eq!(counter.value, 100, "{fp}: expected rollback");
            }
            x if x == failpoint::names::COMMIT_BEFORE_INVALIDATE => {
                assert_eq!(counter.value, 200, "{fp}: expected roll-forward");
                assert_eq!(counter.touched, 2);
            }
            _ => {}
        }
    }
}

#[test]
fn crash_after_unfenced_appends_rolls_back_exactly_the_logged_prefix() {
    use puddles_pmem::failpoint;

    // The volatile-cursor log keeps no durable head pointer: after a crash
    // mid-body, recovery must replay exactly the checksummed prefix of
    // unfenced appends. The body issues three appends (undo `value`, undo
    // `touched`, redo `value`); crash after N = 0, 1, 2 of them. Every
    // durable undo entry must roll its field back, fields never logged were
    // never modified, and the redo entry is never applied (the commit point
    // was not reached).
    for n in 0..3usize {
        let tmp = tempfile::tempdir().unwrap();
        let config = DaemonConfig::for_testing(tmp.path());
        {
            let daemon = Daemon::start(config.clone()).unwrap();
            let client = PuddleClient::connect_local(&daemon).unwrap();
            let pool = client
                .create_pool("prefix", PoolOptions::default())
                .unwrap();
            pool.tx(|tx| {
                pool.create_root(
                    tx,
                    Counter {
                        value: 10,
                        touched: 20,
                    },
                )
            })
            .unwrap();
            let root: PmPtr<Counter> = pool.root().unwrap();

            failpoint::arm(failpoint::names::LOG_APPEND_CRASH, n);
            let err = pool
                .tx(|tx| {
                    let c = pool.deref_mut(root)?;
                    tx.set(&mut c.value, 111)?; // append 1 (undo)
                    tx.set(&mut c.touched, 222)?; // append 2 (undo)
                    tx.redo_set(&c.value, 333u64)?; // append 3 (redo)
                    Ok(())
                })
                .unwrap_err();
            failpoint::clear_all();
            assert!(err.is_injected_crash(), "n={n}: got {err}");
        }

        // Restart: system recovery replays the durable undo prefix.
        let daemon = Daemon::start(config).unwrap();
        let client = PuddleClient::connect_local(&daemon).unwrap();
        let pool = client.open_pool("prefix").unwrap();
        let root: PmPtr<Counter> = pool.root().unwrap();
        let c = pool.deref(root).unwrap();
        assert_eq!(c.value, 10, "n={n}: value must be rolled back / untouched");
        assert_eq!(
            c.touched, 20,
            "n={n}: touched must be rolled back / untouched"
        );
    }
}

#[test]
fn relogging_a_covered_range_appends_nothing() {
    let (_tmp, _config, _daemon, client) = setup();
    let pool = client.create_pool("dedup", PoolOptions::default()).unwrap();
    pool.tx(|tx| {
        pool.create_root(
            tx,
            Counter {
                value: 1,
                touched: 0,
            },
        )
    })
    .unwrap();
    let root: PmPtr<Counter> = pool.root().unwrap();
    // The btree's dominant pattern: the same location is undo-logged on
    // every mutation of its node. Only the first touch may append.
    pool.tx(|tx| {
        let c = pool.deref_mut(root)?;
        tx.set(&mut c.value, 2)?;
        let after_first = tx.entries();
        for i in 3..20u64 {
            tx.set(&mut c.value, i)?;
        }
        assert_eq!(
            tx.entries(),
            after_first,
            "re-logging a covered range must not append"
        );
        // A range that spills beyond the covered one still logs.
        tx.set(&mut c.touched, 9)?;
        assert_eq!(tx.entries(), after_first + 1);
        Ok(())
    })
    .unwrap();
    assert_eq!(pool.deref(root).unwrap().value, 19);
    assert_eq!(pool.deref(root).unwrap().touched, 9);

    // Dedup must not break rollback to the *first-touch* value: the undo
    // entry captured value == 19, not any intermediate.
    let _ = pool.tx(|tx| {
        let c = pool.deref_mut(root)?;
        for i in 0..10u64 {
            tx.set(&mut c.value, 100 + i)?;
        }
        Err::<(), _>(Error::Aborted("rollback".into()))
    });
    assert_eq!(pool.deref(root).unwrap().value, 19);
}

#[test]
fn oversized_transaction_reports_tx_too_large() {
    let (_tmp, _config, _daemon, client) = setup();
    let pool = client.create_pool("huge", PoolOptions::default()).unwrap();
    // Redo-log more bytes than the 4 MiB log puddle can hold; the failure
    // must surface as TxTooLarge, and the abort must leave data intact.
    let blob = vec![0u8; 256 * 1024];
    let addr = pool.tx(|tx| pool.alloc_raw(tx, blob.len(), 0)).unwrap();
    let err = pool
        .tx(|tx| {
            // 64 x 256 KiB = 16 MiB of redo payload against a 4 MiB log.
            for _ in 0..64 {
                tx.redo_set_bytes(addr, &blob)?;
            }
            Ok(())
        })
        .unwrap_err();
    assert!(
        matches!(err, Error::TxTooLarge { .. }),
        "expected TxTooLarge, got {err}"
    );
}

#[test]
fn export_import_rewrites_pointers_and_keeps_both_copies_open() {
    let (tmp, _config, _daemon, client) = setup();
    let pool = client
        .create_pool("source", PoolOptions::default())
        .unwrap();
    pool.tx(|tx| {
        pool.create_root(
            tx,
            ListRoot {
                head: PmPtr::null(),
                len: 0,
            },
        )
    })
    .unwrap();
    for v in 0..50 {
        push_front(&pool, v);
    }
    let original: Vec<u64> = list_values(&pool);

    // Export, then import as a copy into the same machine: every address
    // conflicts with the original, so all pointers must be rewritten.
    let export_dir = tmp.path().join("export");
    client.export_pool("source", &export_dir).unwrap();
    let copy = client.import_pool(&export_dir, "copy").unwrap();

    // Both copies are open simultaneously — impossible in PMDK.
    let copied: Vec<u64> = {
        let root: PmPtr<ListRoot> = copy.root().unwrap();
        let mut out = Vec::new();
        let mut cur = copy.deref(root).unwrap().head;
        while !cur.is_null() {
            let node = copy.deref(cur).unwrap();
            out.push(node.value);
            cur = node.next;
        }
        out
    };
    assert_eq!(copied, original);

    // The copies are independent: modifying one does not affect the other.
    push_front(&copy, 999);
    assert_eq!(list_values(&pool), original);
    assert_eq!(
        copy.deref(copy.root::<ListRoot>().unwrap()).unwrap().len,
        51
    );
}

#[test]
fn cross_pool_transaction_updates_two_pools_atomically() {
    let (_tmp, _config, _daemon, client) = setup();
    let accounts = client
        .create_pool("accounts", PoolOptions::default())
        .unwrap();
    let audit = client.create_pool("audit", PoolOptions::default()).unwrap();
    accounts
        .tx(|tx| {
            accounts.create_root(
                tx,
                Counter {
                    value: 1000,
                    touched: 0,
                },
            )
        })
        .unwrap();
    audit
        .tx(|tx| {
            audit.create_root(
                tx,
                Counter {
                    value: 0,
                    touched: 0,
                },
            )
        })
        .unwrap();
    let acc: PmPtr<Counter> = accounts.root().unwrap();
    let log: PmPtr<Counter> = audit.root().unwrap();

    // One transaction touches both pools (cross-pool transaction, §3.6).
    client
        .tx(|tx| {
            let a = accounts.deref_mut(acc)?;
            let debited = a.value - 100;
            tx.set(&mut a.value, debited)?;
            let l = audit.deref_mut(log)?;
            let credited = l.value + 1;
            tx.set(&mut l.value, credited)?;
            Ok(())
        })
        .unwrap();
    assert_eq!(accounts.deref(acc).unwrap().value, 900);
    assert_eq!(audit.deref(log).unwrap().value, 1);

    // An aborted cross-pool transaction rolls back both pools.
    let _ = client.tx(|tx| {
        let a = accounts.deref_mut(acc)?;
        tx.set(&mut a.value, 0)?;
        let l = audit.deref_mut(log)?;
        tx.set(&mut l.value, 999)?;
        Err::<(), _>(Error::Aborted("no".into()))
    });
    assert_eq!(accounts.deref(acc).unwrap().value, 900);
    assert_eq!(audit.deref(log).unwrap().value, 1);
}

#[test]
fn read_only_client_can_read_but_not_write() {
    let (_tmp, _config, daemon, client) = setup();
    // Owner creates a world-readable pool.
    let options = PoolOptions::default().mode(0o644);
    let pool = client.create_pool("shared", options).unwrap();
    pool.tx(|tx| {
        pool.create_root(
            tx,
            Counter {
                value: 7,
                touched: 0,
            },
        )
    })
    .unwrap();
    drop(pool);

    // Another user (different uid) opens it read-only and reads the data
    // without any PM-awareness of who wrote it.
    let other = PuddleClient::connect_local_as(
        &daemon,
        puddles_proto::Credentials {
            uid: puddles_proto::Credentials::current_process().uid + 1,
            gid: puddles_proto::Credentials::current_process().gid + 1,
        },
    )
    .unwrap();
    let pool = other.open_pool("shared").unwrap();
    let root: PmPtr<Counter> = pool.root().unwrap();
    assert_eq!(pool.deref(root).unwrap().value, 7);
}

#[test]
fn multithreaded_transactions_use_per_thread_logs() {
    let (_tmp, _config, _daemon, client) = setup();
    let pool = std::sync::Arc::new(client.create_pool("mt", PoolOptions::default()).unwrap());
    pool.tx(|tx| {
        pool.create_root(
            tx,
            Counter {
                value: 0,
                touched: 0,
            },
        )
    })
    .unwrap();

    // Each thread allocates and writes its own objects; the shared counter
    // is updated under a mutex (transactions provide failure atomicity, not
    // isolation, exactly like the paper).
    let lock = std::sync::Arc::new(parking_lot::Mutex::new(()));
    let threads: Vec<_> = (0..4)
        .map(|_| {
            let pool = std::sync::Arc::clone(&pool);
            let client = client.clone();
            let lock = std::sync::Arc::clone(&lock);
            std::thread::spawn(move || {
                for _ in 0..50 {
                    let root: PmPtr<Counter> = pool.root().unwrap();
                    let _guard = lock.lock();
                    client
                        .tx(|tx| {
                            let c = pool.deref_mut(root)?;
                            let next = c.value + 1;
                            tx.set(&mut c.value, next)?;
                            Ok(())
                        })
                        .unwrap();
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    let root: PmPtr<Counter> = pool.root().unwrap();
    assert_eq!(pool.deref(root).unwrap().value, 200);
}

#[test]
fn type_ids_and_pointer_maps_are_registered_with_the_daemon() {
    let (_tmp, _config, _daemon, client) = setup();
    let pool = client.create_pool("types", PoolOptions::default()).unwrap();
    pool.tx(|tx| {
        pool.create_root(
            tx,
            ListRoot {
                head: PmPtr::null(),
                len: 0,
            },
        )
    })
    .unwrap();
    push_front(&pool, 1);
    let stats = client.stats().unwrap();
    assert!(
        stats.ptr_maps >= 2,
        "expected ListRoot and Node maps, got {}",
        stats.ptr_maps
    );
    // The maps round-trip through the daemon with the right offsets.
    let node_decl = Node::decl();
    assert_eq!(node_decl.fields[0].offset, 8);
}
