//! Native persistent pointers.
//!
//! The defining choice of Puddles (§3.5) is that persistent data holds
//! *ordinary virtual addresses* — not fat (pool-id + offset) pointers and
//! not self-relative offsets. [`PmPtr<T>`] is a `#[repr(transparent)]`
//! 8-byte wrapper around such an address: dereferencing it is a single
//! load, non-PM-aware code (and debuggers) can follow it, and the relocation
//! machinery can rewrite it in place because the type's pointer map records
//! where it lives.

use std::fmt;
use std::marker::PhantomData;

/// A native persistent pointer to a `T` living in the global puddle space.
///
/// `PmPtr` is exactly 8 bytes (one machine word) and stores the target's
/// virtual address, so the in-memory and on-PM representations are
/// identical. Dereferencing is `unsafe` because the compiler cannot know
/// whether the target puddle is currently mapped; higher layers
/// (`Pool::deref`, data-structure wrappers) provide safe access patterns.
#[repr(transparent)]
pub struct PmPtr<T> {
    addr: u64,
    _marker: PhantomData<T>,
}

impl<T> PmPtr<T> {
    /// The null persistent pointer.
    pub const fn null() -> Self {
        PmPtr {
            addr: 0,
            _marker: PhantomData,
        }
    }

    /// Creates a pointer from a raw virtual address.
    pub const fn from_addr(addr: u64) -> Self {
        PmPtr {
            addr,
            _marker: PhantomData,
        }
    }

    /// Creates a pointer from a raw Rust pointer.
    pub fn from_raw(ptr: *const T) -> Self {
        PmPtr {
            addr: ptr as usize as u64,
            _marker: PhantomData,
        }
    }

    /// Returns the stored virtual address.
    pub const fn addr(self) -> u64 {
        self.addr
    }

    /// Returns `true` if this is the null pointer.
    pub const fn is_null(self) -> bool {
        self.addr == 0
    }

    /// Converts to a raw mutable pointer.
    pub const fn as_ptr(self) -> *mut T {
        self.addr as *mut T
    }

    /// Dereferences the pointer.
    ///
    /// # Safety
    ///
    /// The target puddle must be mapped at this address with at least read
    /// access, the address must point to a valid, initialized `T`, and the
    /// returned reference must not outlive the mapping or alias a mutable
    /// reference.
    pub unsafe fn as_ref<'a>(self) -> &'a T {
        debug_assert!(!self.is_null());
        // SAFETY: forwarded from the caller.
        unsafe { &*self.as_ptr() }
    }

    /// Mutably dereferences the pointer.
    ///
    /// # Safety
    ///
    /// As for [`PmPtr::as_ref`], plus the mapping must be writable and no
    /// other reference to the target may exist.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn as_mut<'a>(self) -> &'a mut T {
        debug_assert!(!self.is_null());
        // SAFETY: forwarded from the caller.
        unsafe { &mut *self.as_ptr() }
    }
}

// Manual impls so `PmPtr<T>` is Copy/Clone/etc. even when `T` is not.
impl<T> Clone for PmPtr<T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for PmPtr<T> {}

impl<T> PartialEq for PmPtr<T> {
    fn eq(&self, other: &Self) -> bool {
        self.addr == other.addr
    }
}
impl<T> Eq for PmPtr<T> {}

impl<T> Default for PmPtr<T> {
    fn default() -> Self {
        Self::null()
    }
}

impl<T> fmt::Debug for PmPtr<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PmPtr({:#x})", self.addr)
    }
}

// SAFETY: a `PmPtr` is just an address; whether dereferencing it from
// another thread is sound is decided at the (unsafe) dereference site, the
// same as for `*mut T` wrapped in higher-level structures. Making it Send +
// Sync mirrors how native pointers embedded in persistent structures are
// shared across the paper's multithreaded workloads.
unsafe impl<T> Send for PmPtr<T> {}
// SAFETY: see above.
unsafe impl<T> Sync for PmPtr<T> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pmptr_is_one_word() {
        assert_eq!(std::mem::size_of::<PmPtr<u64>>(), 8);
        assert_eq!(std::mem::size_of::<Option<PmPtr<u64>>>(), 16);
        assert_eq!(std::mem::align_of::<PmPtr<u64>>(), 8);
    }

    #[test]
    fn null_and_roundtrip() {
        let p: PmPtr<u32> = PmPtr::null();
        assert!(p.is_null());
        assert_eq!(p.addr(), 0);

        let mut value = 17u32;
        let p = PmPtr::from_raw(&mut value as *mut u32);
        assert!(!p.is_null());
        // SAFETY: `value` is live on the stack and exclusively ours.
        unsafe {
            assert_eq!(*p.as_ref(), 17);
            *p.as_mut() = 42;
        }
        assert_eq!(value, 42);
    }

    #[test]
    fn equality_compares_addresses() {
        let a: PmPtr<u8> = PmPtr::from_addr(0x100);
        let b: PmPtr<u8> = PmPtr::from_addr(0x100);
        let c: PmPtr<u8> = PmPtr::from_addr(0x200);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_eq!(PmPtr::<u8>::default(), PmPtr::<u8>::null());
    }
}
