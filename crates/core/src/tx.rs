//! Failure-atomic transactions (`libtx`, §3.6 and §4.1).
//!
//! Transactions are thread-local: each thread lazily acquires one log puddle
//! from the daemon and reuses it for every subsequent transaction. Inside a
//! transaction the application (and the allocator) record undo entries
//! ([`Transaction::add`], the analogue of `TX_ADD`) and redo entries
//! ([`Transaction::redo_set`], the analogue of `TX_REDO_SET`); commit then
//! runs the three stages of Fig. 7:
//!
//! 1. flush every undo-logged location (coalesced by cache line), fence,
//!    publish sequence range `(2,4)`;
//! 2. copy every redo entry to its target (straight from the log memory —
//!    zero-copy), flush, fence, publish `(4,4)`;
//! 3. the transaction is complete; the log is reset.
//!
//! # Persist cost of the hot path
//!
//! Log appends go through [`LogWriter`]: the cursor lives in DRAM, so an
//! append is one unfenced flush — no log-header rewrite and no `sfence`.
//! The fences the stages above already issue are the only fences in a
//! transaction; by the time a sequence range advances, every entry flushed
//! before it is durable. Undo logging is additionally *deduplicated*
//! through an [`IntervalSet`]: re-logging an already-covered location (the
//! dominant pattern in tree updates) appends nothing.
//!
//! One ordering caveat is inherent to eliding the per-append fence: after
//! `add`/`set` return, nothing orders the undo entry's write-back before
//! the caller's in-place store to the same location. On ADR hardware whose
//! cache evicts lines in arbitrary order, a power failure could persist
//! the mutated data while the (flushed but unfenced) undo entry is still
//! in cache, leaving that location unrecoverable. This reproduction's
//! crash model makes the race unobservable — crashes are failpoint-driven
//! process exits over mmap-backed "PM", so every executed store is
//! durable and tearing exists only where failpoints inject it — but a port
//! to real PM must fence between a *first-touch* undo append and the store
//! it guards (dedup already makes later touches fence-free). Tracked in
//! ROADMAP.
//!
//! A crash anywhere in this sequence leaves the log in a state from which
//! the daemon's recovery (stage-aware replay) produces a consistent result:
//! before `(2,4)` the durable prefix of undo entries rolls the transaction
//! back, after it the redo entries roll it forward.

use crate::alloc::MetaLogger;
use crate::client::{ClientInner, ThreadLogHandle};
use crate::error::{Error, Result};
use crate::interval::IntervalSet;
use puddles_logfmt::{
    chain_iter, replay_chain, segment_payload_capacity, DirectMemoryTarget, EntryKind, LogWriter,
    ReplayOrder, RANGE_REDO, SEQ_REDO, SEQ_UNDO,
};
use puddles_pmem::failpoint;
use puddles_pmem::persist;
use puddles_pmem::{PmError, CACHELINE};
use puddles_proto::PuddleInfo;
use std::cell::Cell;
use std::sync::Arc;

thread_local! {
    static IN_TX: Cell<bool> = const { Cell::new(false) };
}

/// An open failure-atomic transaction.
///
/// Obtained through [`crate::PuddleClient::tx`] (or `Pool::tx`); all undo /
/// redo records of one transaction go to this thread's cached log puddle.
/// A transaction that outgrows that puddle transparently *chains* further
/// log puddles (Fig. 5's `chain_index`): the daemon supplies a fresh
/// puddle, it is registered in the log space under the same `log_id`, and
/// logging continues — [`Error::TxTooLarge`] is raised only when the daemon
/// cannot supply another log puddle (or a single entry exceeds a whole
/// segment). Chained segments are released back to the daemon once the
/// transaction commits or aborts.
pub struct Transaction<'c> {
    client: &'c ClientInner,
    writer: LogWriter,
    /// Undo-logged `[addr, addr+len)` ranges: dedups re-logging and drives
    /// the coalesced stage-1 flush.
    undo_set: IntervalSet,
    /// Log-space id shared by every segment of this thread's log chain.
    log_id: u64,
    /// Chain segments acquired mid-transaction, in `chain_index` order
    /// starting at 1; released after commit/abort (never on an injected
    /// crash — the daemon's recovery reclaims them, like real power loss).
    chain: Vec<PuddleInfo>,
}

impl<'c> Transaction<'c> {
    /// Appends one log entry, growing the log chain when the active segment
    /// is full. Every logging path funnels through here so chaining is
    /// transparent to `add`/`set`/`redo_set`/allocator metadata logging.
    fn append_entry(
        &mut self,
        addr: u64,
        seq: u32,
        order: ReplayOrder,
        kind: EntryKind,
        data: &[u8],
    ) -> Result<()> {
        match self.writer.append(addr, seq, order, kind, data) {
            Ok(()) => Ok(()),
            Err(PmError::LogFull { need, free }) => {
                let segment_capacity =
                    self.client.log_puddle_size() as usize - puddled::LOG_REGION_OFFSET;
                if data.len() > segment_payload_capacity(segment_capacity) {
                    // No fresh segment could ever hold this payload; chaining
                    // would allocate puddles forever without making progress.
                    return Err(Error::TxTooLarge { need, free });
                }
                self.extend_chain(need, free)?;
                self.writer
                    .append(addr, seq, order, kind, data)
                    .map_err(Error::from)
            }
            Err(e) => Err(e.into()),
        }
    }

    /// Chains one more log puddle onto this transaction's log.
    ///
    /// Ordering at the chain boundary (the Fig. 7 discipline): the new
    /// tail's header is initialized and fenced by [`LogWriter::extend`]
    /// (which also commits every unfenced flush into earlier segments),
    /// then the log-space slot is persisted and fenced — only after that
    /// does the first append land in the tail, so recovery always finds a
    /// registered (possibly empty) segment, never entries it cannot reach.
    fn extend_chain(&mut self, need: usize, free: usize) -> Result<()> {
        let (info, seg) = match self.client.acquire_log_segment() {
            Ok(pair) => pair,
            // The daemon cannot supply another log puddle — the log cannot
            // grow, which is what TxTooLarge reports. Other daemon errors
            // (permission, shutdown) keep their own diagnosis.
            Err(Error::Daemon(e)) if e.code == puddles_proto::ErrorCode::OutOfSpace => {
                return Err(Error::TxTooLarge { need, free })
            }
            Err(e) => return Err(e),
        };
        if failpoint::should_fail(failpoint::names::LOG_CHAIN_ALLOC_CRASH) {
            // Crash window: the puddle exists daemon-side but no log space
            // references it yet — only the startup sweep can reclaim it.
            return Err(Error::CrashInjected(
                failpoint::names::LOG_CHAIN_ALLOC_CRASH,
            ));
        }
        let chain_index = self.chain.len() as u32 + 1;
        // Track the segment before registering it: if registration fails,
        // the abort path still releases the acquired puddle.
        self.chain.push(info);
        let info = self.chain.last().expect("just pushed");
        self.writer.extend(seg).map_err(Error::from)?;
        self.client
            .register_log_segment(info, self.log_id, chain_index)
            .map_err(|e| match e {
                // Every log-space slot is taken: the log genuinely cannot
                // grow any further, same condition as a daemon refusal.
                Error::Pm(PmError::OutOfRange { .. }) => Error::TxTooLarge { need, free },
                other => other,
            })?;
        if failpoint::should_fail(failpoint::names::LOG_CHAIN_REGISTER_CRASH) {
            return Err(Error::CrashInjected(
                failpoint::names::LOG_CHAIN_REGISTER_CRASH,
            ));
        }
        Ok(())
    }

    /// Unregisters, unmaps and frees every chained segment (best-effort);
    /// called after the head log was reset, so the chain is already invalid
    /// for recovery whichever prefix of the release survives.
    fn release_chain(&mut self) {
        for info in std::mem::take(&mut self.chain) {
            self.client.release_log_segment(&info);
        }
    }
    /// Undo-logs the current contents of `*target` so the transaction can
    /// roll it back (the analogue of `TX_ADD`). The caller then updates the
    /// location in place.
    pub fn add<T>(&mut self, target: &T) -> Result<()> {
        self.add_range(target as *const T as usize, std::mem::size_of::<T>())
    }

    /// Undo-logs `[addr, addr + len)`.
    ///
    /// Re-logging a range that earlier undo logging already covers is a
    /// no-op: the first entry captured the pre-transaction bytes, and
    /// reverse-order replay applies it last, so it alone decides the
    /// rolled-back contents.
    pub fn add_range(&mut self, addr: usize, len: usize) -> Result<()> {
        if len == 0 {
            return Ok(());
        }
        if self.undo_set.covers(addr as u64, len as u64) {
            return Ok(());
        }
        // SAFETY: the caller asserts (by passing the location to a logging
        // call) that `[addr, addr+len)` is a mapped, readable persistent
        // location it owns for the duration of the transaction.
        let data = unsafe { std::slice::from_raw_parts(addr as *const u8, len) };
        self.append_entry(
            addr as u64,
            SEQ_UNDO,
            ReplayOrder::Reverse,
            EntryKind::Undo,
            data,
        )?;
        self.undo_set.insert(addr as u64, len as u64);
        Ok(())
    }

    /// Undo-logs `*target` and then stores `value` into it: the common
    /// "logged store" idiom.
    pub fn set<T: Copy>(&mut self, target: &mut T, value: T) -> Result<()> {
        self.add(&*target)?;
        *target = value;
        Ok(())
    }

    /// Redo-logs a store of `value` into `*target` (the analogue of
    /// `TX_REDO_SET`): the location is untouched now and updated when the
    /// transaction commits.
    pub fn redo_set<T: Copy>(&mut self, target: &T, value: T) -> Result<()> {
        // SAFETY: `value` is a live local; viewing it as bytes is sound for
        // Copy types.
        let bytes = unsafe {
            std::slice::from_raw_parts(&value as *const T as *const u8, std::mem::size_of::<T>())
        };
        self.redo_set_bytes(target as *const T as usize, bytes)
    }

    /// Redo-logs a store of `bytes` at `addr`.
    pub fn redo_set_bytes(&mut self, addr: usize, bytes: &[u8]) -> Result<()> {
        self.append_entry(
            addr as u64,
            SEQ_REDO,
            ReplayOrder::Forward,
            EntryKind::Redo,
            bytes,
        )
    }

    /// Logs the current contents of a *volatile* location so an abort can
    /// restore it; ignored by post-crash recovery (§4.1).
    ///
    /// Volatile entries are not deduplicated: they live in a different
    /// address space than the persistent undo set tracks.
    pub fn add_volatile<T>(&mut self, target: &T) -> Result<()> {
        let addr = target as *const T as usize;
        let len = std::mem::size_of::<T>();
        // SAFETY: as in `add_range`, for a volatile location.
        let data = unsafe { std::slice::from_raw_parts(addr as *const u8, len) };
        self.append_entry(
            addr as u64,
            SEQ_UNDO,
            ReplayOrder::Reverse,
            EntryKind::Volatile,
            data,
        )
    }

    /// Returns the number of log entries recorded so far.
    pub fn entries(&self) -> u64 {
        self.writer.num_entries()
    }

    /// Number of log puddles backing this transaction's log chain
    /// (1 = no chaining has happened yet).
    pub fn chain_segments(&self) -> usize {
        self.writer.segment_count()
    }

    /// Largest payload that can still be logged **without chaining another
    /// segment** — the active segment's headroom. Chaining extends this
    /// transparently; the hard limit is the daemon's willingness to supply
    /// further log puddles.
    pub fn log_free_bytes(&self) -> usize {
        self.writer.free_bytes()
    }

    fn commit(&mut self) -> Result<()> {
        // Stage 1: make every undo-logged location durable. Spans are
        // sorted and disjoint, so tracking the last flushed cache line
        // ensures a line shared by two spans is flushed once. The closing
        // `sfence` also commits every unfenced log-entry flush issued by
        // the appends.
        let line_mask = !(CACHELINE as u64 - 1);
        let mut flushed_to: u64 = 0;
        for (start, end) in self.undo_set.spans() {
            let from = (start & line_mask).max(flushed_to);
            if from < end {
                persist::flush(from as *const u8, (end - from) as usize);
                flushed_to = (end + CACHELINE as u64 - 1) & line_mask;
            }
        }
        persist::sfence();
        if failpoint::should_fail(failpoint::names::COMMIT_AFTER_UNDO_FLUSH) {
            return Err(Error::CrashInjected(
                failpoint::names::COMMIT_AFTER_UNDO_FLUSH,
            ));
        }
        // Publish stage 2: only redo entries are live from here on.
        self.writer.set_seq_range(RANGE_REDO);
        if failpoint::should_fail(failpoint::names::COMMIT_BEFORE_REDO_APPLY) {
            return Err(Error::CrashInjected(
                failpoint::names::COMMIT_BEFORE_REDO_APPLY,
            ));
        }

        // Stage 2: apply the redo entries in logging order, copying each
        // payload straight out of the log memory (zero-copy), stitched
        // across every chained segment.
        let mut applied = 0usize;
        for (hdr, data) in chain_iter(self.writer.chain()) {
            if !RANGE_REDO.contains(hdr.seq) {
                continue;
            }
            // SAFETY: the application redo-logged this address inside the
            // transaction, asserting it owns a writable mapping of it; the
            // log memory and the target never overlap (log puddles hold no
            // application data).
            unsafe {
                std::ptr::copy_nonoverlapping(data.as_ptr(), hdr.addr as *mut u8, data.len());
            }
            persist::flush(hdr.addr as *const u8, data.len());
            applied += 1;
            if applied == 1 && failpoint::should_fail(failpoint::names::COMMIT_MID_REDO_APPLY) {
                persist::sfence();
                return Err(Error::CrashInjected(
                    failpoint::names::COMMIT_MID_REDO_APPLY,
                ));
            }
        }
        persist::sfence();
        if failpoint::should_fail(failpoint::names::COMMIT_BEFORE_INVALIDATE) {
            return Err(Error::CrashInjected(
                failpoint::names::COMMIT_BEFORE_INVALIDATE,
            ));
        }

        // Stage 3: the transaction is complete; drop the log (the head
        // reset is the single fenced write invalidating the whole chain)
        // and return any chained segments to the daemon.
        self.writer.reset();
        self.release_chain();
        Ok(())
    }

    fn abort(&mut self) {
        // Roll back in-place (undo-logged) updates and volatile locations,
        // replaying across every chained segment.
        let mut target = DirectMemoryTarget::unrestricted();
        replay_chain(self.writer.chain(), &mut target, true);
        self.writer.reset();
        self.release_chain();
    }
}

impl MetaLogger for Transaction<'_> {
    fn log_range(&mut self, addr: usize, len: usize) -> Result<()> {
        self.add_range(addr, len)
    }
}

/// Runs `body` inside a failure-atomic transaction on the calling thread.
pub(crate) fn run_tx<R>(
    client: &Arc<ClientInner>,
    body: impl FnOnce(&mut Transaction<'_>) -> Result<R>,
) -> Result<R> {
    if IN_TX.with(|flag| flag.get()) {
        return Err(Error::NestedTransaction);
    }
    let handle = client.thread_log()?;
    IN_TX.with(|flag| flag.set(true));
    let result = run_tx_inner(client, handle, body);
    IN_TX.with(|flag| flag.set(false));
    result
}

fn run_tx_inner<R>(
    client: &Arc<ClientInner>,
    handle: ThreadLogHandle,
    body: impl FnOnce(&mut Transaction<'_>) -> Result<R>,
) -> Result<R> {
    // One fenced header write starts the transaction: bump the generation
    // (orphaning any leftover entries) and publish the exec-stage range.
    let writer = LogWriter::begin(handle.log)?;
    let mut tx = Transaction {
        client,
        writer,
        undo_set: IntervalSet::new(),
        log_id: handle.log_id,
        chain: Vec::new(),
    };
    match body(&mut tx) {
        Ok(value) => match tx.commit() {
            Ok(()) => Ok(value),
            Err(e) => Err(e),
        },
        // An injected crash must leave persistent state exactly as the
        // "power failure" found it: no abort processing.
        Err(e) if e.is_injected_crash() => Err(e),
        Err(e) => {
            tx.abort();
            Err(e)
        }
    }
}
