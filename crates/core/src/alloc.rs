//! The two-level per-puddle object allocator (§4.5).
//!
//! Each puddle heap is managed by:
//!
//! * a **block allocator** for allocations ≥ 256 B: the heap is divided into
//!   256-byte blocks and a persistent one-byte-per-block state table records
//!   whether each block is free, an allocation head (with its power-of-two
//!   order), a continuation, or a slab chunk head;
//! * **per-type slab allocators** for allocations < 256 B: 4 KiB chunks are
//!   carved from the block allocator; each chunk serves one (type, size
//!   class) pair and tracks its slots in a small bitmap.
//!
//! Every allocation records the object's 64-bit type id (in the object
//! header for block allocations, in the chunk header for slab allocations),
//! which is what lets [`PuddleAlloc::walk`] enumerate every live object —
//! the mechanism behind pointer discovery during relocation (§4.2).
//!
//! Allocator metadata updates made inside a transaction are undo-logged
//! through the [`MetaLogger`] hook so that a crash mid-allocation rolls the
//! metadata back together with the application data.

use crate::error::{Error, Result};
use parking_lot::Mutex;
use puddles_pmem::persist;
use puddles_pmem::util::align_up;
use std::collections::HashMap;

/// Smallest block managed by the block allocator.
pub const MIN_BLOCK: usize = 256;
/// Size of a slab chunk (16 blocks).
pub const SLAB_CHUNK: usize = 4096;
/// Largest allocation served from slabs.
pub const SLAB_MAX: usize = 256;
/// Slab size classes.
pub const SLAB_CLASSES: [usize; 5] = [16, 32, 64, 128, 256];

/// Offset of the allocator region within a puddle (right after the fixed
/// puddle header).
pub const ALLOC_REGION_OFFSET: usize = puddled::PUDDLE_HEADER_SIZE;

const ALLOC_MAGIC: u64 = 0x5055_4444_414c_4c31; // "PUDDALL1"

/// Block states stored in the block table.
const B_FREE: u8 = 0x00;
const B_CONT: u8 = 0x01;
const B_OBJ: u8 = 0x80;
const B_SLAB: u8 = 0xC0;
const B_KIND_MASK: u8 = 0xC0;
const B_ORDER_MASK: u8 = 0x3F;

/// Receives the address ranges of persistent metadata about to be modified
/// so they can be undo-logged by the enclosing transaction.
pub trait MetaLogger {
    /// Undo-logs `[addr, addr + len)` before it is modified.
    fn log_range(&mut self, addr: usize, len: usize) -> Result<()>;
}

/// A [`MetaLogger`] that logs nothing (used outside transactions, e.g. when
/// initializing a fresh puddle).
#[derive(Debug, Default, Clone, Copy)]
pub struct NoLog;

impl MetaLogger for NoLog {
    fn log_range(&mut self, _addr: usize, _len: usize) -> Result<()> {
        Ok(())
    }
}

/// On-PM allocator header stored at [`ALLOC_REGION_OFFSET`].
#[derive(Debug, Clone, Copy)]
#[repr(C)]
struct AllocHeader {
    magic: u64,
    n_blocks: u64,
    table_off: u64,
    heap_off: u64,
}

const ALLOC_HEADER_SIZE: usize = std::mem::size_of::<AllocHeader>();

/// Header preceding every block allocation.
#[derive(Debug, Clone, Copy)]
#[repr(C)]
struct ObjHeader {
    type_id: u64,
    size: u64,
}

const OBJ_HEADER_SIZE: usize = std::mem::size_of::<ObjHeader>();

/// Header at the start of every slab chunk.
#[derive(Debug, Clone, Copy)]
#[repr(C)]
struct SlabHeader {
    slot_size: u32,
    slot_count: u32,
    type_id: u64,
    bitmap: [u64; 2],
    allocated: u32,
    _pad: u32,
}

const SLAB_HEADER_SIZE: usize = 64;

/// One live object reported by [`PuddleAlloc::walk`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObjRef {
    /// Address of the object's first byte (the user data, not the header).
    pub addr: usize,
    /// The object's 64-bit type id.
    pub type_id: u64,
    /// The usable size of the object in bytes.
    pub size: usize,
}

#[derive(Debug, Default)]
struct VolatileCache {
    /// (type_id, class) → chunk head block indices with free slots.
    slabs: HashMap<(u64, usize), Vec<usize>>,
    /// Hint where to start scanning for free blocks.
    scan_hint: usize,
    /// Whether the slab index has been built from the persistent table.
    slabs_indexed: bool,
}

/// The allocator view over one mapped puddle.
///
/// `PuddleAlloc` does not own the memory; it operates on a mapped puddle
/// whose base address and size are supplied at construction. All operations
/// are internally serialized with a mutex, so a pool can share one
/// `PuddleAlloc` across threads.
#[derive(Debug)]
pub struct PuddleAlloc {
    base: usize,
    size: usize,
    cache: Mutex<VolatileCache>,
}

// SAFETY: the allocator's raw pointer accesses all stay within
// `[base, base + size)`, a region the constructor contract declares mapped
// for the allocator's lifetime; internal state is mutex-protected.
unsafe impl Send for PuddleAlloc {}
// SAFETY: see above.
unsafe impl Sync for PuddleAlloc {}

impl PuddleAlloc {
    /// Creates an allocator view over a mapped puddle at `base` spanning
    /// `size` bytes (the full puddle, including its header).
    ///
    /// # Safety
    ///
    /// `[base, base + size)` must remain mapped read-write for the lifetime
    /// of the returned value, and only `PuddleAlloc` (plus object accesses
    /// to addresses it hands out) may touch the allocator metadata region.
    pub unsafe fn new(base: usize, size: usize) -> Self {
        assert!(size > ALLOC_REGION_OFFSET + ALLOC_HEADER_SIZE + MIN_BLOCK);
        PuddleAlloc {
            base,
            size,
            cache: Mutex::new(VolatileCache::default()),
        }
    }

    fn header_ptr(&self) -> *mut AllocHeader {
        (self.base + ALLOC_REGION_OFFSET) as *mut AllocHeader
    }

    fn read_header(&self) -> AllocHeader {
        // SAFETY: the constructor contract guarantees the region is mapped.
        unsafe { std::ptr::read_unaligned(self.header_ptr()) }
    }

    /// Returns `true` if the puddle already carries allocator metadata.
    pub fn is_initialized(&self) -> bool {
        self.read_header().magic == ALLOC_MAGIC
    }

    /// Lays out and persists fresh allocator metadata, erasing prior state.
    pub fn init(&self) {
        let avail = self.size - ALLOC_REGION_OFFSET - ALLOC_HEADER_SIZE;
        let mut n_blocks = avail / (MIN_BLOCK + 1);
        let table_off = ALLOC_REGION_OFFSET + ALLOC_HEADER_SIZE;
        let mut heap_off = align_up(table_off + n_blocks, MIN_BLOCK);
        while heap_off + n_blocks * MIN_BLOCK > self.size && n_blocks > 0 {
            n_blocks -= 1;
            heap_off = align_up(table_off + n_blocks, MIN_BLOCK);
        }
        let hdr = AllocHeader {
            magic: ALLOC_MAGIC,
            n_blocks: n_blocks as u64,
            table_off: table_off as u64,
            heap_off: heap_off as u64,
        };
        // SAFETY: header + table lie inside the mapped puddle by the size
        // computation above.
        unsafe {
            std::ptr::write_bytes((self.base + table_off) as *mut u8, B_FREE, n_blocks);
            std::ptr::write_unaligned(self.header_ptr(), hdr);
        }
        persist::persist((self.base + table_off) as *const u8, n_blocks);
        persist::persist(self.header_ptr() as *const u8, ALLOC_HEADER_SIZE);
        let mut cache = self.cache.lock();
        *cache = VolatileCache::default();
    }

    fn table(&self) -> (usize, usize, usize) {
        let hdr = self.read_header();
        (
            self.base + hdr.table_off as usize,
            self.base + hdr.heap_off as usize,
            hdr.n_blocks as usize,
        )
    }

    fn entry(&self, table: usize, idx: usize) -> u8 {
        // SAFETY: callers only pass `idx < n_blocks`; the table is mapped.
        unsafe { *((table + idx) as *const u8) }
    }

    fn set_entry(&self, table: usize, idx: usize, value: u8) {
        // SAFETY: as in `entry`.
        unsafe { *((table + idx) as *mut u8) = value };
    }

    /// Returns `true` if `addr` points into this puddle's heap.
    pub fn contains(&self, addr: usize) -> bool {
        let (_, heap, n_blocks) = self.table();
        addr >= heap && addr < heap + n_blocks * MIN_BLOCK
    }

    /// Returns the number of free heap bytes (block granularity).
    pub fn free_bytes(&self) -> usize {
        let (table, _, n_blocks) = self.table();
        (0..n_blocks)
            .filter(|&i| self.entry(table, i) == B_FREE)
            .count()
            * MIN_BLOCK
    }

    /// Returns the total number of heap bytes managed by this allocator.
    pub fn capacity(&self) -> usize {
        let (_, _, n_blocks) = self.table();
        n_blocks * MIN_BLOCK
    }

    /// Allocates `size` bytes for an object of type `type_id`, returning the
    /// object's address.
    pub fn alloc(&self, size: usize, type_id: u64, logger: &mut dyn MetaLogger) -> Result<usize> {
        if puddles_pmem::failpoint::should_fail(puddles_pmem::failpoint::names::ALLOC_METADATA) {
            return Err(Error::CrashInjected(
                puddles_pmem::failpoint::names::ALLOC_METADATA,
            ));
        }
        let size = size.max(1);
        if size <= SLAB_MAX {
            self.slab_alloc(size, type_id, logger)
        } else {
            self.block_alloc(size, type_id, logger)
        }
    }

    /// Frees the object at `addr` (previously returned by [`PuddleAlloc::alloc`]).
    pub fn dealloc(&self, addr: usize, logger: &mut dyn MetaLogger) -> Result<()> {
        let (table, heap, n_blocks) = self.table();
        if addr < heap || addr >= heap + n_blocks * MIN_BLOCK {
            return Err(Error::InvalidAddress(addr as u64));
        }
        let mut idx = (addr - heap) / MIN_BLOCK;
        while idx > 0 && self.entry(table, idx) == B_CONT {
            idx -= 1;
        }
        let entry = self.entry(table, idx);
        match entry & B_KIND_MASK {
            0x80 => self.block_dealloc(table, heap, idx, entry, addr, logger),
            0xC0 => self.slab_dealloc(table, heap, idx, addr, logger),
            _ => Err(Error::InvalidAddress(addr as u64)),
        }
    }

    // ------------------------------------------------------------------
    // Block (>= 256 B) allocations.
    // ------------------------------------------------------------------

    fn block_alloc(&self, size: usize, type_id: u64, logger: &mut dyn MetaLogger) -> Result<usize> {
        let (table, heap, n_blocks) = self.table();
        let needed = align_up(size + OBJ_HEADER_SIZE, MIN_BLOCK) / MIN_BLOCK;
        let span = needed.next_power_of_two();
        let order = span.trailing_zeros() as u8;

        let mut cache = self.cache.lock();
        let start_hint = cache.scan_hint - (cache.scan_hint % span);
        let head = self
            .find_free_run(table, n_blocks, span, start_hint)
            .or_else(|| self.find_free_run(table, n_blocks, span, 0))
            .ok_or_else(|| Error::OutOfMemory(format!("no run of {span} free blocks")))?;

        logger.log_range(table + head, span)?;
        self.set_entry(table, head, B_OBJ | (order & B_ORDER_MASK));
        for i in 1..span {
            self.set_entry(table, head + i, B_CONT);
        }
        persist::persist((table + head) as *const u8, span);

        let obj_base = heap + head * MIN_BLOCK;
        logger.log_range(obj_base, OBJ_HEADER_SIZE)?;
        let hdr = ObjHeader {
            type_id,
            size: size as u64,
        };
        // SAFETY: `obj_base` lies in the heap (head < n_blocks) and the span
        // is reserved above.
        unsafe { std::ptr::write_unaligned(obj_base as *mut ObjHeader, hdr) };
        persist::persist(obj_base as *const u8, OBJ_HEADER_SIZE);

        cache.scan_hint = head + span;
        Ok(obj_base + OBJ_HEADER_SIZE)
    }

    fn find_free_run(
        &self,
        table: usize,
        n_blocks: usize,
        span: usize,
        start: usize,
    ) -> Option<usize> {
        let mut i = start - (start % span);
        while i + span <= n_blocks {
            let mut all_free = true;
            for j in 0..span {
                if self.entry(table, i + j) != B_FREE {
                    all_free = false;
                    break;
                }
            }
            if all_free {
                return Some(i);
            }
            i += span;
        }
        None
    }

    fn block_dealloc(
        &self,
        table: usize,
        heap: usize,
        head: usize,
        entry: u8,
        addr: usize,
        logger: &mut dyn MetaLogger,
    ) -> Result<()> {
        let span = 1usize << (entry & B_ORDER_MASK);
        let expected = heap + head * MIN_BLOCK + OBJ_HEADER_SIZE;
        if addr != expected {
            return Err(Error::InvalidAddress(addr as u64));
        }
        logger.log_range(table + head, span)?;
        for i in 0..span {
            self.set_entry(table, head + i, B_FREE);
        }
        persist::persist((table + head) as *const u8, span);
        let mut cache = self.cache.lock();
        cache.scan_hint = cache.scan_hint.min(head);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Slab (< 256 B) allocations.
    // ------------------------------------------------------------------

    fn class_for(size: usize) -> usize {
        *SLAB_CLASSES
            .iter()
            .find(|&&c| size <= c)
            .expect("size fits the largest slab class")
    }

    fn slab_header(&self, heap: usize, head: usize) -> *mut SlabHeader {
        (heap + head * MIN_BLOCK) as *mut SlabHeader
    }

    fn ensure_slab_index(&self, cache: &mut VolatileCache) {
        if cache.slabs_indexed {
            return;
        }
        let (table, heap, n_blocks) = self.table();
        let mut i = 0;
        while i < n_blocks {
            let entry = self.entry(table, i);
            if entry & B_KIND_MASK == 0xC0 {
                // SAFETY: slab heads always have a valid header written at
                // creation time.
                let hdr = unsafe { std::ptr::read_unaligned(self.slab_header(heap, i)) };
                if hdr.allocated < hdr.slot_count {
                    cache
                        .slabs
                        .entry((hdr.type_id, hdr.slot_size as usize))
                        .or_default()
                        .push(i);
                }
                i += SLAB_CHUNK / MIN_BLOCK;
            } else if entry & B_KIND_MASK == 0x80 {
                i += 1usize << (entry & B_ORDER_MASK);
            } else {
                i += 1;
            }
        }
        cache.slabs_indexed = true;
    }

    fn slab_alloc(&self, size: usize, type_id: u64, logger: &mut dyn MetaLogger) -> Result<usize> {
        let class = Self::class_for(size);
        let (table, heap, n_blocks) = self.table();
        let mut cache = self.cache.lock();
        self.ensure_slab_index(&mut cache);

        // Try an existing chunk with a free slot.
        let key = (type_id, class);
        while let Some(head) = cache.slabs.get(&key).and_then(|v| v.last().copied()) {
            // SAFETY: indexed slab heads carry valid headers.
            let mut hdr = unsafe { std::ptr::read_unaligned(self.slab_header(heap, head)) };
            if hdr.allocated >= hdr.slot_count {
                cache.slabs.get_mut(&key).unwrap().pop();
                continue;
            }
            let slot = Self::first_clear_bit(&hdr.bitmap, hdr.slot_count as usize)
                .ok_or_else(|| Error::Corruption("slab bitmap inconsistent".into()))?;
            let slab_base = heap + head * MIN_BLOCK;
            logger.log_range(slab_base, SLAB_HEADER_SIZE)?;
            hdr.bitmap[slot / 64] |= 1u64 << (slot % 64);
            hdr.allocated += 1;
            // SAFETY: slab base is inside the heap.
            unsafe { std::ptr::write_unaligned(self.slab_header(heap, head), hdr) };
            persist::persist(slab_base as *const u8, SLAB_HEADER_SIZE);
            if hdr.allocated >= hdr.slot_count {
                cache.slabs.get_mut(&key).unwrap().pop();
            }
            return Ok(slab_base + SLAB_HEADER_SIZE + slot * class);
        }

        // Carve a new chunk out of the block allocator.
        let span = SLAB_CHUNK / MIN_BLOCK;
        let start_hint = cache.scan_hint - (cache.scan_hint % span);
        let head = self
            .find_free_run(table, n_blocks, span, start_hint)
            .or_else(|| self.find_free_run(table, n_blocks, span, 0))
            .ok_or_else(|| Error::OutOfMemory("no room for a new slab chunk".into()))?;
        logger.log_range(table + head, span)?;
        self.set_entry(
            table,
            head,
            B_SLAB | (span.trailing_zeros() as u8 & B_ORDER_MASK),
        );
        for i in 1..span {
            self.set_entry(table, head + i, B_CONT);
        }
        persist::persist((table + head) as *const u8, span);

        let slab_base = heap + head * MIN_BLOCK;
        let slot_count = ((SLAB_CHUNK - SLAB_HEADER_SIZE) / class).min(128) as u32;
        logger.log_range(slab_base, SLAB_HEADER_SIZE)?;
        let hdr = SlabHeader {
            slot_size: class as u32,
            slot_count,
            type_id,
            bitmap: [1, 0], // slot 0 handed out below
            allocated: 1,
            _pad: 0,
        };
        // SAFETY: slab base is inside the heap; the chunk was reserved above.
        unsafe { std::ptr::write_unaligned(self.slab_header(heap, head), hdr) };
        persist::persist(slab_base as *const u8, SLAB_HEADER_SIZE);

        cache.scan_hint = head + span;
        cache.slabs.entry(key).or_default().push(head);
        Ok(slab_base + SLAB_HEADER_SIZE)
    }

    fn first_clear_bit(bitmap: &[u64; 2], limit: usize) -> Option<usize> {
        (0..limit).find(|&slot| bitmap[slot / 64] & (1u64 << (slot % 64)) == 0)
    }

    fn slab_dealloc(
        &self,
        table: usize,
        heap: usize,
        head: usize,
        addr: usize,
        logger: &mut dyn MetaLogger,
    ) -> Result<()> {
        let slab_base = heap + head * MIN_BLOCK;
        // SAFETY: slab heads carry valid headers.
        let mut hdr = unsafe { std::ptr::read_unaligned(self.slab_header(heap, head)) };
        let class = hdr.slot_size as usize;
        let slots_start = slab_base + SLAB_HEADER_SIZE;
        if addr < slots_start || !(addr - slots_start).is_multiple_of(class) {
            return Err(Error::InvalidAddress(addr as u64));
        }
        let slot = (addr - slots_start) / class;
        if slot >= hdr.slot_count as usize || hdr.bitmap[slot / 64] & (1u64 << (slot % 64)) == 0 {
            return Err(Error::InvalidAddress(addr as u64));
        }
        logger.log_range(slab_base, SLAB_HEADER_SIZE)?;
        hdr.bitmap[slot / 64] &= !(1u64 << (slot % 64));
        hdr.allocated -= 1;
        // SAFETY: as above.
        unsafe { std::ptr::write_unaligned(self.slab_header(heap, head), hdr) };
        persist::persist(slab_base as *const u8, SLAB_HEADER_SIZE);

        let mut cache = self.cache.lock();
        if hdr.allocated == 0 {
            // Return the empty chunk to the block allocator.
            let span = SLAB_CHUNK / MIN_BLOCK;
            logger.log_range(table + head, span)?;
            for i in 0..span {
                self.set_entry(table, head + i, B_FREE);
            }
            persist::persist((table + head) as *const u8, span);
            if let Some(list) = cache.slabs.get_mut(&(hdr.type_id, class)) {
                list.retain(|&h| h != head);
            }
            cache.scan_hint = cache.scan_hint.min(head);
        } else if hdr.allocated + 1 == hdr.slot_count {
            // The chunk just transitioned from full to having a free slot.
            if cache.slabs_indexed {
                cache
                    .slabs
                    .entry((hdr.type_id, class))
                    .or_default()
                    .push(head);
            }
        }
        Ok(())
    }

    // ------------------------------------------------------------------
    // Object discovery.
    // ------------------------------------------------------------------

    /// Enumerates every live object in the puddle with its type id, which is
    /// how the relocation machinery finds pointers to rewrite.
    pub fn walk(&self) -> Vec<ObjRef> {
        let (table, heap, n_blocks) = self.table();
        let mut out = Vec::new();
        let mut i = 0;
        while i < n_blocks {
            let entry = self.entry(table, i);
            match entry & B_KIND_MASK {
                0x80 => {
                    let span = 1usize << (entry & B_ORDER_MASK);
                    let obj_base = heap + i * MIN_BLOCK;
                    // SAFETY: allocation heads always have a header.
                    let hdr = unsafe { std::ptr::read_unaligned(obj_base as *const ObjHeader) };
                    out.push(ObjRef {
                        addr: obj_base + OBJ_HEADER_SIZE,
                        type_id: hdr.type_id,
                        size: hdr.size as usize,
                    });
                    i += span;
                }
                0xC0 => {
                    let slab_base = heap + i * MIN_BLOCK;
                    // SAFETY: slab heads always have a header.
                    let hdr = unsafe { std::ptr::read_unaligned(slab_base as *const SlabHeader) };
                    for slot in 0..hdr.slot_count as usize {
                        if hdr.bitmap[slot / 64] & (1u64 << (slot % 64)) != 0 {
                            out.push(ObjRef {
                                addr: slab_base + SLAB_HEADER_SIZE + slot * hdr.slot_size as usize,
                                type_id: hdr.type_id,
                                size: hdr.slot_size as usize,
                            });
                        }
                    }
                    i += SLAB_CHUNK / MIN_BLOCK;
                }
                _ => i += 1,
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TestHeap {
        #[allow(dead_code)]
        buf: Vec<u8>,
        alloc: PuddleAlloc,
    }

    fn heap(size: usize) -> TestHeap {
        let mut buf = vec![0u8; size];
        // SAFETY: the Vec outlives the allocator inside TestHeap and is not
        // moved (Vec's heap buffer is stable).
        let alloc = unsafe { PuddleAlloc::new(buf.as_mut_ptr() as usize, size) };
        alloc.init();
        TestHeap { buf, alloc }
    }

    #[test]
    fn init_reports_reasonable_capacity() {
        let h = heap(1 << 20);
        assert!(h.alloc.is_initialized());
        let cap = h.alloc.capacity();
        assert!(cap > (1 << 20) * 9 / 10, "capacity {cap} too small");
        assert_eq!(h.alloc.free_bytes(), cap);
    }

    #[test]
    fn large_allocations_are_disjoint_and_typed() {
        let h = heap(1 << 20);
        let a = h.alloc.alloc(1000, 7, &mut NoLog).unwrap();
        let b = h.alloc.alloc(5000, 8, &mut NoLog).unwrap();
        assert!(a.abs_diff(b) >= 1000);
        assert!(h.alloc.contains(a) && h.alloc.contains(b));

        let objs = h.alloc.walk();
        assert_eq!(objs.len(), 2);
        let ta: Vec<u64> = objs.iter().map(|o| o.type_id).collect();
        assert!(ta.contains(&7) && ta.contains(&8));
        let sizes: Vec<usize> = objs.iter().map(|o| o.size).collect();
        assert!(sizes.contains(&1000) && sizes.contains(&5000));
    }

    #[test]
    fn small_allocations_share_slab_chunks_per_type() {
        let h = heap(1 << 20);
        let mut addrs = Vec::new();
        for _ in 0..10 {
            addrs.push(h.alloc.alloc(24, 42, &mut NoLog).unwrap());
        }
        // All ten 24-byte objects of the same type should fit in one 4 KiB
        // chunk (class 32).
        let min = *addrs.iter().min().unwrap();
        let max = *addrs.iter().max().unwrap();
        assert!(max - min < SLAB_CHUNK);
        // A different type gets a different chunk.
        let other = h.alloc.alloc(24, 43, &mut NoLog).unwrap();
        assert!(other.abs_diff(min) >= SLAB_CHUNK - SLAB_HEADER_SIZE);
        assert_eq!(h.alloc.walk().len(), 11);
    }

    #[test]
    fn dealloc_releases_blocks_for_reuse() {
        let h = heap(1 << 20);
        let before = h.alloc.free_bytes();
        let a = h.alloc.alloc(10_000, 1, &mut NoLog).unwrap();
        assert!(h.alloc.free_bytes() < before);
        h.alloc.dealloc(a, &mut NoLog).unwrap();
        assert_eq!(h.alloc.free_bytes(), before);
        assert!(h.alloc.walk().is_empty());
        // The same space is handed out again.
        let b = h.alloc.alloc(10_000, 1, &mut NoLog).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn slab_slots_are_reused_and_chunks_reclaimed() {
        let h = heap(1 << 20);
        let before = h.alloc.free_bytes();
        let a = h.alloc.alloc(16, 5, &mut NoLog).unwrap();
        let b = h.alloc.alloc(16, 5, &mut NoLog).unwrap();
        h.alloc.dealloc(a, &mut NoLog).unwrap();
        let c = h.alloc.alloc(16, 5, &mut NoLog).unwrap();
        assert_eq!(a, c);
        h.alloc.dealloc(b, &mut NoLog).unwrap();
        h.alloc.dealloc(c, &mut NoLog).unwrap();
        // Chunk fully empty ⇒ returned to the block allocator.
        assert_eq!(h.alloc.free_bytes(), before);
    }

    #[test]
    fn invalid_frees_are_rejected() {
        let h = heap(1 << 20);
        let a = h.alloc.alloc(1000, 1, &mut NoLog).unwrap();
        assert!(h.alloc.dealloc(a + 8, &mut NoLog).is_err());
        assert!(h.alloc.dealloc(a - 100_000, &mut NoLog).is_err());
        h.alloc.dealloc(a, &mut NoLog).unwrap();
        let s = h.alloc.alloc(16, 2, &mut NoLog).unwrap();
        assert!(h.alloc.dealloc(s + 1, &mut NoLog).is_err());
        assert!(h.alloc.dealloc(s + 32, &mut NoLog).is_err());
    }

    #[test]
    fn allocation_fails_cleanly_when_full() {
        let h = heap(64 * 1024);
        let mut count = 0;
        loop {
            match h.alloc.alloc(4000, 1, &mut NoLog) {
                Ok(_) => count += 1,
                Err(Error::OutOfMemory(_)) => break,
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(count >= 10, "only {count} allocations fit");
        // Small allocations may still fit or fail cleanly, but never panic.
        let _ = h.alloc.alloc(16, 1, &mut NoLog);
    }

    #[test]
    fn walk_reports_slab_and_block_objects_with_addresses() {
        let h = heap(1 << 20);
        let small = h.alloc.alloc(64, 100, &mut NoLog).unwrap();
        let large = h.alloc.alloc(4096, 200, &mut NoLog).unwrap();
        let objs = h.alloc.walk();
        assert_eq!(objs.len(), 2);
        assert!(objs.iter().any(|o| o.addr == small && o.type_id == 100));
        assert!(objs.iter().any(|o| o.addr == large && o.type_id == 200));
    }

    #[test]
    fn metadata_logger_sees_every_metadata_range() {
        #[derive(Default)]
        struct Recorder(Vec<(usize, usize)>);
        impl MetaLogger for Recorder {
            fn log_range(&mut self, addr: usize, len: usize) -> Result<()> {
                self.0.push((addr, len));
                Ok(())
            }
        }
        let h = heap(1 << 20);
        let mut rec = Recorder::default();
        let a = h.alloc.alloc(1000, 1, &mut rec).unwrap();
        assert!(!rec.0.is_empty());
        let logged_before_alloc = rec.0.len();
        h.alloc.dealloc(a, &mut rec).unwrap();
        assert!(rec.0.len() > logged_before_alloc);
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(64))]

            /// Random alloc/free interleavings never hand out overlapping
            /// memory and always free cleanly.
            #[test]
            fn allocations_never_overlap(ops in proptest::collection::vec((1usize..6000, 0u8..4), 1..80)) {
                let h = heap(1 << 20);
                let mut live: Vec<(usize, usize)> = Vec::new();
                for (size, action) in ops {
                    if action == 0 && !live.is_empty() {
                        let (addr, _) = live.swap_remove(size % live.len());
                        h.alloc.dealloc(addr, &mut NoLog).unwrap();
                    } else if let Ok(addr) = h.alloc.alloc(size, 1 + (size as u64 % 3), &mut NoLog) {
                        for &(other, osize) in &live {
                            let no_overlap = addr + size <= other || other + osize <= addr;
                            prop_assert!(no_overlap, "{addr:#x}+{size} overlaps {other:#x}+{osize}");
                        }
                        live.push((addr, size));
                    }
                }
                // The walk agrees with what is live (same count).
                prop_assert_eq!(h.alloc.walk().len(), live.len());
                for (addr, _) in live {
                    h.alloc.dealloc(addr, &mut NoLog).unwrap();
                }
                prop_assert!(h.alloc.walk().is_empty());
            }

            /// Free bytes return to the original value after freeing all.
            #[test]
            fn free_all_restores_capacity(sizes in proptest::collection::vec(1usize..8192, 1..40)) {
                let h = heap(1 << 20);
                let before = h.alloc.free_bytes();
                let mut addrs = Vec::new();
                for size in sizes {
                    if let Ok(a) = h.alloc.alloc(size, 9, &mut NoLog) {
                        addrs.push(a);
                    }
                }
                for a in addrs {
                    h.alloc.dealloc(a, &mut NoLog).unwrap();
                }
                prop_assert_eq!(h.alloc.free_bytes(), before);
            }
        }
    }
}
