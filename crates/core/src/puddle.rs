//! A mapped puddle: header management, allocator access, rewrite-on-map.

use crate::alloc::PuddleAlloc;
use crate::client::ClientInner;
use crate::error::{Error, Result};
use crate::reloc;
use puddled::{PuddleHeader, PUDDLE_MAGIC};
use puddles_pmem::persist;
use puddles_proto::{PuddleId, PuddleInfo, Request, Response};
use std::sync::Arc;

/// A puddle mapped into this process's global puddle space.
///
/// Created through [`crate::pool::Pool`]; unmapped (one reference released)
/// on drop.
pub struct MappedPuddle {
    client: Arc<ClientInner>,
    info: PuddleInfo,
    addr: usize,
    alloc: PuddleAlloc,
}

impl std::fmt::Debug for MappedPuddle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MappedPuddle")
            .field("id", &self.info.id)
            .field("addr", &format_args!("{:#x}", self.addr))
            .field("size", &self.info.size)
            .field("writable", &self.info.writable)
            .finish()
    }
}

impl MappedPuddle {
    /// Maps the puddle described by `info`, initializing its header and
    /// allocator if it is brand new, and rewriting its pointers if the
    /// daemon flagged it for relocation.
    pub(crate) fn map(client: Arc<ClientInner>, info: PuddleInfo) -> Result<Arc<Self>> {
        let addr = client.map_puddle_raw(&info)?;
        // SAFETY: `addr` is a fresh mapping of `info.size` bytes that stays
        // alive until this `MappedPuddle` is dropped (which releases the
        // reference after the allocator is gone).
        let alloc = unsafe { PuddleAlloc::new(addr, info.size as usize) };
        let puddle = MappedPuddle {
            client,
            info,
            addr,
            alloc,
        };

        // SAFETY: the first PUDDLE_HEADER_SIZE bytes of the mapping are
        // valid for reads.
        let header = unsafe { PuddleHeader::read_from(addr as *const u8) };
        if header.magic != PUDDLE_MAGIC {
            if !puddle.info.writable {
                return Err(Error::Corruption(format!(
                    "puddle {} is uninitialized and mapped read-only",
                    puddle.info.id
                )));
            }
            let header = PuddleHeader::new(puddle.info.id, puddle.info.size, addr as u64);
            // SAFETY: mapped writable; header region is exclusively ours
            // until the puddle is published.
            unsafe { header.write_to(addr as *mut u8) };
            puddle.alloc.init();
        } else if !puddle.alloc.is_initialized() {
            return Err(Error::Corruption(format!(
                "puddle {} has a header but no allocator metadata",
                puddle.info.id
            )));
        }

        if puddle.info.needs_rewrite {
            puddle.rewrite()?;
        }
        Ok(Arc::new(puddle))
    }

    /// Rewrites this puddle's pointers according to the daemon's pending
    /// translations, then reports completion.
    fn rewrite(&self) -> Result<()> {
        if !self.info.writable {
            return Err(Error::Corruption(format!(
                "puddle {} needs pointer rewriting but is mapped read-only",
                self.info.id
            )));
        }
        let translations = match self
            .client
            .call(&Request::GetRelocation { id: self.info.id })?
        {
            Response::Relocation {
                needs_rewrite: true,
                translations,
            } => translations,
            Response::Relocation {
                needs_rewrite: false,
                ..
            } => return Ok(()),
            other => return Err(Error::UnexpectedResponse(format!("{other:?}"))),
        };
        let types = self.client.merged_types()?;
        reloc::rewrite_puddle(&self.alloc, &translations, &types);
        // Record the address the pointers are now written for.
        // SAFETY: header region of a writable mapping.
        unsafe {
            let mut header = PuddleHeader::read_from(self.addr as *const u8);
            header.current_addr = self.addr as u64;
            header.write_to(self.addr as *mut u8);
        }
        self.client
            .call(&Request::MarkRewritten { id: self.info.id })?;
        Ok(())
    }

    /// The puddle's UUID.
    pub fn id(&self) -> PuddleId {
        self.info.id
    }

    /// The puddle's base virtual address.
    pub fn addr(&self) -> usize {
        self.addr
    }

    /// The puddle's total size in bytes.
    pub fn size(&self) -> usize {
        self.info.size as usize
    }

    /// Whether the puddle is mapped writable.
    pub fn writable(&self) -> bool {
        self.info.writable
    }

    /// Returns `true` if `addr` lies inside this puddle.
    pub fn contains(&self, addr: usize) -> bool {
        addr >= self.addr && addr < self.addr + self.info.size as usize
    }

    /// The puddle's object allocator.
    pub fn alloc(&self) -> &PuddleAlloc {
        &self.alloc
    }

    /// Reads the puddle header.
    pub fn header(&self) -> PuddleHeader {
        // SAFETY: the header region is mapped for the puddle's lifetime.
        unsafe { PuddleHeader::read_from(self.addr as *const u8) }
    }

    /// Returns the root object offset recorded in the header (0 = none).
    pub fn root_offset(&self) -> u64 {
        self.header().root_obj_off
    }

    /// Records `offset` (from the puddle base) as the root object, with
    /// undo logging through `logger`.
    pub(crate) fn set_root_offset(
        &self,
        offset: u64,
        logger: &mut dyn crate::alloc::MetaLogger,
    ) -> Result<()> {
        let mut header = self.header();
        logger.log_range(self.addr, std::mem::size_of::<PuddleHeader>())?;
        header.root_obj_off = offset;
        // SAFETY: header region of a writable mapping.
        unsafe { header.write_to(self.addr as *mut u8) };
        persist::persist_obj(&header);
        Ok(())
    }
}

impl Drop for MappedPuddle {
    fn drop(&mut self) {
        self.client.unmap_puddle(&self.info);
    }
}
