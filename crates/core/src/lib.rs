//! `puddles`: the Puddles client library (`libpuddles` + `libtx`).
//!
//! Puddles is a persistent-memory programming system (EuroSys 2024) built
//! around three properties that existing PM libraries do not combine:
//!
//! * **Application-independent recovery** — crash-consistency logs are
//!   registered with the `puddled` daemon in a structured format, so the
//!   *system* replays them after a crash, before any application maps the
//!   data, even if the writer application is gone or lost its permissions.
//! * **Native pointers** — persistent data contains ordinary virtual
//!   addresses ([`PmPtr`]), so dereferences are single loads and non-PM-aware
//!   code can read the data.
//! * **Relocatability** — PM data is split into small, individually mappable
//!   *puddles* inside a machine-wide global address space; every allocation
//!   carries a type id and every type registers a pointer map, so puddles
//!   can be cloned, exported, imported and mapped at new addresses with
//!   incremental pointer rewriting.
//!
//! # Quick start
//!
//! ```
//! use puddled::{Daemon, DaemonConfig};
//! use puddles::{impl_pm_type, PmPtr, PoolOptions, PuddleClient};
//!
//! #[repr(C)]
//! struct Counter {
//!     value: u64,
//! }
//! impl_pm_type!(Counter, "doc::Counter", []);
//!
//! let dir = tempfile::tempdir().unwrap();
//! let daemon = Daemon::start(DaemonConfig::for_testing(dir.path())).unwrap();
//! let client = PuddleClient::connect_local(&daemon).unwrap();
//! let pool = client.create_pool("counters", PoolOptions::default()).unwrap();
//!
//! // Create the root object inside a failure-atomic transaction.
//! pool.tx(|tx| pool.create_root(tx, Counter { value: 0 })).unwrap();
//!
//! // Update it transactionally.
//! let root: PmPtr<Counter> = pool.root().unwrap();
//! pool.tx(|tx| {
//!     let counter = pool.deref_mut(root)?;
//!     tx.set(&mut counter.value, 41)?;
//!     tx.set(&mut counter.value, 42)?;
//!     Ok(())
//! })
//! .unwrap();
//! assert_eq!(pool.deref(root).unwrap().value, 42);
//! ```

pub mod alloc;
pub mod client;
pub mod error;
pub mod interval;
pub mod pool;
pub mod ptr;
pub mod puddle;
pub mod reloc;
pub mod torture;
pub mod tx;
pub mod types;

pub use alloc::{MetaLogger, NoLog, ObjRef, PuddleAlloc};
pub use client::{ClientMetrics, PuddleClient, RetryPolicy, LOGSPACE_PUDDLE_SIZE, LOG_PUDDLE_SIZE};
pub use error::{Error, Result};
pub use interval::IntervalSet;
pub use pool::{Pool, PoolOptions};
pub use ptr::PmPtr;
pub use puddle::MappedPuddle;
pub use reloc::{rewrite_puddle, RewriteStats};
pub use tx::Transaction;
pub use types::{PmType, TypeRegistry, UNTYPED_TYPE_ID};

// Re-exported so the `impl_pm_type!` macro can reference them from user
// crates without extra imports.
pub use puddles_proto;
