//! The client side of the Puddles system (`libpuddles`' connection state).
//!
//! A [`PuddleClient`] talks to one daemon (in-process or over a UNIX-domain
//! socket), shares that daemon's global puddle space, registers the
//! client's log space and pointer maps, and hands out per-thread log
//! puddles for transactions (§4.1 "to keep transaction costs low, every
//! thread caches the log puddle used on the first transaction").

use crate::error::{Error, Result};
use crate::pool::{Pool, PoolOptions};
use crate::tx::{self, Transaction};
use crate::types::{PmType, TypeRegistry};
use parking_lot::{Mutex, RwLock};
use puddled::{Daemon, GlobalSpace, LOG_REGION_OFFSET};
use puddles_logfmt::{LogRef, LogSpaceRef};
use puddles_pmem::clock::{entropy_seed, Clock};
use puddles_pmem::failpoint;
use puddles_proto::{
    Credentials, Endpoint, PoolInfo, PuddleId, PuddleInfo, PuddlePurpose, RecoveryReport, Request,
    Response,
};
use std::collections::{HashMap, HashSet};
use std::fs::OpenOptions;
use std::os::unix::net::UnixStream;
use std::path::Path;
use std::sync::Arc;
use std::thread::ThreadId;
use std::time::Duration;

/// Size of the puddle holding a client's log space.
pub const LOGSPACE_PUDDLE_SIZE: u64 = 64 * 1024;
/// Size of each per-thread log puddle.
pub const LOG_PUDDLE_SIZE: u64 = 4 * 1024 * 1024;
/// Floor on the spare-log cache capacity: even a client that has never
/// chained parks a couple of puddles (a new thread log, a first chain
/// extension).
pub const SPARE_LOG_CACHE_MIN: usize = 2;
/// Ceiling on the spare-log cache capacity, bounding what an idle client
/// pins no matter how deep its transactions chain.
pub const SPARE_LOG_CACHE_MAX: usize = 16;

/// Spare log puddles a client parks for reuse instead of freeing.
///
/// Chained transactions release one tail per extension, so the useful
/// capacity tracks the deepest chain this client has built: a fixed small
/// cache makes chain-heavy transactions round-trip to the daemon for most
/// of their tails, while a fixed large one pins puddles a chain-free client
/// never uses. `depth_hwm` is the high-water mark of observed chain indexes
/// (0 until the first chain extension).
fn spare_capacity_for(depth_hwm: usize) -> usize {
    depth_hwm.clamp(SPARE_LOG_CACHE_MIN, SPARE_LOG_CACHE_MAX)
}

/// A connection to the Puddles daemon plus per-client state.
///
/// Cloning the client clones a handle to the same connection.
#[derive(Clone)]
pub struct PuddleClient {
    pub(crate) inner: Arc<ClientInner>,
}

pub(crate) struct ClientInner {
    endpoint: Box<dyn Endpoint>,
    pub(crate) gspace: Arc<GlobalSpace>,
    pub(crate) types: Mutex<TypeRegistry>,
    registered_types: Mutex<HashSet<u64>>,
    logging: Mutex<LoggingState>,
    /// Per-thread cached logs; read-locked on the transaction fast path so
    /// concurrent transactions on different threads never serialize here.
    thread_logs: RwLock<HashMap<ThreadId, ThreadLog>>,
    /// Size of log puddles this client requests ([`LOG_PUDDLE_SIZE`] unless
    /// overridden); applies to thread logs and chained segments alike.
    log_puddle_size: std::sync::atomic::AtomicU64,
    /// Spare log puddles parked for reuse (still mapped, unregistered from
    /// the log space): a chained commit/abort parks its tail here instead of
    /// `FreePuddle`-ing it, and the next segment acquisition — a chain
    /// extension or a new thread log — skips the daemon round trip *and*
    /// the mmap. Freed for real when the client drops.
    spare_logs: Mutex<Vec<PuddleInfo>>,
    /// Deepest chain index this client has registered (0 until the first
    /// chain extension); sizes the spare-log cache adaptively — see
    /// [`spare_capacity_for`].
    chain_depth_hwm: std::sync::atomic::AtomicUsize,
    /// Client-local observability counters (retries, reconnects, pipeline
    /// depth), shared with the endpoint; all-zero for in-process endpoints.
    client_metrics: Arc<ClientMetrics>,
}

#[derive(Default)]
struct LoggingState {
    logspace: Option<MappedLogSpace>,
    next_log_id: u64,
}

struct MappedLogSpace {
    #[allow(dead_code)]
    info: PuddleInfo,
    ls: LogSpaceRef,
}

/// One thread's cached log, stored as the raw parts of its `LogRef` (plain
/// integers, so the map is `Sync` without any unsafe impl). The `LogRef` is
/// reconstructed on fetch; the owning thread is the only one that looks its
/// entry up, and the mapping lives for the client's lifetime.
struct ThreadLog {
    #[allow(dead_code)]
    info: PuddleInfo,
    log_base: usize,
    log_capacity: usize,
    /// The log-space `log_id` this thread's log was registered under; chain
    /// segments added mid-transaction register under the same id with
    /// ascending `chain_index`.
    log_id: u64,
}

/// A thread's cached log plus the identity a transaction needs to chain
/// further segments onto it.
pub(crate) struct ThreadLogHandle {
    pub(crate) log: LogRef,
    pub(crate) log_id: u64,
}

impl PuddleClient {
    /// Connects to an in-process daemon with this process's credentials.
    pub fn connect_local(daemon: &Daemon) -> Result<Self> {
        Self::connect_local_as(daemon, Credentials::current_process())
    }

    /// Connects to an in-process daemon presenting explicit credentials
    /// (used by tests to model multiple users).
    pub fn connect_local_as(daemon: &Daemon, creds: Credentials) -> Result<Self> {
        let endpoint = Box::new(daemon.endpoint(creds));
        let gspace = daemon.global_space();
        Self::finish_connect(
            endpoint,
            Some(gspace),
            creds,
            Arc::new(ClientMetrics::default()),
        )
    }

    /// Connects to a daemon over its UNIX-domain socket, speaking the
    /// pipelined v2 protocol (requests carry ids, dozens may be in flight
    /// per connection, responses pair by id).
    ///
    /// The client reserves the global puddle space at the base address the
    /// daemon reports; if that address range is unavailable in this process
    /// the connection fails (native pointers require the same base in every
    /// process of the "machine").
    pub fn connect_uds(path: impl AsRef<Path>) -> Result<Self> {
        Self::connect_uds_with_retry(path, RetryPolicy::default())
    }

    /// Like [`PuddleClient::connect_uds`], with an explicit retry/backoff
    /// policy governing connection dials and idempotent re-sends.
    pub fn connect_uds_with_retry(path: impl AsRef<Path>, retry: RetryPolicy) -> Result<Self> {
        let creds = Credentials::current_process();
        let metrics = Arc::new(ClientMetrics::default());
        let endpoint = Box::new(
            PipelinedEndpoint::new(path.as_ref(), retry).with_client_metrics(Arc::clone(&metrics)),
        );
        Self::finish_connect(endpoint, None, creds, metrics)
    }

    /// Connects over the UNIX-domain socket speaking the legacy v1 protocol
    /// (bare frames, one request in flight per pooled connection). Kept for
    /// interoperability tests and as a fallback against pre-v2 daemons.
    pub fn connect_uds_v1(path: impl AsRef<Path>) -> Result<Self> {
        let creds = Credentials::current_process();
        let metrics = Arc::new(ClientMetrics::default());
        let endpoint = Box::new(
            UdsEndpoint::new(path.as_ref(), RetryPolicy::default())
                .with_client_metrics(Arc::clone(&metrics)),
        );
        Self::finish_connect(endpoint, None, creds, metrics)
    }

    /// Connects over the UNIX-domain socket while sharing an existing
    /// global-space reservation.
    ///
    /// Needed when the daemon runs in the *same process* as the client (the
    /// daemon already reserved the global space, so the client cannot
    /// reserve it again); out-of-process clients use
    /// [`PuddleClient::connect_uds`].
    pub fn connect_uds_shared(path: impl AsRef<Path>, space: Arc<GlobalSpace>) -> Result<Self> {
        Self::connect_uds_shared_with_retry(path, space, RetryPolicy::default())
    }

    /// Like [`PuddleClient::connect_uds_shared`], with an explicit
    /// retry/backoff policy.
    pub fn connect_uds_shared_with_retry(
        path: impl AsRef<Path>,
        space: Arc<GlobalSpace>,
        retry: RetryPolicy,
    ) -> Result<Self> {
        Self::connect_uds_shared_tuned(path, space, retry, 0)
    }

    /// Full-control shared-space connection: an explicit retry policy plus
    /// a requested connection-pool depth (0 = server default). The daemon
    /// clamps the request to its configured maximum and the grant comes
    /// back in `Welcome`; use depth 1 to hold a single connection slot
    /// against a capped server.
    pub fn connect_uds_shared_tuned(
        path: impl AsRef<Path>,
        space: Arc<GlobalSpace>,
        retry: RetryPolicy,
        pool_depth: u32,
    ) -> Result<Self> {
        let creds = Credentials::current_process();
        let metrics = Arc::new(ClientMetrics::default());
        let endpoint = Box::new(
            PipelinedEndpoint::new(path.as_ref(), retry)
                .with_requested_depth(pool_depth)
                .with_client_metrics(Arc::clone(&metrics)),
        );
        Self::finish_connect(endpoint, Some(space), creds, metrics)
    }

    fn finish_connect(
        endpoint: Box<dyn Endpoint>,
        shared_space: Option<Arc<GlobalSpace>>,
        creds: Credentials,
        client_metrics: Arc<ClientMetrics>,
    ) -> Result<Self> {
        let resp = endpoint.call(&Request::hello(creds))?.into_result()?;
        let (space_base, space_size) = match resp {
            Response::Welcome {
                space_base,
                space_size,
                ..
            } => (space_base, space_size),
            other => return Err(Error::UnexpectedResponse(format!("{other:?}"))),
        };
        let gspace = match shared_space {
            Some(space) => space,
            None => {
                let space = GlobalSpace::reserve(Some(space_base as usize), space_size as usize)
                    .map_err(Error::from)?;
                if space.base() as u64 != space_base {
                    return Err(Error::UnexpectedResponse(format!(
                        "cannot reserve global puddle space at {space_base:#x} (got {:#x})",
                        space.base()
                    )));
                }
                Arc::new(space)
            }
        };
        Ok(PuddleClient {
            inner: Arc::new(ClientInner {
                endpoint,
                gspace,
                types: Mutex::new(TypeRegistry::new()),
                registered_types: Mutex::new(HashSet::new()),
                logging: Mutex::new(LoggingState::default()),
                thread_logs: RwLock::new(HashMap::new()),
                log_puddle_size: std::sync::atomic::AtomicU64::new(LOG_PUDDLE_SIZE),
                spare_logs: Mutex::new(Vec::new()),
                chain_depth_hwm: std::sync::atomic::AtomicUsize::new(0),
                client_metrics,
            }),
        })
    }

    /// Overrides the size of log puddles this client creates (thread logs
    /// and chain segments). Mainly a test/bench knob: small segments make
    /// the chaining path cheap to exercise. Takes effect for puddles
    /// created after the call; clamped to a workable minimum.
    pub fn set_log_puddle_size(&self, bytes: u64) {
        self.inner
            .log_puddle_size
            .store(bytes.max(16 * 1024), std::sync::atomic::Ordering::Relaxed);
    }

    /// Creates a pool with the given options.
    pub fn create_pool(&self, name: &str, options: PoolOptions) -> Result<Pool> {
        let resp = self.inner.call(&Request::CreatePool {
            name: name.to_string(),
            root_size: options.puddle_size,
            mode: options.mode,
        })?;
        let info = expect_pool(resp)?;
        Pool::from_info(self.inner.clone(), info, options)
    }

    /// Opens an existing pool.
    pub fn open_pool(&self, name: &str) -> Result<Pool> {
        self.open_pool_with(name, PoolOptions::default())
    }

    /// Opens an existing pool with explicit options.
    pub fn open_pool_with(&self, name: &str, options: PoolOptions) -> Result<Pool> {
        let resp = self.inner.call(&Request::OpenPool {
            name: name.to_string(),
        })?;
        let info = expect_pool(resp)?;
        Pool::from_info(self.inner.clone(), info, options)
    }

    /// Opens the pool if it exists, creating it otherwise.
    pub fn open_or_create_pool(&self, name: &str, options: PoolOptions) -> Result<Pool> {
        match self.open_pool_with(name, options.clone()) {
            Ok(pool) => Ok(pool),
            Err(Error::Daemon(e)) if e.code == puddles_proto::ErrorCode::NotFound => {
                self.create_pool(name, options)
            }
            Err(e) => Err(e),
        }
    }

    /// Deletes a pool and all of its puddles.
    pub fn drop_pool(&self, name: &str) -> Result<()> {
        self.inner.call(&Request::DropPool {
            name: name.to_string(),
        })?;
        Ok(())
    }

    /// Exports a pool (raw in-memory representation plus manifest) to a
    /// directory, so it can be shipped to another machine or re-imported as
    /// a copy.
    pub fn export_pool(&self, name: &str, dest: impl AsRef<Path>) -> Result<()> {
        self.inner.call(&Request::ExportPool {
            name: name.to_string(),
            dest: dest.as_ref().to_string_lossy().into_owned(),
        })?;
        Ok(())
    }

    /// Imports a previously exported pool under a new name and opens it.
    ///
    /// Conflicting addresses are resolved by the daemon; pointers are
    /// rewritten incrementally as the imported puddles are mapped.
    pub fn import_pool(&self, src: impl AsRef<Path>, new_name: &str) -> Result<Pool> {
        let resp = self.inner.call(&Request::ImportPool {
            src: src.as_ref().to_string_lossy().into_owned(),
            new_name: new_name.to_string(),
        })?;
        let info = match resp {
            Response::Imported { pool, .. } => pool,
            other => return Err(Error::UnexpectedResponse(format!("{other:?}"))),
        };
        Pool::from_info(self.inner.clone(), info, PoolOptions::default())
    }

    /// Runs a failure-atomic transaction (the Rust spelling of
    /// `TX_BEGIN(pool) { ... } TX_END`).
    ///
    /// Unlike PMDK, the transaction may modify data in *any* pool opened by
    /// this client (cross-pool transactions, §3.6).
    pub fn tx<R>(&self, body: impl FnOnce(&mut Transaction<'_>) -> Result<R>) -> Result<R> {
        tx::run_tx(&self.inner, body)
    }

    /// Registers a persistent type's pointer map with the daemon (done
    /// automatically on first allocation of the type).
    pub fn register_type<T: PmType>(&self) -> Result<()> {
        self.inner.register_type::<T>()
    }

    /// Asks the daemon to run a recovery pass now.
    pub fn recover(&self) -> Result<RecoveryReport> {
        match self.inner.call(&Request::Recover)? {
            Response::Recovered(report) => Ok(report),
            other => Err(Error::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Fetches daemon statistics.
    pub fn stats(&self) -> Result<puddles_proto::DaemonStats> {
        match self.inner.call(&Request::Stats)? {
            Response::Stats(stats) => Ok(stats),
            other => Err(Error::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// Fetches the daemon's metrics report: latency-series quantiles
    /// (service, WAL flush, checkpoint, coalesce) plus counters.
    pub fn metrics(&self) -> Result<puddles_proto::MetricsReport> {
        match self.inner.call(&Request::GetMetrics)? {
            Response::Metrics(report) => Ok(report),
            other => Err(Error::UnexpectedResponse(format!("{other:?}"))),
        }
    }

    /// This client's local observability counters (retry attempts,
    /// reconnects, pipelined in-flight high-water), in the same report
    /// shape as [`PuddleClient::metrics`]. Purely local — no round trip.
    pub fn client_metrics(&self) -> puddles_proto::MetricsReport {
        self.inner.client_metrics.report()
    }

    /// A no-op round trip to the daemon (used to measure daemon latency).
    pub fn ping(&self) -> Result<()> {
        self.inner.call(&Request::Ping)?;
        Ok(())
    }

    /// Base address of the global puddle space.
    pub fn space_base(&self) -> u64 {
        self.inner.gspace.base() as u64
    }
}

fn expect_pool(resp: Response) -> Result<PoolInfo> {
    match resp {
        Response::Pool(info) => Ok(info),
        other => Err(Error::UnexpectedResponse(format!("{other:?}"))),
    }
}

impl ClientInner {
    /// Sends one request, converting daemon errors.
    pub(crate) fn call(&self, req: &Request) -> Result<Response> {
        Ok(self.endpoint.call(req)?.into_result()?)
    }

    /// Fetches puddle metadata, asking for write access when possible and
    /// falling back to read-only access.
    pub(crate) fn get_puddle(&self, id: PuddleId) -> Result<PuddleInfo> {
        match self.call(&Request::GetPuddle { id, writable: true }) {
            Ok(Response::Puddle(info)) => Ok(info),
            Ok(other) => Err(Error::UnexpectedResponse(format!("{other:?}"))),
            Err(Error::Daemon(e)) if e.code == puddles_proto::ErrorCode::PermissionDenied => {
                match self.call(&Request::GetPuddle {
                    id,
                    writable: false,
                })? {
                    Response::Puddle(info) => Ok(info),
                    other => Err(Error::UnexpectedResponse(format!("{other:?}"))),
                }
            }
            Err(e) => Err(e),
        }
    }

    /// Maps a puddle into the global space, returning its base address.
    pub(crate) fn map_puddle_raw(&self, info: &PuddleInfo) -> Result<usize> {
        let file = OpenOptions::new()
            .read(true)
            .write(info.writable)
            .open(&info.path)
            .map_err(Error::Io)?;
        let offset = (info.assigned_addr - self.gspace.base() as u64) as usize;
        Ok(self
            .gspace
            .map_puddle(&file, offset, info.size as usize, info.writable)?)
    }

    /// Releases one mapping reference for a puddle.
    pub(crate) fn unmap_puddle(&self, info: &PuddleInfo) {
        let offset = (info.assigned_addr - self.gspace.base() as u64) as usize;
        // SAFETY: callers only unmap when they hold the last user of their
        // mapping and no references into it remain (MappedPuddle::drop).
        unsafe {
            let _ = self.gspace.unmap_puddle(offset);
        }
    }

    /// Registers a persistent type once per client.
    pub(crate) fn register_type<T: PmType>(&self) -> Result<()> {
        self.register_decl(T::decl())
    }

    pub(crate) fn register_decl(&self, decl: puddles_proto::PtrMapDecl) -> Result<()> {
        {
            let mut types = self.types.lock();
            types.insert(decl.clone());
        }
        let mut registered = self.registered_types.lock();
        if registered.insert(decl.type_id) {
            self.call(&Request::RegisterPtrMap { decl })?;
        }
        Ok(())
    }

    /// Returns a merged view of locally declared and daemon-registered
    /// pointer maps (needed to rewrite imported data of foreign types).
    pub(crate) fn merged_types(&self) -> Result<TypeRegistry> {
        let mut merged = self.types.lock().clone();
        if let Response::PtrMaps(maps) = self.call(&Request::GetPtrMaps)? {
            merged.merge(maps);
        }
        Ok(merged)
    }

    /// Current log-puddle size (thread logs and chain segments).
    pub(crate) fn log_puddle_size(&self) -> u64 {
        self.log_puddle_size
            .load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Returns this thread's cached log, creating the log space and the log
    /// puddle on first use.
    pub(crate) fn thread_log(&self) -> Result<ThreadLogHandle> {
        let tid = std::thread::current().id();
        {
            // Fast path: a shared read lock, so transactions on different
            // threads acquire their cached logs in parallel.
            let logs = self.thread_logs.read();
            if let Some(tl) = logs.get(&tid) {
                // SAFETY: the parts were taken from a `LogRef` over a puddle
                // mapped writable for the client's lifetime (thread logs are
                // never unmapped), and only the owning thread reaches this
                // entry (the map is keyed by the calling thread's id).
                let log = unsafe { LogRef::from_raw(tl.log_base as *mut u8, tl.log_capacity) };
                return Ok(ThreadLogHandle {
                    log,
                    log_id: tl.log_id,
                });
            }
        }
        // Slow path: make sure the log space exists, then create a log
        // puddle for this thread. A recycled spare already carries an
        // initialized log whose generation must keep counting up (init
        // would rewind it to 0, re-exposing stale same-generation entries);
        // reset bumps it instead.
        let log_id = self.ensure_logspace()?;
        let (info, log) = self.acquire_log_segment()?;
        if log.is_initialized() {
            log.reset();
        } else {
            log.init();
        }
        self.register_log_segment(&info, log_id, 0)?;
        let log_base = log.base_addr();
        let mut logs = self.thread_logs.write();
        logs.insert(
            tid,
            ThreadLog {
                info,
                log_base,
                log_capacity: log.capacity(),
                log_id,
            },
        );
        Ok(ThreadLogHandle { log, log_id })
    }

    /// Provides one mapped log puddle — a parked spare when one fits, a
    /// fresh daemon allocation otherwise — returning its metadata and a log
    /// view over its heap. The caller initializes/resets the log and
    /// registers the puddle in the log space (thread logs at `chain_index`
    /// 0, mid-transaction chain segments at the next index).
    pub(crate) fn acquire_log_segment(&self) -> Result<(PuddleInfo, LogRef)> {
        // Reuse a spare of the current size: no daemon round trip, no mmap
        // (the spare kept its mapping reference). A spare of the wrong size
        // (the log-puddle-size knob moved) is freed for real instead.
        while let Some(info) = self.spare_logs.lock().pop() {
            if info.size == self.log_puddle_size() {
                // SAFETY: the spare's mapping reference was retained when it
                // was parked (`release_log_segment`), so `assigned_addr` is
                // still a live writable mapping of `info.size` bytes.
                let log = unsafe {
                    LogRef::from_raw(
                        (info.assigned_addr as usize + LOG_REGION_OFFSET) as *mut u8,
                        info.size as usize - LOG_REGION_OFFSET,
                    )
                };
                return Ok((info, log));
            }
            self.free_log_segment(&info);
        }
        let info = match self.call(&Request::CreatePuddle {
            size: self.log_puddle_size(),
            pool: None,
            purpose: PuddlePurpose::Log,
            mode: 0o600,
        })? {
            Response::Puddle(info) => info,
            other => return Err(Error::UnexpectedResponse(format!("{other:?}"))),
        };
        let addr = self.map_puddle_raw(&info)?;
        // SAFETY: the puddle was just mapped writable for `info.size` bytes;
        // it stays mapped until `free_log_segment` (chain tails, spares) or
        // for the client's lifetime (thread logs).
        let log = unsafe {
            LogRef::from_raw(
                (addr + LOG_REGION_OFFSET) as *mut u8,
                info.size as usize - LOG_REGION_OFFSET,
            )
        };
        Ok((info, log))
    }

    /// Durably records a chained log segment in the client's log space under
    /// `log_id` at `chain_index` (the slot write is persisted and fenced
    /// before this returns, so recovery can find the tail before any entry
    /// lands in it).
    pub(crate) fn register_log_segment(
        &self,
        info: &PuddleInfo,
        log_id: u64,
        chain_index: u32,
    ) -> Result<()> {
        if chain_index > 0 {
            // Observed chain depth feeds the spare-cache capacity: a client
            // that chains to depth d wants ~d parked tails.
            self.chain_depth_hwm
                .fetch_max(chain_index as usize, std::sync::atomic::Ordering::Relaxed);
        }
        let logging = self.logging.lock();
        match &logging.logspace {
            Some(ls) => ls
                .ls
                .register(info.id.0, log_id, chain_index)
                .map_err(Error::from),
            None => Err(Error::Corruption(
                "chain extension without a registered log space".into(),
            )),
        }
    }

    /// Releases a chain segment after the transaction resolved: removes its
    /// log-space slot (durably, so recovery never chases a freed puddle),
    /// then **parks** the puddle in the spare cache — still mapped — for the
    /// next chain extension or thread log, rather than `FreePuddle`-ing it.
    /// Chain-heavy transactions would otherwise pay a daemon round trip +
    /// file create + mmap *per extension, per transaction* (the ~2x
    /// chained-vs-single gap in `tx_1MiB_undo_MBps`). With the cache full
    /// (or the segment size stale) the puddle is freed for real.
    ///
    /// A parked spare is unreachable by recovery (no log-space slot) and
    /// already reset by `LogWriter::reset`, so it holds nothing replayable;
    /// if the client dies while holding spares, the daemon's startup sweep
    /// of unreferenced log puddles reclaims them.
    pub(crate) fn release_log_segment(&self, info: &PuddleInfo) {
        {
            let logging = self.logging.lock();
            if let Some(ls) = &logging.logspace {
                ls.ls.unregister(info.id.0);
            }
        }
        if info.size == self.log_puddle_size() {
            let capacity = spare_capacity_for(
                self.chain_depth_hwm
                    .load(std::sync::atomic::Ordering::Relaxed),
            );
            let mut spares = self.spare_logs.lock();
            if spares.len() < capacity {
                spares.push(info.clone());
                return;
            }
        }
        self.free_log_segment(info);
    }

    /// Actually returns a log puddle to the daemon: drops the mapping
    /// reference and frees the puddle. Best-effort — a failure leaves a
    /// benign orphan that the daemon's startup reclamation sweeps.
    fn free_log_segment(&self, info: &PuddleInfo) {
        self.unmap_puddle(info);
        let _ = self.call(&Request::FreePuddle { id: info.id });
    }

    fn ensure_logspace(&self) -> Result<u64> {
        let mut logging = self.logging.lock();
        if logging.logspace.is_none() {
            let info = match self.call(&Request::CreatePuddle {
                size: LOGSPACE_PUDDLE_SIZE,
                pool: None,
                purpose: PuddlePurpose::LogSpace,
                mode: 0o600,
            })? {
                Response::Puddle(info) => info,
                other => return Err(Error::UnexpectedResponse(format!("{other:?}"))),
            };
            if failpoint::should_fail(failpoint::names::LOGSPACE_ALLOC_CRASH) {
                // Crash window: the LogSpace puddle exists daemon-side but
                // carries no LogSpaceRecord yet — only the daemon's startup
                // sweep of unregistered LogSpace puddles can reclaim it.
                return Err(Error::CrashInjected(failpoint::names::LOGSPACE_ALLOC_CRASH));
            }
            let addr = self.map_puddle_raw(&info)?;
            // SAFETY: mapped writable just above; stays mapped for the
            // client's lifetime.
            let ls = unsafe {
                LogSpaceRef::from_raw(
                    (addr + LOG_REGION_OFFSET) as *mut u8,
                    info.size as usize - LOG_REGION_OFFSET,
                )
            };
            ls.init();
            self.call(&Request::RegLogSpace { puddle: info.id })?;
            logging.logspace = Some(MappedLogSpace { info, ls });
        }
        logging.next_log_id += 1;
        Ok(logging.next_log_id)
    }
}

impl Drop for ClientInner {
    fn drop(&mut self) {
        // The spare-log cache lives exactly as long as the client: on
        // disconnect the parked puddles go back to the daemon (best-effort
        // — if the daemon is already gone, its next startup sweep reclaims
        // them as unreferenced log puddles).
        let spares = std::mem::take(&mut *self.spare_logs.lock());
        for info in &spares {
            self.free_log_segment(info);
        }
    }
}

/// Idle connections kept per client; one connection per concurrently
/// calling thread is created on demand, so this only bounds the cached set.
const MAX_IDLE_CONNECTIONS: usize = 16;

/// How long an idle pooled connection may sit unused before it is closed.
/// Expired connections are reaped on the next pool access (checkout or
/// checkin) — there is no background reaper thread — so a burst of traffic
/// stops pinning daemon handler threads as soon as the client touches the
/// pool again, and at the latest when the client is dropped.
const IDLE_CONNECTION_TTL: Duration = Duration::from_secs(30);

/// Drops pooled connections idle for longer than the TTL. Timestamps are
/// [`Clock`] readings, so an idle pool drains under virtual time too.
fn prune_idle(idle: &mut Vec<(UnixStream, Duration)>, now: Duration) {
    idle.retain(|(_, last_used)| now.saturating_sub(*last_used) < IDLE_CONNECTION_TTL);
}

/// `true` for I/O failures that a fresh connection may fix: the daemon
/// closed (or was restarted under) a pooled socket, so a write lands on a
/// dead peer or a read hits EOF. Logic errors (e.g. a malformed frame) are
/// not transient — retrying would repeat them.
fn is_transient(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::BrokenPipe
            | std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::ConnectionRefused
            | std::io::ErrorKind::NotConnected
            | std::io::ErrorKind::UnexpectedEof
            | std::io::ErrorKind::WriteZero
    )
}

/// `true` for requests that are safe to resend when a pooled connection
/// dies *after* the request was written but before the response arrived:
/// reads, and writes whose re-application lands on the same state
/// (registrations are keyed puts, `MarkRewritten` clears an already-clear
/// flag, an export overwrites its own output). Creates, frees, drops, and
/// imports are **not** retried — the daemon may have applied them and lost
/// only the acknowledgement, so a resend would double-apply (e.g. a second
/// puddle allocated, or a successful `DropPool` reported as `NotFound`).
fn is_idempotent(req: &Request) -> bool {
    matches!(
        req,
        Request::Hello { .. }
            | Request::Ping
            | Request::GetPuddle { .. }
            | Request::OpenPool { .. }
            | Request::GetPtrMaps
            | Request::RegisterPtrMap { .. }
            | Request::RegLogSpace { .. }
            | Request::GetRelocation { .. }
            | Request::MarkRewritten { .. }
            | Request::ExportPool { .. }
            | Request::Recover
            | Request::Stats
            | Request::GetMetrics
    )
}

/// Client-local observability counters, shared by the endpoint, its retry
/// policy, and every pipelined connection. Surfaced through
/// [`PuddleClient::client_metrics`] in the same report shape the daemon's
/// `GetMetrics` uses, so one consumer renders both sides.
#[derive(Debug, Default)]
pub struct ClientMetrics {
    /// Retry attempts actually performed past each operation's first try
    /// (dials and idempotent re-sends alike).
    pub retry_attempts: std::sync::atomic::AtomicU64,
    /// Re-dials after the first successful handshake (each also flags
    /// `reconnect` in its `Hello`, so the daemon's count should match).
    pub reconnects: std::sync::atomic::AtomicU64,
    /// High-water mark of requests in flight on one pipelined connection
    /// (how deep the id→waiter completion map has grown).
    pub pipeline_depth_hwm: std::sync::atomic::AtomicU64,
}

impl ClientMetrics {
    /// The counters as a wire-shaped report (no histogram series).
    pub fn report(&self) -> puddles_proto::MetricsReport {
        use std::sync::atomic::Ordering::Relaxed;
        let counter = |name: &str, value: u64| puddles_proto::CounterSnapshot {
            name: name.to_string(),
            value,
        };
        puddles_proto::MetricsReport {
            series: Vec::new(),
            counters: vec![
                counter(
                    "client.pipeline_depth_hwm",
                    self.pipeline_depth_hwm.load(Relaxed),
                ),
                counter("client.reconnects", self.reconnects.load(Relaxed)),
                counter("client.retry_attempts", self.retry_attempts.load(Relaxed)),
            ],
            trace_buffered: 0,
            trace_dropped: 0,
        }
    }
}

/// Reusable bounded retry policy: exponential backoff with jitter, capped
/// attempts and an overall deadline.
///
/// One policy instance covers every retryable edge of a client endpoint —
/// dialing the daemon (refused while it restarts, `Busy` at the connection
/// cap) and re-sending idempotent requests after a mid-pipeline connection
/// loss. Only errors [`is_transient`] classifies as connection-level are
/// retried; the caller is responsible for never handing a non-idempotent
/// request to [`RetryPolicy::run`].
#[derive(Debug)]
pub struct RetryPolicy {
    /// Total attempts (the first try plus retries); at least 1.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles per retry up to `max_delay`.
    pub base_delay: Duration,
    /// Ceiling on a single backoff sleep.
    pub max_delay: Duration,
    /// Overall budget: once elapsed, no further retry is attempted even if
    /// attempts remain.
    pub deadline: Duration,
    /// Seed of the jitter stream. Drawn from OS entropy by default (so a
    /// herd of clients decorrelates) and overridden with a derived torture
    /// seed under test, making backoff sequences replayable.
    jitter_seed: u64,
    /// Position in the jitter stream (monotone per policy instance).
    jitter_seq: std::sync::atomic::AtomicU64,
    /// Time source for deadlines and backoff sleeps.
    clock: Clock,
    /// Counts retries actually performed into a client-local reporter.
    metrics: Option<Arc<ClientMetrics>>,
}

impl Clone for RetryPolicy {
    fn clone(&self) -> Self {
        RetryPolicy {
            max_attempts: self.max_attempts,
            base_delay: self.base_delay,
            max_delay: self.max_delay,
            deadline: self.deadline,
            jitter_seed: self.jitter_seed,
            jitter_seq: std::sync::atomic::AtomicU64::new(0),
            clock: self.clock.clone(),
            metrics: self.metrics.clone(),
        }
    }
}

impl Default for RetryPolicy {
    /// Defaults tuned for a local daemon: a handful of quick retries well
    /// under human-visible latency, giving a restarting daemon ~2 s to
    /// come back.
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 6,
            base_delay: Duration::from_millis(2),
            max_delay: Duration::from_millis(200),
            deadline: Duration::from_secs(2),
            jitter_seed: entropy_seed(),
            jitter_seq: std::sync::atomic::AtomicU64::new(0),
            clock: Clock::real(),
            metrics: None,
        }
    }
}

impl RetryPolicy {
    /// A policy with explicit attempt and deadline budgets (delays keep the
    /// defaults).
    pub fn new(max_attempts: u32, deadline: Duration) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            deadline,
            ..RetryPolicy::default()
        }
    }

    /// Overrides the backoff schedule: first retry after `base`, doubling
    /// per retry up to `max`.
    pub fn with_backoff(mut self, base: Duration, max: Duration) -> Self {
        self.base_delay = base;
        self.max_delay = max.max(base);
        self
    }

    /// A policy that never retries (tests that want raw first-failure
    /// semantics).
    pub fn no_retries() -> Self {
        RetryPolicy::new(1, Duration::ZERO)
    }

    /// Pins the jitter stream to an explicit seed, making the backoff
    /// sequence replayable (torture runs derive this from `TORTURE_SEED`).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }

    /// Replaces the time source; under a virtual clock, backoff sleeps
    /// consume logical time instead of wall time.
    pub fn with_clock(mut self, clock: Clock) -> Self {
        self.clock = clock;
        self
    }

    /// The policy's time source (endpoints share it for pool timestamps).
    pub fn clock(&self) -> &Clock {
        &self.clock
    }

    /// Counts retries this policy performs into `metrics` (attached by the
    /// client's connect path; the counters are client-local).
    fn with_metrics(mut self, metrics: Arc<ClientMetrics>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Runs `op` until it succeeds, fails non-transiently, or the attempt /
    /// deadline budget is spent. `op` receives the 0-based attempt number;
    /// attempts past the first follow a backoff sleep.
    fn run<T>(&self, mut op: impl FnMut(u32) -> std::io::Result<T>) -> std::io::Result<T> {
        let start = self.clock.now();
        let mut attempt = 0u32;
        loop {
            match op(attempt) {
                Ok(v) => return Ok(v),
                Err(e) if !is_transient(&e) => return Err(e),
                Err(e) => {
                    attempt += 1;
                    if attempt >= self.max_attempts {
                        return Err(e);
                    }
                    let delay = self.backoff_delay(attempt - 1);
                    if self.clock.now().saturating_sub(start) + delay > self.deadline {
                        return Err(e);
                    }
                    if let Some(metrics) = &self.metrics {
                        metrics
                            .retry_attempts
                            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    }
                    self.clock.sleep(delay);
                }
            }
        }
    }

    /// Backoff for the given retry: `base · 2^retry` capped at `max_delay`,
    /// then jittered into `[d/2, d]` so a herd of clients kicked off one
    /// daemon restart does not re-dial in lockstep.
    fn backoff_delay(&self, retry: u32) -> Duration {
        let exp = self
            .base_delay
            .saturating_mul(1u32 << retry.min(16))
            .min(self.max_delay);
        let nanos = exp.as_nanos() as u64;
        if nanos == 0 {
            return Duration::ZERO;
        }
        let n = self
            .jitter_seq
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        // SplitMix64 over (seed ⊕ sequence): decorrelates concurrent
        // clients (seeds differ per instance) yet replays exactly when the
        // seed is pinned.
        let mut z = self.jitter_seed ^ n.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        Duration::from_nanos(nanos / 2 + z % (nanos / 2 + 1))
    }
}

/// A `Hello` flagged as a reconnection (the daemon counts these in its
/// stats); requests default connection parameters like [`Request::hello`].
fn hello_reconnect(creds: Credentials) -> Request {
    Request::Hello {
        creds,
        max_in_flight: 0,
        pool_depth: 0,
        reconnect: true,
    }
}

/// Client-side endpoint speaking the framed protocol over a UNIX socket.
///
/// Maintains a pool of daemon connections instead of one mutex-guarded
/// stream: each call checks out an idle connection (or opens a fresh one),
/// so threads issue requests to the daemon in parallel and the daemon's
/// per-connection handler threads serve them concurrently. Idle
/// connections are pruned after [`IDLE_CONNECTION_TTL`], and a call that
/// fails transiently — a stale pooled socket, or a connect refused while
/// the daemon finishes (re)starting — is retried under the endpoint's
/// [`RetryPolicy`] on fresh connections.
struct UdsEndpoint {
    path: std::path::PathBuf,
    idle: Mutex<Vec<(UnixStream, Duration)>>,
    retry: RetryPolicy,
    /// Shared with `retry`: one time source covers backoff sleeps and the
    /// idle pool's TTL timestamps.
    clock: Clock,
    /// Set after the first successful handshake; later dials flag
    /// themselves `reconnect` in `Hello` so the daemon's stats count them.
    connected_once: std::sync::atomic::AtomicBool,
    /// Client-local reporter (shared with the retry policy and the owning
    /// client).
    metrics: Arc<ClientMetrics>,
}

impl UdsEndpoint {
    fn new(path: &Path, retry: RetryPolicy) -> Self {
        UdsEndpoint {
            path: path.to_path_buf(),
            idle: Mutex::new(Vec::new()),
            clock: retry.clock().clone(),
            retry,
            connected_once: std::sync::atomic::AtomicBool::new(false),
            metrics: Arc::new(ClientMetrics::default()),
        }
    }

    /// Shares a client-local reporter (also wired into the retry policy so
    /// its retry counts land in the same place).
    fn with_client_metrics(mut self, metrics: Arc<ClientMetrics>) -> Self {
        self.retry = self.retry.clone().with_metrics(Arc::clone(&metrics));
        self.metrics = metrics;
        self
    }

    /// Takes a live idle connection, or opens (and handshakes) a new one.
    /// The `bool` is `true` for a pooled connection, whose liveness is
    /// unknown — a transient failure on it warrants one retry.
    fn checkout(&self) -> std::io::Result<(UnixStream, bool)> {
        {
            let mut idle = self.idle.lock();
            prune_idle(&mut idle, self.clock.now());
            if let Some((stream, _)) = idle.pop() {
                return Ok((stream, true));
            }
        }
        Ok((self.connect_fresh()?, false))
    }

    /// Opens and handshakes a new connection, retrying transient connect
    /// failures (daemon restarting, cap rejections) under the endpoint's
    /// backoff policy.
    fn connect_fresh(&self) -> std::io::Result<UnixStream> {
        self.retry.run(|_| self.try_connect())
    }

    fn try_connect(&self) -> std::io::Result<UnixStream> {
        let mut stream = UnixStream::connect(&self.path)?;
        let creds = Credentials::current_process();
        let hello = if self
            .connected_once
            .load(std::sync::atomic::Ordering::Relaxed)
        {
            self.metrics
                .reconnects
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            hello_reconnect(creds)
        } else {
            Request::hello(creds)
        };
        // Introduce the connection; the daemon replies with Welcome, which
        // the pool consumes (the space geometry was recorded at connect).
        puddles_proto::write_frame(&mut stream, &hello)?;
        let _: Response = puddles_proto::read_frame(&mut stream)?;
        self.connected_once
            .store(true, std::sync::atomic::Ordering::Relaxed);
        Ok(stream)
    }

    fn roundtrip(&self, stream: &mut UnixStream, req: &Request) -> std::io::Result<Response> {
        puddles_proto::write_frame(stream, req)?;
        puddles_proto::read_frame(stream)
    }

    /// Returns a connection that completed a full round trip to the pool;
    /// an errored one is simply dropped (closed).
    fn checkin(&self, stream: UnixStream) {
        let now = self.clock.now();
        let mut idle = self.idle.lock();
        prune_idle(&mut idle, now);
        if idle.len() < MAX_IDLE_CONNECTIONS {
            idle.push((stream, now));
        }
    }
}

impl Endpoint for UdsEndpoint {
    fn call(&self, req: &Request) -> std::io::Result<Response> {
        let (mut stream, _reused) = self.checkout()?;
        match self.roundtrip(&mut stream, req) {
            Ok(resp) => {
                self.checkin(stream);
                Ok(resp)
            }
            Err(e) if is_transient(&e) && is_idempotent(req) => {
                // The connection died under the request (stale pooled
                // socket, daemon restart, injected reset). The daemon may
                // have applied the request and lost only the response, so
                // only idempotent requests are re-sent — each retry on a
                // known-fresh connection, under the backoff policy.
                self.retry.run(|_| {
                    let mut stream = self.try_connect()?;
                    let resp = self.roundtrip(&mut stream, req)?;
                    self.checkin(stream);
                    Ok(resp)
                })
            }
            Err(e) => Err(e),
        }
    }
}

/// Connections a [`PipelinedEndpoint`] multiplexes calls over until the
/// daemon grants a pool depth in `Welcome` (the grant then takes over).
/// Each carries up to the connection's negotiated window of in-flight
/// requests, so a couple of sockets serve far more concurrent callers than
/// the old one-request-per-connection pool.
const PIPELINE_CONNECTIONS: usize = 2;

/// One caller parked on a pipelined response.
struct Waiter {
    slot: std::sync::Mutex<Option<std::io::Result<Response>>>,
    ready: std::sync::Condvar,
}

impl Waiter {
    fn new() -> Waiter {
        Waiter {
            slot: std::sync::Mutex::new(None),
            ready: std::sync::Condvar::new(),
        }
    }

    fn fill(&self, result: std::io::Result<Response>) {
        *self.slot.lock().unwrap() = Some(result);
        self.ready.notify_one();
    }

    fn wait(&self) -> std::io::Result<Response> {
        let mut slot = self.slot.lock().unwrap();
        loop {
            if let Some(result) = slot.take() {
                return result;
            }
            slot = self.ready.wait(slot).unwrap();
        }
    }
}

/// One v2 connection: a shared writer, a reader thread, and the id→waiter
/// completion map that pairs out-of-order responses with their callers.
struct PipeConn {
    /// Write half (a `try_clone` of the socket; the reader owns the other).
    /// The lock covers one whole frame write, so concurrent callers never
    /// interleave frame bytes.
    writer: Mutex<UnixStream>,
    /// Callers waiting for their response, keyed by request id.
    pending: Mutex<HashMap<u64, Arc<Waiter>>>,
    next_id: std::sync::atomic::AtomicU64,
    /// The reader exited (EOF, I/O error, protocol violation): no future
    /// call on this connection can complete. The endpoint replaces it.
    dead: std::sync::atomic::AtomicBool,
    reader: Mutex<Option<std::thread::JoinHandle<()>>>,
    /// Client-local reporter; tracks the in-flight high-water mark.
    metrics: Arc<ClientMetrics>,
}

impl PipeConn {
    /// Wraps an already-connected (and preamble-sent) stream, spawning the
    /// reader thread (tests drive a connection without an endpoint).
    #[cfg(test)]
    fn over_stream(stream: UnixStream) -> std::io::Result<Arc<PipeConn>> {
        PipeConn::over_stream_with(stream, Arc::new(ClientMetrics::default()))
    }

    /// [`PipeConn::over_stream`] reporting into an existing client-local
    /// reporter.
    fn over_stream_with(
        stream: UnixStream,
        metrics: Arc<ClientMetrics>,
    ) -> std::io::Result<Arc<PipeConn>> {
        let reader_stream = stream.try_clone()?;
        let conn = Arc::new(PipeConn {
            writer: Mutex::new(stream),
            pending: Mutex::new(HashMap::new()),
            next_id: std::sync::atomic::AtomicU64::new(1),
            dead: std::sync::atomic::AtomicBool::new(false),
            reader: Mutex::new(None),
            metrics,
        });
        let for_reader = Arc::clone(&conn);
        let handle = std::thread::Builder::new()
            .name("puddles-pipe-reader".into())
            .spawn(move || reader_loop(for_reader, reader_stream))?;
        *conn.reader.lock() = Some(handle);
        Ok(conn)
    }

    fn is_dead(&self) -> bool {
        self.dead.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Sends one enveloped request and blocks until the reader fills this
    /// call's waiter. Any number of calls may be in flight concurrently.
    fn call(&self, req: &Request) -> std::io::Result<Response> {
        if self.is_dead() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::BrokenPipe,
                "pipelined connection is closed",
            ));
        }
        let req_id = self
            .next_id
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let waiter = Arc::new(Waiter::new());
        let in_flight = {
            let mut pending = self.pending.lock();
            pending.insert(req_id, Arc::clone(&waiter));
            pending.len() as u64
        };
        self.metrics
            .pipeline_depth_hwm
            .fetch_max(in_flight, std::sync::atomic::Ordering::Relaxed);
        let env = puddles_proto::RequestEnvelope {
            req_id,
            req: req.clone(),
        };
        let written = {
            let mut writer = self.writer.lock();
            puddles_proto::write_frame(&mut *writer, &env)
        };
        if let Err(e) = written {
            self.pending.lock().remove(&req_id);
            self.dead.store(true, std::sync::atomic::Ordering::Relaxed);
            return Err(e);
        }
        waiter.wait()
    }

    /// Marks the connection dead and fails every parked caller (the reader
    /// is gone; their responses can never arrive).
    fn fail_all(&self, error: &std::io::Error) {
        self.dead.store(true, std::sync::atomic::Ordering::Relaxed);
        let pending: Vec<Arc<Waiter>> = self.pending.lock().drain().map(|(_, w)| w).collect();
        for waiter in pending {
            waiter.fill(Err(std::io::Error::new(error.kind(), error.to_string())));
        }
    }

    /// Unblocks the reader (both socket halves are clones of one fd, so
    /// shutting down the writer EOFs the reader too).
    fn close(&self) {
        let _ = self.writer.lock().shutdown(std::net::Shutdown::Both);
    }
}

/// The reader half of one pipelined connection: decodes server frames and
/// routes each to its waiter by id. Exits — failing all parked callers — on
/// EOF, an I/O error, or a protocol violation (an id nobody is waiting on,
/// or a bare frame after the handshake, which can only be the acceptor's
/// `Busy` rejection).
fn reader_loop(conn: Arc<PipeConn>, mut stream: UnixStream) {
    use std::io::Read;
    let mut decoder = puddles_proto::frame::FrameDecoder::new();
    let mut buf = [0u8; 64 * 1024];
    let failure: std::io::Error = 'read: loop {
        match stream.read(&mut buf) {
            Ok(0) => {
                break 'read std::io::Error::new(
                    std::io::ErrorKind::UnexpectedEof,
                    "daemon closed the connection",
                )
            }
            Ok(n) => {
                decoder.feed(&buf[..n]);
                loop {
                    match decoder.next_frame::<puddles_proto::ServerFrame>() {
                        Ok(Some(puddles_proto::ServerFrame::Enveloped(env))) => {
                            let waiter = conn.pending.lock().remove(&env.req_id);
                            match waiter {
                                Some(waiter) => waiter.fill(Ok(env.resp)),
                                None => {
                                    break 'read std::io::Error::new(
                                        std::io::ErrorKind::InvalidData,
                                        format!("response for unknown req_id {}", env.req_id),
                                    )
                                }
                            }
                        }
                        Ok(Some(puddles_proto::ServerFrame::Bare(resp))) => {
                            break 'read bare_frame_error(resp)
                        }
                        Ok(None) => break,
                        Err(e) => break 'read e,
                    }
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => break 'read e,
        }
    };
    conn.fail_all(&failure);
}

/// Maps a bare (un-enveloped) server frame to the error every parked caller
/// gets. The daemon only sends one legitimately: the pre-handshake `Busy`
/// rejection at the connection cap, which maps to `ConnectionRefused` so
/// callers treat it as transient and back off.
fn bare_frame_error(resp: Response) -> std::io::Error {
    match resp {
        Response::Error {
            code: puddles_proto::ErrorCode::Busy,
            message,
        } => std::io::Error::new(
            std::io::ErrorKind::ConnectionRefused,
            format!("daemon busy: {message}"),
        ),
        other => std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            format!("bare frame on a pipelined connection: {other:?}"),
        ),
    }
}

/// Client-side endpoint speaking the pipelined v2 protocol.
///
/// Keeps a small pool of connections ([`PIPELINE_CONNECTIONS`]) and spreads
/// calls round-robin across them; each connection multiplexes any number of
/// concurrent callers through its id→waiter map, so client threads never
/// wait for each other's round trips (the old v1 pool dedicated one socket
/// per concurrent call). Dead connections are replaced on the next call; a
/// call that fails transiently on an idempotent request is retried once.
struct PipelinedEndpoint {
    path: std::path::PathBuf,
    pool: Mutex<Vec<Arc<PipeConn>>>,
    rr: std::sync::atomic::AtomicUsize,
    retry: RetryPolicy,
    /// Pool depth granted by the daemon's `Welcome`; starts at
    /// [`PIPELINE_CONNECTIONS`] and is replaced by the negotiated grant
    /// after the first handshake.
    depth: std::sync::atomic::AtomicUsize,
    /// Set after the first successful handshake; later dials flag
    /// themselves `reconnect` in `Hello`.
    connected_once: std::sync::atomic::AtomicBool,
    /// Pool depth to *request* in `Hello` (0 = take the server default).
    requested_depth: u32,
    /// Client-local reporter, shared with the retry policy and every
    /// connection in the pool.
    metrics: Arc<ClientMetrics>,
}

impl PipelinedEndpoint {
    fn new(path: &Path, retry: RetryPolicy) -> Self {
        PipelinedEndpoint {
            path: path.to_path_buf(),
            pool: Mutex::new(Vec::new()),
            rr: std::sync::atomic::AtomicUsize::new(0),
            retry,
            depth: std::sync::atomic::AtomicUsize::new(PIPELINE_CONNECTIONS),
            connected_once: std::sync::atomic::AtomicBool::new(false),
            requested_depth: 0,
            metrics: Arc::new(ClientMetrics::default()),
        }
    }

    /// Shares a client-local reporter (also wired into the retry policy so
    /// its retry counts land in the same place).
    fn with_client_metrics(mut self, metrics: Arc<ClientMetrics>) -> Self {
        self.retry = self.retry.clone().with_metrics(Arc::clone(&metrics));
        self.metrics = metrics;
        self
    }

    /// Requests a specific connection-pool depth in the handshake; the
    /// server clamps to its configured maximum and the grant replaces
    /// [`PIPELINE_CONNECTIONS`] as the pool target.
    fn with_requested_depth(mut self, depth: u32) -> Self {
        self.requested_depth = depth;
        if depth > 0 {
            // Until the grant arrives, don't dial beyond the request.
            self.depth
                .store(depth as usize, std::sync::atomic::Ordering::Relaxed);
        }
        self
    }

    /// Returns a live connection, pruning dead ones and dialing
    /// replacements up to the granted pool depth.
    fn conn(&self) -> std::io::Result<Arc<PipeConn>> {
        let mut pool = self.pool.lock();
        pool.retain(|c| !c.is_dead());
        if pool.len() < self.depth.load(std::sync::atomic::Ordering::Relaxed).max(1) {
            pool.push(self.connect_conn()?);
        }
        let i = self.rr.fetch_add(1, std::sync::atomic::Ordering::Relaxed) % pool.len();
        Ok(Arc::clone(&pool[i]))
    }

    /// Dials and handshakes a new v2 connection, retrying transient
    /// failures (daemon restarting, or its connection cap — the `Busy`
    /// rejection surfaces as `ConnectionRefused`) with bounded exponential
    /// backoff, so a client at the cap eventually gets through once load
    /// drains instead of failing after one fixed sleep.
    fn connect_conn(&self) -> std::io::Result<Arc<PipeConn>> {
        self.retry.run(|_| self.try_connect_conn())
    }

    fn try_connect_conn(&self) -> std::io::Result<Arc<PipeConn>> {
        use std::io::Write;
        let mut stream = UnixStream::connect(&self.path)?;
        // The version preamble: everything after it is enveloped frames.
        stream.write_all(&puddles_proto::frame::V2_MAGIC)?;
        let conn = PipeConn::over_stream_with(stream, Arc::clone(&self.metrics))?;
        let creds = Credentials::current_process();
        let reconnect = self
            .connected_once
            .load(std::sync::atomic::Ordering::Relaxed);
        if reconnect {
            self.metrics
                .reconnects
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        let hello = Request::Hello {
            creds,
            max_in_flight: 0,
            pool_depth: self.requested_depth,
            reconnect,
        };
        // Handshake round trip: proves the daemon accepted the connection
        // (a cap rejection fails here, not on a later caller), fixes the
        // connection's credentials daemon-side, and carries back the
        // granted pool depth.
        if let Response::Welcome { pool_depth, .. } = conn.call(&hello)? {
            if pool_depth > 0 {
                self.depth
                    .store(pool_depth as usize, std::sync::atomic::Ordering::Relaxed);
            }
        }
        self.connected_once
            .store(true, std::sync::atomic::Ordering::Relaxed);
        Ok(conn)
    }
}

impl Endpoint for PipelinedEndpoint {
    fn call(&self, req: &Request) -> std::io::Result<Response> {
        let conn = self.conn()?;
        match conn.call(req) {
            Err(e) if is_transient(&e) && is_idempotent(req) => {
                // The connection died under us (daemon restart, stale
                // socket, injected reset). The daemon may have applied the
                // request and lost only the response, so only idempotent
                // requests are re-sent — each retry on a connection that
                // just handshook, under the backoff policy.
                self.retry.run(|_| {
                    let conn = self.conn()?;
                    conn.call(req)
                })
            }
            other => other,
        }
    }
}

impl Drop for PipelinedEndpoint {
    fn drop(&mut self) {
        // Shut every socket down first (EOFs all readers at once), then
        // join the reader threads.
        let pool = std::mem::take(&mut *self.pool.lock());
        for conn in &pool {
            conn.close();
        }
        for conn in &pool {
            if let Some(handle) = conn.reader.lock().take() {
                let _ = handle.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prune_idle_drops_only_expired_connections() {
        // Entries stamped `base` are past the TTL at pruning time `now`,
        // fresh ones are not.
        let base = Duration::from_secs(100);
        let now = base + IDLE_CONNECTION_TTL + Duration::from_secs(1);
        let mut idle = Vec::new();
        for _ in 0..2 {
            let (a, _b) = UnixStream::pair().unwrap();
            idle.push((a, base));
        }
        for _ in 0..3 {
            let (a, _b) = UnixStream::pair().unwrap();
            idle.push((a, now));
        }
        prune_idle(&mut idle, now);
        assert_eq!(idle.len(), 3);
        assert!(idle.iter().all(|(_, t)| *t == now));
    }

    #[test]
    fn only_idempotent_requests_are_retried() {
        assert!(is_idempotent(&Request::Ping));
        assert!(is_idempotent(&Request::Stats));
        assert!(is_idempotent(&Request::OpenPool { name: "p".into() }));
        assert!(!is_idempotent(&Request::CreatePool {
            name: "p".into(),
            root_size: 4096,
            mode: 0o600,
        }));
        assert!(!is_idempotent(&Request::DropPool { name: "p".into() }));
        assert!(!is_idempotent(&Request::FreePuddle { id: PuddleId(7) }));
    }

    #[test]
    fn transient_errors_are_classified() {
        use std::io::{Error, ErrorKind};
        assert!(is_transient(&Error::new(ErrorKind::BrokenPipe, "x")));
        assert!(is_transient(&Error::new(ErrorKind::UnexpectedEof, "x")));
        assert!(is_transient(&Error::new(ErrorKind::ConnectionRefused, "x")));
        assert!(!is_transient(&Error::new(ErrorKind::InvalidData, "x")));
        assert!(!is_transient(&Error::new(ErrorKind::PermissionDenied, "x")));
    }

    #[test]
    fn spare_capacity_tracks_chain_depth() {
        // Below the floor (chain-free clients, shallow chains).
        assert_eq!(spare_capacity_for(0), SPARE_LOG_CACHE_MIN);
        assert_eq!(spare_capacity_for(1), SPARE_LOG_CACHE_MIN);
        // Tracking observed depth in the adaptive band.
        assert_eq!(spare_capacity_for(3), 3);
        assert_eq!(spare_capacity_for(9), 9);
        // Capped at the ceiling.
        assert_eq!(
            spare_capacity_for(SPARE_LOG_CACHE_MAX + 50),
            SPARE_LOG_CACHE_MAX
        );
    }

    #[test]
    fn retry_policy_backoff_stays_within_bounds() {
        let policy = RetryPolicy::default();
        let mut last_cap = Duration::ZERO;
        for retry in 0..10 {
            let cap = policy
                .base_delay
                .saturating_mul(1u32 << retry.min(16))
                .min(policy.max_delay);
            let delay = policy.backoff_delay(retry);
            // Jittered into [cap/2, cap]: never zero, never past the cap.
            assert!(delay >= cap / 2, "retry {retry}: {delay:?} < {:?}", cap / 2);
            assert!(delay <= cap, "retry {retry}: {delay:?} > {cap:?}");
            assert!(cap >= last_cap, "backoff schedule must not shrink");
            last_cap = cap;
        }
    }

    #[test]
    fn retry_policy_retries_transient_until_success() {
        use std::io::{Error, ErrorKind};
        let policy = RetryPolicy {
            base_delay: Duration::from_micros(10),
            max_delay: Duration::from_micros(50),
            ..RetryPolicy::default()
        };
        let mut calls = 0u32;
        let result = policy.run(|_| {
            calls += 1;
            if calls < 3 {
                Err(Error::new(ErrorKind::BrokenPipe, "flaky"))
            } else {
                Ok(calls)
            }
        });
        assert_eq!(result.unwrap(), 3);
    }

    #[test]
    fn retry_policy_fails_fast_on_non_transient_errors() {
        use std::io::{Error, ErrorKind};
        let policy = RetryPolicy::default();
        let mut calls = 0u32;
        let err = policy
            .run(|_| -> std::io::Result<()> {
                calls += 1;
                Err(Error::new(ErrorKind::PermissionDenied, "no"))
            })
            .unwrap_err();
        assert_eq!(calls, 1);
        assert_eq!(err.kind(), ErrorKind::PermissionDenied);
    }

    #[test]
    fn retry_policy_exhausts_its_attempt_budget() {
        use std::io::{Error, ErrorKind};
        let policy = RetryPolicy {
            max_attempts: 4,
            base_delay: Duration::from_micros(10),
            max_delay: Duration::from_micros(50),
            ..RetryPolicy::default()
        };
        let mut calls = 0u32;
        let err = policy
            .run(|_| -> std::io::Result<()> {
                calls += 1;
                Err(Error::new(ErrorKind::ConnectionReset, "down"))
            })
            .unwrap_err();
        assert_eq!(calls, 4);
        assert_eq!(err.kind(), ErrorKind::ConnectionReset);
    }

    #[test]
    fn retry_policy_respects_its_deadline() {
        use std::io::{Error, ErrorKind};
        // Huge attempt budget but a deadline shorter than one backoff: the
        // policy must stop sleeping and return the last error. Run it on a
        // virtual clock — the whole schedule evaluates in logical time, so
        // the test cannot hang even if the deadline check regresses.
        let clock = Clock::simulated(7);
        let policy = RetryPolicy {
            max_attempts: 1_000,
            base_delay: Duration::from_secs(10),
            max_delay: Duration::from_secs(10),
            deadline: Duration::from_millis(5),
            ..RetryPolicy::default()
        }
        .with_clock(clock.clone());
        let mut calls = 0u32;
        let err = policy
            .run(|_| -> std::io::Result<()> {
                calls += 1;
                Err(Error::new(ErrorKind::BrokenPipe, "down"))
            })
            .unwrap_err();
        assert!(calls < 3, "deadline should cut the schedule short");
        // The first backoff (≥ 5 s jittered) overshoots the 5 ms deadline,
        // so no sleep was ever taken: virtual time did not move.
        assert_eq!(clock.now(), Duration::ZERO);
        assert_eq!(err.kind(), ErrorKind::BrokenPipe);
    }

    #[test]
    fn retry_policy_jitter_replays_from_a_pinned_seed() {
        // Same seed ⇒ identical backoff sequences across instances; a
        // different seed diverges somewhere in the first few draws.
        let a = RetryPolicy::default().with_seed(42);
        let b = RetryPolicy::default().with_seed(42);
        let c = RetryPolicy::default().with_seed(43);
        let seq = |p: &RetryPolicy| (0..8).map(|r| p.backoff_delay(r)).collect::<Vec<_>>();
        let (sa, sb, sc) = (seq(&a), seq(&b), seq(&c));
        assert_eq!(sa, sb, "pinned seed must replay the jitter stream");
        assert_ne!(sa, sc, "distinct seeds should decorrelate");
        // Cloning resets the stream position but keeps the seed.
        assert_eq!(seq(&a.clone()), sa);
    }

    #[test]
    fn busy_frames_map_to_transient_connection_refused() {
        let err = bare_frame_error(Response::Error {
            code: puddles_proto::ErrorCode::Busy,
            message: "cap".into(),
        });
        assert_eq!(err.kind(), std::io::ErrorKind::ConnectionRefused);
        assert!(is_transient(&err));
        // Any other bare frame is a protocol violation, not retryable.
        let err = bare_frame_error(Response::Ok);
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(!is_transient(&err));
    }

    mod pipelined {
        use super::*;
        use proptest::prelude::*;
        use puddles_proto::frame::FrameDecoder;
        use puddles_proto::{frame, RequestEnvelope, ResponseEnvelope};
        use std::io::{Read, Write};

        /// Concurrent pipelined callers on one connection.
        const CALLERS: usize = 8;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            /// Whatever order the server completes requests in, and however
            /// the response bytes are split on the wire, every caller gets
            /// exactly the response carrying its own `req_id` (verified by
            /// echoing each request's pool name in its response).
            #[test]
            fn out_of_order_responses_resolve_to_their_waiters(
                plan in proptest::collection::vec((0u64..1_000_000, 1usize..48), CALLERS..CALLERS + 1)
            ) {
                // Per caller: a completion-order seed and a wire-split size.
                let cuts: Vec<usize> = plan.iter().map(|&(_, cut)| cut).collect();
                // Completion order: argsort of the random seeds.
                let mut order: Vec<usize> = (0..CALLERS).collect();
                order.sort_by_key(|&i| (plan[i].0, i));

                let (client_sock, mut server_sock) = UnixStream::pair().unwrap();
                let conn = PipeConn::over_stream(client_sock).unwrap();

                // Fake daemon: gather every request, then answer them in
                // the permuted order, splitting the byte stream at the
                // arbitrary `cuts` boundaries.
                let server = std::thread::spawn(move || {
                    let mut dec = FrameDecoder::new();
                    let mut buf = [0u8; 4096];
                    let mut reqs: Vec<RequestEnvelope> = Vec::new();
                    while reqs.len() < CALLERS {
                        let n = server_sock.read(&mut buf).unwrap();
                        assert!(n > 0, "client hung up early");
                        dec.feed(&buf[..n]);
                        while let Some(env) = dec.next_frame::<RequestEnvelope>().unwrap() {
                            reqs.push(env);
                        }
                    }
                    let mut bytes = Vec::new();
                    for &i in &order {
                        let env = &reqs[i];
                        let name = match &env.req {
                            Request::OpenPool { name } => name.clone(),
                            other => panic!("unexpected request {other:?}"),
                        };
                        let resp = ResponseEnvelope {
                            req_id: env.req_id,
                            resp: Response::Pool(PoolInfo {
                                name,
                                root_puddle: PuddleId(0),
                                puddles: Vec::new(),
                            }),
                        };
                        bytes.extend_from_slice(&frame::encode_frame(&resp).unwrap());
                    }
                    let mut pos = 0usize;
                    for &cut in &cuts {
                        if pos >= bytes.len() {
                            break;
                        }
                        let end = (pos + cut).min(bytes.len());
                        server_sock.write_all(&bytes[pos..end]).unwrap();
                        pos = end;
                    }
                    server_sock.write_all(&bytes[pos..]).unwrap();
                });

                let mut callers = Vec::new();
                for i in 0..CALLERS {
                    let conn = Arc::clone(&conn);
                    callers.push(std::thread::spawn(move || {
                        let resp = conn
                            .call(&Request::OpenPool {
                                name: format!("pool-{i}"),
                            })
                            .unwrap();
                        match resp {
                            Response::Pool(info) => {
                                assert_eq!(info.name, format!("pool-{i}"))
                            }
                            other => panic!("unexpected response {other:?}"),
                        }
                    }));
                }
                for caller in callers {
                    caller.join().unwrap();
                }
                server.join().unwrap();
                conn.close();
                let handle = conn.reader.lock().take();
                if let Some(handle) = handle {
                    let _ = handle.join();
                }
            }
        }

        /// A scripted daemon on a real socket: handshakes each connection,
        /// then follows per-request directives — answer, or drop the
        /// connection mid-pipeline (after reading the request, before
        /// responding — the window where the client cannot know whether
        /// the daemon applied it). Returns after `conns` connections.
        fn scripted_server(
            socket: std::path::PathBuf,
            conns: usize,
            create_pools_seen: Arc<std::sync::atomic::AtomicUsize>,
            drop_pings: usize,
        ) -> std::thread::JoinHandle<()> {
            use std::sync::atomic::Ordering;
            let listener = std::os::unix::net::UnixListener::bind(&socket).unwrap();
            std::thread::spawn(move || {
                let mut pings_to_drop = drop_pings;
                for _ in 0..conns {
                    let (mut stream, _) = listener.accept().unwrap();
                    let mut magic = [0u8; frame::V2_MAGIC.len()];
                    stream.read_exact(&mut magic).unwrap();
                    assert_eq!(magic, frame::V2_MAGIC);
                    let mut dec = FrameDecoder::new();
                    let mut buf = [0u8; 4096];
                    'conn: loop {
                        let n = match stream.read(&mut buf) {
                            Ok(0) | Err(_) => break 'conn,
                            Ok(n) => n,
                        };
                        dec.feed(&buf[..n]);
                        while let Some(env) = dec.next_frame::<RequestEnvelope>().unwrap() {
                            let resp = match &env.req {
                                Request::Hello { .. } => Response::Welcome {
                                    space_base: 0x5000_0000_0000,
                                    space_size: 1 << 30,
                                    max_in_flight: 64,
                                    pool_depth: 1,
                                },
                                Request::Ping if pings_to_drop > 0 => {
                                    pings_to_drop -= 1;
                                    break 'conn;
                                }
                                Request::Ping => Response::Ok,
                                Request::CreatePool { .. } => {
                                    create_pools_seen.fetch_add(1, Ordering::SeqCst);
                                    break 'conn;
                                }
                                other => panic!("unexpected request {other:?}"),
                            };
                            let env = ResponseEnvelope {
                                req_id: env.req_id,
                                resp,
                            };
                            stream
                                .write_all(&frame::encode_frame(&env).unwrap())
                                .unwrap();
                        }
                    }
                }
            })
        }

        fn fast_retry() -> RetryPolicy {
            RetryPolicy {
                max_attempts: 4,
                base_delay: Duration::from_micros(100),
                max_delay: Duration::from_millis(2),
                deadline: Duration::from_secs(2),
                ..RetryPolicy::default()
            }
        }

        /// A non-idempotent request whose connection dies mid-pipeline is
        /// NEVER blindly re-sent: the daemon may already have applied it,
        /// and a re-send could create the pool twice (or re-free a
        /// puddle). The error surfaces to the caller instead — and the
        /// endpoint still reconnects fine for the *next* call.
        #[test]
        fn non_idempotent_requests_are_not_resent_after_a_mid_pipeline_drop() {
            use std::sync::atomic::Ordering;
            let tmp = tempfile::tempdir().unwrap();
            let socket = tmp.path().join("scripted.sock");
            let creates = Arc::new(std::sync::atomic::AtomicUsize::new(0));
            let server = scripted_server(socket.clone(), 2, Arc::clone(&creates), 0);

            let ep = PipelinedEndpoint::new(&socket, fast_retry());
            let err = ep
                .call(&Request::CreatePool {
                    name: "once".into(),
                    root_size: 4096,
                    mode: 0o600,
                })
                .unwrap_err();
            assert!(is_transient(&err), "drop should surface as transport loss");
            // The endpoint recovers on a fresh connection for idempotent
            // work...
            assert!(matches!(ep.call(&Request::Ping), Ok(Response::Ok)));
            // ...but the create was sent exactly once, ever.
            assert_eq!(creates.load(Ordering::SeqCst), 1);
            drop(ep);
            server.join().unwrap();
        }

        /// Idempotent requests lost mid-pipeline ARE re-sent on a fresh
        /// connection under the backoff policy, invisibly to the caller.
        #[test]
        fn idempotent_requests_are_resent_after_a_mid_pipeline_drop() {
            let tmp = tempfile::tempdir().unwrap();
            let socket = tmp.path().join("scripted.sock");
            let creates = Arc::new(std::sync::atomic::AtomicUsize::new(0));
            let server = scripted_server(socket.clone(), 2, Arc::clone(&creates), 1);

            let ep = PipelinedEndpoint::new(&socket, fast_retry());
            // First Ping's connection is dropped mid-pipeline; the retry
            // plane re-dials and re-sends without the caller noticing.
            assert!(matches!(ep.call(&Request::Ping), Ok(Response::Ok)));
            drop(ep);
            server.join().unwrap();
        }

        /// A response whose id matches no waiter is a protocol violation:
        /// the connection dies and parked callers fail instead of hanging.
        #[test]
        fn unknown_req_id_kills_the_connection() {
            let (client_sock, mut server_sock) = UnixStream::pair().unwrap();
            let conn = PipeConn::over_stream(client_sock).unwrap();
            let server = std::thread::spawn(move || {
                let mut dec = FrameDecoder::new();
                let mut buf = [0u8; 4096];
                let env = loop {
                    let n = server_sock.read(&mut buf).unwrap();
                    dec.feed(&buf[..n]);
                    if let Some(env) = dec.next_frame::<RequestEnvelope>().unwrap() {
                        break env;
                    }
                };
                let resp = ResponseEnvelope {
                    req_id: env.req_id.wrapping_add(1000),
                    resp: Response::Ok,
                };
                server_sock
                    .write_all(&frame::encode_frame(&resp).unwrap())
                    .unwrap();
                server_sock
            });
            let err = conn.call(&Request::Ping).unwrap_err();
            assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
            assert!(conn.is_dead());
            drop(server.join().unwrap());
            let handle = conn.reader.lock().take();
            if let Some(handle) = handle {
                let _ = handle.join();
            }
        }
    }
}
