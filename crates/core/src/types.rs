//! Persistent type descriptions and pointer maps (§4.2 "Pointer maps").
//!
//! To relocate data, the Puddles system must be able to *find* every pointer
//! in a puddle. The paper attaches a 64-bit type id to every allocation and
//! registers, per type, a *pointer map*: the offsets of the pointer fields
//! inside objects of that type. C++ derives the id from `typeid()`; Rust has
//! no equivalent reflection, so persistent types implement the [`PmType`]
//! trait (usually through the [`impl_pm_type!`] macro), declaring a stable
//! type name and the pointer-field offsets via `core::mem::offset_of!`.

use puddles_pmem::checksum::type_id_for_name;
use puddles_proto::{PtrField, PtrMapDecl};

/// A type that can be stored in a puddle and participates in relocation.
///
/// # Examples
///
/// ```
/// use puddles::{impl_pm_type, PmPtr, PmType};
///
/// #[repr(C)]
/// struct Node {
///     value: u64,
///     next: PmPtr<Node>,
/// }
/// impl_pm_type!(Node, "example::Node", [next => Node]);
///
/// assert_eq!(Node::pointer_fields().len(), 1);
/// assert_eq!(Node::pointer_fields()[0].offset, 8);
/// ```
pub trait PmType: Sized + 'static {
    /// Stable, globally unique name of the type (include a namespace; the
    /// 64-bit type id is a hash of this string).
    const TYPE_NAME: &'static str;

    /// Offsets of the pointer fields inside the type.
    fn pointer_fields() -> Vec<PtrField>;

    /// The 64-bit persistent type id.
    fn type_id() -> u64 {
        type_id_for_name(Self::TYPE_NAME)
    }

    /// The pointer-map declaration registered with the daemon.
    fn decl() -> PtrMapDecl {
        PtrMapDecl {
            type_id: Self::type_id(),
            type_name: Self::TYPE_NAME.to_string(),
            size: std::mem::size_of::<Self>() as u64,
            fields: Self::pointer_fields(),
        }
    }
}

/// Type id used for raw, pointer-free allocations (byte buffers).
pub const UNTYPED_TYPE_ID: u64 = 0;

/// Implements [`PmType`] for an existing `#[repr(C)]` struct.
///
/// The third argument lists the struct's pointer fields and the types they
/// point to: `[next => Node, left => Tree]`. Use `[]` for pointer-free
/// types.
///
/// # Examples
///
/// ```
/// use puddles::{impl_pm_type, PmPtr, PmType};
///
/// #[repr(C)]
/// struct Pair {
///     a: PmPtr<u64>,
///     b: PmPtr<u64>,
///     tag: u64,
/// }
/// impl_pm_type!(Pair, "example::Pair", [a => (), b => ()]);
/// assert_eq!(Pair::pointer_fields().len(), 2);
///
/// #[repr(C)]
/// struct Flat {
///     x: u64,
/// }
/// impl_pm_type!(Flat, "example::Flat", []);
/// assert!(Flat::pointer_fields().is_empty());
/// ```
#[macro_export]
macro_rules! impl_pm_type {
    ($ty:ty, $name:expr, []) => {
        impl $crate::PmType for $ty {
            const TYPE_NAME: &'static str = $name;
            fn pointer_fields() -> Vec<$crate::puddles_proto::PtrField> {
                Vec::new()
            }
        }
    };
    ($ty:ty, $name:expr, [$($field:ident => $target:tt),+ $(,)?]) => {
        impl $crate::PmType for $ty {
            const TYPE_NAME: &'static str = $name;
            fn pointer_fields() -> Vec<$crate::puddles_proto::PtrField> {
                vec![
                    $(
                        $crate::puddles_proto::PtrField {
                            offset: ::core::mem::offset_of!($ty, $field) as u64,
                            target_type: $crate::impl_pm_type!(@target $target),
                        }
                    ),+
                ]
            }
        }
    };
    (@target ()) => {
        $crate::types::UNTYPED_TYPE_ID
    };
    (@target $target:ty) => {
        <$target as $crate::PmType>::type_id()
    };
}

/// A volatile registry of the pointer maps known to this process, merged
/// from locally declared types and maps fetched from the daemon (needed to
/// rewrite imported data whose types this application never declared).
#[derive(Debug, Default, Clone)]
pub struct TypeRegistry {
    maps: std::collections::HashMap<u64, PtrMapDecl>,
}

impl TypeRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or replaces) a pointer map.
    pub fn insert(&mut self, decl: PtrMapDecl) {
        self.maps.insert(decl.type_id, decl);
    }

    /// Adds a locally declared type.
    pub fn insert_type<T: PmType>(&mut self) {
        self.insert(T::decl());
    }

    /// Looks up the pointer map for a type id.
    pub fn get(&self, type_id: u64) -> Option<&PtrMapDecl> {
        self.maps.get(&type_id)
    }

    /// Returns the number of registered maps.
    pub fn len(&self) -> usize {
        self.maps.len()
    }

    /// Returns `true` if no maps are registered.
    pub fn is_empty(&self) -> bool {
        self.maps.is_empty()
    }

    /// Merges every map from `other` into `self`.
    pub fn merge(&mut self, other: impl IntoIterator<Item = PtrMapDecl>) {
        for decl in other {
            self.insert(decl);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PmPtr;

    #[repr(C)]
    struct ListNode {
        value: u64,
        next: PmPtr<ListNode>,
    }
    impl_pm_type!(ListNode, "tests::ListNode", [next => ListNode]);

    #[repr(C)]
    struct TreeNode {
        key: u64,
        left: PmPtr<TreeNode>,
        right: PmPtr<TreeNode>,
        payload: PmPtr<u8>,
    }
    impl_pm_type!(
        TreeNode,
        "tests::TreeNode",
        [left => TreeNode, right => TreeNode, payload => ()]
    );

    #[repr(C)]
    struct Plain {
        a: u64,
        b: u64,
    }
    impl_pm_type!(Plain, "tests::Plain", []);

    #[test]
    fn type_ids_are_stable_hashes_of_names() {
        assert_eq!(
            ListNode::type_id(),
            puddles_pmem::checksum::type_id_for_name("tests::ListNode")
        );
        assert_ne!(ListNode::type_id(), TreeNode::type_id());
        assert_ne!(ListNode::type_id(), UNTYPED_TYPE_ID);
    }

    #[test]
    fn pointer_fields_report_correct_offsets() {
        let fields = ListNode::pointer_fields();
        assert_eq!(fields.len(), 1);
        assert_eq!(fields[0].offset, 8);
        assert_eq!(fields[0].target_type, ListNode::type_id());

        let fields = TreeNode::pointer_fields();
        assert_eq!(fields.len(), 3);
        assert_eq!(fields[0].offset, 8);
        assert_eq!(fields[1].offset, 16);
        assert_eq!(fields[2].offset, 24);
        assert_eq!(fields[2].target_type, UNTYPED_TYPE_ID);

        assert!(Plain::pointer_fields().is_empty());
    }

    #[test]
    fn decl_carries_size_and_name() {
        let decl = TreeNode::decl();
        assert_eq!(decl.size, std::mem::size_of::<TreeNode>() as u64);
        assert_eq!(decl.type_name, "tests::TreeNode");
    }

    #[test]
    fn registry_merges_and_looks_up() {
        let mut reg = TypeRegistry::new();
        assert!(reg.is_empty());
        reg.insert_type::<ListNode>();
        reg.insert_type::<TreeNode>();
        assert_eq!(reg.len(), 2);
        assert!(reg.get(ListNode::type_id()).is_some());
        assert!(reg.get(0xdead).is_none());

        let mut other = TypeRegistry::new();
        other.insert_type::<Plain>();
        reg.merge(other.maps.values().cloned().collect::<Vec<_>>());
        assert_eq!(reg.len(), 3);
    }
}
