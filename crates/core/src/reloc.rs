//! Incremental pointer rewriting for relocated puddles (§4.2).
//!
//! When a puddle is mapped at an address other than the one its pointers
//! were written for (an imported copy, data shipped from another machine, or
//! a global space whose base moved), every pointer inside it must be
//! rewritten before the application dereferences it. The daemon records the
//! old→new address translations; this module walks the puddle's live
//! objects (via the allocator metadata), uses the registered pointer maps to
//! find each pointer field, and patches the values in place.
//!
//! Rewriting happens per puddle, when the puddle is first mapped — the
//! "cascading, on-demand" rewrite of the paper: mapping the root puddle
//! rewrites only its own pointers; the puddles those pointers lead to are
//! rewritten when they are mapped in turn.

use crate::alloc::PuddleAlloc;
use crate::types::TypeRegistry;
use puddles_pmem::persist;
use puddles_proto::Translation;

/// Statistics from one puddle rewrite pass.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RewriteStats {
    /// Objects examined.
    pub objects: usize,
    /// Pointer fields examined.
    pub pointers: usize,
    /// Pointer fields whose value was changed.
    pub rewritten: usize,
    /// Pointer fields whose value did not match any translation (left
    /// untouched; typically null or already-local pointers).
    pub untranslated: usize,
}

/// Rewrites every pointer in the puddle managed by `alloc` according to
/// `translations`, using `types` to locate pointer fields.
pub fn rewrite_puddle(
    alloc: &PuddleAlloc,
    translations: &[Translation],
    types: &TypeRegistry,
) -> RewriteStats {
    let mut stats = RewriteStats::default();
    for obj in alloc.walk() {
        stats.objects += 1;
        let Some(map) = types.get(obj.type_id) else {
            continue;
        };
        for field in &map.fields {
            let off = field.offset as usize;
            if off + 8 > obj.size {
                continue;
            }
            stats.pointers += 1;
            let slot = (obj.addr + off) as *mut u64;
            // SAFETY: `obj.addr` comes from the allocator walk of a mapped,
            // writable puddle and `off + 8 <= obj.size`, so the slot lies
            // inside the live object.
            let value = unsafe { std::ptr::read_unaligned(slot) };
            if value == 0 {
                continue;
            }
            match translations.iter().find_map(|t| t.translate(value)) {
                Some(new_value) if new_value != value => {
                    // SAFETY: as above; the slot is writable.
                    unsafe { std::ptr::write_unaligned(slot, new_value) };
                    persist::flush(slot as *const u8, 8);
                    stats.rewritten += 1;
                }
                Some(_) => {}
                None => stats.untranslated += 1,
            }
        }
        if puddles_pmem::failpoint::should_fail(puddles_pmem::failpoint::names::RELOC_MID_REWRITE) {
            // A crash here leaves some pointers rewritten and some not; the
            // daemon still has the puddle flagged `needs_rewrite`, so the
            // rewrite re-runs (idempotently) on the next mapping.
            break;
        }
    }
    persist::sfence();
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alloc::NoLog;
    use crate::types::PmType;
    use crate::{impl_pm_type, PmPtr};

    #[repr(C)]
    struct Node {
        value: u64,
        next: PmPtr<Node>,
        other: PmPtr<Node>,
    }
    impl_pm_type!(Node, "reloc_tests::Node", [next => Node, other => Node]);

    struct Heap {
        #[allow(dead_code)]
        buf: Vec<u8>,
        alloc: PuddleAlloc,
    }

    fn heap() -> Heap {
        let mut buf = vec![0u8; 1 << 20];
        // SAFETY: buf outlives the allocator and its backing storage is
        // stable.
        let alloc = unsafe { PuddleAlloc::new(buf.as_mut_ptr() as usize, 1 << 20) };
        alloc.init();
        Heap { buf, alloc }
    }

    fn registry() -> TypeRegistry {
        let mut reg = TypeRegistry::new();
        reg.insert_type::<Node>();
        reg
    }

    #[test]
    fn pointers_matching_a_translation_are_rewritten() {
        let h = heap();
        let a = h
            .alloc
            .alloc(std::mem::size_of::<Node>(), Node::type_id(), &mut NoLog)
            .unwrap();
        let b = h
            .alloc
            .alloc(std::mem::size_of::<Node>(), Node::type_id(), &mut NoLog)
            .unwrap();
        // Write pointers as if the puddle lived at old base 0x1000_0000.
        let old_base = 0x1000_0000u64;
        // SAFETY: `a` and `b` are valid allocations of Node size.
        unsafe {
            (*(a as *mut Node)).value = 1;
            (*(a as *mut Node)).next = PmPtr::from_addr(old_base + 0x500);
            (*(a as *mut Node)).other = PmPtr::null();
            (*(b as *mut Node)).value = 2;
            (*(b as *mut Node)).next = PmPtr::from_addr(old_base + 0x1000);
            (*(b as *mut Node)).other = PmPtr::from_addr(0xdead_0000); // outside translation
        }
        let translations = [Translation {
            old_addr: old_base,
            new_addr: 0x7000_0000,
            len: 0x10_0000,
        }];
        let stats = rewrite_puddle(&h.alloc, &translations, &registry());
        assert_eq!(stats.objects, 2);
        assert_eq!(stats.rewritten, 2);
        assert_eq!(stats.untranslated, 1);
        // SAFETY: as above.
        unsafe {
            assert_eq!((*(a as *const Node)).next.addr(), 0x7000_0500);
            assert!((*(a as *const Node)).other.is_null());
            assert_eq!((*(b as *const Node)).next.addr(), 0x7000_1000);
            assert_eq!((*(b as *const Node)).other.addr(), 0xdead_0000);
        }
    }

    #[test]
    fn rewrite_is_idempotent() {
        let h = heap();
        let a = h
            .alloc
            .alloc(std::mem::size_of::<Node>(), Node::type_id(), &mut NoLog)
            .unwrap();
        // SAFETY: valid allocation.
        unsafe {
            (*(a as *mut Node)).next = PmPtr::from_addr(0x1000_0100);
        }
        let translations = [Translation {
            old_addr: 0x1000_0000,
            new_addr: 0x2000_0000,
            len: 0x1000,
        }];
        let reg = registry();
        let s1 = rewrite_puddle(&h.alloc, &translations, &reg);
        assert_eq!(s1.rewritten, 1);
        // Second pass: the pointer now points outside the old range, so it
        // is untranslated and unchanged.
        let s2 = rewrite_puddle(&h.alloc, &translations, &reg);
        assert_eq!(s2.rewritten, 0);
        // SAFETY: valid allocation.
        unsafe {
            assert_eq!((*(a as *const Node)).next.addr(), 0x2000_0100);
        }
    }

    #[test]
    fn unknown_types_are_skipped() {
        let h = heap();
        let a = h.alloc.alloc(64, 0xdead_beef, &mut NoLog).unwrap();
        // SAFETY: valid 64-byte allocation.
        unsafe {
            std::ptr::write_unaligned(a as *mut u64, 0x1000_0000);
        }
        let translations = [Translation {
            old_addr: 0x1000_0000,
            new_addr: 0x9000_0000,
            len: 0x1000,
        }];
        let stats = rewrite_puddle(&h.alloc, &translations, &registry());
        assert_eq!(stats.objects, 1);
        assert_eq!(stats.pointers, 0);
        // SAFETY: as above.
        unsafe {
            assert_eq!(std::ptr::read_unaligned(a as *const u64), 0x1000_0000);
        }
    }

    #[test]
    fn interrupted_rewrite_can_resume() {
        let h = heap();
        let reg = registry();
        let mut addrs = Vec::new();
        for _ in 0..4 {
            let a = h
                .alloc
                .alloc(std::mem::size_of::<Node>(), Node::type_id(), &mut NoLog)
                .unwrap();
            // SAFETY: valid allocation.
            unsafe {
                (*(a as *mut Node)).next = PmPtr::from_addr(0x4000_0010);
            }
            addrs.push(a);
        }
        let translations = [Translation {
            old_addr: 0x4000_0000,
            new_addr: 0x8000_0000,
            len: 0x1000,
        }];
        puddles_pmem::failpoint::arm(puddles_pmem::failpoint::names::RELOC_MID_REWRITE, 1);
        let s1 = rewrite_puddle(&h.alloc, &translations, &reg);
        puddles_pmem::failpoint::clear_all();
        assert!(s1.rewritten < 4, "crash should interrupt the rewrite");
        // Resume: the remaining pointers get rewritten; already-rewritten
        // ones are untouched (their values no longer match the old range).
        let s2 = rewrite_puddle(&h.alloc, &translations, &reg);
        assert_eq!(s1.rewritten + s2.rewritten, 4);
        for a in addrs {
            // SAFETY: valid allocation.
            unsafe {
                assert_eq!((*(a as *const Node)).next.addr(), 0x8000_0010);
            }
        }
    }
}
