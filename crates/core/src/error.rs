//! Error type for the Puddles client library.

use puddles_pmem::PmError;
use puddles_proto::ProtoError;
use std::fmt;
use std::io;

/// Result alias for client-library operations.
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by the Puddles client library.
#[derive(Debug)]
pub enum Error {
    /// An error from the persistent-memory substrate.
    Pm(PmError),
    /// The daemon rejected a request.
    Daemon(ProtoError),
    /// Transport-level I/O failure while talking to the daemon.
    Io(io::Error),
    /// The daemon returned a response of an unexpected kind.
    UnexpectedResponse(String),
    /// A pool or puddle ran out of space and could not grow.
    OutOfMemory(String),
    /// The transaction's log could not grow any further: the daemon refused
    /// to supply another log puddle for chaining (or a single entry exceeds
    /// a whole segment). A merely full segment never surfaces as this error
    /// — the transaction chains a fresh log puddle and keeps going.
    TxTooLarge {
        /// Bytes the rejected log entry would occupy.
        need: usize,
        /// Bytes still free in the transaction's active log segment.
        free: usize,
    },
    /// The requested object or address does not belong to this pool.
    InvalidAddress(u64),
    /// Persistent data failed a validity check.
    Corruption(String),
    /// A crash was injected by a failpoint (tests only); persistent state is
    /// intentionally left as-is for recovery.
    CrashInjected(&'static str),
    /// A transaction was aborted by the user closure.
    Aborted(String),
    /// Transactions cannot be nested.
    NestedTransaction,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Pm(e) => write!(f, "persistent memory error: {e}"),
            Error::Daemon(e) => write!(f, "{e}"),
            Error::Io(e) => write!(f, "daemon transport error: {e}"),
            Error::UnexpectedResponse(msg) => write!(f, "unexpected daemon response: {msg}"),
            Error::OutOfMemory(msg) => write!(f, "out of persistent memory: {msg}"),
            Error::TxTooLarge { need, free } => write!(
                f,
                "transaction too large: log entry needs {need} B but only {free} B remain in the log"
            ),
            Error::InvalidAddress(addr) => write!(f, "address {addr:#x} is not managed here"),
            Error::Corruption(msg) => write!(f, "corruption detected: {msg}"),
            Error::CrashInjected(name) => write!(f, "crash injected at failpoint `{name}`"),
            Error::Aborted(msg) => write!(f, "transaction aborted: {msg}"),
            Error::NestedTransaction => write!(f, "transactions cannot be nested"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Pm(e) => Some(e),
            Error::Daemon(e) => Some(e),
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<PmError> for Error {
    fn from(e: PmError) -> Self {
        match e {
            PmError::CrashInjected(name) => Error::CrashInjected(name),
            // LogFull is an internal chain-extension signal, not a failure:
            // the transaction layer intercepts it and grows the log. It is
            // deliberately NOT mapped to TxTooLarge — that error is raised
            // only when the daemon refuses another log puddle.
            other => Error::Pm(other),
        }
    }
}

impl From<ProtoError> for Error {
    fn from(e: ProtoError) -> Self {
        Error::Daemon(e)
    }
}

impl From<io::Error> for Error {
    fn from(e: io::Error) -> Self {
        Error::Io(e)
    }
}

impl Error {
    /// Returns `true` if this error represents an injected crash, in which
    /// case persistent state must be left untouched for recovery.
    pub fn is_injected_crash(&self) -> bool {
        matches!(self, Error::CrashInjected(_))
            || matches!(self, Error::Pm(PmError::CrashInjected(_)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crash_injection_is_detected_through_conversions() {
        let e: Error = PmError::CrashInjected("x").into();
        assert!(e.is_injected_crash());
        let e: Error = PmError::Corruption("y".into()).into();
        assert!(!e.is_injected_crash());
    }

    #[test]
    fn display_formats_are_informative() {
        let e = Error::InvalidAddress(0x1234);
        assert!(e.to_string().contains("0x1234"));
        let e = Error::OutOfMemory("pool q".into());
        assert!(e.to_string().contains("pool q"));
        let e = Error::TxTooLarge {
            need: 4096,
            free: 128,
        };
        assert!(e.to_string().contains("transaction too large"));
    }

    #[test]
    fn log_full_is_not_tx_too_large() {
        // LogFull is the chain-extension signal; the conversion must keep it
        // a Pm error so only the transaction layer (when the daemon refuses
        // another log puddle) ever constructs TxTooLarge.
        let e: Error = PmError::LogFull {
            need: 100,
            free: 10,
        }
        .into();
        assert!(matches!(e, Error::Pm(PmError::LogFull { .. })));
    }
}
