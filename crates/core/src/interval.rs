//! A small interval set over byte addresses, used by transactions to
//! deduplicate undo logging.
//!
//! `TX_ADD`-style APIs are routinely called for the same location many
//! times per transaction (a B-tree node is re-logged on every key shifted
//! within it). Only the *first* touch needs an undo entry — it already
//! captures the pre-transaction bytes, and reverse-order replay applies it
//! last, so later entries for the same range are pure overhead. The
//! transaction records every undo-logged `[start, end)` range here and
//! skips the append when a range is already fully covered.
//!
//! The same set drives commit stage 1: the merged, sorted spans are what
//! must be flushed, and sorting lets the flush loop skip cache lines shared
//! with the previous span.

/// A set of disjoint, sorted `[start, end)` byte intervals.
///
/// Inserts merge overlapping *and adjacent* intervals, so the span list
/// stays short for the common access patterns (sequential field logging,
/// repeated re-logging of one node).
#[derive(Debug, Default, Clone)]
pub struct IntervalSet {
    /// Sorted by `start`; pairwise disjoint and non-adjacent.
    spans: Vec<(u64, u64)>,
}

impl IntervalSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        IntervalSet::default()
    }

    /// Number of disjoint spans currently in the set.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Returns `true` if the set contains no spans.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Removes every span.
    pub fn clear(&mut self) {
        self.spans.clear();
    }

    /// Returns `true` if `[start, start + len)` is entirely covered by one
    /// existing span. Zero-length ranges are trivially covered.
    pub fn covers(&self, start: u64, len: u64) -> bool {
        if len == 0 {
            return true;
        }
        let end = start.saturating_add(len);
        // The only candidate is the last span starting at or before `start`
        // (spans are disjoint, so a covering span must start <= start).
        match self.spans.partition_point(|&(s, _)| s <= start) {
            0 => false,
            i => {
                let (_, span_end) = self.spans[i - 1];
                end <= span_end
            }
        }
    }

    /// Inserts `[start, start + len)`, merging it with every overlapping or
    /// adjacent span.
    pub fn insert(&mut self, start: u64, len: u64) {
        if len == 0 {
            return;
        }
        let mut new_start = start;
        let mut new_end = start.saturating_add(len);
        // First span that could interact: the last one starting before the
        // new range (it may swallow or abut it), else the insert position.
        let mut i = self.spans.partition_point(|&(s, _)| s < new_start);
        if i > 0 && self.spans[i - 1].1 >= new_start {
            i -= 1;
        }
        // Consume every span that overlaps or abuts the growing range.
        let mut j = i;
        while j < self.spans.len() && self.spans[j].0 <= new_end {
            new_start = new_start.min(self.spans[j].0);
            new_end = new_end.max(self.spans[j].1);
            j += 1;
        }
        self.spans.splice(i..j, [(new_start, new_end)]);
    }

    /// Iterates the disjoint spans as `(start, end)` pairs in address order.
    pub fn spans(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.spans.iter().copied()
    }

    /// Total bytes covered.
    pub fn covered_bytes(&self) -> u64 {
        self.spans.iter().map(|&(s, e)| e - s).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_set_covers_nothing_but_zero_length() {
        let set = IntervalSet::new();
        assert!(set.is_empty());
        assert!(!set.covers(0, 1));
        assert!(set.covers(123, 0));
    }

    #[test]
    fn exact_relog_is_covered() {
        let mut set = IntervalSet::new();
        set.insert(0x100, 64);
        assert!(set.covers(0x100, 64));
        assert!(set.covers(0x110, 16));
        assert!(!set.covers(0x100, 65));
        assert!(!set.covers(0xFF, 2));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn adjacent_and_overlapping_inserts_merge() {
        let mut set = IntervalSet::new();
        set.insert(0, 8);
        set.insert(8, 8); // adjacent
        assert_eq!(set.len(), 1);
        assert!(set.covers(0, 16));
        set.insert(32, 8);
        assert_eq!(set.len(), 2);
        set.insert(12, 24); // bridges both spans
        assert_eq!(set.len(), 1);
        assert!(set.covers(0, 40));
        assert_eq!(set.covered_bytes(), 40);
    }

    #[test]
    fn insert_before_existing_spans_keeps_order() {
        let mut set = IntervalSet::new();
        set.insert(100, 10);
        set.insert(10, 5);
        let spans: Vec<_> = set.spans().collect();
        assert_eq!(spans, vec![(10, 15), (100, 110)]);
        assert!(set.covers(10, 5));
        assert!(!set.covers(10, 91));
    }

    #[test]
    fn clear_empties_the_set() {
        let mut set = IntervalSet::new();
        set.insert(4, 4);
        set.clear();
        assert!(set.is_empty());
        assert!(!set.covers(4, 4));
    }

    mod properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(128))]

            /// Dedup safety: after any sequence of inserts, every inserted
            /// range is covered (a first-touch undo range is never dropped),
            /// and `covers` answered `false` the first time any byte of a
            /// range was new.
            #[test]
            fn first_touch_is_never_dropped(ranges in proptest::collection::vec((0u64..512, 1u64..64), 1..60)) {
                let mut set = IntervalSet::new();
                let mut touched = vec![false; 1024];
                for &(start, len) in &ranges {
                    let any_new = (start..start + len).any(|b| !touched[b as usize]);
                    // `covers` may only say "skip the log append" when every
                    // byte has already been captured by an earlier insert.
                    prop_assert_eq!(set.covers(start, len), !any_new);
                    if any_new {
                        set.insert(start, len);
                        for b in start..start + len {
                            touched[b as usize] = true;
                        }
                    }
                    // Everything ever inserted stays covered.
                    for &(s, l) in &ranges {
                        if (s..s + l).all(|b| touched[b as usize]) {
                            prop_assert!(set.covers(s, l));
                        }
                    }
                }
            }

            /// Structural invariants: spans are sorted, disjoint and
            /// non-adjacent, and coverage matches a bitmap oracle.
            #[test]
            fn spans_stay_sorted_disjoint_and_match_oracle(ranges in proptest::collection::vec((0u64..512, 0u64..64), 0..60)) {
                let mut set = IntervalSet::new();
                let mut oracle = vec![false; 1024];
                for &(start, len) in &ranges {
                    set.insert(start, len);
                    for b in start..start + len {
                        oracle[b as usize] = true;
                    }
                }
                let spans: Vec<_> = set.spans().collect();
                for w in spans.windows(2) {
                    prop_assert!(w[0].1 < w[1].0, "spans {w:?} overlap or abut");
                }
                for (b, &t) in oracle.iter().enumerate() {
                    prop_assert_eq!(set.covers(b as u64, 1), t, "byte {}", b);
                }
                prop_assert_eq!(set.covered_bytes(), oracle.iter().filter(|&&t| t).count() as u64);
            }
        }
    }
}
