//! Deterministic torture harness: seeded fault injection + kill/restart
//! cycles + invariant checking, end to end.
//!
//! One trial = one `TORTURE_SEED`. The seed derives *everything* random in
//! the trial — the daemon's [`FaultPlan`] (short/torn writes, injected
//! EIO/ENOSPC, dropped fsyncs), the per-client workload mix, the kill
//! schedule, retry jitter, and (in the default deterministic mode) the
//! *interleaving*: the trial runs on a seeded [`VirtualClock`] and a
//! cooperative scheduler ([`CoopSched`]) that grants exactly one client
//! thread the right to run between explicit yield points at daemon round
//! trips. Two runs of the same seed therefore replay the same fault trace
//! and the same operation history, byte for byte — a failing seed
//! reproduces from the printed number alone.
//!
//! Setting [`TortureConfig::deterministic`] to `false` restores the
//! free-running wall-clock harness: client threads race for real, the kill
//! schedule is a timed fuse, and connection resets ([`FaultProfile::
//! conn_reset_ppm`]) are live. Deterministic runs zero `conn_reset_ppm`:
//! reset decisions are drawn per kernel socket event, and the *number* of
//! socket events per request depends on kernel timing, so they cannot be
//! replayed. Wall-clock mode is where reset coverage lives.
//!
//! A trial runs several *phases*. Each phase starts the daemon and its UDS
//! server, unleashes `clients` threads doing a mixed workload (counter
//! transactions on a per-client pool, ephemeral pool create/drop, stats and
//! reads), then tears the daemon down — either gracefully after the clients
//! finish, or abruptly mid-work on seeds that schedule a kill (after a
//! seeded number of scheduler yields in deterministic mode, after a seeded
//! number of milliseconds in wall-clock mode). Between phases the harness
//! restarts the daemon with faults quiesced, runs recovery, and checks:
//!
//! * the shared structural layer — [`puddled::Invariants`]: registry /
//!   allocator consistency, no overlapping or leaked extents, no orphaned
//!   puddles or log chains;
//! * **committed-or-rolled-back visibility** — every pool whose creation
//!   was *acknowledged* exists, every acknowledged drop stays dropped, and
//!   each client counter holds a value between the highest acknowledged
//!   and the highest attempted write (operations whose acknowledgement was
//!   lost to an injected fault may land either way — but never partially).
//!
//! Faults are disabled during recovery + verification ([`FaultPlan`]
//! `set_enabled(false)`): the fault plane models failing *production*
//! I/O, and verifying through an unreliable lens would make every check
//! vacuous. Recovery-under-fault is covered separately by the failpoint
//! crash tests (`wal_crash`, `crash_sweep`).
//!
//! Consumed by `crates/puddled/tests/torture.rs` (bounded in-tree sweep +
//! the same-seed replay gate) and the `torture_sweep` bench binary (deep
//! CI sweeps, `--replay-check` determinism gate).
//!
//! [`VirtualClock`]: puddles_pmem::clock::VirtualClock

use crate::{PoolOptions, PuddleClient, RetryPolicy};
use puddled::{Daemon, DaemonConfig, Invariants, UdsServer};
use puddles_pmem::clock::Clock;
use puddles_pmem::faultio::{FaultPlan, FaultProfile};
use puddles_pmem::obs::Metrics;
use serde::Serialize;
use std::collections::BTreeSet;

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// The persistent root of each client's counter pool.
#[repr(C)]
struct TortureCounter {
    value: u64,
}
crate::impl_pm_type!(TortureCounter, "torture::Counter", []);

/// Everything one torture trial needs; derived from the seed by
/// [`TortureConfig::from_seed`], overridable for focused tests.
#[derive(Debug, Clone)]
pub struct TortureConfig {
    /// The trial seed — drives the fault plan, workload, kill schedule,
    /// virtual clock, and client interleaving.
    pub seed: u64,
    /// Concurrent client threads per phase.
    pub clients: usize,
    /// Daemon start → teardown cycles (each ends in recovery + checks).
    pub phases: usize,
    /// Operations each client attempts per phase.
    pub ops_per_client: usize,
    /// Fault probabilities for the daemon's I/O plane.
    pub profile: FaultProfile,
    /// `true` (the default): run on a seeded virtual clock under the
    /// cooperative scheduler, so the seed replays the exact execution.
    /// `false`: free-running threads on the wall clock — more concurrency
    /// stress (and live connection resets), no replay guarantee.
    pub deterministic: bool,
}

impl TortureConfig {
    /// Derives a trial configuration from its seed: 2–4 clients, 2–3
    /// phases, 20–51 ops per client, transient fault rates of 10k–50k ppm
    /// with a pinch of ENOSPC and connection resets on some seeds.
    pub fn from_seed(seed: u64) -> TortureConfig {
        let mut r = Splitmix(seed ^ 0x7073_7465_7374_5f61);
        let transient = 10_000 + (r.next() % 40_000) as u32;
        let mut profile = FaultProfile::transient(transient);
        // One trial in four injects ENOSPC (rare: each occurrence poisons
        // the WAL until the next restart, so more would starve the phase).
        if r.next().is_multiple_of(4) {
            profile.write_enospc_ppm = 200;
        }
        // One in two injects connection resets (wall-clock mode only; the
        // deterministic harness zeroes this, see the module docs).
        if r.next().is_multiple_of(2) {
            profile.conn_reset_ppm = 2_000 + (r.next() % 8_000) as u32;
        }
        TortureConfig {
            seed,
            clients: 2 + (r.next() % 3) as usize,
            phases: 2 + (r.next() % 2) as usize,
            ops_per_client: 20 + (r.next() % 32) as usize,
            profile,
            deterministic: true,
        }
    }
}

/// A passed trial's summary (what the fault plane actually did).
#[derive(Debug)]
pub struct TortureReport {
    /// The trial seed.
    pub seed: u64,
    /// Faults the plan injected across all phases.
    pub injected: u64,
    /// Operations acknowledged across all clients and phases.
    pub acked_ops: u64,
    /// Phases that ended in a mid-work kill.
    pub kills: usize,
    /// The full fault trace (`site#occurrence: fault`, in injection order).
    /// Byte-identical across same-seed deterministic runs.
    pub fault_trace: Vec<String>,
    /// The scheduled operation history (`p<phase> c<client> <op> <outcome>`,
    /// in execution order). Byte-identical across same-seed deterministic
    /// runs; unordered (racy) in wall-clock mode.
    pub history: Vec<String>,
    /// The observability trace-ring dump (rendered [`puddles_pmem::obs::
    /// TraceEvent`] lines: request start/end, WAL commits, checkpoints,
    /// coalesce passes, injections, reconnects) across all phases of the
    /// trial — one hub survives the kill/restart cycles. Byte-identical
    /// across same-seed deterministic runs.
    pub trace_dump: Vec<String>,
}

/// A failed trial: the violation plus everything needed to reproduce it.
#[derive(Debug)]
pub struct TortureFailure {
    /// The trial seed (`TORTURE_SEED=<seed>` reproduces the trial).
    pub seed: u64,
    /// What went wrong.
    pub message: String,
    /// The per-trial fault trace (`site#occurrence: fault`).
    pub fault_trace: Vec<String>,
    /// The trace-ring dump at failure time (the observability timeline the
    /// fault trace interleaves into).
    pub trace_dump: Vec<String>,
    /// Path of the JSON artifact holding the full context (fault trace,
    /// operation history, trace dump); `None` if writing it failed.
    pub artifact: Option<PathBuf>,
}

impl std::fmt::Display for TortureFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "torture trial failed: {}", self.message)?;
        writeln!(
            f,
            "reproduce with TORTURE_SEED={} TORTURE_TRIALS=1",
            self.seed
        )?;
        if let Some(path) = &self.artifact {
            writeln!(f, "failure artifact: {}", path.display())?;
        }
        writeln!(f, "fault trace ({} injected):", self.fault_trace.len())?;
        for line in &self.fault_trace {
            writeln!(f, "  {line}")?;
        }
        Ok(())
    }
}

/// Everything a failing trial leaves behind, serialized to the JSON
/// artifact named in [`TortureFailure::artifact`].
#[derive(Debug, Serialize)]
struct FailureArtifact {
    seed: u64,
    message: String,
    fault_trace: Vec<String>,
    history: Vec<String>,
    trace_dump: Vec<String>,
}

/// Writes the failure artifact under `target/` (falling back to the OS
/// temp dir outside a cargo workspace); best-effort — a failure to record
/// the failure must not mask it.
fn write_failure_artifact(artifact: &FailureArtifact) -> Option<PathBuf> {
    let target = PathBuf::from("target");
    let dir = if target.is_dir() {
        target
    } else {
        std::env::temp_dir()
    };
    let path = dir.join(format!("torture_failure_{:x}.json", artifact.seed));
    let bytes = serde_json::to_vec_pretty(artifact).ok()?;
    std::fs::write(&path, bytes).ok()?;
    Some(path)
}

/// splitmix64 — the same generator the fault plan uses, so the whole trial
/// is a pure function of the seed.
struct Splitmix(u64);

impl Splitmix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// A private PM directory for one trial, removed on drop. (Hand-rolled so
/// the harness lives in the library proper — `tempfile` is only a
/// dev-dependency here.)
struct TrialDir(PathBuf);

impl TrialDir {
    fn new(seed: u64) -> std::io::Result<TrialDir> {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let path = std::env::temp_dir().join(format!(
            "puddles-torture-{}-{seed:x}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&path)?;
        Ok(TrialDir(path))
    }
}

impl Drop for TrialDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

/// Cooperative scheduler for deterministic trials: exactly one client
/// thread runs between yield points, and which one runs next is a seeded
/// draw over the runnable set — so the interleaving is a pure function of
/// the trial seed.
///
/// Lifecycle: every client [`register`]s (a barrier — no one is scheduled
/// until all expected clients have arrived, so the pick sequence does not
/// depend on thread start-up order), then alternates between running and
/// [`yield_now`] at daemon round-trip boundaries, and [`finish`]es when its
/// phase function returns. The kill schedule is a *yield budget*: when the
/// total yield count reaches `kill_at`, scheduling pauses with every client
/// parked at a yield point (none mid-round-trip), the driver tears the
/// server down at that quiesced instant, and [`resume`] lets the clients
/// run on to observe the kill.
///
/// [`register`]: CoopSched::register
/// [`yield_now`]: CoopSched::yield_now
/// [`finish`]: CoopSched::finish
/// [`resume`]: CoopSched::resume
struct CoopSched {
    state: Mutex<SchedState>,
    cv: Condvar,
}

struct SchedState {
    rng: Splitmix,
    /// Clients this phase will run; scheduling starts once all registered.
    expected: usize,
    registered: usize,
    finished: usize,
    /// Clients parked at a yield point, waiting to be picked. A sorted
    /// set, not a queue: thread *arrival* order at the registration
    /// barrier races across runs, so the seeded pick must index a
    /// canonically ordered view to stay replayable.
    runnable: BTreeSet<usize>,
    /// The one client currently allowed to run.
    current: Option<usize>,
    /// Total yields so far (the kill schedule's time base).
    yields: u64,
    /// Pause scheduling once `yields` reaches this.
    kill_at: Option<u64>,
    kill_reached: bool,
    paused: bool,
}

impl CoopSched {
    fn new(seed: u64, expected: usize, kill_at: Option<u64>) -> Arc<CoopSched> {
        Arc::new(CoopSched {
            state: Mutex::new(SchedState {
                rng: Splitmix(seed),
                expected,
                registered: 0,
                finished: 0,
                runnable: BTreeSet::new(),
                current: None,
                yields: 0,
                kill_at,
                kill_reached: false,
                paused: false,
            }),
            cv: Condvar::new(),
        })
    }

    /// Hands the run token to a seeded pick from the runnable set, if the
    /// token is free and scheduling is active.
    fn pick_next(st: &mut SchedState) {
        if st.paused || st.current.is_some() || st.registered < st.expected {
            return;
        }
        if st.runnable.is_empty() {
            return;
        }
        let i = (st.rng.next() % st.runnable.len() as u64) as usize;
        let picked = *st.runnable.iter().nth(i).expect("non-empty runnable");
        st.runnable.remove(&picked);
        st.current = Some(picked);
    }

    /// Joins the phase and blocks until scheduled for the first time.
    fn register(&self, idx: usize) {
        let mut st = self.state.lock().unwrap();
        st.registered += 1;
        st.runnable.insert(idx);
        Self::pick_next(&mut st);
        self.cv.notify_all();
        while st.current != Some(idx) {
            st = self.cv.wait(st).unwrap();
        }
    }

    /// Surrenders the run token at a round-trip boundary and blocks until
    /// scheduled again.
    fn yield_now(&self, idx: usize) {
        let mut st = self.state.lock().unwrap();
        debug_assert_eq!(st.current, Some(idx), "yield from an unscheduled client");
        st.yields += 1;
        st.current = None;
        st.runnable.insert(idx);
        if let Some(at) = st.kill_at {
            if !st.kill_reached && st.yields >= at {
                // The kill point: freeze everyone at their yield points and
                // wake the driver to pull the plug.
                st.kill_reached = true;
                st.paused = true;
            }
        }
        Self::pick_next(&mut st);
        self.cv.notify_all();
        while st.current != Some(idx) {
            st = self.cv.wait(st).unwrap();
        }
    }

    /// Leaves the phase for good (the client's run token passes on).
    fn finish(&self, idx: usize) {
        let mut st = self.state.lock().unwrap();
        if st.current == Some(idx) {
            st.current = None;
        } else {
            st.runnable.remove(&idx);
        }
        st.finished += 1;
        Self::pick_next(&mut st);
        self.cv.notify_all();
    }

    /// Driver side: blocks until the kill point is reached (`true`) or
    /// every client finished without one (`false`).
    fn wait_kill_or_done(&self) -> bool {
        let mut st = self.state.lock().unwrap();
        while !st.kill_reached && st.finished < st.expected {
            st = self.cv.wait(st).unwrap();
        }
        st.kill_reached
    }

    /// Driver side: restarts scheduling after the kill teardown.
    fn resume(&self) {
        let mut st = self.state.lock().unwrap();
        st.paused = false;
        Self::pick_next(&mut st);
        self.cv.notify_all();
    }
}

/// Registers with the scheduler on construction and finishes on drop, so a
/// client leaves the run queue on *every* exit path. Declared before the
/// `PuddleClient` local in [`client_phase`]: locals drop in reverse order,
/// so the client (whose `Drop` frees spare logs — daemon round trips)
/// still holds the run token while it disconnects.
struct SchedGuard<'a> {
    sched: Option<&'a CoopSched>,
    idx: usize,
}

impl<'a> SchedGuard<'a> {
    fn new(sched: Option<&'a CoopSched>, idx: usize) -> SchedGuard<'a> {
        if let Some(s) = sched {
            s.register(idx);
        }
        SchedGuard { sched, idx }
    }
}

impl Drop for SchedGuard<'_> {
    fn drop(&mut self) {
        if let Some(s) = self.sched {
            s.finish(self.idx);
        }
    }
}

/// Outcome bookkeeping shared by the trial's client threads.
#[derive(Default)]
struct Shadow {
    /// Pools whose creation the daemon acknowledged (and no drop was ever
    /// attempted): must exist after recovery.
    acked_created: BTreeSet<String>,
    /// Pools whose drop was acknowledged: must stay gone.
    acked_dropped: BTreeSet<String>,
    /// Per-client counter state: (highest acked write, highest attempted).
    counters: Vec<(u64, u64)>,
    /// Total acknowledged operations (reporting only).
    acked_ops: u64,
    /// Execution-ordered operation log (`p<phase> c<client> <op> <outcome>`).
    /// Deliberately free of paths, durations, and counter *readings* — only
    /// seed-derived facts — so same-seed deterministic runs match exactly.
    history: Vec<String>,
}

/// One client thread's slice of a phase, bundled so the workload function
/// stays readable.
struct ClientCtx {
    socket: PathBuf,
    space: Arc<puddled::GlobalSpace>,
    shadow: Arc<Mutex<Shadow>>,
    stop: Arc<AtomicBool>,
    sched: Option<Arc<CoopSched>>,
    clock: Clock,
    idx: usize,
    phase: usize,
    ops: usize,
    rng: Splitmix,
}

impl ClientCtx {
    /// A yield point: in deterministic mode, surrenders the run token
    /// before the next daemon round trip; in wall-clock mode, a no-op.
    fn yield_point(&self) {
        if let Some(s) = &self.sched {
            s.yield_now(self.idx);
        }
    }

    /// Appends one operation record to the trial history.
    fn record(&self, op: &str, ok: bool) {
        let outcome = if ok { "ok" } else { "err" };
        self.shadow
            .lock()
            .unwrap()
            .history
            .push(format!("p{} c{} {op} {outcome}", self.phase, self.idx));
    }
}

/// Runs one client thread's workload for one phase.
fn client_phase(mut ctx: ClientCtx) {
    // Drops last (declared first): the PuddleClient below must disconnect
    // while this client still holds the scheduler's run token.
    let _turn = SchedGuard::new(ctx.sched.as_deref(), ctx.idx);

    // Short per-op deadlines: after a scheduled mid-phase kill every call
    // fails, and the thread must notice `stop` quickly rather than sit out
    // a long backoff schedule. Jitter and sleeps ride the trial clock, so
    // backoff is replayable and costs no wall time under virtual time.
    let retry = RetryPolicy::new(4, Duration::from_millis(150))
        .with_clock(ctx.clock.clone())
        .with_seed(ctx.rng.next());
    let connected =
        PuddleClient::connect_uds_shared_with_retry(&ctx.socket, Arc::clone(&ctx.space), retry);
    ctx.record("connect", connected.is_ok());
    let Ok(client) = connected else {
        return; // Killed before the phase began; nothing acked, nothing owed.
    };
    let ctr_name = format!("ctr{}", ctx.idx);
    ctx.yield_point();
    let ctr_pool = client
        .open_or_create_pool(&ctr_name, PoolOptions::default())
        .ok();
    ctx.record("openctr", ctr_pool.is_some());
    if let Some(pool) = &ctr_pool {
        if pool.root::<TortureCounter>().is_none() {
            ctx.yield_point();
            let made = pool.tx(|tx| pool.create_root(tx, TortureCounter { value: 0 }));
            ctx.record("initroot", made.is_ok());
        }
    }
    for op in 0..ctx.ops {
        if ctx.stop.load(Ordering::Relaxed) {
            return;
        }
        ctx.yield_point();
        if ctx.stop.load(Ordering::Relaxed) {
            return;
        }
        match ctx.rng.next() % 10 {
            // Counter transaction: the data plane under metadata faults.
            0..=4 => {
                let Some(pool) = &ctr_pool else { continue };
                let Some(root) = pool.root::<TortureCounter>() else {
                    continue;
                };
                let next = {
                    let mut sh = ctx.shadow.lock().unwrap();
                    let (_, attempted) = &mut sh.counters[ctx.idx];
                    *attempted += 1;
                    *attempted
                };
                let result = pool.tx(|tx| {
                    let counter = pool.deref_mut(root)?;
                    tx.set(&mut counter.value, next)?;
                    Ok(())
                });
                ctx.record("ctr", result.is_ok());
                if result.is_ok() {
                    let mut sh = ctx.shadow.lock().unwrap();
                    sh.counters[ctx.idx].0 = next;
                    sh.acked_ops += 1;
                }
            }
            // Ephemeral pool create (non-idempotent), sometimes dropped
            // again. Names are never reused, so an unacknowledged create
            // can land either way without confusing a later attempt.
            5 | 6 => {
                let name = format!("e{}_{}_{op}", ctx.idx, ctx.phase);
                let created = client.create_pool(&name, PoolOptions::default()).is_ok();
                ctx.record("create", created);
                if created {
                    let mut sh = ctx.shadow.lock().unwrap();
                    sh.acked_created.insert(name.clone());
                    sh.acked_ops += 1;
                    drop(sh);
                    if ctx.rng.next().is_multiple_of(2) {
                        ctx.yield_point();
                        let dropped = client.drop_pool(&name).is_ok();
                        ctx.record("drop", dropped);
                        let mut sh = ctx.shadow.lock().unwrap();
                        // Whether or not the drop was acknowledged, the
                        // pool's fate is no longer "must exist".
                        sh.acked_created.remove(&name);
                        if dropped {
                            sh.acked_dropped.insert(name);
                            sh.acked_ops += 1;
                        }
                    }
                }
            }
            // Idempotent reads: stats, pool open, ping.
            7 => {
                let ok = client.stats().is_ok();
                ctx.record("stats", ok);
                if ok {
                    ctx.shadow.lock().unwrap().acked_ops += 1;
                }
            }
            8 => {
                ctx.record("open", client.open_pool(&ctr_name).is_ok());
            }
            _ => {
                ctx.record("ping", client.ping().is_ok());
            }
        }
    }
}

/// Runs one seeded torture trial.
pub fn run_trial(config: &TortureConfig) -> Result<TortureReport, TortureFailure> {
    // Deterministic trials run on a seeded virtual clock; reset decisions
    // are per-socket-event (kernel-timing-dependent) and must stay off for
    // the replay guarantee to hold (module docs).
    let mut profile = config.profile;
    let clock = if config.deterministic {
        profile.conn_reset_ppm = 0;
        Clock::simulated(config.seed)
    } else {
        Clock::real()
    };
    let plan = FaultPlan::new(config.seed, profile);
    // One metrics hub for the whole trial: passed to every daemon
    // incarnation so the trace ring and histograms span the kill/restart
    // cycles. On the virtual clock the dump is seed-deterministic.
    let metrics = Metrics::new(clock.clone());
    let shadow = Arc::new(Mutex::new(Shadow {
        counters: vec![(0, 0); config.clients],
        ..Shadow::default()
    }));
    let fail = |message: String| {
        // `fail` runs inside verification loops that hold the shadow lock,
        // so the history capture must be try_lock (empty if contended).
        let history = shadow
            .try_lock()
            .map(|sh| sh.history.clone())
            .unwrap_or_default();
        let trace_dump = metrics.trace_dump();
        let artifact = write_failure_artifact(&FailureArtifact {
            seed: config.seed,
            message: message.clone(),
            fault_trace: plan.trace(),
            history,
            trace_dump: trace_dump.clone(),
        });
        TortureFailure {
            seed: config.seed,
            message,
            fault_trace: plan.trace(),
            trace_dump,
            artifact,
        }
    };

    let dir = TrialDir::new(config.seed).map_err(|e| fail(format!("trial dir: {e}")))?;
    let daemon_config = DaemonConfig::for_testing(&dir.0)
        .with_fault_plan(Arc::clone(&plan))
        .with_clock(clock.clone())
        .with_metrics(Arc::clone(&metrics));
    let mut rng = Splitmix(config.seed);
    let mut kills = 0usize;

    for phase in 0..config.phases {
        // Faults run only while clients are driving load; recovery and
        // verification read through a quiet I/O plane (module docs).
        plan.set_enabled(false);
        let daemon = Daemon::start(daemon_config.clone())
            .map_err(|e| fail(format!("phase {phase}: daemon start/recovery: {e}")))?;
        plan.set_enabled(true);

        let socket = dir.0.join(format!("torture-{phase}.sock"));
        let mut server = Some(
            UdsServer::start(daemon.clone(), &socket)
                .map_err(|e| fail(format!("phase {phase}: server start: {e}")))?,
        );

        // The kill schedule: some phases chop the daemon down mid-work. In
        // deterministic mode the draw is a yield budget (scheduler time);
        // in wall-clock mode, milliseconds on a fuse. Same draws either
        // way, so a seed's config is mode-independent.
        let kill_after = (!rng.next().is_multiple_of(3)).then(|| 10 + rng.next() % 60);

        let sched = config.deterministic.then(|| {
            CoopSched::new(
                config.seed ^ ((phase as u64) << 8) ^ 0x5ced,
                config.clients,
                kill_after,
            )
        });
        let stop = Arc::new(AtomicBool::new(false));
        let workers: Vec<_> = (0..config.clients)
            .map(|idx| {
                let ctx = ClientCtx {
                    socket: socket.clone(),
                    space: daemon.global_space(),
                    shadow: Arc::clone(&shadow),
                    stop: Arc::clone(&stop),
                    sched: sched.clone(),
                    clock: clock.clone(),
                    idx,
                    phase,
                    ops: config.ops_per_client,
                    rng: Splitmix(config.seed ^ ((phase as u64) << 32) ^ (idx as u64 + 1)),
                };
                std::thread::spawn(move || client_phase(ctx))
            })
            .collect();

        if let Some(sched) = &sched {
            // Deterministic: wait for the yield budget to run out (every
            // client parked at a yield point — a quiesced instant the seed
            // always reproduces) or for all clients to finish first.
            if sched.wait_kill_or_done() {
                stop.store(true, Ordering::Relaxed);
                server = None; // Abrupt: in-flight connections reset.
                kills += 1;
                sched.resume();
            }
        } else if let Some(ms) = kill_after {
            clock.sleep(Duration::from_millis(ms));
            stop.store(true, Ordering::Relaxed);
            server = None;
            kills += 1;
        }
        for worker in workers {
            worker
                .join()
                .map_err(|_| fail(format!("phase {phase}: client thread panicked")))?;
        }
        drop(server);
        drop(daemon);

        // Recovery + the invariant layer, faults quiesced.
        plan.set_enabled(false);
        let daemon = Daemon::start(daemon_config.clone())
            .map_err(|e| fail(format!("phase {phase}: recovery failed: {e}")))?;
        let violations = Invariants::check_all(daemon.registry());
        if !violations.is_empty() {
            return Err(fail(format!(
                "phase {phase}: invariant violations after recovery: {}",
                violations.join("; ")
            )));
        }

        // Committed-or-rolled-back visibility.
        let verifier = PuddleClient::connect_local(&daemon)
            .map_err(|e| fail(format!("phase {phase}: verifier connect: {e}")))?;
        let sh = shadow.lock().unwrap();
        for name in &sh.acked_created {
            if verifier.open_pool(name).is_err() {
                return Err(fail(format!(
                    "phase {phase}: pool {name}: creation was acknowledged but it is gone"
                )));
            }
        }
        for name in &sh.acked_dropped {
            if verifier.open_pool(name).is_ok() {
                return Err(fail(format!(
                    "phase {phase}: pool {name}: drop was acknowledged but it still exists"
                )));
            }
        }
        for (idx, &(acked, attempted)) in sh.counters.iter().enumerate() {
            if acked == 0 {
                continue; // Counter pool may not even exist yet.
            }
            let name = format!("ctr{idx}");
            let pool = verifier.open_pool(&name).map_err(|e| {
                fail(format!(
                    "phase {phase}: counter pool {name} had acked writes but won't open: {e}"
                ))
            })?;
            let Some(root) = pool.root::<TortureCounter>() else {
                return Err(fail(format!(
                    "phase {phase}: counter pool {name} lost its root"
                )));
            };
            let value = pool
                .deref(root)
                .map_err(|e| fail(format!("phase {phase}: counter deref: {e}")))?
                .value;
            if value < acked || value > attempted {
                return Err(fail(format!(
                    "phase {phase}: counter {idx} = {value}, outside \
                     [acked {acked}, attempted {attempted}] — a write was \
                     torn or an acknowledged commit was lost"
                )));
            }
        }
        drop(sh);
    }

    let mut sh = shadow.lock().unwrap();
    Ok(TortureReport {
        seed: config.seed,
        injected: plan.injected(),
        acked_ops: sh.acked_ops,
        kills,
        fault_trace: plan.trace(),
        history: std::mem::take(&mut sh.history),
        trace_dump: metrics.trace_dump(),
    })
}

/// Sweep-level switches for [`run_sweep_with`].
#[derive(Debug, Clone, Copy, Default)]
pub struct SweepOptions {
    /// Run trials free-running on the wall clock instead of the
    /// deterministic scheduler (restores connection-reset coverage,
    /// forfeits replay).
    pub wall_clock: bool,
    /// Run every (deterministic) trial twice and fail on the first
    /// fault-trace or history divergence — the CI determinism gate.
    pub replay_check: bool,
}

/// Finds the first index where two replay logs diverge, for the gate's
/// failure message.
fn first_divergence(a: &[String], b: &[String]) -> String {
    if a.len() != b.len() {
        return format!("lengths differ: {} vs {}", a.len(), b.len());
    }
    match a.iter().zip(b).position(|(x, y)| x != y) {
        Some(i) => format!("line {i}: `{}` vs `{}`", a[i], b[i]),
        None => "identical".to_string(),
    }
}

/// Runs `trials` seeded trials (`base_seed + index`) across `threads`
/// worker threads, stealing trial indices from a shared counter so seeds
/// are independent of the thread count. Returns per-trial reports, or the
/// first failure.
pub fn run_sweep(
    base_seed: u64,
    trials: u64,
    threads: u64,
) -> Result<Vec<TortureReport>, TortureFailure> {
    run_sweep_with(base_seed, trials, threads, SweepOptions::default())
}

/// [`run_sweep`] with explicit [`SweepOptions`].
pub fn run_sweep_with(
    base_seed: u64,
    trials: u64,
    threads: u64,
    opts: SweepOptions,
) -> Result<Vec<TortureReport>, TortureFailure> {
    let threads = threads.clamp(1, trials.max(1));
    let next = Arc::new(AtomicU64::new(0));
    let reports: Arc<Mutex<Vec<TortureReport>>> = Arc::new(Mutex::new(Vec::new()));
    let failure: Arc<Mutex<Option<TortureFailure>>> = Arc::new(Mutex::new(None));
    let workers: Vec<_> = (0..threads)
        .map(|_| {
            let next = Arc::clone(&next);
            let reports = Arc::clone(&reports);
            let failure = Arc::clone(&failure);
            std::thread::spawn(move || loop {
                let trial = next.fetch_add(1, Ordering::Relaxed);
                if trial >= trials || failure.lock().unwrap().is_some() {
                    return;
                }
                let mut config = TortureConfig::from_seed(base_seed.wrapping_add(trial));
                if opts.wall_clock {
                    config.deterministic = false;
                }
                match run_trial(&config) {
                    Ok(report) => {
                        if opts.replay_check && config.deterministic {
                            match run_trial(&config) {
                                Ok(replay)
                                    if replay.fault_trace != report.fault_trace
                                        || replay.history != report.history
                                        || replay.trace_dump != report.trace_dump =>
                                {
                                    *failure.lock().unwrap() = Some(TortureFailure {
                                        seed: config.seed,
                                        message: format!(
                                            "replay diverged — faults: {}; history: {}; \
                                             trace: {}",
                                            first_divergence(
                                                &report.fault_trace,
                                                &replay.fault_trace
                                            ),
                                            first_divergence(&report.history, &replay.history),
                                            first_divergence(
                                                &report.trace_dump,
                                                &replay.trace_dump
                                            ),
                                        ),
                                        fault_trace: replay.fault_trace,
                                        trace_dump: replay.trace_dump,
                                        artifact: None,
                                    });
                                    return;
                                }
                                Ok(_) => {}
                                Err(fail) => {
                                    *failure.lock().unwrap() = Some(TortureFailure {
                                        message: format!(
                                            "replay failed where the first run passed: {}",
                                            fail.message
                                        ),
                                        ..fail
                                    });
                                    return;
                                }
                            }
                        }
                        reports.lock().unwrap().push(report);
                    }
                    Err(fail) => *failure.lock().unwrap() = Some(fail),
                }
            })
        })
        .collect();
    for worker in workers {
        worker.join().expect("torture sweep worker panicked");
    }
    if let Some(fail) = failure.lock().unwrap().take() {
        return Err(fail);
    }
    let mut reports = Arc::try_unwrap(reports)
        .expect("workers joined")
        .into_inner()
        .unwrap();
    reports.sort_by_key(|r| r.seed);
    Ok(reports)
}

/// Reads a `u64` environment knob (`TORTURE_SEED`, `TORTURE_TRIALS`, ...).
pub fn env_u64(name: &str, default: u64) -> u64 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}
